module mux8 (s0, s1, s2, d0, d1, d2, d3, d4, d5, d6, d7, y);
  input s0, s1, s2, d0, d1, d2, d3, d4, d5, d6, d7;
  output y;
  wire g_n0, g_n1, g_n2, g_n3, g_n4, g_n5, g_n6;
  assign g_n0 = (s0 & d1) | (~s0 & d0);
  assign g_n1 = (s0 & d3) | (~s0 & d2);
  assign g_n2 = (s0 & d5) | (~s0 & d4);
  assign g_n3 = (s0 & d7) | (~s0 & d6);
  assign g_n4 = (s1 & g_n1) | (~s1 & g_n0);
  assign g_n5 = (s1 & g_n3) | (~s1 & g_n2);
  assign g_n6 = (s2 & g_n5) | (~s2 & g_n4);
  assign y = (g_n6);
endmodule
