#!/usr/bin/env python3
"""Structural validator for compact-verify SARIF output.

Checks the invariants of SARIF 2.1.0 that GitHub code scanning and other
consumers rely on, without needing the (network-fetched) JSON schema:

  * version is exactly "2.1.0" and $schema points at the 2.1.0 schema;
  * every run carries tool.driver.name and a rules table with unique ids;
  * every result has a ruleId, a level from the SARIF vocabulary, and a
    non-empty message.text;
  * when a result carries ruleIndex it must point at the rule whose id
    matches its ruleId;
  * locations, when present, are physical (artifactLocation.uri) or
    logical (name + kind) locations.

Usage: check_sarif.py FILE.sarif [FILE.sarif ...]
Exits 0 when every file passes, 1 otherwise.
"""

import json
import sys

LEVELS = {"none", "note", "warning", "error"}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return False


def check_result(path, result, rules):
    ok = True
    rule_id = result.get("ruleId")
    if not rule_id:
        ok = fail(path, "result without ruleId")
    if result.get("level") not in LEVELS:
        ok = fail(path, f"result level {result.get('level')!r} not in {sorted(LEVELS)}")
    text = result.get("message", {}).get("text", "")
    if not text:
        ok = fail(path, f"result {rule_id}: empty message.text")
    if "ruleIndex" in result:
        index = result["ruleIndex"]
        if not isinstance(index, int) or index < 0 or index >= len(rules):
            ok = fail(path, f"result {rule_id}: ruleIndex {index} out of range")
        elif rules[index].get("id") != rule_id:
            ok = fail(
                path,
                f"result {rule_id}: ruleIndex {index} names "
                f"{rules[index].get('id')!r}",
            )
    for location in result.get("locations", []):
        physical = location.get("physicalLocation")
        logical = location.get("logicalLocations", [])
        if physical is None and not logical:
            ok = fail(path, f"result {rule_id}: empty location")
        if physical is not None and not physical.get("artifactLocation", {}).get("uri"):
            ok = fail(path, f"result {rule_id}: physicalLocation without uri")
        for entry in logical:
            if not entry.get("name") or not entry.get("kind"):
                ok = fail(path, f"result {rule_id}: logicalLocation needs name+kind")
    return ok


def check_file(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    ok = True
    if doc.get("version") != "2.1.0":
        ok = fail(path, f"version is {doc.get('version')!r}, want '2.1.0'")
    if "sarif-schema-2.1.0" not in doc.get("$schema", ""):
        ok = fail(path, "$schema does not reference sarif-schema-2.1.0")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return fail(path, "runs must be a non-empty array")
    for run in runs:
        driver = run.get("tool", {}).get("driver", {})
        if not driver.get("name"):
            ok = fail(path, "tool.driver.name missing")
        rules = driver.get("rules", [])
        ids = [rule.get("id") for rule in rules]
        if len(ids) != len(set(ids)):
            ok = fail(path, "duplicate rule ids in the rules table")
        for rule in rules:
            if not rule.get("id"):
                ok = fail(path, "rule without id")
        for result in run.get("results", []):
            ok = check_result(path, result, rules) and ok
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    ok = True
    for path in argv[1:]:
        if check_file(path):
            print(f"{path}: OK")
        else:
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
