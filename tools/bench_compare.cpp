// bench_compare — diff two benchmark JSON files and flag regressions.
//
//   bench_compare BASELINE.json CURRENT.json [--threshold FRAC]
//                 [--metric real_time|cpu_time] [--report-only]
//
// Both files use google-benchmark's JSON output format (a top-level
// "benchmarks" array whose entries carry "name" and per-iteration times) —
// the format `bench_micro --json FILE` writes, and the committed
// BENCH_seed.json baseline. Benchmarks are matched by name; a benchmark
// whose time grew by more than the threshold (default 0.25 = +25%) is a
// regression.
//
// Exit status: 0 when no benchmark regressed (or --report-only was given),
// 1 when at least one regressed, 2 on usage or parse errors. Timing noise
// makes this a tripwire, not a verdict — CI runs it report-only and a human
// reads the table.
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

namespace {

using namespace compact;

[[noreturn]] void usage(const std::string& message = {}) {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr << "usage: bench_compare BASELINE.json CURRENT.json\n"
               "         [--threshold FRAC] [--metric real_time|cpu_time]\n"
               "         [--report-only]\n";
  std::exit(2);
}

/// name -> time (in the file's own unit) for every concrete benchmark run.
std::map<std::string, double> load_times(const std::string& path,
                                         const std::string& metric) {
  const json::value_ptr doc = json::parse_file(path);
  const json::value* benchmarks = doc->find("benchmarks");
  if (benchmarks == nullptr)
    throw error(path + ": no \"benchmarks\" array (google-benchmark JSON?)");
  std::map<std::string, double> times;
  for (const json::value_ptr& entry : benchmarks->as_array()) {
    // Skip aggregate rows (mean/median/stddev of repetitions); only
    // concrete iterations are comparable across files.
    if (const json::value* run_type = entry->find("run_type");
        run_type != nullptr && run_type->as_string() != "iteration")
      continue;
    const json::value* name = entry->find("name");
    const json::value* time = entry->find(metric);
    if (name == nullptr || time == nullptr) continue;
    times.emplace(name->as_string(), time->as_number());
  }
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> files;
  double threshold = 0.25;
  std::string metric = "real_time";
  bool report_only = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> const std::string& {
      if (++i >= args.size()) usage(a + " needs a value");
      return args[i];
    };
    if (a == "--threshold") {
      try {
        threshold = std::stod(value());
      } catch (const std::exception&) {
        usage("--threshold expects a number");
      }
      if (threshold <= 0.0) usage("--threshold must be positive");
    } else if (a == "--metric") {
      metric = value();
      if (metric != "real_time" && metric != "cpu_time")
        usage("--metric must be real_time or cpu_time");
    } else if (a == "--report-only") {
      report_only = true;
    } else if (!a.empty() && a[0] == '-') {
      usage("unknown option " + a);
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 2) usage("need exactly two JSON files");

  try {
    const std::map<std::string, double> baseline =
        load_times(files[0], metric);
    const std::map<std::string, double> current = load_times(files[1], metric);

    table t({"benchmark", "baseline", "current", "ratio", "verdict"});
    int regressions = 0;
    int improvements = 0;
    int compared = 0;
    for (const auto& [name, base_time] : baseline) {
      const auto it = current.find(name);
      if (it == current.end()) {
        t.add_row({name, json_number(base_time), "-", "-", "missing"});
        continue;
      }
      ++compared;
      const double ratio = base_time > 0.0 ? it->second / base_time : 1.0;
      std::string verdict = "ok";
      if (ratio > 1.0 + threshold) {
        verdict = "REGRESSION";
        ++regressions;
      } else if (ratio < 1.0 - threshold) {
        verdict = "improved";
        ++improvements;
      }
      t.add_row({name, json_number(base_time), json_number(it->second),
                 cell(ratio, 3), verdict});
    }
    for (const auto& [name, time] : current)
      if (!baseline.contains(name))
        t.add_row({name, "-", json_number(time), "-", "new"});
    t.print(std::cout);

    std::cout << "\ncompared " << compared << " benchmark(s): " << regressions
              << " regression(s), " << improvements << " improvement(s), "
              << "threshold +" << static_cast<int>(threshold * 100) << "%\n";
    if (regressions > 0 && report_only)
      std::cout << "report-only: not failing the run\n";
    return regressions > 0 && !report_only ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
