// bench_compare — diff two benchmark JSON files and flag regressions.
//
//   bench_compare BASELINE.json CURRENT.json [--threshold FRAC]
//                 [--metric real_time|cpu_time] [--report-only] [--attribute]
//
// Both files use google-benchmark's JSON output format (a top-level
// "benchmarks" array whose entries carry "name" and per-iteration times) —
// the format `bench_micro --json FILE` writes, and the committed
// BENCH_seed.json baseline. Benchmarks are matched by name; a benchmark
// whose time grew by more than the threshold (default 0.25 = +25%) is a
// regression.
//
// --attribute adds a per-benchmark per-counter delta table so a tripped
// gate names WHAT regressed, not just THAT something did: every numeric
// field of every benchmark entry (times, custom counters) plus the
// top-level numeric scalars of a bench harness run-record (reported as the
// "(run)" pseudo-benchmark — memory peaks, shape metrics) is diffed and
// sorted by relative change. In attribution mode a file without a
// "benchmarks" array (a pure run-record) is accepted.
//
// Exit status: 0 when no benchmark regressed (or --report-only was given),
// 1 when at least one regressed, 2 on usage or parse errors. Timing noise
// makes this a tripwire, not a verdict — CI runs it report-only and a human
// reads the table. --attribute never changes the exit code.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

namespace {

using namespace compact;

[[noreturn]] void usage(const std::string& message = {}) {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr << "usage: bench_compare BASELINE.json CURRENT.json\n"
               "         [--threshold FRAC] [--metric real_time|cpu_time]\n"
               "         [--report-only] [--attribute]\n";
  std::exit(2);
}

/// name -> time (in the file's own unit) for every concrete benchmark run.
/// With `require_benchmarks` false (attribution mode) a document without a
/// "benchmarks" array — a bench harness run-record — yields an empty map.
std::map<std::string, double> load_times(const std::string& path,
                                         const std::string& metric,
                                         bool require_benchmarks = true) {
  const json::value_ptr doc = json::parse_file(path);
  const json::value* benchmarks = doc->find("benchmarks");
  if (benchmarks == nullptr) {
    if (!require_benchmarks) return {};
    throw error(path + ": no \"benchmarks\" array (google-benchmark JSON?)");
  }
  std::map<std::string, double> times;
  for (const json::value_ptr& entry : benchmarks->as_array()) {
    // Skip aggregate rows (mean/median/stddev of repetitions); only
    // concrete iterations are comparable across files.
    if (const json::value* run_type = entry->find("run_type");
        run_type != nullptr && run_type->as_string() != "iteration")
      continue;
    const json::value* name = entry->find("name");
    const json::value* time = entry->find(metric);
    if (name == nullptr || time == nullptr) continue;
    times.emplace(name->as_string(), time->as_number());
  }
  return times;
}

/// Bookkeeping fields of a google-benchmark entry that never carry signal
/// worth attributing (indices, repetition plumbing, iteration counts that
/// float with wall time).
bool attribution_noise(const std::string& key) {
  return key == "family_index" || key == "per_family_instance_index" ||
         key == "repetition_index" || key == "repetitions" ||
         key == "iterations";
}

/// benchmark -> counter -> value, from either accepted file shape: the
/// numeric fields of every "benchmarks" entry (times + custom counters),
/// and the document's top-level numeric scalars (a bench harness
/// run-record's memory peaks / shape metrics) under "(run)".
std::map<std::string, std::map<std::string, double>> load_counters(
    const std::string& path) {
  const json::value_ptr doc = json::parse_file(path);
  std::map<std::string, std::map<std::string, double>> out;
  for (const auto& [key, member] : doc->as_object())
    if (member->type() == json::kind::number)
      out["(run)"][key] = member->as_number();
  const json::value* benchmarks = doc->find("benchmarks");
  if (benchmarks == nullptr) return out;
  for (const json::value_ptr& entry : benchmarks->as_array()) {
    if (const json::value* run_type = entry->find("run_type");
        run_type != nullptr && run_type->as_string() != "iteration")
      continue;
    const json::value* name = entry->find("name");
    if (name == nullptr) continue;
    for (const auto& [key, member] : entry->as_object())
      if (member->type() == json::kind::number && !attribution_noise(key))
        out[name->as_string()][key] = member->as_number();
  }
  return out;
}

/// The per-counter delta table: which benchmark / counter moved the most
/// between the two files, so a tripped perf gate names its suspect.
void print_attribution(const std::string& baseline_path,
                       const std::string& current_path) {
  struct delta {
    std::string bench;
    std::string counter;
    double baseline;
    double current;
    double relative;  // (current - baseline) / baseline
  };
  const std::map<std::string, std::map<std::string, double>> baseline =
      load_counters(baseline_path);
  const std::map<std::string, std::map<std::string, double>> current =
      load_counters(current_path);

  std::vector<delta> deltas;
  for (const auto& [bench, counters] : baseline) {
    const auto bench_it = current.find(bench);
    if (bench_it == current.end()) continue;
    for (const auto& [counter, base_value] : counters) {
      const auto counter_it = bench_it->second.find(counter);
      if (counter_it == bench_it->second.end()) continue;
      const double current_value = counter_it->second;
      double relative = 0.0;
      if (base_value != 0.0)
        relative = (current_value - base_value) / base_value;
      else if (current_value != 0.0)
        relative = std::numeric_limits<double>::infinity();
      deltas.push_back({bench, counter, base_value, current_value, relative});
    }
  }
  std::sort(deltas.begin(), deltas.end(), [](const delta& a, const delta& b) {
    return std::abs(a.relative) > std::abs(b.relative);
  });

  std::cout << "\nattribution (per-benchmark counter deltas, largest "
               "relative change first):\n";
  table t({"benchmark", "counter", "baseline", "current", "delta"});
  constexpr std::size_t max_rows = 25;
  for (std::size_t i = 0; i < deltas.size() && i < max_rows; ++i) {
    const delta& d = deltas[i];
    std::string rendered;
    if (std::isinf(d.relative))
      rendered = "new";
    else
      rendered = (d.relative >= 0.0 ? "+" : "") + cell(100.0 * d.relative, 1) +
                 "%";
    t.add_row({d.bench, d.counter, json_number(d.baseline),
               json_number(d.current), rendered});
  }
  t.print(std::cout);
  if (deltas.size() > max_rows)
    std::cout << "(" << deltas.size() - max_rows
              << " smaller delta(s) not shown)\n";

  const auto worst =
      std::max_element(deltas.begin(), deltas.end(),
                       [](const delta& a, const delta& b) {
                         const double ra = std::isinf(a.relative) ? -1.0 : a.relative;
                         const double rb = std::isinf(b.relative) ? -1.0 : b.relative;
                         return ra < rb;
                       });
  if (worst != deltas.end() && worst->relative > 0.0 &&
      !std::isinf(worst->relative))
    std::cout << "top regression: " << worst->bench << "/" << worst->counter
              << " (+" << cell(100.0 * worst->relative, 1) << "%)\n";
  else
    std::cout << "top regression: none\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> files;
  double threshold = 0.25;
  std::string metric = "real_time";
  bool report_only = false;
  bool attribute = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> const std::string& {
      if (++i >= args.size()) usage(a + " needs a value");
      return args[i];
    };
    if (a == "--threshold") {
      try {
        threshold = std::stod(value());
      } catch (const std::exception&) {
        usage("--threshold expects a number");
      }
      if (threshold <= 0.0) usage("--threshold must be positive");
    } else if (a == "--metric") {
      metric = value();
      if (metric != "real_time" && metric != "cpu_time")
        usage("--metric must be real_time or cpu_time");
    } else if (a == "--report-only") {
      report_only = true;
    } else if (a == "--attribute") {
      attribute = true;
    } else if (!a.empty() && a[0] == '-') {
      usage("unknown option " + a);
    } else {
      files.push_back(a);
    }
  }
  if (files.size() != 2) usage("need exactly two JSON files");

  try {
    const std::map<std::string, double> baseline =
        load_times(files[0], metric, /*require_benchmarks=*/!attribute);
    const std::map<std::string, double> current =
        load_times(files[1], metric, /*require_benchmarks=*/!attribute);

    table t({"benchmark", "baseline", "current", "ratio", "verdict"});
    int regressions = 0;
    int improvements = 0;
    int compared = 0;
    for (const auto& [name, base_time] : baseline) {
      const auto it = current.find(name);
      if (it == current.end()) {
        t.add_row({name, json_number(base_time), "-", "-", "missing"});
        continue;
      }
      ++compared;
      const double ratio = base_time > 0.0 ? it->second / base_time : 1.0;
      std::string verdict = "ok";
      if (ratio > 1.0 + threshold) {
        verdict = "REGRESSION";
        ++regressions;
      } else if (ratio < 1.0 - threshold) {
        verdict = "improved";
        ++improvements;
      }
      t.add_row({name, json_number(base_time), json_number(it->second),
                 cell(ratio, 3), verdict});
    }
    for (const auto& [name, time] : current)
      if (!baseline.contains(name))
        t.add_row({name, "-", json_number(time), "-", "new"});
    t.print(std::cout);

    std::cout << "\ncompared " << compared << " benchmark(s): " << regressions
              << " regression(s), " << improvements << " improvement(s), "
              << "threshold +" << static_cast<int>(threshold * 100) << "%\n";
    if (attribute) print_attribution(files[0], files[1]);
    if (regressions > 0 && report_only)
      std::cout << "report-only: not failing the run\n";
    return regressions > 0 && !report_only ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
