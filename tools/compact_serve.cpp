// compact-serve — persistent synthesis/lint daemon over the facade v5
// request/response schema (JSON lines; see docs/serving.md).
//
//   compact-serve [options]                 serve stdin -> stdout
//   compact-serve --socket /tmp/c.sock      serve a unix-domain socket
//
// Every request line is a request_v1, every output line a response_v1
// (completion order; correlate by id). Requests shard across a thread pool
// and share one process-wide labeling + partition cache, so a corpus with
// repeated structure gets cheaper as the daemon warms up.
//
// options:
//   --socket PATH          listen on a unix-domain socket instead of stdin
//   --threads N            pool workers (default 1)
//   --queue-limit N        max requests in flight before answering
//                          `overload` (default 0 = unbounded)
//   --default-deadline S   deadline for requests that carry none
//   --cache-limit BYTES    combined label+partition cache budget (K/M/G
//                          suffixes; default 0 = unbounded); eviction keeps
//                          results byte-identical, only slower
//   --max-requests N       exit after consuming N requests (smoke tests)
//   --metrics-json FILE    dump the full metrics registry on exit
//   --summary-json FILE    write a serving summary on exit: request counts,
//                          designs/sec, p50/p90/p99 latency, cache stats
//   --quiet                suppress the stderr startup/shutdown banner
//
// Exit codes: 0 clean shutdown, 1 fatal setup error, 2 usage.
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/compact_api.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "util/memtrack.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/telemetry.hpp"

namespace {

using namespace compact;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

[[noreturn]] void usage(const std::string& message = {}) {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr << "usage: compact-serve [--socket PATH] [--threads N]\n"
               "           [--queue-limit N] [--default-deadline S]\n"
               "           [--cache-limit BYTES] [--max-requests N]\n"
               "           [--metrics-json F] [--summary-json F] [--quiet]\n";
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& flag, const std::string& text,
                        std::uint64_t multiplier = 1) {
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(text, &consumed);
    if (consumed == text.size())
      return static_cast<std::uint64_t>(value) * multiplier;
  } catch (const std::exception&) {
  }
  usage(flag + " expects a non-negative integer, got '" + text + "'");
}

std::uint64_t parse_bytes(const std::string& flag, const std::string& text) {
  std::string digits = text;
  std::uint64_t multiplier = 1;
  if (!digits.empty()) {
    switch (digits.back()) {
      case 'k': case 'K': multiplier = 1024ULL; break;
      case 'm': case 'M': multiplier = 1024ULL * 1024; break;
      case 'g': case 'G': multiplier = 1024ULL * 1024 * 1024; break;
      default: break;
    }
    if (multiplier != 1) digits.pop_back();
  }
  return parse_u64(flag, digits, multiplier);
}

void cache_summary(std::ostream& out, const char* name,
                   const api::cache_stats_v1& c) {
  out << "    \"" << name << "\": {\"hits\":" << c.hits
      << ",\"misses\":" << c.misses << ",\"entries\":" << c.entries
      << ",\"evictions\":" << c.evictions
      << ",\"content_bytes\":" << c.content_bytes << "}";
}

/// Serving summary: counts, throughput, and latency quantiles from the
/// serve.latency_seconds histogram. Plain JSON, one object.
void write_summary(std::ostream& out, const serve::server& s,
                   const api::service_stats_v1& service, double elapsed,
                   std::size_t consumed) {
  const serve::server_stats st = s.stats();
  auto& latency = global_metrics().histogram("serve.latency_seconds", {});
  out << "{\n"
      << "  \"requests_consumed\": " << consumed << ",\n"
      << "  \"submitted\": " << st.submitted << ",\n"
      << "  \"completed\": " << st.completed << ",\n"
      << "  \"succeeded\": " << st.succeeded << ",\n"
      << "  \"failed\": " << st.failed << ",\n"
      << "  \"overloaded\": " << st.overloaded << ",\n"
      << "  \"shed\": " << st.shed << ",\n"
      << "  \"designs\": " << st.designs << ",\n"
      << "  \"elapsed_seconds\": " << json_number(elapsed) << ",\n"
      << "  \"designs_per_second\": "
      << json_number(elapsed > 0.0 ? static_cast<double>(st.designs) / elapsed
                                   : 0.0)
      << ",\n"
      << "  \"latency_seconds\": {\"count\": " << latency.count()
      << ", \"p50\": " << json_number(latency.quantile(0.50))
      << ", \"p90\": " << json_number(latency.quantile(0.90))
      << ", \"p99\": " << json_number(latency.quantile(0.99)) << "},\n"
      << "  \"caches\": {\n";
  cache_summary(out, "labeling", service.label_cache);
  out << ",\n";
  cache_summary(out, "partition", service.partition_cache);
  out << "\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  std::optional<std::string> socket_path;
  std::optional<std::string> metrics_path;
  std::optional<std::string> summary_path;
  std::size_t max_requests = 0;
  bool quiet = false;
  serve::server_options options;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> const std::string& {
      if (++i >= args.size()) usage(a + " needs a value");
      return args[i];
    };
    if (a == "--socket") {
      socket_path = value();
    } else if (a == "--threads") {
      options.threads = static_cast<int>(parse_u64(a, value()));
      if (options.threads < 1) usage("--threads must be positive");
    } else if (a == "--queue-limit") {
      options.queue_limit = parse_u64(a, value());
    } else if (a == "--default-deadline") {
      try {
        options.default_deadline_seconds = std::stod(value());
      } catch (const std::exception&) {
        usage("--default-deadline expects a number");
      }
    } else if (a == "--cache-limit") {
      options.service.cache_memory_limit_bytes = parse_bytes(a, value());
    } else if (a == "--max-requests") {
      max_requests = parse_u64(a, value());
    } else if (a == "--metrics-json") {
      metrics_path = value();
    } else if (a == "--summary-json") {
      summary_path = value();
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      usage("unknown option " + a);
    }
  }

  // The daemon always observes itself: latency histograms, cache hit rates,
  // and the mem.* gauges that the cache budget is enforced against.
  set_metrics_enabled(true);
  set_memtrack_enabled(true);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  try {
    serve::server s(options);
    const stopwatch clock;
    if (!quiet)
      std::cerr << "compact-serve: api v" << api::api_version() << ", "
                << options.threads << " thread(s), "
                << (socket_path ? "socket " + *socket_path : "stdin") << "\n";

    std::size_t consumed = 0;
    if (socket_path) {
      serve::socket_options sock;
      sock.path = *socket_path;
      sock.max_requests = max_requests;
      consumed = serve::serve_unix(s, sock, &g_stop);
    } else {
      consumed = serve::run_stream(s, std::cin, std::cout, max_requests);
    }
    const double elapsed = clock.seconds();

    const api::service_stats_v1 service = s.service().stats();
    if (summary_path) {
      std::ofstream out(*summary_path);
      if (!out) throw api::error("cannot write " + *summary_path);
      write_summary(out, s, service, elapsed, consumed);
    }
    if (metrics_path) {
      publish_memtrack_metrics();
      std::ofstream out(*metrics_path);
      if (!out) throw api::error("cannot write " + *metrics_path);
      global_metrics().write_json(out);
      out << '\n';
    }
    if (!quiet) {
      const serve::server_stats st = s.stats();
      std::cerr << "compact-serve: " << consumed << " request(s), "
                << st.succeeded << " ok, " << st.failed << " failed, "
                << st.overloaded << " overloaded, label cache "
                << service.label_cache.hits << "/"
                << (service.label_cache.hits + service.label_cache.misses)
                << " hit(s) in " << elapsed << "s\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "compact-serve: fatal: " << e.what() << "\n";
    return 1;
  }
}
