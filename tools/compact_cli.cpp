// compact_cli — command-line front door to the COMPACT flow.
//
//   compact_cli info <netlist>                     network & BDD statistics
//   compact_cli synthesize <netlist> [options]     netlist -> crossbar
//   compact_cli evaluate <design.xbar> <bits>      program + sense a design
//   compact_cli validate <design.xbar> <netlist>   check design vs netlist
//   compact_cli margins <design.xbar> --inputs N   analog sensing margins
//
// Netlist formats are chosen by extension: .blif, .pla, .v / .verilog.
// synthesize options:
//   --method oct|mip       labeling engine (default mip)
//   --gamma G              weighted objective (default 0.5)
//   --time-limit S         solver budget in seconds (default 60)
//   --max-rows N           hard row budget (Section III)
//   --max-cols N           hard column budget
//   --partition            split across multiple arrays instead of failing
//                          when the budgets are exceeded
//   --separate-robdds      prior multi-output strategy instead of one SBDD
//   --baseline             staircase mapping of [16] instead of COMPACT
//   --threads N            worker threads for parallel stages (default 1)
//   --out FILE.xbar        save the design
//   --dot FILE.dot         dump the shared BDD as graphviz
//   --trace-json FILE      per-stage telemetry as JSON lines
//   --metrics-json FILE    dump the metrics registry as JSON after the run
//                          (memory gauges mem.* included)
//   --chrome-trace FILE    span timeline in Chrome trace-event format
//   --mem-limit BYTES      hard memory budget (K/M/G suffixes accepted);
//                          a breach exits with code 4
//   --deadline S           hard wall-clock budget in seconds; exceeding it
//                          exits with code 4
//   --flight-record FILE   write a postmortem JSON artifact (recent events,
//                          memory accounts, metrics) if the run fails
//   --print                pretty-print the crossbar
//   --validate             digital validity check before reporting
//
// `compact_cli stats <netlist> [synthesize options]` runs the same flow with
// the metrics registry and memory accounting enabled and prints both as
// tables afterwards.
//
// Exit codes: 0 success, 1 error / dirty verification, 2 usage,
// 3 infeasible budgets, 4 resource limit (memory or deadline) exceeded.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analog/margins.hpp"
#include "api/compact_api.hpp"
#include "baseline/staircase.hpp"
#include "bdd/dot.hpp"
#include "bdd/stats.hpp"
#include "core/compact.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "frontend/blif.hpp"
#include "frontend/equivalence.hpp"
#include "frontend/minimize.hpp"
#include "frontend/pla.hpp"
#include "frontend/to_bdd.hpp"
#include "frontend/verilog.hpp"
#include "util/flight_recorder.hpp"
#include "util/json.hpp"
#include "util/memtrack.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"
#include "util/trace.hpp"
#include "verify/analyzer.hpp"
#include "verify/extract.hpp"
#include "verify/mutate.hpp"
#include "verify/pass.hpp"
#include "xbar/evaluate.hpp"
#include "xbar/serialize.hpp"
#include "xbar/validate.hpp"

namespace {

using namespace compact;

[[noreturn]] void usage(const std::string& message = {}) {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr <<
      "usage:\n"
      "  compact_cli info <netlist>\n"
      "  compact_cli synthesize <netlist> [--method oct|mip] [--gamma G]\n"
      "      [--time-limit S] [--max-rows N] [--max-cols N] [--partition]\n"
      "      [--threads N] [--order none|sift|exhaustive] [--minimize]\n"
      "      [--separate-robdds] [--baseline] [--out F.xbar] [--dot F.dot]\n"
      "      [--trace-json F.jsonl] [--metrics-json F.json]\n"
      "      [--chrome-trace F.json] [--mem-limit BYTES] [--deadline S]\n"
      "      [--flight-record F.json] [--print] [--validate] [--verify]\n"
      "      [--verify-electrical]\n"
      "  compact_cli stats <netlist> [synthesize options]\n"
      "  compact_cli evaluate <design.xbar> <assignment-bits>\n"
      "  compact_cli validate <design.xbar> <netlist> [--samples N]\n"
      "      [--threads N] [--symbolic]\n"
      "  compact_cli equiv <netlist-a> <netlist-b>\n"
      "  compact_cli margins <design.xbar> --inputs N\n"
      "  compact_cli lint <netlist> [--method oct|mip] [--gamma G]\n"
      "      [--time-limit S] [--threads N] [--sarif F.sarif] [--json F]\n"
      "      [--fail-on note|warning|error] [--no-equivalence]\n"
      "      [--electrical] [--margin-threshold R] [--criticality]\n"
      "      [--criticality-json F] [--criticality-limit N]\n"
      "      [--self-test] [--mutations N]\n"
      "  compact_cli lint <design.xbar> <netlist> [lint options]\n"
      "  compact_cli version [--expect N]\n";
  std::exit(2);
}

// Checked numeric flag parsing: a malformed value is a usage error, never an
// uncaught std::invalid_argument / std::out_of_range crash.
int parse_int_flag(const std::string& flag, const std::string& text) {
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(text, &consumed);
    if (consumed == text.size()) return value;
  } catch (const std::exception&) {
  }
  usage(flag + " expects an integer, got '" + text + "'");
}

double parse_double_flag(const std::string& flag, const std::string& text) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed == text.size()) return value;
  } catch (const std::exception&) {
  }
  usage(flag + " expects a number, got '" + text + "'");
}

int parse_positive_flag(const std::string& flag, const std::string& text) {
  const int value = parse_int_flag(flag, text);
  if (value <= 0) usage(flag + " must be positive, got " + text);
  return value;
}

/// Byte quantity with an optional K / M / G suffix (powers of 1024, case
/// insensitive): "64M" = 67108864. Used by --mem-limit.
std::uint64_t parse_bytes_flag(const std::string& flag,
                               const std::string& text) {
  std::string digits = text;
  std::uint64_t multiplier = 1;
  if (!digits.empty()) {
    switch (digits.back()) {
      case 'k': case 'K': multiplier = 1024ULL; break;
      case 'm': case 'M': multiplier = 1024ULL * 1024; break;
      case 'g': case 'G': multiplier = 1024ULL * 1024 * 1024; break;
      default: break;
    }
    if (multiplier != 1) digits.pop_back();
  }
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(digits, &consumed);
    if (consumed == digits.size() && !digits.empty() && value > 0)
      return static_cast<std::uint64_t>(value) * multiplier;
  } catch (const std::exception&) {
  }
  usage(flag + " expects a positive byte count (K/M/G suffix ok), got '" +
        text + "'");
}

frontend::network load_netlist(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw error("cannot open " + path);
  if (path.ends_with(".blif")) return frontend::parse_blif(file);
  if (path.ends_with(".pla")) return frontend::parse_pla(file);
  if (path.ends_with(".v") || path.ends_with(".verilog"))
    return frontend::parse_verilog(file);
  throw error("unknown netlist extension (want .blif, .pla or .v): " + path);
}

xbar::loaded_design load_design(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw error("cannot open " + path);
  return xbar::read_design(file);
}

/// Version-tolerant loader: accepts both the single-array `xbar 1` format
/// and the multi-array `xbar 2` format (evaluate / validate / lint). The
/// commands that only model one array (margins) keep using load_design.
xbar::loaded_partitioned_design load_partitioned(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw error("cannot open " + path);
  return xbar::read_partitioned_design(file);
}

void print_lint_report(const verify::report& r, std::ostream& os);

std::vector<std::string> input_names(const frontend::network& net) {
  std::vector<std::string> names;
  for (int i : net.inputs()) names.push_back(net.node(i).name);
  return names;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.empty()) usage("info needs a netlist");
  const frontend::network net = load_netlist(args[0]);
  bdd::manager m(net.input_count());
  const frontend::sbdd built = frontend::build_sbdd(net, m);
  const bdd::reachable_set r = bdd::collect_reachable(m, built.roots);

  table t({"metric", "value"});
  t.add_row({"model", net.name()});
  t.add_row({"inputs", cell(net.input_count())});
  t.add_row({"outputs", cell(net.outputs().size())});
  t.add_row({"network nodes", cell(net.node_count())});
  t.add_row({"SBDD nodes", cell(r.nodes.size())});
  t.add_row({"SBDD internal nodes", cell(r.internal_count)});
  t.add_row({"SBDD edges", cell(r.edge_count)});
  t.print(std::cout);
  return 0;
}

/// Render the global metrics registry as a three-column table. Values are
/// read back through the registry's own JSON dump so the table and the
/// --metrics-json file can never disagree.
void print_metrics_table(std::ostream& os) {
  std::ostringstream raw;
  global_metrics().write_json(raw);
  const json::value_ptr doc = json::parse(raw.str());
  table t({"metric", "kind", "value"});
  for (const auto& [name, kind] : global_metrics().names()) {
    const json::value* v = doc->find(name);
    if (v == nullptr) continue;
    std::string rendered;
    if (kind == "counter" || kind == "gauge") {
      rendered = json_number(v->as_number());
    } else if (kind == "histogram") {
      rendered = "count=" + json_number(v->at("count").as_number()) +
                 " p50=" + json_number(v->at("p50").as_number()) +
                 " p99=" + json_number(v->at("p99").as_number());
    } else {  // series
      const auto& points = v->at("points").as_array();
      rendered = "points=" + std::to_string(points.size());
      if (!points.empty()) {
        const auto& last = points.back()->as_array();
        rendered += " last=" + json_number(last[1]->as_number());
      }
    }
    t.add_row({name, kind, rendered});
  }
  t.print(os);
}

/// Memory-account gauges (`compact_cli stats`): live / peak bytes per
/// account plus the process totals the watchdog compares against its limit.
void print_memory_table(std::ostream& os) {
  table t({"memory account", "live bytes", "peak bytes"});
  for (const mem_account* account : memtrack_accounts())
    t.add_row({account->name(), cell(static_cast<std::size_t>(account->live())),
               cell(static_cast<std::size_t>(account->peak()))});
  t.add_row({"process",
             cell(static_cast<std::size_t>(memtrack_process_live())),
             cell(static_cast<std::size_t>(memtrack_process_peak()))});
  t.print(os);
}

/// One-line flight-recorder status (`compact_cli stats`).
void print_flight_status(std::ostream& os) {
  if (!flight_recorder_enabled()) {
    os << "flight recorder: disabled\n";
    return;
  }
  os << "flight recorder: enabled, " << flight_recorded_count()
     << " event(s) recorded (capacity " << flight_recorder_capacity() << ")";
  const std::string path = flight_record_path();
  if (!path.empty()) os << ", postmortem -> " << path;
  os << "\n";
}

/// Writes the --metrics-json / --chrome-trace artifacts when the scope ends,
/// so they appear on *every* exit path out of cmd_synthesize — including
/// thrown errors, where the partial timeline is exactly what one wants to
/// inspect. Write failures warn on stderr; a dump must never mask the
/// original error with an exception from a destructor.
struct observability_dump {
  std::optional<std::string> metrics_path;
  std::optional<std::string> chrome_path;
  ~observability_dump() {
    try {
      if (metrics_path) {
        // Fold the final memory-account values into the registry so the
        // mem.* gauges in the JSON reflect end-of-run state, not the last
        // stage boundary.
        publish_memtrack_metrics();
        std::ofstream out(*metrics_path);
        if (out) {
          global_metrics().write_json(out);
          out << '\n';
        } else {
          std::cerr << "warning: cannot write " << *metrics_path << "\n";
        }
      }
      if (chrome_path) {
        std::ofstream out(*chrome_path);
        if (out)
          write_chrome_trace(out);
        else
          std::cerr << "warning: cannot write " << *chrome_path << "\n";
      }
    } catch (...) {
    }
  }
};

/// Transitional synthesize path. Everything the stable facade covers now
/// routes through cmd_synthesize below; this body only remains for the
/// flags that need pipeline internals (--baseline, --dot, --report) and is
/// slated to fold into the facade (see DESIGN.md, "public API").
int cmd_synthesize_legacy(const std::vector<std::string>& args) {
  if (args.empty()) usage("synthesize needs a netlist");
  const std::string netlist_path = args[0];

  core::synthesis_options options;
  bool separate = false;
  bool baseline_map = false;
  bool do_print = false;
  bool do_validate = false;
  bool do_minimize = false;
  frontend::order_effort order = frontend::order_effort::none;
  std::optional<std::string> out_path, dot_path, report_path, trace_path;
  std::optional<std::string> metrics_path, chrome_path;

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> const std::string& {
      if (++i >= args.size()) usage(a + " needs a value");
      return args[i];
    };
    if (a == "--method") {
      const std::string& v = value();
      if (v == "oct")
        options.method = core::labeling_method::minimal_semiperimeter;
      else if (v == "mip")
        options.method = core::labeling_method::weighted_mip;
      else
        usage("unknown method " + v);
    } else if (a == "--gamma") {
      options.gamma = parse_double_flag(a, value());
      if (options.gamma < 0.0 || options.gamma > 1.0)
        usage("--gamma must be in [0, 1]");
    } else if (a == "--time-limit") {
      options.time_limit_seconds = parse_double_flag(a, value());
      if (options.time_limit_seconds <= 0.0)
        usage("--time-limit must be positive");
    } else if (a == "--max-rows") {
      options.max_rows = parse_positive_flag(a, value());
    } else if (a == "--max-cols") {
      options.max_columns = parse_positive_flag(a, value());
    } else if (a == "--threads") {
      options.parallel.threads = parse_positive_flag(a, value());
    } else if (a == "--order") {
      const std::string& v = value();
      if (v == "none")
        order = frontend::order_effort::none;
      else if (v == "sift")
        order = frontend::order_effort::sift;
      else if (v == "exhaustive")
        order = frontend::order_effort::exhaustive;
      else
        usage("unknown order effort " + v);
    } else if (a == "--minimize") {
      do_minimize = true;
    } else if (a == "--partition") {
      // Partitioned synthesis lives behind the facade; the legacy detour
      // exists only for flags that need pipeline internals.
      usage("--partition cannot combine with --baseline/--dot/--report");
    } else if (a == "--separate-robdds") {
      separate = true;
    } else if (a == "--baseline") {
      baseline_map = true;
    } else if (a == "--out") {
      out_path = value();
    } else if (a == "--dot") {
      dot_path = value();
    } else if (a == "--report") {
      report_path = value();
    } else if (a == "--trace-json") {
      trace_path = value();
    } else if (a == "--metrics-json") {
      metrics_path = value();
    } else if (a == "--chrome-trace") {
      chrome_path = value();
    } else if (a == "--mem-limit") {
      options.memory_limit_bytes = parse_bytes_flag(a, value());
    } else if (a == "--deadline") {
      options.deadline_seconds = parse_double_flag(a, value());
      if (options.deadline_seconds <= 0.0)
        usage("--deadline must be positive");
    } else if (a == "--flight-record") {
      set_flight_record_path(value());
    } else if (a == "--print") {
      do_print = true;
    } else if (a == "--validate") {
      do_validate = true;
    } else if (a == "--verify") {
      // The pass body lives in the verify library; installing explicitly
      // keeps this working even if no other verify symbol is referenced.
      verify::install_pipeline_pass();
      options.verify_design = true;
    } else if (a == "--verify-electrical") {
      verify::install_pipeline_pass();
      options.verify_design = true;
      options.verify_electrical = true;
    } else {
      usage("unknown option " + a);
    }
  }

  // Enable the observers before any flow code runs; the dump guard then
  // persists whatever they saw, even when loading or synthesis throws.
  if (metrics_path) {
    set_metrics_enabled(true);
    global_metrics().reset();
    // Memory gauges ride along in the JSON dump (mem.* names).
    set_memtrack_enabled(true);
    memtrack_reset();
  }
  if (chrome_path) {
    set_trace_enabled(true);
    trace_reset();
  }
  const observability_dump dump{metrics_path, chrome_path};

  frontend::network net = load_netlist(netlist_path);
  if (do_minimize) net = frontend::minimize_network(net);
  // The separate-ROBDD flow builds per-output BDDs internally under the
  // declaration order; a permuted order would desynchronize validation.
  if (separate && order != frontend::order_effort::none) {
    std::cerr << "note: --order is ignored with --separate-robdds\n";
    order = frontend::order_effort::none;
  }
  const std::vector<int> variable_order = frontend::optimize_order(net, order);
  bdd::manager m(net.input_count());
  const frontend::sbdd built = frontend::build_sbdd(net, m, variable_order);

  if (dot_path) {
    std::ofstream dot(*dot_path);
    if (!dot) throw error("cannot write " + *dot_path);
    bdd::write_dot(m, built.roots, built.names, dot);
  }

  // The sink must outlive synthesis; one JSON object per pipeline stage.
  std::ofstream trace_file;
  std::optional<json_lines_sink> trace_sink;
  if (trace_path) {
    trace_file.open(*trace_path);
    if (!trace_file) throw error("cannot write " + *trace_path);
    trace_sink.emplace(trace_file);
    options.telemetry = &*trace_sink;
  }

  core::synthesis_result result = [&] {
    const trace_span span("synthesize", "cli");
    if (baseline_map) {
      return separate ? baseline::staircase_synthesize_network(net)
                      : baseline::staircase_synthesize(m, built.roots,
                                                       built.names);
    }
    return separate ? core::synthesize_separate_robdds(net, options)
                    : core::synthesize(m, built.roots, built.names, options);
  }();

  table t({"metric", "value"});
  t.add_row({"rows x cols",
             cell(result.stats.rows) + " x " + cell(result.stats.columns)});
  t.add_row({"semiperimeter S", cell(result.stats.semiperimeter)});
  t.add_row({"max dimension D", cell(result.stats.max_dimension)});
  t.add_row({"area", cell(result.stats.area)});
  t.add_row({"BDD graph nodes (n)", cell(result.stats.graph_nodes)});
  t.add_row({"VH labels (k)", cell(result.stats.vh_count)});
  t.add_row({"power proxy (literal devices)", cell(result.stats.power_proxy)});
  t.add_row({"delay (steps)", cell(result.stats.delay_steps)});
  t.add_row({"labeling optimal", result.stats.optimal ? "yes" : "no"});
  t.add_row({"relative gap", cell(100.0 * result.stats.relative_gap, 2) + "%"});
  t.add_row({"synthesis time (s)", cell(result.stats.synthesis_seconds, 3)});
  t.print(std::cout);

  if (result.verification.has_value()) {
    const verify::report& v = *result.verification;
    std::cout << "\nverify: " << (v.clean() ? "CLEAN" : "DIRTY") << " ("
              << v.checks_run().size() << " checks)\n";
    if (!v.clean()) {
      print_lint_report(v, std::cout);
      return 1;
    }
  }

  std::optional<xbar::validation_report> validation;
  if (do_validate || report_path) {
    // Validation runs in BDD-variable space (the space the design was
    // synthesized in), before any remapping.
    xbar::validation_options validation_options;
    validation_options.parallel = options.parallel;
    validation = xbar::validate_against_bdd(
        result.design, m, built.roots, built.names, net.input_count(),
        validation_options);
    if (do_validate) {
      std::cout << "\nvalidity: " << (validation->valid ? "PASS" : "FAIL")
                << " (" << validation->checked_assignments
                << " assignments)\n";
      if (!validation->valid) {
        std::cout << validation->first_failure << "\n";
        return 1;
      }
    }
  }
  if (report_path) {
    std::ofstream report_file(*report_path);
    if (!report_file) throw error("cannot write " + *report_path);
    core::report_inputs inputs;
    inputs.circuit_name = net.name();
    inputs.result = &result;
    inputs.validation = validation ? &*validation : nullptr;
    core::write_report(inputs, report_file);
    std::cout << "\nwrote " << *report_path << "\n";
  }

  // Express device literals in declared-input numbering so `evaluate`
  // assignments read naturally (level l tested input variable_order[l]).
  if (!separate && !variable_order.empty()) {
    bool identity = true;
    for (std::size_t l = 0; l < variable_order.size(); ++l)
      if (variable_order[l] != static_cast<int>(l)) identity = false;
    if (!identity)
      result.design = xbar::remap_variables(result.design, variable_order);
  }

  if (do_print) {
    std::cout << '\n';
    result.design.print(std::cout, input_names(net));
  }
  if (out_path) {
    std::ofstream out(*out_path);
    if (!out) throw error("cannot write " + *out_path);
    xbar::write_design(result.design, out, input_names(net));
    std::cout << "\nwrote " << *out_path << "\n";
  }
  return 0;
}

/// Render one facade diagnostic in the same shape print_lint_report uses.
void print_diagnostic(const api::diagnostic_v1& d, std::ostream& os) {
  os << d.check << ' ' << d.severity << ": " << d.message;
  if (!d.anchors.empty()) {
    os << " [";
    for (std::size_t i = 0; i < d.anchors.size(); ++i) {
      if (i != 0) os << ", ";
      os << d.anchors[i];
    }
    os << "]";
  }
  os << "\n";
  if (!d.fix.empty()) os << "  fix: " << d.fix << "\n";
}

/// Translate a failed facade response into the CLI's historical stderr text
/// and exit codes (3 infeasible, 4 resource limit / deadline, 1 everything
/// else). Returns nullopt when the response succeeded.
std::optional<int> report_failure(const api::response_v1& resp) {
  if (resp.ok) return std::nullopt;
  switch (resp.code) {
    case api::error_code_v1::infeasible:
      std::cerr << "infeasible: " << resp.error_message << "\n";
      return 3;
    case api::error_code_v1::resource_limit:
      std::cerr << "resource limit (memory): " << resp.error_message << "\n";
      return 4;
    case api::error_code_v1::deadline_exceeded:
      std::cerr << "resource limit (deadline): " << resp.error_message << "\n";
      return 4;
    case api::error_code_v1::version_mismatch:
      // Structured skew report: the same JSON a served response carries, so
      // scripts can parse the error instead of scraping prose.
      std::cerr << "version mismatch: " << resp.error_message << "\n"
                << api::to_json(resp) << "\n";
      return 1;
    default:
      std::cerr << "error: " << resp.error_message << "\n";
      return 1;
  }
}

/// `compact_cli synthesize` — netlist in, crossbar out, through the stable
/// compact::api facade (a request_v1 handled in process, exactly what
/// compact-serve executes for the same JSON). Only --baseline / --dot /
/// --report still detour into the transitional legacy path (they need
/// pipeline internals the facade deliberately does not expose).
int cmd_synthesize(const std::vector<std::string>& args) {
  if (args.empty()) usage("synthesize needs a netlist");
  for (const std::string& a : args)
    if (a == "--baseline" || a == "--dot" || a == "--report" ||
        a == "--verify-electrical")
      return cmd_synthesize_legacy(args);

  api::netlist_source source;
  source.path = args[0];
  api::synthesis_options_v1 options;
  bool do_print = false;
  std::optional<std::string> out_path;
  std::optional<std::string> metrics_path, chrome_path;

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> const std::string& {
      if (++i >= args.size()) usage(a + " needs a value");
      return args[i];
    };
    if (a == "--method") {
      const std::string& v = value();
      if (v != "oct" && v != "mip") usage("unknown method " + v);
      options.labeler = v;
    } else if (a == "--gamma") {
      options.gamma = parse_double_flag(a, value());
      if (options.gamma < 0.0 || options.gamma > 1.0)
        usage("--gamma must be in [0, 1]");
    } else if (a == "--time-limit") {
      options.time_limit_seconds = parse_double_flag(a, value());
      if (options.time_limit_seconds <= 0.0)
        usage("--time-limit must be positive");
    } else if (a == "--max-rows") {
      options.max_rows = parse_positive_flag(a, value());
    } else if (a == "--max-cols") {
      options.max_columns = parse_positive_flag(a, value());
    } else if (a == "--partition") {
      options.partition = true;
    } else if (a == "--threads") {
      options.threads = parse_positive_flag(a, value());
    } else if (a == "--order") {
      const std::string& v = value();
      if (v != "none" && v != "sift" && v != "exhaustive")
        usage("unknown order effort " + v);
      options.variable_order = v;
    } else if (a == "--minimize") {
      options.minimize_network = true;
    } else if (a == "--separate-robdds") {
      options.separate_robdds = true;
    } else if (a == "--out") {
      out_path = value();
    } else if (a == "--trace-json") {
      options.trace_json_path = value();
    } else if (a == "--metrics-json") {
      metrics_path = value();
    } else if (a == "--chrome-trace") {
      chrome_path = value();
    } else if (a == "--mem-limit") {
      options.memory_limit_bytes = parse_bytes_flag(a, value());
    } else if (a == "--deadline") {
      options.deadline_seconds = parse_double_flag(a, value());
      if (options.deadline_seconds <= 0.0)
        usage("--deadline must be positive");
    } else if (a == "--flight-record") {
      options.flight_record_path = value();
    } else if (a == "--print") {
      do_print = true;
    } else if (a == "--validate") {
      options.validate = true;
    } else if (a == "--verify") {
      options.verify = true;
    } else {
      usage("unknown option " + a);
    }
  }
  if (options.separate_robdds && options.variable_order != "none") {
    std::cerr << "note: --order is ignored with --separate-robdds\n";
    options.variable_order = "none";
  }

  // Enable the observers before any flow code runs; the dump guard then
  // persists whatever they saw, even when loading or synthesis throws.
  if (metrics_path) {
    set_metrics_enabled(true);
    global_metrics().reset();
    // Memory gauges ride along in the JSON dump (mem.* names).
    set_memtrack_enabled(true);
    memtrack_reset();
  }
  if (chrome_path) {
    set_trace_enabled(true);
    trace_reset();
  }
  const observability_dump dump{metrics_path, chrome_path};

  api::request_v1 request;
  request.op = "synthesize";
  request.api_version = COMPACT_API_VERSION;
  request.source = source;
  request.synthesis = options;
  const api::response_v1 resp = api::handle(request);
  if (const std::optional<int> rc = report_failure(resp)) return *rc;
  const api::synthesis_stats_v1& s = resp.stats;

  table t({"metric", "value"});
  if (s.arrays > 1) {
    // Partition-aware cost report: rows x cols is the largest fragment, and
    // the inter-array accounting (Section: partitioning) joins the table.
    t.add_row({"arrays used", cell(s.arrays)});
    t.add_row({"largest array (rows x cols)",
               cell(s.rows) + " x " + cell(s.columns)});
    t.add_row({"total semiperimeter", cell(s.total_semiperimeter)});
    t.add_row({"cut size (SBDD edges)", cell(s.cut_edges)});
    t.add_row({"bridge connections", cell(s.bridge_connections)});
  } else {
    t.add_row({"rows x cols", cell(s.rows) + " x " + cell(s.columns)});
    t.add_row({"semiperimeter S", cell(s.semiperimeter)});
  }
  t.add_row({"max dimension D", cell(s.max_dimension)});
  t.add_row({"area", cell(s.area)});
  t.add_row({"BDD graph nodes (n)", cell(s.graph_nodes)});
  t.add_row({"VH labels (k)", cell(s.vh_count)});
  t.add_row({"power proxy (literal devices)", cell(s.power_proxy)});
  t.add_row({"delay (steps)", cell(s.delay_steps)});
  t.add_row({"labeling optimal", s.optimal ? "yes" : "no"});
  t.add_row({"relative gap", cell(100.0 * s.relative_gap, 2) + "%"});
  t.add_row({"synthesis time (s)", cell(s.synthesis_seconds, 3)});
  t.print(std::cout);

  if (resp.verification.ran) {
    std::cout << "\nverify: " << (resp.verification.passed ? "CLEAN" : "DIRTY")
              << " (" << resp.verification.detail << ")\n";
    if (!resp.verification.passed) {
      for (const api::diagnostic_v1& d : resp.diagnostics)
        print_diagnostic(d, std::cout);
      return 1;
    }
  }
  if (resp.validation.ran) {
    std::cout << "\nvalidity: " << (resp.validation.passed ? "PASS" : "FAIL")
              << " (" << resp.validation.detail << ")\n";
    if (!resp.validation.passed) return 1;
  }

  if (do_print)
    std::cout << '\n' << api::design::from_text(resp.design_text).render();
  if (out_path) {
    std::ofstream out(*out_path);
    if (!out) throw error("cannot write " + *out_path);
    out << resp.design_text;
    std::cout << "\nwrote " << *out_path << "\n";
  }
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  if (args.empty()) usage("stats needs a netlist");
  // Same flow and flags as synthesize, with the registry and memory
  // accounting force-enabled; afterwards every counter the run touched
  // prints as a table, followed by the memory accounts and the
  // flight-recorder status.
  set_metrics_enabled(true);
  global_metrics().reset();
  set_memtrack_enabled(true);
  memtrack_reset();
  const int rc = cmd_synthesize(args);
  publish_memtrack_metrics();
  std::cout << "\n";
  print_metrics_table(std::cout);
  std::cout << "\n";
  print_memory_table(std::cout);
  std::cout << "\n";
  print_flight_status(std::cout);
  return rc;
}

int cmd_equiv(const std::vector<std::string>& args) {
  if (args.size() < 2) usage("equiv needs two netlists");
  const frontend::network a = load_netlist(args[0]);
  const frontend::network b = load_netlist(args[1]);
  const frontend::equivalence_report report =
      frontend::check_equivalence(a, b);
  if (report.equivalent) {
    std::cout << "EQUIVALENT\n";
    return 0;
  }
  std::cout << "NOT EQUIVALENT\n";
  for (const std::string& m : report.mismatches)
    std::cout << "  mismatch: " << m << "\n";
  if (!report.counterexample.empty()) {
    std::cout << "  counterexample:";
    for (bool v : report.counterexample) std::cout << ' ' << (v ? 1 : 0);
    std::cout << "\n";
  }
  return 1;
}

int cmd_evaluate(const std::vector<std::string>& args) {
  if (args.size() < 2) usage("evaluate needs a design and assignment bits");
  const xbar::loaded_partitioned_design loaded = load_partitioned(args[0]);
  const std::string& bits = args[1];
  std::vector<bool> assignment;
  for (char c : bits) {
    if (c != '0' && c != '1') usage("assignment must be a 0/1 string");
    assignment.push_back(c == '1');
  }
  const std::vector<bool> out = xbar::evaluate(loaded.design, assignment);
  const std::vector<std::string> names = loaded.design.output_names();
  for (std::size_t index = 0; index < names.size(); ++index)
    std::cout << names[index] << " = " << (out[index] ? 1 : 0) << "\n";
  return 0;
}

int cmd_validate(const std::vector<std::string>& args) {
  if (args.size() < 2) usage("validate needs a design and a netlist");
  const xbar::loaded_partitioned_design loaded = load_partitioned(args[0]);
  const frontend::network net = load_netlist(args[1]);
  xbar::validation_options options;
  bool symbolic = false;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--samples" && i + 1 < args.size())
      options.samples = parse_positive_flag("--samples", args[++i]);
    else if (args[i] == "--threads" && i + 1 < args.size())
      options.parallel.threads = parse_positive_flag("--threads", args[++i]);
    else if (args[i] == "--symbolic")
      symbolic = true;
    else
      usage("unknown option " + args[i]);
  }
  // Single-array documents (format 1, or a degenerate format 2) validate
  // through the plain crossbar checkers; real multi-array designs route to
  // the stitched overloads, which merge bridged wires into one net.
  const bool multi =
      loaded.design.array_count() > 1 || !loaded.design.connections().empty();
  bdd::manager m(net.input_count());
  const frontend::sbdd built = frontend::build_sbdd(net, m);
  if (symbolic || net.input_count() > xbar::max_exhaustive_variables) {
    // Wide supports route to symbolic equivalence: exact at any width, no
    // assignment enumeration at all.
    const verify::equivalence_report eq =
        multi ? verify::check_partitioned_equivalence(loaded.design, m,
                                                      built.roots, built.names)
              : verify::check_symbolic_equivalence(loaded.design.fragment(0),
                                                   m, built.roots, built.names);
    std::cout << (eq.equivalent ? "PASS" : "FAIL") << " (symbolic, "
              << eq.fixpoint_iterations << " fixpoint iterations)\n";
    for (const verify::output_equivalence& o : eq.outputs) {
      if (o.found && o.equivalent) continue;
      std::cout << "output '" << o.name << "' "
                << (o.found ? "differs from its specification" : "is missing");
      if (!o.counterexample.empty()) {
        std::cout << " under assignment ";
        for (const bool b : o.counterexample) std::cout << (b ? '1' : '0');
      }
      std::cout << "\n";
    }
    return eq.equivalent ? 0 : 1;
  }
  const xbar::validation_report report =
      multi ? xbar::validate_against_bdd(loaded.design, m, built.roots,
                                         built.names, net.input_count(),
                                         options)
            : xbar::validate_against_bdd(loaded.design.fragment(0), m,
                                         built.roots, built.names,
                                         net.input_count(), options);
  std::cout << (report.valid ? "PASS" : "FAIL") << " ("
            << report.checked_assignments << " assignments, "
            << (report.exhaustive ? "exhaustive" : "sampled") << ")\n";
  if (!report.valid) std::cout << report.first_failure << "\n";
  return report.valid ? 0 : 1;
}

void print_lint_report(const verify::report& r, std::ostream& os) {
  for (const verify::diagnostic& d : r.diagnostics()) {
    os << d.check_id << ' ' << verify::severity_name(d.level) << ": "
       << d.message;
    if (!d.anchors.empty()) {
      os << " [";
      for (std::size_t i = 0; i < d.anchors.size(); ++i) {
        if (i != 0) os << ", ";
        os << verify::to_string(d.anchors[i]);
      }
      os << "]";
    }
    os << "\n";
    if (!d.fix.empty()) os << "  fix: " << d.fix << "\n";
  }
  os << r.error_count() << " error(s), " << r.warning_count()
     << " warning(s), " << r.note_count() << " note(s); "
     << r.checks_run().size() << " checks run\n";
}

/// `compact_cli lint` — run the static analyzer (src/verify) without
/// simulating a single input vector.
///
/// Two input shapes: a netlist (the full pipeline runs, so labeling /
/// mapping / structural / equivalence checks all apply) or a saved .xbar
/// plus the netlist it claims to implement (structural + symbolic
/// equivalence only). --self-test flips into the mutation-kill harness:
/// every injected corruption must be caught by some check.
/// Transitional lint path for the flags that need analyzer internals
/// (--sarif / --json report files and the mutation self-test); plain lint
/// runs route through the facade in cmd_lint below.
int cmd_lint_legacy(const std::vector<std::string>& args) {
  if (args.empty()) usage("lint needs a netlist or a design");
  const bool xbar_mode = args[0].ends_with(".xbar");
  std::size_t positional = 1;
  std::string design_path, netlist_path;
  if (xbar_mode) {
    if (args.size() < 2 || args[1].starts_with("--"))
      usage("lint <design.xbar> needs the netlist it implements");
    design_path = args[0];
    netlist_path = args[1];
    positional = 2;
  } else {
    netlist_path = args[0];
  }

  core::synthesis_options options;
  verify::analyzer_options analyzer_options;
  verify::severity fail_on = verify::severity::warning;
  bool self_test = false;
  std::size_t mutations_per_kind = 4;
  std::optional<std::string> sarif_path, json_path;
  verify::electrical_options electrical;
  bool electrical_enabled = false;
  verify::criticality_options criticality;
  bool criticality_enabled = false;
  std::optional<std::string> criticality_json_path;

  for (std::size_t i = positional; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> const std::string& {
      if (++i >= args.size()) usage(a + " needs a value");
      return args[i];
    };
    if (a == "--method") {
      const std::string& v = value();
      if (v == "oct")
        options.method = core::labeling_method::minimal_semiperimeter;
      else if (v == "mip")
        options.method = core::labeling_method::weighted_mip;
      else
        usage("unknown method " + v);
    } else if (a == "--gamma") {
      options.gamma = parse_double_flag(a, value());
    } else if (a == "--time-limit") {
      options.time_limit_seconds = parse_double_flag(a, value());
    } else if (a == "--threads") {
      options.parallel.threads = parse_positive_flag(a, value());
    } else if (a == "--sarif") {
      sarif_path = value();
    } else if (a == "--json") {
      json_path = value();
    } else if (a == "--fail-on") {
      const std::string& v = value();
      const std::optional<verify::severity> parsed =
          verify::parse_severity(v);
      if (!parsed) usage("--fail-on expects note|warning|error, got " + v);
      fail_on = *parsed;
    } else if (a == "--no-equivalence") {
      analyzer_options.equivalence = false;
    } else if (a == "--electrical") {
      electrical_enabled = true;
    } else if (a == "--margin-threshold") {
      electrical.margin_threshold = parse_double_flag(a, value());
      if (electrical.margin_threshold <= 0.0)
        usage("--margin-threshold must be positive");
      electrical_enabled = true;
    } else if (a == "--criticality") {
      criticality_enabled = true;
    } else if (a == "--criticality-json") {
      criticality_json_path = value();
      criticality_enabled = true;
    } else if (a == "--criticality-limit") {
      criticality.max_faults = parse_positive_flag(a, value());
      criticality_enabled = true;
    } else if (a == "--self-test") {
      self_test = true;
    } else if (a == "--mutations") {
      mutations_per_kind =
          static_cast<std::size_t>(parse_positive_flag(a, value()));
    } else {
      usage("unknown option " + a);
    }
  }

  const frontend::network net = load_netlist(netlist_path);
  bdd::manager m(net.input_count());
  const frontend::sbdd built = frontend::build_sbdd(net, m);

  // Assemble the artifacts: either adopt the saved design as-is, or run the
  // synthesis pipeline and keep every intermediate stage for the checks.
  // Saved designs load version-tolerantly: a multi-array document fills the
  // partitioned artifact slot (PARxxx checks + stitched equivalence), a
  // single-array one the plain design slot.
  std::optional<xbar::loaded_partitioned_design> loaded;
  core::synthesis_context ctx;
  verify::artifacts artifacts;
  if (xbar_mode) {
    loaded = load_partitioned(design_path);
    if (loaded->design.array_count() > 1 ||
        !loaded->design.connections().empty())
      artifacts.partitioned = &loaded->design;
    else
      artifacts.design = &loaded->design.fragment(0);
  } else {
    ctx.manager = &m;
    ctx.roots = &built.roots;
    ctx.names = &built.names;
    ctx.options = options;
    const core::pipeline pipeline = core::make_synthesis_pipeline(ctx.options);
    pipeline.run(ctx);
    artifacts = verify::make_artifacts(ctx);
  }
  artifacts.spec = &m;
  artifacts.spec_roots = &built.roots;
  artifacts.spec_names = &built.names;
  artifacts.variable_count = net.input_count();
  if (electrical_enabled) artifacts.electrical = &electrical;
  if (criticality_enabled) artifacts.criticality = &criticality;
  verify::analysis_cache cache;
  artifacts.cache = &cache;

  if (self_test) {
    const verify::self_test_result result =
        verify::run_self_test(artifacts, analyzer_options, mutations_per_kind);
    for (const verify::self_test_outcome& o : result.outcomes) {
      std::cout << (o.killed ? "killed  " : "SURVIVED") << "  "
                << o.m.describe();
      if (!o.triggered_checks.empty()) {
        std::cout << "  (";
        for (std::size_t i = 0; i < o.triggered_checks.size(); ++i) {
          if (i != 0) std::cout << ", ";
          std::cout << o.triggered_checks[i];
        }
        std::cout << ")";
      }
      std::cout << "\n";
    }
    std::cout << "self-test: " << result.killed << "/" << result.total
              << " mutations killed\n";
    return result.all_killed() && result.total > 0 ? 0 : 1;
  }

  const verify::report report = verify::analyze(artifacts, analyzer_options);
  print_lint_report(report, std::cout);

  if (criticality_json_path) {
    // The FLT family fills the cache when the equivalence-cost class is
    // enabled; otherwise (or when gating skipped it) run the engine
    // directly so the requested map is always written.
    verify::criticality_report crit;
    if (cache.criticality.has_value())
      crit = *cache.criticality;
    else if (artifacts.partitioned != nullptr)
      crit = verify::analyze_criticality(
          *artifacts.partitioned, artifacts.resolve_variable_count(),
          criticality);
    else if (artifacts.design != nullptr)
      crit = verify::analyze_criticality(
          *artifacts.design, artifacts.resolve_variable_count(), criticality);
    std::ofstream out(*criticality_json_path);
    if (!out) throw error("cannot write " + *criticality_json_path);
    verify::write_criticality_json(crit, out);
    std::cout << "wrote " << *criticality_json_path << "\n";
  }
  if (json_path) {
    std::ofstream out(*json_path);
    if (!out) throw error("cannot write " + *json_path);
    verify::write_json(report, out);
  }
  if (sarif_path) {
    std::ofstream out(*sarif_path);
    if (!out) throw error("cannot write " + *sarif_path);
    verify::sarif_options sarif;
    sarif.artifact_uri = xbar_mode ? design_path : netlist_path;
    sarif.rules = verify::registry_rules();
    verify::write_sarif(report, sarif, out);
    std::cout << "wrote " << *sarif_path << "\n";
  }
  return verify::lint_exit_code(report, fail_on);
}

/// `compact_cli lint` — run the static analyzer through the facade's
/// lint() entry points. Accepts a netlist (full pipeline, so labeling /
/// mapping / structural / equivalence checks all apply) or a saved .xbar
/// plus the netlist it claims to implement.
int cmd_lint(const std::vector<std::string>& args) {
  if (args.empty()) usage("lint needs a netlist or a design");
  for (const std::string& a : args)
    if (a == "--sarif" || a == "--json" || a == "--self-test" ||
        a == "--mutations" || a == "--criticality-json")
      return cmd_lint_legacy(args);

  const bool xbar_mode = args[0].ends_with(".xbar");
  std::size_t positional = 1;
  std::string design_path, netlist_path;
  if (xbar_mode) {
    if (args.size() < 2 || args[1].starts_with("--"))
      usage("lint <design.xbar> needs the netlist it implements");
    design_path = args[0];
    netlist_path = args[1];
    positional = 2;
  } else {
    netlist_path = args[0];
  }

  api::lint_options_v1 options;
  std::string fail_on = "warning";
  for (std::size_t i = positional; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> const std::string& {
      if (++i >= args.size()) usage(a + " needs a value");
      return args[i];
    };
    if (a == "--method") {
      const std::string& v = value();
      if (v != "oct" && v != "mip") usage("unknown method " + v);
      options.labeler = v;
    } else if (a == "--gamma") {
      options.gamma = parse_double_flag(a, value());
    } else if (a == "--time-limit") {
      options.time_limit_seconds = parse_double_flag(a, value());
    } else if (a == "--threads") {
      options.threads = parse_positive_flag(a, value());
    } else if (a == "--fail-on") {
      const std::string& v = value();
      if (v != "note" && v != "warning" && v != "error")
        usage("--fail-on expects note|warning|error, got " + v);
      fail_on = v;
    } else if (a == "--no-equivalence") {
      options.equivalence = false;
    } else if (a == "--electrical") {
      options.electrical = true;
    } else if (a == "--margin-threshold") {
      options.margin_threshold = parse_double_flag(a, value());
      if (options.margin_threshold <= 0.0)
        usage("--margin-threshold must be positive");
      options.electrical = true;
    } else if (a == "--criticality") {
      options.criticality = true;
    } else if (a == "--criticality-limit") {
      options.criticality_limit = parse_positive_flag(a, value());
      options.criticality = true;
    } else {
      usage("unknown option " + a);
    }
  }

  api::request_v1 request;
  request.op = "lint";
  request.api_version = COMPACT_API_VERSION;
  request.source.path = netlist_path;
  request.lint = options;
  request.fail_on = fail_on;
  if (xbar_mode) {
    std::ifstream file(design_path);
    if (!file) throw error("cannot open " + design_path);
    std::ostringstream text;
    text << file.rdbuf();
    request.design_text = text.str();
  }
  const api::response_v1 resp = api::handle(request);
  if (const std::optional<int> rc = report_failure(resp)) return *rc;

  for (const api::diagnostic_v1& d : resp.diagnostics)
    print_diagnostic(d, std::cout);
  std::cout << resp.lint_errors << " error(s), " << resp.lint_warnings
            << " warning(s), " << resp.lint_notes << " note(s)\n";
  if (resp.electrical_ran)
    std::cout << "electrical: " << (resp.electrically_safe ? "safe" : "UNSAFE")
              << " (min margin ratio " << resp.min_margin_ratio << ")\n";
  if (resp.criticality_ran)
    std::cout << "criticality: " << resp.critical_junctions << "/"
              << resp.junctions_analyzed << " junctions critical"
              << (resp.criticality_truncated ? " (truncated)" : "") << "\n";
  return resp.lint_clean ? 0 : 1;
}

/// `compact_cli version` — print the schema version this binary was compiled
/// against (COMPACT_API_VERSION) and the one the linked library implements
/// (api_version()). Skew between the two — or against --expect N — is
/// reported as the same structured version_mismatch response a served
/// request would get, and exits 1.
int cmd_version(const std::vector<std::string>& args) {
  std::optional<int> expected;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--expect" && i + 1 < args.size())
      expected = parse_positive_flag("--expect", args[++i]);
    else
      usage("unknown option " + args[i]);
  }
  std::cout << "header  COMPACT_API_VERSION " << COMPACT_API_VERSION << "\n"
            << "library api_version()       " << api::api_version() << "\n";

  const auto mismatch = [](const std::string& message) {
    api::response_v1 resp;
    resp.ok = false;
    resp.code = api::error_code_v1::version_mismatch;
    resp.error_message = message;
    std::cerr << "version mismatch: " << message << "\n"
              << api::to_json(resp) << "\n";
    return 1;
  };
  if (api::api_version() != COMPACT_API_VERSION)
    return mismatch("binary compiled against api version " +
                    std::to_string(COMPACT_API_VERSION) +
                    " but the library implements version " +
                    std::to_string(api::api_version()));
  if (expected && *expected != api::api_version())
    return mismatch("expected api version " + std::to_string(*expected) +
                    " but the library implements version " +
                    std::to_string(api::api_version()));
  std::cout << "versions agree\n";
  return 0;
}

int cmd_margins(const std::vector<std::string>& args) {
  if (args.empty()) usage("margins needs a design");
  const xbar::loaded_design loaded = load_design(args[0]);
  int inputs = -1;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--inputs" && i + 1 < args.size())
      inputs = parse_positive_flag("--inputs", args[++i]);
    else
      usage("unknown option " + args[i]);
  }
  if (inputs < 0) {
    // Infer from the largest variable index used by any device.
    for (int r = 0; r < loaded.design.rows(); ++r)
      for (int c = 0; c < loaded.design.columns(); ++c)
        inputs = std::max(inputs, loaded.design.at(r, c).variable + 1);
    inputs = std::max(inputs, 0);
  }

  const analog::device_model model;
  const analog::margin_report report =
      analog::measure_margins(loaded.design, inputs, model);
  table t({"metric", "value"});
  t.add_row({"assignments", cell(report.checked_assignments)});
  t.add_row({"weakest logic-1 (V)", cell(report.min_high_voltage, 4)});
  t.add_row({"strongest logic-0 (V)", cell(report.max_low_voltage, 4)});
  t.add_row({"margin (V)", cell(report.margin, 4)});
  t.add_row({"separable", report.separable ? "yes" : "no"});
  const double ratio =
      analog::minimal_working_ratio(loaded.design, inputs, model);
  t.add_row({"min working Roff/Ron",
             ratio > 0.0 ? cell(ratio, 0) : std::string("none <= 1e8")});
  t.print(std::cout);
  return report.separable ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) usage();
  const std::string command = args[0];
  args.erase(args.begin());
  try {
    if (command == "info") return cmd_info(args);
    if (command == "synthesize") return cmd_synthesize(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "validate") return cmd_validate(args);
    if (command == "equiv") return cmd_equiv(args);
    if (command == "margins") return cmd_margins(args);
    if (command == "lint") return cmd_lint(args);
    if (command == "version") return cmd_version(args);
    usage("unknown command " + command);
  } catch (const infeasible_error& e) {
    dump_flight_postmortem(std::string("infeasible: ") + e.what());
    std::cerr << "infeasible: " << e.what() << "\n";
    return 3;
  } catch (const api::infeasible_error& e) {
    dump_flight_postmortem(std::string("infeasible: ") + e.what());
    std::cerr << "infeasible: " << e.what() << "\n";
    return 3;
  } catch (const resource_limit_error& e) {
    dump_flight_postmortem(std::string("resource limit: ") + e.what());
    std::cerr << "resource limit (" << e.kind_name() << "): " << e.what()
              << "\n";
    return 4;
  } catch (const api::resource_limit_error& e) {
    dump_flight_postmortem(std::string("resource limit: ") + e.what());
    std::cerr << "resource limit (" << e.kind_name() << "): " << e.what()
              << "\n";
    return 4;
  } catch (const error& e) {
    dump_flight_postmortem(std::string("error: ") + e.what());
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const api::error& e) {
    dump_flight_postmortem(std::string("error: ") + e.what());
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Last-resort net: standard-library exceptions (bad_alloc, filesystem,
    // regex, ...) exit cleanly instead of calling std::terminate.
    dump_flight_postmortem(std::string("uncaught exception: ") + e.what());
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
