// compact_loadgen — replay a netlist corpus against compact-serve (or an
// in-process service) at configurable concurrency and report throughput and
// exact latency quantiles.
//
//   compact_loadgen --corpus DIR --socket /tmp/c.sock --concurrency 8
//   compact_loadgen --corpus DIR --in-process shared --concurrency 8
//   compact_loadgen --corpus DIR --dump-requests > requests.jsonl
//
// Every .blif in --corpus becomes one synthesize request per --repeat; the
// schedule is striped across --concurrency client threads. Modes:
//
//   --socket PATH            JSON lines over a unix socket to a running
//                            compact-serve (one connection per client
//                            thread, one request outstanding per
//                            connection)
//   --in-process shared      one shared api::service in this process —
//                            the daemon's cache behavior without a socket
//   --in-process cold        a fresh service per request: the
//                            one-process-per-request baseline the shared
//                            modes are measured against
//
// options:
//   --corpus DIR             directory of .blif netlists (required)
//   --circuits a,b           restrict to these basenames (sans .blif)
//   --repeat N               replay the corpus N times (default 1)
//   --concurrency N          client threads (default 1)
//   --method oct|mip         labeler for every request (default mip)
//   --time-limit S           per-request solver budget (default 10)
//   --deadline S             per-request deadline (0 = none)
//   --out FILE               per-circuit mean latencies in google-benchmark
//                            JSON, comparable with tools/bench_compare
//   --verify                 re-synthesize each unique circuit directly and
//                            require byte-identical design text
//   --dump-requests          print the request lines and exit (feed the
//                            daemon's stdin mode)
//
// Prints a summary JSON object (requests, failures, designs/sec, p50/p90/
// p99 seconds) to stdout. Exit codes: 0 all requests succeeded (and
// verified), 1 any failure, 2 usage.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/compact_api.hpp"
#include "serve/socket.hpp"
#include "util/stopwatch.hpp"
#include "util/telemetry.hpp"

namespace {

using namespace compact;

[[noreturn]] void usage(const std::string& message = {}) {
  if (!message.empty()) std::cerr << "error: " << message << "\n\n";
  std::cerr
      << "usage: compact_loadgen --corpus DIR\n"
         "           (--socket PATH | --in-process shared|cold |"
         " --dump-requests)\n"
         "           [--circuits a,b] [--repeat N] [--concurrency N]\n"
         "           [--method oct|mip] [--time-limit S] [--deadline S]\n"
         "           [--out FILE] [--verify]\n";
  std::exit(2);
}

struct request_record {
  std::string circuit;  ///< basename without extension
  api::request_v1 request;
};

struct completion {
  std::size_t schedule_index = 0;
  bool ok = false;
  std::string error;
  double latency_seconds = 0.0;
};

/// Exact quantile of a sorted sample (nearest-rank).
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(rank + 0.5)];
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  std::string corpus_dir;
  std::optional<std::string> socket_path;
  std::optional<std::string> in_process;
  std::optional<std::string> out_path;
  std::vector<std::string> circuits;
  int repeat = 1;
  int concurrency = 1;
  std::string method = "mip";
  double time_limit = 10.0;
  double deadline = 0.0;
  bool verify = false;
  bool dump_requests = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&]() -> const std::string& {
      if (++i >= args.size()) usage(a + " needs a value");
      return args[i];
    };
    auto int_value = [&](const std::string& flag) {
      try {
        const int v = std::stoi(value());
        if (v > 0) return v;
      } catch (const std::exception&) {
      }
      usage(flag + " must be a positive integer");
    };
    if (a == "--corpus") {
      corpus_dir = value();
    } else if (a == "--socket") {
      socket_path = value();
    } else if (a == "--in-process") {
      in_process = value();
      if (*in_process != "shared" && *in_process != "cold")
        usage("--in-process expects shared|cold");
    } else if (a == "--circuits") {
      std::stringstream list(value());
      std::string name;
      while (std::getline(list, name, ','))
        if (!name.empty()) circuits.push_back(name);
    } else if (a == "--repeat") {
      repeat = int_value(a);
    } else if (a == "--concurrency") {
      concurrency = int_value(a);
    } else if (a == "--method") {
      method = value();
      if (method != "oct" && method != "mip") usage("unknown method " + method);
    } else if (a == "--time-limit") {
      try {
        time_limit = std::stod(value());
      } catch (const std::exception&) {
        usage("--time-limit expects a number");
      }
    } else if (a == "--deadline") {
      try {
        deadline = std::stod(value());
      } catch (const std::exception&) {
        usage("--deadline expects a number");
      }
    } else if (a == "--out") {
      out_path = value();
    } else if (a == "--verify") {
      verify = true;
    } else if (a == "--dump-requests") {
      dump_requests = true;
    } else {
      usage("unknown option " + a);
    }
  }
  if (corpus_dir.empty()) usage("--corpus is required");
  if (!dump_requests && !socket_path && !in_process)
    usage("pick a mode: --socket, --in-process, or --dump-requests");

  // --- build the schedule -------------------------------------------------
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_dir)) {
    if (entry.path().extension() != ".blif") continue;
    const std::string stem = entry.path().stem().string();
    if (!circuits.empty() &&
        std::find(circuits.begin(), circuits.end(), stem) == circuits.end())
      continue;
    paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::cerr << "compact_loadgen: no matching .blif files in " << corpus_dir
              << "\n";
    return 1;
  }

  std::vector<request_record> schedule;
  for (int r = 0; r < repeat; ++r) {
    for (const std::string& path : paths) {
      request_record rec;
      rec.circuit = std::filesystem::path(path).stem().string();
      rec.request.id = rec.circuit + "#" + std::to_string(r);
      rec.request.op = "synthesize";
      rec.request.api_version = COMPACT_API_VERSION;
      rec.request.source.path = path;
      rec.request.synthesis.labeler = method;
      rec.request.synthesis.time_limit_seconds = time_limit;
      rec.request.deadline_seconds = deadline;
      schedule.push_back(std::move(rec));
    }
  }

  if (dump_requests) {
    for (const request_record& rec : schedule)
      std::cout << api::to_json(rec.request) << "\n";
    return 0;
  }

  // --- replay -------------------------------------------------------------
  // Client threads stripe over the schedule with an atomic cursor; each
  // keeps one request outstanding (its own socket connection, or a direct
  // call), so --concurrency is exactly the offered parallelism.
  std::optional<api::service> shared_service;
  if (in_process && *in_process == "shared") shared_service.emplace();

  std::vector<completion> results(schedule.size());
  std::mutex design_mutex;
  std::map<std::string, std::string> served_designs;  // circuit -> text

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> transport_failed{false};
  const stopwatch clock;

  auto record = [&](std::size_t index, const api::response_v1& resp,
                    double latency) {
    completion& c = results[index];
    c.schedule_index = index;
    c.ok = resp.ok;
    c.error = resp.ok ? ""
                      : std::string(api::error_code_name(resp.code)) + ": " +
                            resp.error_message;
    c.latency_seconds = latency;
    if (resp.ok && !resp.design_text.empty()) {
      const std::lock_guard<std::mutex> lock(design_mutex);
      served_designs.emplace(schedule[index].circuit, resp.design_text);
    }
  };

  auto worker = [&] {
    int fd = -1;
    std::string buffer;
    if (socket_path) {
      try {
        fd = serve::connect_unix(*socket_path);
      } catch (const std::exception& e) {
        std::cerr << "compact_loadgen: " << e.what() << "\n";
        transport_failed.store(true);
        return;
      }
    }
    for (;;) {
      const std::size_t index = cursor.fetch_add(1);
      if (index >= schedule.size()) break;
      const api::request_v1& request = schedule[index].request;
      const stopwatch request_clock;
      api::response_v1 resp;
      try {
        if (fd >= 0) {
          std::string line;
          if (!serve::write_line(fd, api::to_json(request)) ||
              !serve::read_line(fd, buffer, line)) {
            transport_failed.store(true);
            break;
          }
          resp = api::response_from_json(line);
        } else if (shared_service) {
          resp = shared_service->handle(request);
        } else {
          resp = api::handle(request);  // cold: private caches per request
        }
      } catch (const std::exception& e) {
        resp.ok = false;
        resp.code = api::error_code_v1::internal;
        resp.error_message = e.what();
      }
      record(index, resp, request_clock.seconds());
    }
    if (fd >= 0) serve::close_fd(fd);
  };

  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(concurrency));
  for (int t = 0; t < concurrency; ++t) clients.emplace_back(worker);
  for (std::thread& client : clients) client.join();
  const double elapsed = clock.seconds();

  if (transport_failed.load()) {
    std::cerr << "compact_loadgen: transport failure (is the daemon up?)\n";
    return 1;
  }

  // --- report -------------------------------------------------------------
  std::size_t failed = 0;
  std::vector<double> latencies;
  std::map<std::string, std::pair<double, std::size_t>> per_circuit;
  for (const completion& c : results) {
    if (!c.ok) {
      ++failed;
      std::cerr << "compact_loadgen: request "
                << schedule[c.schedule_index].request.id << " failed: "
                << c.error << "\n";
      continue;
    }
    latencies.push_back(c.latency_seconds);
    auto& [sum, count] = per_circuit[schedule[c.schedule_index].circuit];
    sum += c.latency_seconds;
    ++count;
  }
  std::sort(latencies.begin(), latencies.end());
  const std::size_t succeeded = latencies.size();

  std::size_t mismatched = 0;
  if (verify) {
    // Byte-identity against direct, uncached execution — the load-bearing
    // property that caching and concurrency only change *when* a design is
    // computed, never *what*.
    for (const auto& [circuit, served_text] : served_designs) {
      api::request_v1 direct;
      direct.op = "synthesize";
      direct.source.path = corpus_dir + "/" + circuit + ".blif";
      direct.synthesis.labeler = method;
      direct.synthesis.time_limit_seconds = time_limit;
      const api::response_v1 resp = api::handle(direct);
      if (!resp.ok || resp.design_text != served_text) {
        ++mismatched;
        std::cerr << "compact_loadgen: " << circuit
                  << " served design differs from direct synthesis\n";
      }
    }
  }

  if (out_path) {
    std::ofstream out(*out_path);
    if (!out) {
      std::cerr << "compact_loadgen: cannot write " << *out_path << "\n";
      return 1;
    }
    // google-benchmark shape so tools/bench_compare can diff two replays.
    out << "{\"benchmarks\": [";
    bool first = true;
    for (const auto& [circuit, bucket] : per_circuit) {
      const double mean_ns = 1e9 * bucket.first /
                             static_cast<double>(bucket.second);
      if (!first) out << ",";
      first = false;
      out << "\n  {\"name\": \"serve/" << json_escape(circuit)
          << "\", \"run_type\": \"iteration\", \"real_time\": "
          << json_number(mean_ns) << ", \"cpu_time\": " << json_number(mean_ns)
          << ", \"time_unit\": \"ns\"}";
    }
    out << "\n]}\n";
  }

  std::cout << "{\"requests\": " << schedule.size()
            << ", \"succeeded\": " << succeeded << ", \"failed\": " << failed
            << ", \"mismatched\": " << mismatched
            << ", \"elapsed_seconds\": " << json_number(elapsed)
            << ", \"designs_per_second\": "
            << json_number(elapsed > 0.0
                               ? static_cast<double>(succeeded) / elapsed
                               : 0.0)
            << ", \"latency_seconds\": {\"p50\": "
            << json_number(quantile(latencies, 0.50))
            << ", \"p90\": " << json_number(quantile(latencies, 0.90))
            << ", \"p99\": " << json_number(quantile(latencies, 0.99))
            << "}}\n";
  return failed == 0 && mismatched == 0 ? 0 : 1;
}
