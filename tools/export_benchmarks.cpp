// export_benchmarks — write the generated benchmark suite to disk as BLIF
// and structural Verilog (and PLA for the single-level circuits), so the
// CLI and external tools can consume the exact circuits the harness
// evaluates.
//
//   $ ./export_benchmarks <output-dir>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "frontend/benchgen.hpp"
#include "frontend/blif.hpp"
#include "frontend/verilog.hpp"

int main(int argc, char** argv) {
  using namespace compact;

  if (argc != 2) {
    std::cerr << "usage: export_benchmarks <output-dir>\n";
    return 2;
  }
  const std::filesystem::path directory(argv[1]);
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    std::cerr << "cannot create " << directory << ": " << ec.message() << "\n";
    return 1;
  }

  int written = 0;
  auto dump = [&](const frontend::benchmark_spec& spec) {
    {
      std::ofstream blif(directory / (spec.name + ".blif"));
      frontend::write_blif(spec.net, blif);
    }
    {
      std::ofstream verilog(directory / (spec.name + ".v"));
      frontend::write_verilog(spec.net, verilog);
    }
    written += 2;
  };
  for (const frontend::benchmark_spec& spec : frontend::benchmark_suite())
    dump(spec);
  for (const frontend::benchmark_spec& spec :
       frontend::hard_benchmark_suite())
    dump(spec);
  for (const frontend::benchmark_spec& spec :
       frontend::partition_benchmark_suite())
    dump(spec);

  std::cout << "wrote " << written << " netlists to " << directory << "\n";
  return 0;
}
