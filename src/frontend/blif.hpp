// BLIF (Berkeley Logic Interchange Format) reader and writer.
//
// Supports the combinational subset the benchmark suites use: .model,
// .inputs, .outputs, .names (on-set or off-set covers), .end, comments and
// line continuations. Latches and hierarchy are rejected with a parse_error;
// the COMPACT flow (like the paper's) is purely combinational.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "frontend/network.hpp"

namespace compact::frontend {

/// Parse a single .model from `is`.
[[nodiscard]] network parse_blif(std::istream& is);

/// Parse from a string (convenience for tests and generators).
[[nodiscard]] network parse_blif_string(const std::string& text);

/// Serialize `net` as BLIF. Round-trips through parse_blif.
void write_blif(const network& net, std::ostream& os);

}  // namespace compact::frontend
