#include "frontend/minimize.hpp"

#include <algorithm>

namespace compact::frontend {
namespace {

/// Cofactor of `cover` with respect to literal (var = value). Cubes
/// requiring the opposite value vanish; the variable becomes free in the
/// rest.
std::vector<std::string> cofactor(const std::vector<std::string>& cover,
                                  int var, bool value) {
  std::vector<std::string> result;
  const char blocking = value ? '0' : '1';
  for (const std::string& cube : cover) {
    if (cube[static_cast<std::size_t>(var)] == blocking) continue;
    std::string reduced = cube;
    reduced[static_cast<std::size_t>(var)] = '-';
    result.push_back(std::move(reduced));
  }
  return result;
}

bool all_free(const std::string& cube) {
  return cube.find_first_not_of('-') == std::string::npos;
}

}  // namespace

bool cover_is_tautology(const std::vector<std::string>& cover, int width) {
  for (const std::string& cube : cover)
    if (all_free(cube)) return true;
  if (cover.empty()) return false;

  // Unate reduction opportunity: split on the most-bound variable.
  int split = -1;
  int best_bound = 0;
  for (int v = 0; v < width; ++v) {
    int bound = 0;
    for (const std::string& cube : cover)
      if (cube[static_cast<std::size_t>(v)] != '-') ++bound;
    if (bound > best_bound) {
      best_bound = bound;
      split = v;
    }
  }
  if (split == -1) return false;  // no bound literal and no free cube

  return cover_is_tautology(cofactor(cover, split, false), width) &&
         cover_is_tautology(cofactor(cover, split, true), width);
}

bool cube_covered_by(const std::string& cube,
                     const std::vector<std::string>& cover) {
  // Restrict the cover to the subspace of `cube` and ask for tautology.
  std::vector<std::string> restricted = cover;
  for (int v = 0; v < static_cast<int>(cube.size()); ++v) {
    if (cube[static_cast<std::size_t>(v)] == '-') continue;
    restricted =
        cofactor(restricted, v, cube[static_cast<std::size_t>(v)] == '1');
  }
  return cover_is_tautology(restricted, static_cast<int>(cube.size()));
}

std::vector<std::string> minimize_cover(std::vector<std::string> cover) {
  if (cover.empty()) return cover;
  const std::vector<std::string> original = cover;

  // EXPAND: free literals while the enlarged cube stays inside the on-set.
  for (std::string& cube : cover) {
    for (std::size_t v = 0; v < cube.size(); ++v) {
      if (cube[v] == '-') continue;
      const char saved = cube[v];
      cube[v] = '-';
      if (!cube_covered_by(cube, original)) cube[v] = saved;
    }
  }

  // Drop duplicates and cubes contained in a single other cube first
  // (cheap), then run the full IRREDUNDANT pass.
  std::sort(cover.begin(), cover.end());
  cover.erase(std::unique(cover.begin(), cover.end()), cover.end());

  // IRREDUNDANT: drop any cube covered by the union of the others.
  for (std::size_t i = 0; i < cover.size();) {
    std::vector<std::string> rest;
    rest.reserve(cover.size() - 1);
    for (std::size_t j = 0; j < cover.size(); ++j)
      if (j != i) rest.push_back(cover[j]);
    if (!rest.empty() && cube_covered_by(cover[i], rest)) {
      cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return cover;
}

network minimize_network(const network& net) {
  network result(net.name());
  std::vector<int> node_of(net.node_count());
  for (int i = 0; i < static_cast<int>(net.node_count()); ++i) {
    const network_node& n = net.node(i);
    if (n.node_kind == network_node::kind::input) {
      node_of[static_cast<std::size_t>(i)] = result.add_input(n.name);
      continue;
    }
    std::vector<int> fanins;
    fanins.reserve(n.fanins.size());
    for (int f : n.fanins)
      fanins.push_back(node_of[static_cast<std::size_t>(f)]);
    node_of[static_cast<std::size_t>(i)] =
        result.add_gate(n.name, std::move(fanins), minimize_cover(n.cubes));
  }
  for (const network_output& o : net.outputs())
    result.set_output(node_of[static_cast<std::size_t>(o.node)], o.name);
  return result;
}

}  // namespace compact::frontend
