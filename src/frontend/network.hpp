// Combinational Boolean network.
//
// The COMPACT flow starts from a circuit given "using a Verilog, BLIF or PLA
// file" (Section II-C). This network is the common in-memory form: primary
// inputs plus gates in topological order, where every gate's function is a
// sum-of-products cover over its fanins (the semantics of a BLIF `.names`
// block, general enough to express PLA rows and the standard gate library).
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"

namespace compact::frontend {

/// A cube is a string over {'0','1','-'}, one character per fanin.
/// A gate's function is the OR of its cubes; a cube is satisfied when every
/// '1' fanin is true and every '0' fanin is false. The empty cover is the
/// constant 0; a cover containing the empty cube ("" with zero fanins) is
/// the constant 1.
struct network_node {
  enum class kind { input, gate };
  kind node_kind = kind::gate;
  std::string name;
  std::vector<int> fanins;         // indices of earlier nodes
  std::vector<std::string> cubes;  // on-set cover (gates only)
};

struct network_output {
  int node = 0;
  std::string name;
};

class network {
 public:
  explicit network(std::string model_name = "top")
      : name_(std::move(model_name)) {}

  /// Append a primary input; returns its node index.
  int add_input(std::string name);

  /// Append a gate over existing nodes; returns its node index.
  /// Cube width must equal fanins.size().
  int add_gate(std::string name, std::vector<int> fanins,
               std::vector<std::string> cubes);

  // Gate-library conveniences (all expressed as covers).
  int add_const(bool value, std::string name = {});
  int add_buf(int a, std::string name = {});
  int add_not(int a, std::string name = {});
  int add_and(int a, int b, std::string name = {});
  int add_or(int a, int b, std::string name = {});
  int add_nand(int a, int b, std::string name = {});
  int add_nor(int a, int b, std::string name = {});
  int add_xor(int a, int b, std::string name = {});
  int add_xnor(int a, int b, std::string name = {});
  /// s ? t : e
  int add_mux(int s, int t, int e, std::string name = {});
  /// AND/OR over an arbitrary number of operands (empty = constant).
  int add_and_n(const std::vector<int>& operands, std::string name = {});
  int add_or_n(const std::vector<int>& operands, std::string name = {});

  void set_output(int node, std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int input_count() const { return input_count_; }
  [[nodiscard]] const network_node& node(int index) const;
  [[nodiscard]] const std::vector<network_output>& outputs() const {
    return outputs_;
  }
  /// Indices of the primary inputs in declaration order.
  [[nodiscard]] std::vector<int> inputs() const;

  /// Evaluate all outputs under a complete input assignment
  /// (assignment[i] is the value of the i-th declared input).
  [[nodiscard]] std::vector<bool> simulate(
      const std::vector<bool>& assignment) const;

 private:
  std::string name_;
  std::vector<network_node> nodes_;
  std::vector<int> input_nodes_;
  std::vector<network_output> outputs_;
  int input_count_ = 0;
  int anonymous_counter_ = 0;

  std::string fresh_name(const std::string& hint);
  void check_fanins(const std::vector<int>& fanins) const;
};

}  // namespace compact::frontend
