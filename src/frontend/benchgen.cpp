#include "frontend/benchgen.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace compact::frontend {
namespace {

int log2_exact(int value) {
  int bits = 0;
  while ((1 << bits) < value) ++bits;
  check((1 << bits) == value, "benchgen: value must be a power of two");
  return bits;
}

}  // namespace

network make_decoder(int address_bits) {
  check(address_bits >= 1 && address_bits <= 10, "decoder: 1..10 bits");
  network net("dec" + std::to_string(address_bits));
  std::vector<int> addr;
  for (int i = 0; i < address_bits; ++i)
    addr.push_back(net.add_input("a" + std::to_string(i)));
  const int lines = 1 << address_bits;
  for (int line = 0; line < lines; ++line) {
    std::string cube(static_cast<std::size_t>(address_bits), '0');
    for (int b = 0; b < address_bits; ++b)
      if (line & (1 << b)) cube[static_cast<std::size_t>(b)] = '1';
    const std::string name = "d" + std::to_string(line);
    const int g = net.add_gate(name, addr, {cube});
    net.set_output(g, name);
  }
  return net;
}

network make_priority_encoder(int width) {
  check(width >= 2, "priority encoder: width >= 2");
  network net("priority" + std::to_string(width));
  std::vector<int> req;
  for (int i = 0; i < width; ++i)
    req.push_back(net.add_input("req" + std::to_string(i)));

  // wins[i]: request i is active and no lower-indexed request is.
  std::vector<int> wins(static_cast<std::size_t>(width));
  int none_before = -1;  // AND of !req[0..i-1]
  for (int i = 0; i < width; ++i) {
    if (i == 0) {
      wins[0] = net.add_buf(req[0], "win0");
      none_before = net.add_not(req[0]);
    } else {
      wins[static_cast<std::size_t>(i)] =
          net.add_and(none_before, req[i], "win" + std::to_string(i));
      if (i + 1 < width) {
        const int not_req = net.add_not(req[i]);
        none_before = net.add_and(none_before, not_req);
      }
    }
  }

  int index_bits = 0;
  while ((1 << index_bits) < width) ++index_bits;
  for (int b = 0; b < index_bits; ++b) {
    std::vector<int> contributors;
    for (int i = 0; i < width; ++i)
      if (i & (1 << b)) contributors.push_back(wins[static_cast<std::size_t>(i)]);
    const std::string name = "idx" + std::to_string(b);
    net.set_output(net.add_or_n(contributors, name), name);
  }
  net.set_output(net.add_or_n(req, "valid"), "valid");
  return net;
}

network make_arbiter(int requesters) {
  const int ptr_bits = log2_exact(requesters);
  network net("arbiter" + std::to_string(requesters));
  // Pointer bits first: the BDD branches into one fixed-priority chain per
  // pointer value instead of tracking all request subsets.
  std::vector<int> req, ptr;
  for (int b = 0; b < ptr_bits; ++b)
    ptr.push_back(net.add_input("ptr" + std::to_string(b)));
  for (int i = 0; i < requesters; ++i)
    req.push_back(net.add_input("req" + std::to_string(i)));

  // Decode the grant pointer to one-hot base signals.
  std::vector<int> base(static_cast<std::size_t>(requesters));
  for (int p = 0; p < requesters; ++p) {
    std::string cube(static_cast<std::size_t>(ptr_bits), '0');
    for (int b = 0; b < ptr_bits; ++b)
      if (p & (1 << b)) cube[static_cast<std::size_t>(b)] = '1';
    base[static_cast<std::size_t>(p)] =
        net.add_gate("base" + std::to_string(p), ptr, {cube});
  }

  // grant[i] = OR over base positions p of
  //   base==p & req[i] & none of req[p], req[p+1], ..., req[i-1] (cyclic).
  std::vector<int> grants;
  for (int i = 0; i < requesters; ++i) {
    std::vector<int> cases;
    for (int p = 0; p < requesters; ++p) {
      std::vector<int> conj{base[static_cast<std::size_t>(p)], req[i]};
      for (int j = p; j != i; j = (j + 1) % requesters)
        conj.push_back(net.add_not(req[j]));
      cases.push_back(net.add_and_n(conj));
    }
    const std::string name = "gnt" + std::to_string(i);
    grants.push_back(net.add_or_n(cases, name));
    net.set_output(grants.back(), name);
  }
  net.set_output(net.add_or_n(grants, "busy"), "busy");
  return net;
}

network make_int2float(int magnitude_bits, int exp_bits, int mantissa_bits) {
  check(magnitude_bits >= 2 && magnitude_bits <= (1 << exp_bits),
        "int2float: magnitude must fit the exponent range");
  network net("int2float" + std::to_string(magnitude_bits));
  const int sign = net.add_input("sign");
  std::vector<int> mag;
  for (int i = 0; i < magnitude_bits; ++i)
    mag.push_back(net.add_input("m" + std::to_string(i)));  // m0 = LSB

  // Leading-one detector: lead[i] = mag[i] & !mag[i+1..msb].
  std::vector<int> lead(static_cast<std::size_t>(magnitude_bits));
  int none_above = -1;
  for (int i = magnitude_bits - 1; i >= 0; --i) {
    if (i == magnitude_bits - 1) {
      lead[static_cast<std::size_t>(i)] = net.add_buf(mag[i]);
      none_above = net.add_not(mag[i]);
    } else {
      lead[static_cast<std::size_t>(i)] = net.add_and(none_above, mag[i]);
      if (i > 0) none_above = net.add_and(none_above, net.add_not(mag[i]));
    }
  }

  // Exponent = position of the leading one (0 when the input is zero).
  for (int b = 0; b < exp_bits; ++b) {
    std::vector<int> contributors;
    for (int i = 0; i < magnitude_bits; ++i)
      if (i & (1 << b))
        contributors.push_back(lead[static_cast<std::size_t>(i)]);
    const std::string name = "exp" + std::to_string(b);
    net.set_output(net.add_or_n(contributors, name), name);
  }

  // Mantissa: bits immediately below the leading one, selected by muxes.
  for (int k = 1; k <= mantissa_bits; ++k) {
    std::vector<int> cases;
    for (int i = 0; i < magnitude_bits; ++i) {
      const int src = i - k;
      if (src < 0) continue;  // shifted-in zeros
      cases.push_back(
          net.add_and(lead[static_cast<std::size_t>(i)], mag[src]));
    }
    const std::string name = "man" + std::to_string(mantissa_bits - k);
    net.set_output(net.add_or_n(cases, name), name);
  }
  net.set_output(net.add_buf(sign, "fsign"), "fsign");
  return net;
}

network make_router(int coord_bits) {
  check(coord_bits >= 1 && coord_bits <= 8, "router: 1..8 coordinate bits");
  network net("router" + std::to_string(coord_bits));
  // Coordinates are declared interleaved per compared pair (cx_i dx_i ...,
  // then cy_i dy_i ...) so the comparator BDDs stay linear under the
  // default declaration order.
  std::vector<int> cx, cy, dx, dy;
  for (int i = 0; i < coord_bits; ++i) {
    cx.push_back(net.add_input("cx" + std::to_string(i)));
    dx.push_back(net.add_input("dx" + std::to_string(i)));
  }
  for (int i = 0; i < coord_bits; ++i) {
    cy.push_back(net.add_input("cy" + std::to_string(i)));
    dy.push_back(net.add_input("dy" + std::to_string(i)));
  }

  // Magnitude comparator: returns (eq, lt) for a < b on equal-width vectors.
  auto compare = [&](const std::vector<int>& a, const std::vector<int>& b) {
    int eq = net.add_const(true);
    int lt = net.add_const(false);
    for (int i = coord_bits - 1; i >= 0; --i) {
      const int bit_eq = net.add_xnor(a[i], b[i]);
      const int a_low_b_high = net.add_and(net.add_not(a[i]), b[i]);
      lt = net.add_or(lt, net.add_and(eq, a_low_b_high));
      eq = net.add_and(eq, bit_eq);
    }
    return std::pair<int, int>{eq, lt};
  };

  const auto [x_eq, x_lt] = compare(cx, dx);
  const auto [y_eq, y_lt] = compare(cy, dy);
  // XY routing: move in X first, then Y, else deliver locally.
  const int go_east = net.add_and(net.add_not(x_eq), x_lt, "east");
  const int go_west = net.add_and(net.add_not(x_eq), net.add_not(x_lt), "west");
  const int go_north = net.add_and_n({x_eq, net.add_not(y_eq), y_lt}, "north");
  const int go_south =
      net.add_and_n({x_eq, net.add_not(y_eq), net.add_not(y_lt)}, "south");
  const int local = net.add_and(x_eq, y_eq, "local");
  net.set_output(go_east, "east");
  net.set_output(go_west, "west");
  net.set_output(go_north, "north");
  net.set_output(go_south, "south");
  net.set_output(local, "local");
  return net;
}

network make_ctrl(int opcode_bits, int control_lines, std::uint64_t seed) {
  check(opcode_bits >= 2 && opcode_bits <= 12, "ctrl: 2..12 opcode bits");
  network net("ctrl" + std::to_string(opcode_bits) + "x" +
              std::to_string(control_lines));
  rng random(seed);
  std::vector<int> op;
  for (int i = 0; i < opcode_bits; ++i)
    op.push_back(net.add_input("op" + std::to_string(i)));

  for (int c = 0; c < control_lines; ++c) {
    // Each control line fires on 1-4 opcode patterns with some don't-cares.
    const int patterns = 1 + static_cast<int>(random.next_below(4));
    std::vector<std::string> cubes;
    for (int p = 0; p < patterns; ++p) {
      std::string cube(static_cast<std::size_t>(opcode_bits), '-');
      for (int b = 0; b < opcode_bits; ++b) {
        const auto roll = random.next_below(4);
        if (roll == 0) continue;  // don't care
        cube[static_cast<std::size_t>(b)] = (roll & 1) ? '1' : '0';
      }
      cubes.push_back(std::move(cube));
    }
    const std::string name = "c" + std::to_string(c);
    net.set_output(net.add_gate(name, op, cubes), name);
  }
  return net;
}

network make_cavlc_like(int inputs, int outputs, std::uint64_t seed) {
  check(inputs >= 4, "cavlc: at least 4 inputs");
  network net("cavlc" + std::to_string(inputs) + "x" +
              std::to_string(outputs));
  rng random(seed);
  std::vector<int> layer;
  for (int i = 0; i < inputs; ++i)
    layer.push_back(net.add_input("x" + std::to_string(i)));

  // Three mixing layers of two-input gates with random wiring, then MUX taps.
  for (int depth = 0; depth < 3; ++depth) {
    std::vector<int> next;
    for (std::size_t i = 0; i < layer.size(); ++i) {
      const int a = layer[i];
      const int b =
          layer[random.next_below(static_cast<std::uint64_t>(layer.size()))];
      switch (random.next_below(3)) {
        case 0:
          next.push_back(net.add_and(a, b));
          break;
        case 1:
          next.push_back(net.add_xor(a, b));
          break;
        default:
          next.push_back(net.add_or(a, net.add_not(b)));
          break;
      }
    }
    layer = std::move(next);
  }

  for (int o = 0; o < outputs; ++o) {
    const auto pick = [&] {
      return layer[random.next_below(static_cast<std::uint64_t>(layer.size()))];
    };
    const std::string name = "y" + std::to_string(o);
    net.set_output(net.add_mux(pick(), pick(), pick(), name), name);
  }
  return net;
}

network make_i2c_like(int flags, std::uint64_t seed) {
  check(flags >= 2, "i2c: at least 2 flags");
  network net("i2c" + std::to_string(flags));
  rng random(seed);

  // Shared condition strobes plus one state bit per flag.
  const int conds = std::max(3, flags / 2);
  std::vector<int> cond, state;
  for (int i = 0; i < conds; ++i)
    cond.push_back(net.add_input("cond" + std::to_string(i)));
  for (int i = 0; i < flags; ++i)
    state.push_back(net.add_input("s" + std::to_string(i)));

  auto pick_cond = [&] {
    return cond[random.next_below(static_cast<std::uint64_t>(conds))];
  };
  for (int i = 0; i < flags; ++i) {
    // next_s = set ? 1 : (clear ? 0 : hold)
    const int set_term = net.add_and(pick_cond(), pick_cond());
    const int clear_term = net.add_and(pick_cond(), net.add_not(pick_cond()));
    const int hold = state[i];
    const int cleared = net.add_and(net.add_not(clear_term), hold);
    const std::string name = "next_s" + std::to_string(i);
    net.set_output(net.add_or(set_term, cleared, name), name);
  }
  // A couple of observation outputs over all state bits.
  net.set_output(net.add_or_n(state, "any_flag"), "any_flag");
  net.set_output(net.add_and_n(state, "all_flags"), "all_flags");
  return net;
}

network make_ripple_adder(int bits) {
  check(bits >= 1, "adder: at least 1 bit");
  network net("add" + std::to_string(bits));
  // Operand bits are interleaved (a0 b0 a1 b1 ...): under the default
  // BDD order (declaration order) this keeps the adder BDD linear, exactly
  // as benchmark flows order adder inputs. Declaring all a's before all
  // b's would make the shared BDD exponential.
  std::vector<int> a, b;
  for (int i = 0; i < bits; ++i) {
    a.push_back(net.add_input("a" + std::to_string(i)));
    b.push_back(net.add_input("b" + std::to_string(i)));
  }
  int carry = net.add_input("cin");

  for (int i = 0; i < bits; ++i) {
    const int axb = net.add_xor(a[i], b[i]);
    const std::string name = "sum" + std::to_string(i);
    net.set_output(net.add_xor(axb, carry, name), name);
    const int gen = net.add_and(a[i], b[i]);
    const int prop = net.add_and(axb, carry);
    carry = net.add_or(gen, prop);
  }
  net.set_output(net.add_buf(carry, "cout"), "cout");
  return net;
}

network make_alu(int bits) {
  check(bits >= 1, "alu: at least 1 bit");
  network net("alu" + std::to_string(bits));
  // Opcode first (branches the BDD into per-operation subtrees), then
  // interleaved operand bits (keeps each subtree linear).
  std::vector<int> a, b, op;
  for (int i = 0; i < 2; ++i)
    op.push_back(net.add_input("op" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) {
    a.push_back(net.add_input("a" + std::to_string(i)));
    b.push_back(net.add_input("b" + std::to_string(i)));
  }

  // op: 00=add, 01=and, 10=or, 11=xor.
  const int is_add = net.add_nor(op[0], op[1]);
  const int is_and = net.add_and(op[0], net.add_not(op[1]));
  const int is_or = net.add_and(net.add_not(op[0]), op[1]);
  const int is_xor = net.add_and(op[0], op[1]);

  int carry = net.add_const(false);
  for (int i = 0; i < bits; ++i) {
    const int axb = net.add_xor(a[i], b[i]);
    const int sum = net.add_xor(axb, carry);
    carry = net.add_or(net.add_and(a[i], b[i]), net.add_and(axb, carry));
    const int and_bit = net.add_and(a[i], b[i]);
    const int or_bit = net.add_or(a[i], b[i]);
    const std::string name = "y" + std::to_string(i);
    const int result = net.add_or_n(
        {net.add_and(is_add, sum), net.add_and(is_and, and_bit),
         net.add_and(is_or, or_bit), net.add_and(is_xor, axb)},
        name);
    net.set_output(result, name);
  }
  net.set_output(net.add_and(is_add, carry, "cout"), "cout");
  return net;
}

network make_parity(int bits, int groups) {
  check(bits >= 2 && groups >= 1, "parity: bits >= 2, groups >= 1");
  network net("par" + std::to_string(bits) + "x" + std::to_string(groups));
  std::vector<int> in;
  for (int i = 0; i < bits; ++i)
    in.push_back(net.add_input("x" + std::to_string(i)));
  for (int g = 0; g < groups; ++g) {
    // Group g xors the bits congruent to g modulo `groups` (interleaved,
    // giving the reconvergent sharing typical of c1908-style parity logic).
    int acc = -1;
    for (int i = g; i < bits; i += groups)
      acc = acc == -1 ? in[i] : net.add_xor(acc, in[i]);
    const std::string name = "p" + std::to_string(g);
    net.set_output(net.add_buf(acc, name), name);
  }
  // A combined parity over everything.
  int all = in[0];
  for (int i = 1; i < bits; ++i) all = net.add_xor(all, in[i]);
  net.set_output(net.add_buf(all, "pall"), "pall");
  return net;
}

network make_comparator(int bits) {
  check(bits >= 1, "comparator: at least 1 bit");
  network net("cmp" + std::to_string(bits));
  // Interleaved operand bits: linear comparator BDD (see make_ripple_adder).
  std::vector<int> a, b;
  for (int i = 0; i < bits; ++i) {
    a.push_back(net.add_input("a" + std::to_string(i)));
    b.push_back(net.add_input("b" + std::to_string(i)));
  }

  int eq = net.add_const(true);
  int lt = net.add_const(false);
  for (int i = bits - 1; i >= 0; --i) {
    lt = net.add_or(lt, net.add_and_n({eq, net.add_not(a[i]), b[i]}));
    eq = net.add_and(eq, net.add_xnor(a[i], b[i]));
  }
  const int gt = net.add_nor(eq, lt, "gt_inner");
  net.set_output(net.add_buf(eq, "eq"), "eq");
  net.set_output(net.add_buf(lt, "lt"), "lt");
  net.set_output(net.add_buf(gt, "gt"), "gt");
  return net;
}

network make_mux_tree(int select_bits) {
  check(select_bits >= 1 && select_bits <= 6, "mux tree: 1..6 select bits");
  network net("mux" + std::to_string(1 << select_bits));
  std::vector<int> sel, data;
  for (int i = 0; i < select_bits; ++i)
    sel.push_back(net.add_input("s" + std::to_string(i)));
  for (int i = 0; i < (1 << select_bits); ++i)
    data.push_back(net.add_input("d" + std::to_string(i)));

  std::vector<int> layer = data;
  for (int level = 0; level < select_bits; ++level) {
    std::vector<int> next;
    for (std::size_t i = 0; i < layer.size(); i += 2)
      next.push_back(net.add_mux(sel[level], layer[i + 1], layer[i]));
    layer = std::move(next);
  }
  net.set_output(net.add_buf(layer[0], "y"), "y");
  return net;
}

network make_multiplier(int bits) {
  check(bits >= 2 && bits <= 8, "multiplier: 2..8 bits");
  network net("mul" + std::to_string(bits));
  // Interleaved operands; multiplier BDDs still grow quickly with width,
  // which is exactly why the hard suite (Fig. 11) uses them.
  std::vector<int> a, b;
  for (int i = 0; i < bits; ++i) {
    a.push_back(net.add_input("a" + std::to_string(i)));
    b.push_back(net.add_input("b" + std::to_string(i)));
  }

  // Carry-save array of partial products.
  std::vector<int> acc;  // current partial sum, index = bit weight
  for (int j = 0; j < bits; ++j) {
    std::vector<int> partial;
    for (int i = 0; i < bits; ++i)
      partial.push_back(net.add_and(a[i], b[j]));
    if (j == 0) {
      acc = partial;
      continue;
    }
    // Add `partial` shifted by j into acc with a ripple adder.
    int carry = net.add_const(false);
    for (int i = 0; i < bits; ++i) {
      const std::size_t pos = static_cast<std::size_t>(i + j);
      if (pos >= acc.size()) acc.resize(pos + 1, net.add_const(false));
      const int x = acc[pos];
      const int y = partial[static_cast<std::size_t>(i)];
      const int xy = net.add_xor(x, y);
      const int sum = net.add_xor(xy, carry);
      carry = net.add_or(net.add_and(x, y), net.add_and(xy, carry));
      acc[pos] = sum;
    }
    acc.push_back(carry);
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const std::string name = "p" + std::to_string(i);
    net.set_output(net.add_buf(acc[i], name), name);
  }
  return net;
}

std::vector<benchmark_spec> benchmark_suite() {
  std::vector<benchmark_spec> suite;
  auto add = [&suite](const std::string& family, network net) {
    suite.push_back({net.name(), family, std::move(net)});
  };
  // ISCAS85-like (arithmetic / reconvergent logic).
  add("iscas85-like", make_ripple_adder(12));
  add("iscas85-like", make_alu(6));
  add("iscas85-like", make_parity(16, 2));
  add("iscas85-like", make_comparator(12));
  add("iscas85-like", make_mux_tree(3));
  add("iscas85-like", make_multiplier(4));
  // EPFL-control-like (wide decode / control logic).
  add("epfl-control-like", make_decoder(6));
  add("epfl-control-like", make_priority_encoder(24));
  add("epfl-control-like", make_arbiter(8));
  add("epfl-control-like", make_int2float(8));
  add("epfl-control-like", make_router(4));
  add("epfl-control-like", make_ctrl(7, 26));
  add("epfl-control-like", make_cavlc_like(10, 11));
  add("epfl-control-like", make_i2c_like(12));
  return suite;
}

std::vector<benchmark_spec> hard_benchmark_suite() {
  std::vector<benchmark_spec> suite;
  auto add = [&suite](const std::string& family, network net) {
    suite.push_back({net.name(), family, std::move(net)});
  };
  add("iscas85-like", make_multiplier(5));
  add("iscas85-like", make_multiplier(6));
  add("epfl-control-like", make_arbiter(16));
  add("epfl-control-like", make_priority_encoder(64));
  return suite;
}

std::vector<benchmark_spec> partition_benchmark_suite() {
  std::vector<benchmark_spec> suite;
  auto add = [&suite](const std::string& family, network net) {
    suite.push_back({net.name(), family, std::move(net)});
  };
  add("iscas85-like", make_ripple_adder(24));
  add("iscas85-like", make_ripple_adder(32));
  add("iscas85-like", make_parity(48, 4));
  add("epfl-control-like", make_priority_encoder(96));
  return suite;
}

}  // namespace compact::frontend
