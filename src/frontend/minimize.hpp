// Two-level cover minimization (Espresso-lite).
//
// BLIF/PLA covers from benchmark flows are often redundant; every spare
// cube becomes spare gates after decomposition and noise for the BDD
// sweep. This module implements the classical EXPAND and IRREDUNDANT steps
// over cube lists (cofactor-based tautology checking, no truth-table size
// limits): literals are freed while the cube stays inside the function's
// on-set, then cubes covered by the rest of the cover are dropped. The
// result computes exactly the same function (verified in the test suite via
// the BDD equivalence checker).
#pragma once

#include <string>
#include <vector>

#include "frontend/network.hpp"

namespace compact::frontend {

/// True iff `cover` (cubes over `width` inputs) is a tautology.
[[nodiscard]] bool cover_is_tautology(const std::vector<std::string>& cover,
                                      int width);

/// True iff every minterm of `cube` is covered by `cover`.
[[nodiscard]] bool cube_covered_by(const std::string& cube,
                                   const std::vector<std::string>& cover);

/// EXPAND + IRREDUNDANT on a single on-set cover. The returned cover
/// computes the same function with (weakly) fewer cubes and literals.
[[nodiscard]] std::vector<std::string> minimize_cover(
    std::vector<std::string> cover);

/// Apply minimize_cover to every gate of `net`.
[[nodiscard]] network minimize_network(const network& net);

}  // namespace compact::frontend
