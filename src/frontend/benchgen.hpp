// Benchmark circuit generators.
//
// The paper evaluates on nine ISCAS85 circuits and eight EPFL control
// benchmarks. Those netlists are not redistributable here, so this module
// provides *functional equivalents*: programmatically generated circuits of
// the same families (arithmetic/reconvergent logic for ISCAS85, wide
// control/decode logic for EPFL-control), sized so the NP-hard labeling step
// remains laptop-scale. DESIGN.md documents this substitution; the mapping
// algorithms only ever see the BDD, so family structure — not the exact
// netlist — is what drives the experimental trends.
//
// All generators are deterministic (fixed-seed randomness where used).
#pragma once

#include <string>
#include <vector>

#include "frontend/network.hpp"

namespace compact::frontend {

// --- EPFL-control-like generators ----------------------------------------

/// Full binary address decoder: `address_bits` inputs, 2^address_bits
/// one-hot outputs (the "dec" benchmark family).
[[nodiscard]] network make_decoder(int address_bits);

/// Priority encoder over `width` request lines: binary index of the
/// lowest-numbered active line plus a valid flag ("priority").
[[nodiscard]] network make_priority_encoder(int width);

/// Rotating-priority (round-robin) arbiter over `requesters` lines with a
/// binary grant pointer input; outputs one grant per requester plus
/// any-grant ("arbiter"). requesters must be a power of two.
[[nodiscard]] network make_arbiter(int requesters);

/// Sign-magnitude integer to tiny float (1 sign, `exp_bits` exponent,
/// `mantissa_bits` mantissa): leading-one detection + shift ("int2float").
[[nodiscard]] network make_int2float(int magnitude_bits, int exp_bits = 3,
                                     int mantissa_bits = 4);

/// XY dimension-order routing decision: current and destination coordinates
/// in, one-hot output port (N/S/E/W/local) out ("router").
[[nodiscard]] network make_router(int coord_bits);

/// Opcode decoder: `opcode_bits` in, `control_lines` out, each control line
/// an OR of a few opcode patterns (deterministic pseudo-random tables,
/// "ctrl" family).
[[nodiscard]] network make_ctrl(int opcode_bits, int control_lines,
                                std::uint64_t seed = 7);

/// Structured random logic mesh mimicking coding-table circuits
/// ("cavlc" family): alternating AND/XOR/MUX layers, deterministic.
[[nodiscard]] network make_cavlc_like(int inputs, int outputs,
                                      std::uint64_t seed = 11);

/// Flag-update logic of a serial-bus controller: per-flag set/clear/hold
/// muxes driven by shared condition terms ("i2c" family).
[[nodiscard]] network make_i2c_like(int flags, std::uint64_t seed = 13);

// --- ISCAS85-like generators ----------------------------------------------

/// Ripple-carry adder: two `bits`-wide operands + carry-in.
[[nodiscard]] network make_ripple_adder(int bits);

/// Small ALU slice: add/sub/and/or/xor selected by 3 op bits.
[[nodiscard]] network make_alu(int bits);

/// Multiple interleaved odd-parity trees (c1908-flavored).
[[nodiscard]] network make_parity(int bits, int groups = 2);

/// Unsigned comparator: eq, lt, gt outputs.
[[nodiscard]] network make_comparator(int bits);

/// 2^select_bits : 1 multiplexer tree (c880-flavored).
[[nodiscard]] network make_mux_tree(int select_bits);

/// Array multiplier (arithmetic circuits are where "BDDs do not scale
/// well" — used for the hard instances of Fig. 11).
[[nodiscard]] network make_multiplier(int bits);

// --- suite registry ---------------------------------------------------------

struct benchmark_spec {
  std::string name;
  std::string family;  // "iscas85-like" or "epfl-control-like"
  network net;
};

/// The default evaluation suite (Table I equivalents), sized for
/// laptop-scale exact labeling.
[[nodiscard]] std::vector<benchmark_spec> benchmark_suite();

/// Larger instances on which the exact engines are expected to time out
/// (Fig. 11 equivalents).
[[nodiscard]] std::vector<benchmark_spec> hard_benchmark_suite();

/// Adder/parity/priority family members whose unconstrained designs exceed
/// a 64x64 crossbar array in at least one dimension — the instances the
/// multi-array partitioning pass (core/partition) exists for.
[[nodiscard]] std::vector<benchmark_spec> partition_benchmark_suite();

}  // namespace compact::frontend
