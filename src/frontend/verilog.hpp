// Structural (gate-level) Verilog reader.
//
// The paper's flow accepts "a Verilog, BLIF or PLA file" (Section II-C);
// benchmark suites such as ISCAS85 circulate as gate-level Verilog. This
// parser supports that netlist subset:
//
//   module name (ports...);
//     input a, b;  output y;  wire t1, t2;
//     and g1 (y, a, b);        // primitive gates: and, or, nand, nor,
//     not g2 (t1, a);          // xor, xnor, buf, not (n-ary where legal)
//     assign w = a & b | ~c;   // simple continuous assigns (&, |, ^, ~,
//                              // parentheses, 1'b0/1'b1)
//   endmodule
//
// Behavioural constructs (always, reg, case, ...) are rejected with a
// parse_error: the COMPACT flow is purely combinational.
#pragma once

#include <istream>
#include <string>

#include "frontend/network.hpp"

namespace compact::frontend {

[[nodiscard]] network parse_verilog(std::istream& is);
[[nodiscard]] network parse_verilog_string(const std::string& text);

/// Serialize `net` as structural Verilog (primitive gates only).
void write_verilog(const network& net, std::ostream& os);

}  // namespace compact::frontend
