#include "frontend/blif.hpp"

#include <map>
#include <sstream>

#include "util/strings.hpp"

namespace compact::frontend {
namespace {

struct raw_gate {
  std::vector<std::string> fanin_names;
  std::vector<std::string> cubes;
  char output_polarity = '1';  // '1' = on-set cover, '0' = off-set cover
};

/// Read one logical line, folding '\' continuations and stripping comments.
bool next_line(std::istream& is, std::string& line) {
  line.clear();
  std::string piece;
  while (std::getline(is, piece)) {
    if (const auto hash = piece.find('#'); hash != std::string::npos)
      piece.erase(hash);
    bool continued = false;
    std::string_view trimmed = trim(piece);
    if (!trimmed.empty() && trimmed.back() == '\\') {
      continued = true;
      trimmed.remove_suffix(1);
    }
    if (!line.empty()) line += ' ';
    line.append(trimmed);
    if (continued) continue;
    if (!trim(line).empty()) return true;
    line.clear();
  }
  return !trim(line).empty();
}

}  // namespace

network parse_blif(std::istream& is) {
  std::string model_name = "top";
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::map<std::string, raw_gate> gates;  // by output signal name
  std::vector<std::string> gate_order;    // declaration order

  std::string line;
  raw_gate* current = nullptr;
  bool saw_end = false;
  while (!saw_end && next_line(is, line)) {
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];

    if (head[0] == '.') {
      current = nullptr;
      if (head == ".model") {
        if (tokens.size() >= 2) model_name = tokens[1];
      } else if (head == ".inputs") {
        input_names.insert(input_names.end(), tokens.begin() + 1,
                           tokens.end());
      } else if (head == ".outputs") {
        output_names.insert(output_names.end(), tokens.begin() + 1,
                            tokens.end());
      } else if (head == ".names") {
        if (tokens.size() < 2)
          throw parse_error("blif: .names needs at least an output signal");
        const std::string& out = tokens.back();
        if (gates.contains(out))
          throw parse_error("blif: signal defined twice: " + out);
        raw_gate g;
        g.fanin_names.assign(tokens.begin() + 1, tokens.end() - 1);
        gate_order.push_back(out);
        current = &gates.emplace(out, std::move(g)).first->second;
      } else if (head == ".end") {
        saw_end = true;
      } else if (head == ".latch" || head == ".subckt" || head == ".gate") {
        throw parse_error("blif: unsupported construct " + head +
                          " (combinational subset only)");
      } else {
        // Unknown dot-directives (e.g. .default_input_arrival) are ignored.
      }
      continue;
    }

    // Cover row of the current .names block.
    if (current == nullptr)
      throw parse_error("blif: cover row outside a .names block: " + line);
    std::string cube;
    char output_value = '1';
    if (current->fanin_names.empty()) {
      if (tokens.size() != 1 || (tokens[0] != "0" && tokens[0] != "1"))
        throw parse_error("blif: bad constant row: " + line);
      output_value = tokens[0][0];
    } else {
      if (tokens.size() != 2)
        throw parse_error("blif: cover row needs cube and output: " + line);
      cube = tokens[0];
      if (cube.size() != current->fanin_names.size())
        throw parse_error("blif: cube width mismatch: " + line);
      if (tokens[1] != "0" && tokens[1] != "1")
        throw parse_error("blif: output value must be 0 or 1: " + line);
      output_value = tokens[1][0];
    }
    if (!current->cubes.empty() && current->output_polarity != output_value)
      throw parse_error("blif: mixed on-set/off-set rows in one .names");
    current->output_polarity = output_value;
    current->cubes.push_back(cube);
  }

  if (input_names.empty() && gates.empty())
    throw parse_error("blif: no .inputs or .names found");

  // Build the network: inputs first, then gates in dependency order.
  network net(model_name);
  std::map<std::string, int> node_of;
  for (const std::string& name : input_names) {
    if (node_of.contains(name))
      throw parse_error("blif: duplicate input " + name);
    node_of[name] = net.add_input(name);
  }

  // Iterative DFS-based topological emission over the gate dependency graph.
  enum class mark : char { unvisited, visiting, done };
  std::map<std::string, mark> state;
  auto emit = [&](const std::string& root, auto&& self) -> int {
    if (const auto it = node_of.find(root); it != node_of.end())
      return it->second;
    const auto git = gates.find(root);
    if (git == gates.end())
      throw parse_error("blif: undefined signal " + root);
    if (state[root] == mark::visiting)
      throw parse_error("blif: combinational cycle through " + root);
    state[root] = mark::visiting;

    const raw_gate& g = git->second;
    std::vector<int> fanins;
    fanins.reserve(g.fanin_names.size());
    for (const std::string& in : g.fanin_names)
      fanins.push_back(self(in, self));

    int node;
    if (g.output_polarity == '1') {
      std::vector<std::string> cubes = g.cubes;
      if (!g.fanin_names.empty()) {
        // drop constant-0 convention: no rows = constant 0 handled below
      } else if (!cubes.empty()) {
        cubes.assign(1, "");  // ".names x" + row "1": constant one
      }
      node = net.add_gate(root, fanins, cubes);
    } else {
      // Off-set cover: named gate is the complement of the cover.
      const int on = net.add_gate(root + "_offset", fanins, g.cubes);
      node = net.add_not(on, root);
    }
    node_of[root] = node;
    state[root] = mark::done;
    return node;
  };

  // Emit every declared gate (outputs first ensures reachability; remaining
  // gates are emitted afterwards so a round-trip preserves them).
  for (const std::string& name : output_names) emit(name, emit);
  for (const std::string& name : gate_order) emit(name, emit);

  for (const std::string& name : output_names) {
    const auto it = node_of.find(name);
    if (it == node_of.end())
      throw parse_error("blif: undefined output " + name);
    net.set_output(it->second, name);
  }
  return net;
}

network parse_blif_string(const std::string& text) {
  std::istringstream is(text);
  return parse_blif(is);
}

void write_blif(const network& net, std::ostream& os) {
  os << ".model " << net.name() << '\n';
  os << ".inputs";
  for (int i : net.inputs()) os << ' ' << net.node(i).name;
  os << '\n';
  os << ".outputs";
  for (const network_output& o : net.outputs()) os << ' ' << o.name;
  os << '\n';

  for (int i = 0; i < static_cast<int>(net.node_count()); ++i) {
    const network_node& n = net.node(i);
    if (n.node_kind == network_node::kind::input) continue;
    os << ".names";
    for (int f : n.fanins) os << ' ' << net.node(f).name;
    os << ' ' << n.name << '\n';
    if (n.fanins.empty()) {
      if (!n.cubes.empty()) os << "1\n";
      // constant 0: no rows
    } else {
      for (const std::string& cube : n.cubes) os << cube << " 1\n";
    }
  }

  // Outputs that alias a differently-named node need a buffer.
  for (const network_output& o : net.outputs()) {
    if (net.node(o.node).name != o.name)
      os << ".names " << net.node(o.node).name << ' ' << o.name << "\n1 1\n";
  }
  os << ".end\n";
}

}  // namespace compact::frontend
