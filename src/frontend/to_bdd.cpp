#include "frontend/to_bdd.hpp"

#include <algorithm>

#include "bdd/ordering.hpp"

namespace compact::frontend {
namespace {

/// BDD variable level of each declared input under `order`.
std::vector<int> level_of_input(const network& net,
                                const std::vector<int>& order) {
  const int n = net.input_count();
  std::vector<int> level(n);
  if (order.empty()) {
    for (int i = 0; i < n; ++i) level[i] = i;
    return level;
  }
  check(static_cast<int>(order.size()) == n,
        "build_sbdd: order size must equal input count");
  std::vector<bool> seen(n, false);
  for (int l = 0; l < n; ++l) {
    const int input = order[l];
    check(input >= 0 && input < n && !seen[input],
          "build_sbdd: order must be a permutation of the inputs");
    seen[input] = true;
    level[input] = l;
  }
  return level;
}

/// Sweep all gates; returns the BDD of every network node.
std::vector<bdd::node_handle> sweep(const network& net, bdd::manager& m,
                                    const std::vector<int>& order) {
  check(m.variable_count() >= net.input_count(),
        "build_sbdd: manager has too few variables");
  const std::vector<int> level = level_of_input(net, order);

  std::vector<bdd::node_handle> f(net.node_count());
  int next_input = 0;
  for (int i = 0; i < static_cast<int>(net.node_count()); ++i) {
    const network_node& n = net.node(i);
    if (n.node_kind == network_node::kind::input) {
      f[i] = m.var(level[next_input++]);
      continue;
    }
    // OR of cube ANDs.
    bdd::node_handle acc = m.constant(false);
    for (const std::string& cube : n.cubes) {
      bdd::node_handle term = m.constant(true);
      for (std::size_t j = 0; j < cube.size(); ++j) {
        if (cube[j] == '-') continue;
        const bdd::node_handle fanin = f[static_cast<std::size_t>(n.fanins[j])];
        term = m.apply_and(
            term, cube[j] == '1' ? fanin : m.apply_not(fanin));
        if (term == bdd::false_handle) break;
      }
      acc = m.apply_or(acc, term);
      if (acc == bdd::true_handle) break;
    }
    f[i] = acc;
  }
  return f;
}

}  // namespace

sbdd build_sbdd(const network& net, bdd::manager& m,
                const std::vector<int>& order) {
  const std::vector<bdd::node_handle> f = sweep(net, m, order);
  sbdd result;
  for (const network_output& o : net.outputs()) {
    result.roots.push_back(f[static_cast<std::size_t>(o.node)]);
    result.names.push_back(o.name);
  }
  return result;
}

std::vector<int> optimize_order(const network& net, order_effort effort) {
  const int inputs = net.input_count();
  std::vector<int> identity(static_cast<std::size_t>(inputs));
  for (int i = 0; i < inputs; ++i) identity[static_cast<std::size_t>(i)] = i;
  if (effort == order_effort::none || inputs <= 1) return identity;

  const bdd::order_builder builder =
      [&net](bdd::manager& m,
             const std::vector<int>& order) -> std::vector<bdd::node_handle> {
    return build_sbdd(net, m, order).roots;
  };

  if (effort == order_effort::exhaustive && inputs <= 9)
    return bdd::best_order_exhaustive(inputs, builder).order;
  return bdd::sift_order(inputs, builder).order;
}

bdd::node_handle build_output(const network& net, bdd::manager& m,
                              int output_index, const std::vector<int>& order) {
  check(output_index >= 0 &&
            output_index < static_cast<int>(net.outputs().size()),
        "build_output: output index out of range");
  // A full sweep is wasteful for one output but keeps behaviour identical;
  // the separate-ROBDD experiments use fresh managers per output anyway.
  const std::vector<bdd::node_handle> f = sweep(net, m, order);
  return f[static_cast<std::size_t>(net.outputs()[output_index].node)];
}

}  // namespace compact::frontend
