#include "frontend/verilog.hpp"

#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace compact::frontend {
namespace {

// ---- tokenization -----------------------------------------------------------

struct token {
  enum class kind { identifier, punct, end };
  kind k = kind::end;
  std::string text;
};

class lexer {
 public:
  explicit lexer(std::string text) : text_(std::move(text)) { advance(); }

  const token& peek() const { return current_; }
  token next() {
    token t = current_;
    advance();
    return t;
  }
  bool accept(const std::string& text) {
    if (current_.text == text) {
      advance();
      return true;
    }
    return false;
  }
  void expect(const std::string& text) {
    if (!accept(text))
      throw parse_error("verilog: expected '" + text + "' but found '" +
                        current_.text + "'");
  }

 private:
  void advance() {
    skip_space_and_comments();
    current_ = token{};
    if (pos_ >= text_.size()) return;
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '\\') {
      std::size_t start = pos_;
      if (c == '\\') {  // escaped identifier, ends at whitespace
        ++pos_;
        while (pos_ < text_.size() &&
               !std::isspace(static_cast<unsigned char>(text_[pos_])))
          ++pos_;
      } else {
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '$'))
          ++pos_;
      }
      current_ = {token::kind::identifier, text_.substr(start, pos_ - start)};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Numeric literal like 1'b0; consume digits, optional 'b/d/h part.
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '\''))
        ++pos_;
      current_ = {token::kind::identifier, text_.substr(start, pos_ - start)};
      return;
    }
    current_ = {token::kind::punct, std::string(1, c)};
    ++pos_;
  }

  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/'))
          ++pos_;
        pos_ = std::min(pos_ + 2, text_.size());
      } else {
        break;
      }
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
  token current_;
};

// ---- intermediate netlist ---------------------------------------------------

struct expr {
  enum class op { var, constant, inv, and2, or2, xor2 };
  op o = op::var;
  std::string name;       // var
  bool value = false;     // constant
  std::unique_ptr<expr> a, b;
};

struct definition {
  // Either a primitive gate (kind + input names) or an assign expression.
  std::string gate_kind;  // empty for assigns
  std::vector<std::string> inputs;
  std::unique_ptr<expr> rhs;
};

bool is_gate_keyword(const std::string& s) {
  return s == "and" || s == "or" || s == "nand" || s == "nor" ||
         s == "xor" || s == "xnor" || s == "buf" || s == "not";
}

// expression grammar: or_expr := xor_expr ('|' xor_expr)*
//                     xor_expr := and_expr ('^' and_expr)*
//                     and_expr := unary ('&' unary)*
//                     unary := '~' unary | '(' or_expr ')' | literal | ident
std::unique_ptr<expr> parse_or(lexer& lex);

std::unique_ptr<expr> parse_unary(lexer& lex) {
  if (lex.accept("~")) {
    auto e = std::make_unique<expr>();
    e->o = expr::op::inv;
    e->a = parse_unary(lex);
    return e;
  }
  if (lex.accept("(")) {
    auto e = parse_or(lex);
    lex.expect(")");
    return e;
  }
  const token t = lex.next();
  if (t.k != token::kind::identifier)
    throw parse_error("verilog: unexpected token '" + t.text +
                      "' in expression");
  auto e = std::make_unique<expr>();
  if (t.text == "1'b0" || t.text == "1'b1") {
    e->o = expr::op::constant;
    e->value = t.text == "1'b1";
  } else if (std::isdigit(static_cast<unsigned char>(t.text[0]))) {
    throw parse_error("verilog: unsupported literal " + t.text);
  } else {
    e->o = expr::op::var;
    e->name = t.text;
  }
  return e;
}

std::unique_ptr<expr> parse_and(lexer& lex) {
  auto left = parse_unary(lex);
  while (lex.accept("&")) {
    auto e = std::make_unique<expr>();
    e->o = expr::op::and2;
    e->a = std::move(left);
    e->b = parse_unary(lex);
    left = std::move(e);
  }
  return left;
}

std::unique_ptr<expr> parse_xor(lexer& lex) {
  auto left = parse_and(lex);
  while (lex.accept("^")) {
    auto e = std::make_unique<expr>();
    e->o = expr::op::xor2;
    e->a = std::move(left);
    e->b = parse_and(lex);
    left = std::move(e);
  }
  return left;
}

std::unique_ptr<expr> parse_or(lexer& lex) {
  auto left = parse_xor(lex);
  while (lex.accept("|")) {
    auto e = std::make_unique<expr>();
    e->o = expr::op::or2;
    e->a = std::move(left);
    e->b = parse_xor(lex);
    left = std::move(e);
  }
  return left;
}

std::vector<std::string> parse_name_list(lexer& lex) {
  std::vector<std::string> names;
  do {
    const token t = lex.next();
    if (t.k != token::kind::identifier)
      throw parse_error("verilog: expected identifier, found '" + t.text +
                        "'");
    if (t.text.find('[') != std::string::npos)
      throw parse_error("verilog: vector signals are not supported");
    names.push_back(t.text);
  } while (lex.accept(","));
  lex.expect(";");
  return names;
}

}  // namespace

network parse_verilog(std::istream& is) {
  std::stringstream buffer;
  buffer << is.rdbuf();
  lexer lex(buffer.str());

  lex.expect("module");
  const token name_token = lex.next();
  if (name_token.k != token::kind::identifier)
    throw parse_error("verilog: module name expected");
  // Port list (names only; directions come from declarations).
  if (lex.accept("(")) {
    while (!lex.accept(")")) {
      if (lex.peek().k == token::kind::end)
        throw parse_error("verilog: unterminated port list");
      (void)lex.next();
    }
  }
  lex.expect(";");

  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::map<std::string, definition> defs;

  while (true) {
    const token head = lex.next();
    if (head.k == token::kind::end)
      throw parse_error("verilog: missing endmodule");
    if (head.text == "endmodule") break;
    if (head.text == "input") {
      for (std::string& n : parse_name_list(lex))
        input_names.push_back(std::move(n));
    } else if (head.text == "output") {
      for (std::string& n : parse_name_list(lex))
        output_names.push_back(std::move(n));
    } else if (head.text == "wire") {
      (void)parse_name_list(lex);  // declarations carry no logic
    } else if (head.text == "assign") {
      const token lhs = lex.next();
      if (lhs.k != token::kind::identifier)
        throw parse_error("verilog: assign target expected");
      lex.expect("=");
      definition d;
      d.rhs = parse_or(lex);
      lex.expect(";");
      if (defs.contains(lhs.text))
        throw parse_error("verilog: signal driven twice: " + lhs.text);
      defs.emplace(lhs.text, std::move(d));
    } else if (is_gate_keyword(head.text)) {
      // `kind [instance] ( out, in... );`
      std::string instance;
      if (lex.peek().k == token::kind::identifier) instance = lex.next().text;
      lex.expect("(");
      std::vector<std::string> terminals;
      do {
        const token t = lex.next();
        if (t.k != token::kind::identifier)
          throw parse_error("verilog: gate terminal expected");
        terminals.push_back(t.text);
      } while (lex.accept(","));
      lex.expect(")");
      lex.expect(";");
      if (terminals.size() < 2)
        throw parse_error("verilog: gate needs an output and input");
      definition d;
      d.gate_kind = head.text;
      d.inputs.assign(terminals.begin() + 1, terminals.end());
      if (defs.contains(terminals[0]))
        throw parse_error("verilog: signal driven twice: " + terminals[0]);
      defs.emplace(terminals[0], std::move(d));
    } else if (head.text == "always" || head.text == "reg" ||
               head.text == "initial") {
      throw parse_error("verilog: behavioural construct '" + head.text +
                        "' is not supported (combinational netlists only)");
    } else {
      throw parse_error("verilog: unexpected token '" + head.text + "'");
    }
  }

  // ---- emit into a network (DFS over the definition graph). --------------
  network net(name_token.text);
  std::map<std::string, int> node_of;
  for (const std::string& n : input_names) {
    if (node_of.contains(n))
      throw parse_error("verilog: duplicate input " + n);
    node_of.emplace(n, net.add_input(n));
  }

  std::set<std::string> in_progress;

  auto emit_signal = [&](const std::string& signal, auto&& self) -> int {
    if (const auto it = node_of.find(signal); it != node_of.end())
      return it->second;
    const auto dit = defs.find(signal);
    if (dit == defs.end())
      throw parse_error("verilog: undriven signal " + signal);
    if (!in_progress.insert(signal).second)
      throw parse_error("verilog: combinational loop through " + signal);
    const definition& d = dit->second;

    int node;
    if (!d.gate_kind.empty()) {
      std::vector<int> ins;
      for (const std::string& in : d.inputs) ins.push_back(self(in, self));
      const std::string& k = d.gate_kind;
      if (k == "not") {
        if (ins.size() != 1)
          throw parse_error("verilog: not takes one input");
        node = net.add_not(ins[0], signal);
      } else if (k == "buf") {
        if (ins.size() != 1)
          throw parse_error("verilog: buf takes one input");
        node = net.add_buf(ins[0], signal);
      } else {
        int acc = ins[0];
        for (std::size_t i = 1; i < ins.size(); ++i) {
          const bool last = i + 1 == ins.size();
          const std::string gate_name = last ? signal : std::string{};
          if (k == "and")
            acc = net.add_and(acc, ins[i], gate_name);
          else if (k == "or")
            acc = net.add_or(acc, ins[i], gate_name);
          else if (k == "xor")
            acc = net.add_xor(acc, ins[i], gate_name);
          else if (k == "xnor")
            acc = last ? net.add_xnor(acc, ins[i], gate_name)
                       : net.add_xor(acc, ins[i]);
          else if (k == "nand")
            acc = last ? net.add_not(net.add_and(acc, ins[i]), gate_name)
                       : net.add_and(acc, ins[i]);
          else if (k == "nor")
            acc = last ? net.add_not(net.add_or(acc, ins[i]), gate_name)
                       : net.add_or(acc, ins[i]);
        }
        if (ins.size() == 1) {
          // Degenerate single-input multi-input gate.
          node = (k == "nand" || k == "nor") ? net.add_not(acc, signal)
                                             : net.add_buf(acc, signal);
        } else {
          node = acc;
        }
      }
    } else {
      // assign expression
      auto build = [&](const expr& e, auto&& build_ref) -> int {
        switch (e.o) {
          case expr::op::var:
            return self(e.name, self);
          case expr::op::constant:
            return net.add_const(e.value);
          case expr::op::inv:
            return net.add_not(build_ref(*e.a, build_ref));
          case expr::op::and2:
            return net.add_and(build_ref(*e.a, build_ref),
                               build_ref(*e.b, build_ref));
          case expr::op::or2:
            return net.add_or(build_ref(*e.a, build_ref),
                              build_ref(*e.b, build_ref));
          case expr::op::xor2:
            return net.add_xor(build_ref(*e.a, build_ref),
                               build_ref(*e.b, build_ref));
        }
        throw parse_error("verilog: broken expression tree");
      };
      node = net.add_buf(build(*d.rhs, build), signal);
    }
    in_progress.erase(signal);
    node_of.emplace(signal, node);
    return node;
  };

  for (const std::string& out : output_names) {
    const int node = emit_signal(out, emit_signal);
    net.set_output(node, out);
  }
  return net;
}

network parse_verilog_string(const std::string& text) {
  std::istringstream is(text);
  return parse_verilog(is);
}

void write_verilog(const network& net, std::ostream& os) {
  os << "module " << net.name() << " (";
  bool first = true;
  for (int i : net.inputs()) {
    os << (first ? "" : ", ") << net.node(i).name;
    first = false;
  }
  for (const network_output& o : net.outputs())
    os << (first ? (first = false, "") : ", ") << o.name;
  os << ");\n";

  os << "  input";
  first = true;
  for (int i : net.inputs()) {
    os << (first ? " " : ", ") << net.node(i).name;
    first = false;
  }
  os << ";\n  output";
  first = true;
  for (const network_output& o : net.outputs()) {
    os << (first ? " " : ", ") << o.name;
    first = false;
  }
  os << ";\n";

  // Internal wires: every gate that is not itself an output name.
  std::set<std::string> output_names;
  for (const network_output& o : net.outputs()) output_names.insert(o.name);
  std::vector<std::string> wires;
  for (int i = 0; i < static_cast<int>(net.node_count()); ++i) {
    const network_node& n = net.node(i);
    if (n.node_kind == network_node::kind::gate &&
        !output_names.contains(n.name))
      wires.push_back(n.name);
  }
  if (!wires.empty()) {
    os << "  wire";
    first = true;
    for (const std::string& w : wires) {
      os << (first ? " " : ", ") << w;
      first = false;
    }
    os << ";\n";
  }

  // Gates as sum-of-products assigns.
  for (int i = 0; i < static_cast<int>(net.node_count()); ++i) {
    const network_node& n = net.node(i);
    if (n.node_kind != network_node::kind::gate) continue;
    os << "  assign " << n.name << " = ";
    if (n.cubes.empty()) {
      os << "1'b0";
    } else {
      bool first_cube = true;
      for (const std::string& cube : n.cubes) {
        if (!first_cube) os << " | ";
        first_cube = false;
        bool any_literal = false;
        std::string term;
        for (std::size_t j = 0; j < cube.size(); ++j) {
          if (cube[j] == '-') continue;
          if (any_literal) term += " & ";
          if (cube[j] == '0') term += "~";
          term += net.node(n.fanins[j]).name;
          any_literal = true;
        }
        os << "(" << (any_literal ? term : std::string("1'b1")) << ")";
      }
    }
    os << ";\n";
  }

  // Aliased outputs.
  for (const network_output& o : net.outputs())
    if (net.node(o.node).name != o.name)
      os << "  assign " << o.name << " = " << net.node(o.node).name << ";\n";

  os << "endmodule\n";
}

}  // namespace compact::frontend
