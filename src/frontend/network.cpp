#include "frontend/network.hpp"

#include <algorithm>

namespace compact::frontend {

std::string network::fresh_name(const std::string& hint) {
  return hint + "_n" + std::to_string(anonymous_counter_++);
}

void network::check_fanins(const std::vector<int>& fanins) const {
  for (int f : fanins)
    check(f >= 0 && static_cast<std::size_t>(f) < nodes_.size(),
          "network: fanin index out of range");
}

int network::add_input(std::string name) {
  network_node n;
  n.node_kind = network_node::kind::input;
  n.name = name.empty() ? fresh_name("in") : std::move(name);
  nodes_.push_back(std::move(n));
  input_nodes_.push_back(static_cast<int>(nodes_.size() - 1));
  ++input_count_;
  return static_cast<int>(nodes_.size() - 1);
}

int network::add_gate(std::string name, std::vector<int> fanins,
                      std::vector<std::string> cubes) {
  check_fanins(fanins);
  for (const std::string& cube : cubes) {
    check(cube.size() == fanins.size(),
          "network: cube width must match fanin count");
    for (char c : cube)
      check(c == '0' || c == '1' || c == '-',
            "network: cube characters must be 0, 1 or -");
  }
  network_node n;
  n.node_kind = network_node::kind::gate;
  n.name = name.empty() ? fresh_name("g") : std::move(name);
  n.fanins = std::move(fanins);
  n.cubes = std::move(cubes);
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size() - 1);
}

int network::add_const(bool value, std::string name) {
  return add_gate(std::move(name), {},
                  value ? std::vector<std::string>{""}
                        : std::vector<std::string>{});
}

int network::add_buf(int a, std::string name) {
  return add_gate(std::move(name), {a}, {"1"});
}

int network::add_not(int a, std::string name) {
  return add_gate(std::move(name), {a}, {"0"});
}

int network::add_and(int a, int b, std::string name) {
  return add_gate(std::move(name), {a, b}, {"11"});
}

int network::add_or(int a, int b, std::string name) {
  return add_gate(std::move(name), {a, b}, {"1-", "-1"});
}

int network::add_nand(int a, int b, std::string name) {
  return add_gate(std::move(name), {a, b}, {"0-", "-0"});
}

int network::add_nor(int a, int b, std::string name) {
  return add_gate(std::move(name), {a, b}, {"00"});
}

int network::add_xor(int a, int b, std::string name) {
  return add_gate(std::move(name), {a, b}, {"10", "01"});
}

int network::add_xnor(int a, int b, std::string name) {
  return add_gate(std::move(name), {a, b}, {"11", "00"});
}

int network::add_mux(int s, int t, int e, std::string name) {
  return add_gate(std::move(name), {s, t, e}, {"11-", "0-1"});
}

int network::add_and_n(const std::vector<int>& operands, std::string name) {
  if (operands.empty()) return add_const(true, std::move(name));
  if (operands.size() == 1) return add_buf(operands[0], std::move(name));
  return add_gate(std::move(name), operands,
                  {std::string(operands.size(), '1')});
}

int network::add_or_n(const std::vector<int>& operands, std::string name) {
  if (operands.empty()) return add_const(false, std::move(name));
  if (operands.size() == 1) return add_buf(operands[0], std::move(name));
  std::vector<std::string> cubes;
  for (std::size_t i = 0; i < operands.size(); ++i) {
    std::string cube(operands.size(), '-');
    cube[i] = '1';
    cubes.push_back(std::move(cube));
  }
  return add_gate(std::move(name), operands, std::move(cubes));
}

void network::set_output(int node, std::string name) {
  check(node >= 0 && static_cast<std::size_t>(node) < nodes_.size(),
        "network: output node out of range");
  outputs_.push_back({node, name.empty() ? nodes_[node].name : std::move(name)});
}

const network_node& network::node(int index) const {
  check(index >= 0 && static_cast<std::size_t>(index) < nodes_.size(),
        "network: node index out of range");
  return nodes_[index];
}

std::vector<int> network::inputs() const { return input_nodes_; }

std::vector<bool> network::simulate(
    const std::vector<bool>& assignment) const {
  check(assignment.size() == static_cast<std::size_t>(input_count_),
        "network: assignment size mismatch");
  std::vector<bool> value(nodes_.size(), false);
  std::size_t next_input = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const network_node& n = nodes_[i];
    if (n.node_kind == network_node::kind::input) {
      value[i] = assignment[next_input++];
      continue;
    }
    bool out = false;
    for (const std::string& cube : n.cubes) {
      bool cube_true = true;
      for (std::size_t j = 0; j < cube.size() && cube_true; ++j) {
        if (cube[j] == '-') continue;
        const bool want = cube[j] == '1';
        if (value[static_cast<std::size_t>(n.fanins[j])] != want)
          cube_true = false;
      }
      if (cube_true) {
        out = true;
        break;
      }
    }
    value[i] = out;
  }
  std::vector<bool> result;
  result.reserve(outputs_.size());
  for (const network_output& o : outputs_)
    result.push_back(value[static_cast<std::size_t>(o.node)]);
  return result;
}

}  // namespace compact::frontend
