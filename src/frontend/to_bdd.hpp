// Network -> (shared) BDD construction.
//
// Sweeps the gates of a topologically-ordered network through a BDD manager.
// Building all outputs in a single manager yields the shared BDD (SBDD) of
// Section VII-A; building each output in its own manager yields the
// separate-ROBDD baseline the paper compares against in Table III.
#pragma once

#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "frontend/network.hpp"

namespace compact::frontend {

struct sbdd {
  std::vector<bdd::node_handle> roots;  // parallel to names
  std::vector<std::string> names;
};

/// Build all outputs of `net` inside `m` (which must have at least
/// net.input_count() variables). `order[level] = input position`, i.e. BDD
/// level `l` tests declared input `order[l]`; empty = identity order.
[[nodiscard]] sbdd build_sbdd(const network& net, bdd::manager& m,
                              const std::vector<int>& order = {});

/// Build one output function in `m`. `output_index` indexes net.outputs().
[[nodiscard]] bdd::node_handle build_output(const network& net,
                                            bdd::manager& m, int output_index,
                                            const std::vector<int>& order = {});

enum class order_effort {
  none,        // identity (declaration) order
  sift,        // rebuild-based sifting (default; <= ~20 inputs)
  exhaustive,  // all permutations (<= 9 inputs), falls back to sift
};

/// Search for a variable order minimizing the SBDD size of `net`.
/// Returns order[level] = declared-input index, usable with build_sbdd.
[[nodiscard]] std::vector<int> optimize_order(
    const network& net, order_effort effort = order_effort::sift);

}  // namespace compact::frontend
