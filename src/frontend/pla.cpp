#include "frontend/pla.hpp"

#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace compact::frontend {
namespace {

/// Strictly positive count after a .i/.o directive. std::stoi alone would
/// leak std::invalid_argument / std::out_of_range for garbage like ".i abc"
/// or ".i 99999999999999", breaking the parser's parse_error contract.
int parse_count(const std::string& text, const std::string& directive) {
  std::size_t consumed = 0;
  int value = 0;
  try {
    value = std::stoi(text, &consumed);
  } catch (const std::exception&) {
    throw parse_error("pla: " + directive + " expects a number, got '" +
                      text + "'");
  }
  if (consumed != text.size())
    throw parse_error("pla: " + directive + " expects a number, got '" +
                      text + "'");
  if (value <= 0)
    throw parse_error("pla: " + directive + " must be positive, got '" +
                      text + "'");
  return value;
}

}  // namespace

network parse_pla(std::istream& is) {
  int num_inputs = -1;
  int num_outputs = -1;
  std::vector<std::string> input_labels;
  std::vector<std::string> output_labels;
  std::vector<std::pair<std::string, std::string>> rows;  // (cube, outputs)

  std::string line;
  while (std::getline(is, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) continue;

    if (tokens[0][0] == '.') {
      if (tokens[0] == ".i") {
        if (tokens.size() != 2) throw parse_error("pla: malformed .i");
        num_inputs = parse_count(tokens[1], ".i");
      } else if (tokens[0] == ".o") {
        if (tokens.size() != 2) throw parse_error("pla: malformed .o");
        num_outputs = parse_count(tokens[1], ".o");
      } else if (tokens[0] == ".ilb") {
        input_labels.assign(tokens.begin() + 1, tokens.end());
      } else if (tokens[0] == ".ob") {
        output_labels.assign(tokens.begin() + 1, tokens.end());
      } else if (tokens[0] == ".e" || tokens[0] == ".end") {
        break;
      } else if (tokens[0] == ".p" || tokens[0] == ".type" ||
                 tokens[0] == ".phase" || tokens[0] == ".pair") {
        // .p is advisory; the others are accepted and ignored.
      } else {
        throw parse_error("pla: unsupported directive " + tokens[0]);
      }
      continue;
    }

    // Product-term row: input cube then output part (possibly joined).
    std::string cube, outs;
    if (tokens.size() == 2) {
      cube = tokens[0];
      outs = tokens[1];
    } else if (tokens.size() == 1 && num_inputs >= 0 && num_outputs >= 0 &&
               tokens[0].size() ==
                   static_cast<std::size_t>(num_inputs + num_outputs)) {
      cube = tokens[0].substr(0, static_cast<std::size_t>(num_inputs));
      outs = tokens[0].substr(static_cast<std::size_t>(num_inputs));
    } else {
      throw parse_error("pla: malformed row: " + line);
    }
    if (num_inputs < 0 || num_outputs < 0)
      throw parse_error("pla: row before .i/.o");
    if (cube.size() != static_cast<std::size_t>(num_inputs) ||
        outs.size() != static_cast<std::size_t>(num_outputs))
      throw parse_error("pla: row width mismatch: " + line);
    for (char c : cube)
      if (c != '0' && c != '1' && c != '-')
        throw parse_error("pla: bad cube character in: " + line);
    rows.emplace_back(cube, outs);
  }

  if (num_inputs < 0 || num_outputs < 0)
    throw parse_error("pla: missing .i or .o");

  network net("pla");
  std::vector<int> inputs;
  for (int i = 0; i < num_inputs; ++i) {
    const std::string name = i < static_cast<int>(input_labels.size())
                                 ? input_labels[i]
                                 : "i" + std::to_string(i);
    inputs.push_back(net.add_input(name));
  }

  for (int o = 0; o < num_outputs; ++o) {
    std::vector<std::string> cubes;
    for (const auto& [cube, outs] : rows)
      if (outs[static_cast<std::size_t>(o)] == '1') cubes.push_back(cube);
    const std::string name = o < static_cast<int>(output_labels.size())
                                 ? output_labels[o]
                                 : "o" + std::to_string(o);
    const int gate = net.add_gate(name, inputs, cubes);
    net.set_output(gate, name);
  }
  return net;
}

network parse_pla_string(const std::string& text) {
  std::istringstream is(text);
  return parse_pla(is);
}

}  // namespace compact::frontend
