// Formal equivalence checking between networks.
//
// Canonical ROBDDs make combinational equivalence a pointer comparison:
// build both networks' outputs in one shared manager and compare root
// handles. Used by the test suite to cross-check parsers, generators and
// optimization passes, and exposed as a library utility (the BDD-based
// analogue of `abc cec`).
#pragma once

#include <string>
#include <vector>

#include "frontend/network.hpp"

namespace compact::frontend {

struct equivalence_report {
  bool equivalent = true;
  /// Names of mismatched output pairs (by position) — empty when
  /// equivalent. A leading "#inputs" / "#outputs" entry flags interface
  /// mismatches.
  std::vector<std::string> mismatches;
  /// For the first functional mismatch: a satisfying counterexample
  /// assignment (indexed by declared input), empty otherwise.
  std::vector<bool> counterexample;
};

/// Check that `a` and `b` compute the same functions output-by-output
/// (matched positionally; both must have identical input/output counts).
[[nodiscard]] equivalence_report check_equivalence(const network& a,
                                                   const network& b);

}  // namespace compact::frontend
