// PLA (Programmable Logic Array, espresso format) reader.
//
// Supports the common "fd"-type PLA files: .i/.o/.p/.ilb/.ob/.type/.e
// directives and product-term rows. Each output is the OR of the rows whose
// output column is '1'; output columns '0', '-' and '~' do not contribute to
// the on-set (don't-cares are resolved to 0, as ABC does when deriving a
// completely-specified function).
#pragma once

#include <istream>
#include <string>

#include "frontend/network.hpp"

namespace compact::frontend {

[[nodiscard]] network parse_pla(std::istream& is);
[[nodiscard]] network parse_pla_string(const std::string& text);

}  // namespace compact::frontend
