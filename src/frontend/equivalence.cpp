#include "frontend/equivalence.hpp"

#include "bdd/manager.hpp"
#include "frontend/to_bdd.hpp"

namespace compact::frontend {
namespace {

/// A satisfying assignment of f (assumes f != false).
std::vector<bool> any_satisfying(const bdd::manager& m, bdd::node_handle f,
                                 int inputs) {
  std::vector<bool> assignment(static_cast<std::size_t>(inputs), false);
  bdd::node_handle u = f;
  while (!m.is_terminal(u)) {
    const bdd::node& n = m.at(u);
    // Follow a branch that can still reach 1.
    if (n.high != bdd::false_handle) {
      assignment[static_cast<std::size_t>(n.var)] = true;
      u = n.high;
    } else {
      assignment[static_cast<std::size_t>(n.var)] = false;
      u = n.low;
    }
  }
  return assignment;
}

}  // namespace

equivalence_report check_equivalence(const network& a, const network& b) {
  equivalence_report report;
  if (a.input_count() != b.input_count()) {
    report.equivalent = false;
    report.mismatches.push_back("#inputs");
    return report;
  }
  if (a.outputs().size() != b.outputs().size()) {
    report.equivalent = false;
    report.mismatches.push_back("#outputs");
    return report;
  }

  bdd::manager m(a.input_count());
  const sbdd fa = build_sbdd(a, m);
  const sbdd fb = build_sbdd(b, m);
  for (std::size_t o = 0; o < fa.roots.size(); ++o) {
    if (fa.roots[o] == fb.roots[o]) continue;  // canonical: same handle
    report.equivalent = false;
    report.mismatches.push_back(fa.names[o] + " vs " + fb.names[o]);
    if (report.counterexample.empty()) {
      // The XOR of the two functions is satisfiable exactly on mismatches.
      bdd::node_handle miter = m.apply_xor(fa.roots[o], fb.roots[o]);
      report.counterexample = any_satisfying(m, miter, a.input_count());
    }
  }
  return report;
}

}  // namespace compact::frontend
