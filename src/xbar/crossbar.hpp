// Crossbar design representation for flow-based computing.
//
// A design assigns every memristor junction a literal: constant off ('0'),
// constant on ('1'), a variable, or a negated variable (Section II-C). One
// wordline is the input (driven with V_in during evaluation) and one or more
// wordlines are outputs (sensed through resistors). By the paper's
// convention the input is the bottom-most wordline and outputs are at the
// top.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace compact::xbar {

enum class literal_kind : std::uint8_t {
  off,      // never conducts ('0'); the default for unassigned junctions
  on,       // always conducts ('1'); used to bridge VH rows/columns
  positive, // conducts when the variable is 1
  negative, // conducts when the variable is 0
};

struct device {
  literal_kind kind = literal_kind::off;
  std::int32_t variable = -1;  // meaningful for positive/negative

  [[nodiscard]] bool conducts(const std::vector<bool>& assignment) const {
    switch (kind) {
      case literal_kind::off:
        return false;
      case literal_kind::on:
        return true;
      case literal_kind::positive:
        return assignment[static_cast<std::size_t>(variable)];
      case literal_kind::negative:
        return !assignment[static_cast<std::size_t>(variable)];
    }
    return false;
  }
};

struct output_port {
  int row = 0;
  std::string name;
};

class crossbar {
 public:
  crossbar(int rows, int columns);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int columns() const { return columns_; }

  [[nodiscard]] const device& at(int row, int column) const;
  void set(int row, int column, device d);
  void set_literal(int row, int column, int variable, bool positive);
  void set_on(int row, int column);

  /// The wordline driven with V_in.
  void set_input_row(int row);
  [[nodiscard]] int input_row() const { return input_row_; }
  /// Remove the input designation. Fragments of a partitioned design other
  /// than the one holding the '1' terminal are driven through bridges, not
  /// directly (xbar/partitioned).
  void clear_input_row() { input_row_ = -1; }

  /// Add a sensed output wordline. Constant outputs are modeled with
  /// add_constant_output (no row is consumed for constant 0).
  void add_output(int row, std::string name);
  void add_constant_output(bool value, std::string name);
  [[nodiscard]] const std::vector<output_port>& outputs() const {
    return outputs_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, bool>>&
  constant_outputs() const {
    return constant_outputs_;
  }

  // --- size metrics (Section III) ----------------------------------------
  [[nodiscard]] int semiperimeter() const { return rows_ + columns_; }
  [[nodiscard]] int max_dimension() const { return std::max(rows_, columns_); }
  [[nodiscard]] long long area() const {
    return static_cast<long long>(rows_) * columns_;
  }
  /// Number of junctions carrying a variable literal (the paper's power
  /// proxy for flow-based designs: memristors that must be programmed per
  /// evaluation).
  [[nodiscard]] int active_device_count() const;
  /// Evaluation latency in time steps: one per wordline to program the
  /// devices plus one to evaluate (Section VIII, via [33]).
  [[nodiscard]] int delay_steps() const { return rows_ + 1; }

  /// ASCII rendering (variables as letters when possible) for examples/docs.
  void print(std::ostream& os,
             const std::vector<std::string>& variable_names = {}) const;

 private:
  int rows_ = 0;
  int columns_ = 0;
  int input_row_ = -1;
  std::vector<device> devices_;  // row-major
  std::vector<output_port> outputs_;
  std::vector<std::pair<std::string, bool>> constant_outputs_;
};

/// Rewrite every literal device's variable index through `mapping`
/// (mapping[old] = new). Used after synthesizing under a permuted BDD
/// variable order to express the design in the caller's input numbering.
[[nodiscard]] crossbar remap_variables(const crossbar& design,
                                       const std::vector<int>& mapping);

}  // namespace compact::xbar
