// Device-fault injection and yield analysis.
//
// Fabricated crossbars suffer stuck devices: a junction stuck OFF can break
// every path through its memristor, one stuck ON can create sneak paths
// that flip outputs to 1. Flow-based designs are evaluated through exactly
// these paths, so fault tolerance is part of adopting the paper's approach
// in practice. This module injects stuck-at faults and measures functional
// yield against the fault-free design.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "xbar/crossbar.hpp"

namespace compact::xbar {

enum class fault_kind : std::uint8_t { stuck_off, stuck_on };

struct fault {
  int row = 0;
  int column = 0;
  fault_kind kind = fault_kind::stuck_off;
};

/// A copy of `design` with `faults` applied (stuck_off junctions become
/// literal 'off', stuck_on become 'on', overriding their programming).
[[nodiscard]] crossbar inject_faults(const crossbar& design,
                                     const std::vector<fault>& faults);

struct yield_options {
  int trials = 200;            // random fault patterns
  double fault_rate = 0.01;    // per-junction fault probability
  double stuck_on_share = 0.5; // fraction of faults that are stuck-on
  int vectors = 64;            // assignments checked per pattern
  std::uint64_t seed = 7;
  /// Trials fan out across workers; each trial draws from its own rng
  /// substream, so the report is bit-identical for every thread count.
  parallel_options parallel;
};

struct yield_report {
  int trials = 0;
  int functional = 0;       // fault patterns with no observed mismatch
  double yield = 1.0;       // functional / trials
  double average_faults = 0.0;
};

/// Monte-Carlo functional yield of `design` over `variable_count` inputs:
/// a trial passes when the faulty design matches the fault-free one on
/// every sampled assignment.
[[nodiscard]] yield_report estimate_yield(const crossbar& design,
                                          int variable_count,
                                          const yield_options& options = {});

/// All single-fault locations whose failure is observable on some sampled
/// assignment (the design's critical junctions).
[[nodiscard]] std::vector<fault> critical_single_faults(
    const crossbar& design, int variable_count, int vectors = 64,
    std::uint64_t seed = 7);

}  // namespace compact::xbar
