// Crossbar design serialization.
//
// A plain-text `.xbar` format so synthesized designs can be saved by the
// CLI, diffed in experiments, and reloaded for evaluation without
// re-running the NP-hard labeling step.
//
//   xbar 1            # format version
//   dim R C
//   input ROW
//   output ROW NAME   # repeated
//   const NAME 0|1    # constant outputs, repeated
//   var INDEX NAME    # optional variable names, repeated
//   d ROW COL on      # devices: on / +VAR / -VAR (off junctions omitted)
//   d ROW COL +3
//   end
//
// Format version 2 carries a partitioned (multi-array) design: the header
// is followed by a mandatory `arrays K` count, optional global `var` lines,
// K array blocks (each the version-1 body between `array I` and `endarray`),
// and the inter-array connection list:
//
//   xbar 2
//   arrays 2
//   var 0 a
//   array 0
//   dim R C
//   input ROW
//   output ROW NAME
//   const NAME 0|1
//   d ROW COL +0
//   endarray
//   array 1
//   ...
//   endarray
//   connect 0 row 3 1 col 0   # weld wires into one electrical net
//   end
//
// Single-array designs keep writing version 1, so unpartitioned output is
// byte-identical to what pre-partitioning builds produced; the version-2
// reader accepts both versions.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "xbar/crossbar.hpp"
#include "xbar/partitioned.hpp"

namespace compact::xbar {

/// Write `design` (with optional variable names) to `os`.
void write_design(const crossbar& design, std::ostream& os,
                  const std::vector<std::string>& variable_names = {});

struct loaded_design {
  crossbar design;
  std::vector<std::string> variable_names;  // may be empty
};

/// Parse a version-1 `.xbar` stream; throws parse_error on malformed input
/// (including version-2 headers — multi-array consumers use
/// read_partitioned_design).
[[nodiscard]] loaded_design read_design(std::istream& is);

/// Write a partitioned design: format version 2, except that a design of
/// one fragment with no connections degrades to the version-1 text of
/// write_design, byte for byte.
void write_partitioned_design(const partitioned_design& design,
                              std::ostream& os,
                              const std::vector<std::string>& variable_names =
                                  {});

struct loaded_partitioned_design {
  partitioned_design design;
  std::vector<std::string> variable_names;  // may be empty
};

/// Parse either format version: version 1 loads as a single-fragment
/// design, version 2 as written by write_partitioned_design. Throws
/// parse_error on malformed input.
[[nodiscard]] loaded_partitioned_design read_partitioned_design(
    std::istream& is);

/// Graphviz view of the design as the bipartite wordline/bitline graph:
/// one node per nanowire, one labeled edge per programmed device. Input
/// and output wordlines are highlighted.
void write_design_dot(const crossbar& design, std::ostream& os,
                      const std::vector<std::string>& variable_names = {});

}  // namespace compact::xbar
