// Crossbar design serialization.
//
// A plain-text `.xbar` format so synthesized designs can be saved by the
// CLI, diffed in experiments, and reloaded for evaluation without
// re-running the NP-hard labeling step.
//
//   xbar 1            # format version
//   dim R C
//   input ROW
//   output ROW NAME   # repeated
//   const NAME 0|1    # constant outputs, repeated
//   var INDEX NAME    # optional variable names, repeated
//   d ROW COL on      # devices: on / +VAR / -VAR (off junctions omitted)
//   d ROW COL +3
//   end
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "xbar/crossbar.hpp"

namespace compact::xbar {

/// Write `design` (with optional variable names) to `os`.
void write_design(const crossbar& design, std::ostream& os,
                  const std::vector<std::string>& variable_names = {});

struct loaded_design {
  crossbar design;
  std::vector<std::string> variable_names;  // may be empty
};

/// Parse a `.xbar` stream; throws parse_error on malformed input.
[[nodiscard]] loaded_design read_design(std::istream& is);

/// Graphviz view of the design as the bipartite wordline/bitline graph:
/// one node per nanowire, one labeled edge per programmed device. Input
/// and output wordlines are highlighted.
void write_design_dot(const crossbar& design, std::ostream& os,
                      const std::vector<std::string>& variable_names = {});

}  // namespace compact::xbar
