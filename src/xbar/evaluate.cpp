#include "xbar/evaluate.hpp"

#include <queue>

namespace compact::xbar {

std::vector<bool> reachable_rows(const crossbar& design,
                                 const std::vector<bool>& assignment) {
  check(design.input_row() >= 0, "evaluate: design has no input row");
  const int rows = design.rows();
  const int cols = design.columns();

  std::vector<bool> row_seen(static_cast<std::size_t>(rows), false);
  std::vector<bool> col_seen(static_cast<std::size_t>(cols), false);
  // Frontier alternates between wordlines and bitlines.
  std::queue<std::pair<bool, int>> frontier;  // (is_row, index)
  frontier.emplace(true, design.input_row());
  row_seen[static_cast<std::size_t>(design.input_row())] = true;

  while (!frontier.empty()) {
    const auto [is_row, index] = frontier.front();
    frontier.pop();
    if (is_row) {
      for (int c = 0; c < cols; ++c) {
        if (col_seen[static_cast<std::size_t>(c)]) continue;
        if (design.at(index, c).conducts(assignment)) {
          col_seen[static_cast<std::size_t>(c)] = true;
          frontier.emplace(false, c);
        }
      }
    } else {
      for (int r = 0; r < rows; ++r) {
        if (row_seen[static_cast<std::size_t>(r)]) continue;
        if (design.at(r, index).conducts(assignment)) {
          row_seen[static_cast<std::size_t>(r)] = true;
          frontier.emplace(true, r);
        }
      }
    }
  }
  return row_seen;
}

std::vector<bool> evaluate(const crossbar& design,
                           const std::vector<bool>& assignment) {
  const std::vector<bool> rows = reachable_rows(design, assignment);
  std::vector<bool> result;
  result.reserve(design.outputs().size() + design.constant_outputs().size());
  for (const output_port& o : design.outputs())
    result.push_back(rows[static_cast<std::size_t>(o.row)]);
  for (const auto& [name, value] : design.constant_outputs()) {
    (void)name;
    result.push_back(value);
  }
  return result;
}

bool evaluate_output(const crossbar& design,
                     const std::vector<bool>& assignment,
                     const std::string& output_name) {
  const std::vector<bool> rows = reachable_rows(design, assignment);
  for (const output_port& o : design.outputs())
    if (o.name == output_name) return rows[static_cast<std::size_t>(o.row)];
  for (const auto& [name, value] : design.constant_outputs())
    if (name == output_name) return value;
  throw error("evaluate_output: unknown output " + output_name);
}

}  // namespace compact::xbar
