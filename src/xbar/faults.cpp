#include "xbar/faults.hpp"

#include "xbar/evaluate.hpp"

namespace compact::xbar {
namespace {

/// Sampled input vectors, deterministic per seed.
std::vector<std::vector<bool>> sample_vectors(int variable_count, int count,
                                              std::uint64_t seed) {
  rng random(seed);
  std::vector<std::vector<bool>> vectors;
  if (variable_count <= 6 && (1 << variable_count) <= count) {
    for (std::uint64_t bits = 0; bits < (1ULL << variable_count); ++bits) {
      std::vector<bool> a(static_cast<std::size_t>(variable_count));
      for (int v = 0; v < variable_count; ++v)
        a[static_cast<std::size_t>(v)] = (bits >> v) & 1;
      vectors.push_back(std::move(a));
    }
    return vectors;
  }
  for (int i = 0; i < count; ++i) {
    std::vector<bool> a(static_cast<std::size_t>(variable_count));
    for (int v = 0; v < variable_count; ++v)
      a[static_cast<std::size_t>(v)] = random.next_bool();
    vectors.push_back(std::move(a));
  }
  return vectors;
}

bool matches_on(const crossbar& faulty, const crossbar& reference,
                const std::vector<std::vector<bool>>& vectors) {
  for (const std::vector<bool>& a : vectors)
    if (evaluate(faulty, a) != evaluate(reference, a)) return false;
  return true;
}

}  // namespace

crossbar inject_faults(const crossbar& design,
                       const std::vector<fault>& faults) {
  crossbar faulty = design;
  for (const fault& f : faults) {
    check(f.row >= 0 && f.row < design.rows() && f.column >= 0 &&
              f.column < design.columns(),
          "inject_faults: fault location out of range");
    faulty.set(f.row, f.column,
               {f.kind == fault_kind::stuck_on ? literal_kind::on
                                               : literal_kind::off,
                -1});
  }
  return faulty;
}

yield_report estimate_yield(const crossbar& design, int variable_count,
                            const yield_options& options) {
  check(options.trials > 0 && options.fault_rate >= 0.0 &&
            options.fault_rate <= 1.0,
        "estimate_yield: bad options");
  const std::vector<std::vector<bool>> vectors =
      sample_vectors(variable_count, options.vectors, options.seed);
  const rng base(options.seed ^ 0xfaf7ULL);

  yield_report report;
  report.trials = options.trials;
  // Each trial draws its fault pattern from substream(trial), so the
  // per-trial outcomes — and therefore the report — do not depend on the
  // thread count or schedule. Per-trial slots avoid vector<bool> packing,
  // which is not safe to write concurrently.
  const auto trial_count = static_cast<std::size_t>(options.trials);
  std::vector<unsigned char> functional(trial_count, 0);
  std::vector<long long> fault_counts(trial_count, 0);
  parallel_for(options.parallel, trial_count, [&](std::size_t trial) {
    rng random = base.substream(trial);
    std::vector<fault> faults;
    for (int r = 0; r < design.rows(); ++r)
      for (int c = 0; c < design.columns(); ++c)
        if (random.next_double() < options.fault_rate)
          faults.push_back(
              {r, c,
               random.next_double() < options.stuck_on_share
                   ? fault_kind::stuck_on
                   : fault_kind::stuck_off});
    fault_counts[trial] = static_cast<long long>(faults.size());
    const crossbar faulty = inject_faults(design, faults);
    functional[trial] = matches_on(faulty, design, vectors) ? 1 : 0;
  });
  long long total_faults = 0;
  for (std::size_t trial = 0; trial < trial_count; ++trial) {
    total_faults += fault_counts[trial];
    if (functional[trial] != 0) ++report.functional;
  }
  report.yield =
      static_cast<double>(report.functional) / static_cast<double>(report.trials);
  report.average_faults =
      static_cast<double>(total_faults) / static_cast<double>(report.trials);
  return report;
}

std::vector<fault> critical_single_faults(const crossbar& design,
                                          int variable_count, int vectors,
                                          std::uint64_t seed) {
  const std::vector<std::vector<bool>> inputs =
      sample_vectors(variable_count, vectors, seed);
  std::vector<fault> critical;
  for (int r = 0; r < design.rows(); ++r) {
    for (int c = 0; c < design.columns(); ++c) {
      for (const fault_kind kind :
           {fault_kind::stuck_off, fault_kind::stuck_on}) {
        // Skip no-op faults (stuck-off on an off junction etc.).
        const literal_kind programmed = design.at(r, c).kind;
        if (kind == fault_kind::stuck_off &&
            programmed == literal_kind::off)
          continue;
        if (kind == fault_kind::stuck_on && programmed == literal_kind::on)
          continue;
        const crossbar faulty = inject_faults(design, {{r, c, kind}});
        if (!matches_on(faulty, design, inputs))
          critical.push_back({r, c, kind});
      }
    }
  }
  return critical;
}

}  // namespace compact::xbar
