// Partitioned (multi-array) crossbar designs.
//
// One logical design split across an ordered list of crossbar fragments
// plus an explicit inter-crossbar connection list. A connection welds two
// nanowires — one in each of two fragments — into a single electrical net,
// the hardware analogue of routing a wire between adjacent arrays (CONTRA,
// arXiv:2009.00881). Exactly one fragment carries the input wordline; a
// design output may be sensed on any fragment. Conduction semantics are
// unchanged: an output reads 1 iff a path of conducting devices joins its
// wordline's net to the input wordline's net, where bridged wires belong to
// the same net.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "xbar/crossbar.hpp"

namespace compact::xbar {

enum class wire_kind : std::uint8_t { row, column };

/// One nanowire of one fragment.
struct wire_ref {
  int array = 0;  // fragment index within the partitioned design
  wire_kind kind = wire_kind::row;
  int index = 0;  // row / column index within that fragment

  friend bool operator==(const wire_ref& a, const wire_ref& b) {
    return a.array == b.array && a.kind == b.kind && a.index == b.index;
  }
};

/// An inter-crossbar bridge: the two referenced wires are one electrical
/// net. Always conducting (it is a wire, not a device).
struct bridge {
  wire_ref a;
  wire_ref b;
};

class partitioned_design {
 public:
  partitioned_design() = default;

  void add_fragment(crossbar fragment) {
    fragments_.push_back(std::move(fragment));
  }
  /// Add a bridge; both wires must exist and must live in distinct,
  /// already-added fragments.
  void add_connection(wire_ref a, wire_ref b);

  [[nodiscard]] int array_count() const {
    return static_cast<int>(fragments_.size());
  }
  [[nodiscard]] const crossbar& fragment(int array) const;
  [[nodiscard]] crossbar& fragment(int array);
  [[nodiscard]] const std::vector<crossbar>& fragments() const {
    return fragments_;
  }
  [[nodiscard]] const std::vector<bridge>& connections() const {
    return connections_;
  }

  /// The fragment whose input wordline drives the evaluation (-1 when no
  /// fragment declares an input row).
  [[nodiscard]] int input_array() const;

  // --- aggregated size metrics (Section III, summed over fragments) -------
  [[nodiscard]] int total_semiperimeter() const;
  [[nodiscard]] long long total_area() const;
  [[nodiscard]] int active_device_count() const;
  [[nodiscard]] int max_fragment_rows() const;
  [[nodiscard]] int max_fragment_columns() const;
  /// Arrays are programmed in parallel, so latency follows the tallest
  /// fragment: max rows + 1 (Section VIII's model, per array).
  [[nodiscard]] int delay_steps() const { return max_fragment_rows() + 1; }

  /// Output names in design order: every fragment's sensed outputs in
  /// fragment order, then every fragment's constant outputs.
  [[nodiscard]] std::vector<std::string> output_names() const;

  /// ASCII rendering of every fragment plus the connection list.
  void print(std::ostream& os,
             const std::vector<std::string>& variable_names = {}) const;

 private:
  std::vector<crossbar> fragments_;
  std::vector<bridge> connections_;
};

/// Wrap a single-array design (the degenerate partition).
[[nodiscard]] partitioned_design wrap_single(crossbar design);

/// Rewrite every fragment's literal variables through `mapping`
/// (mapping[old] = new), exactly like xbar::remap_variables.
[[nodiscard]] partitioned_design remap_variables(
    const partitioned_design& design, const std::vector<int>& mapping);

// --- stitched evaluation ----------------------------------------------------

/// All outputs under one assignment, ordered as output_names(): BFS over
/// the union conduction graph where bridged wires are merged into one net.
[[nodiscard]] std::vector<bool> evaluate(const partitioned_design& design,
                                         const std::vector<bool>& assignment);

/// Single output by name.
[[nodiscard]] bool evaluate_output(const partitioned_design& design,
                                   const std::vector<bool>& assignment,
                                   const std::string& output_name);

/// Per-fragment wordline reachability from the input net (exposed for
/// diagnostics and tests): result[f][r] is true iff row r of fragment f is
/// reachable under `assignment`.
[[nodiscard]] std::vector<std::vector<bool>> reachable_rows(
    const partitioned_design& design, const std::vector<bool>& assignment);

}  // namespace compact::xbar
