#include "xbar/validate.hpp"

#include <atomic>
#include <functional>
#include <limits>
#include <mutex>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "xbar/evaluate.hpp"

namespace compact::xbar {
namespace {

std::string describe(const std::vector<bool>& assignment,
                     const std::string& output, bool expected, bool got) {
  std::string text = "output '" + output + "' expected " +
                     (expected ? "1" : "0") + " got " + (got ? "1" : "0") +
                     " under assignment ";
  for (bool b : assignment) text += b ? '1' : '0';
  return text;
}

/// The deterministic first-failure scan shared by both overloads.
/// `check_one` checks a single assignment and returns a failure description
/// (empty on success); it must be safe to call concurrently.
validation_report scan_assignments(
    const std::function<std::string(const std::vector<bool>&)>& check_one,
    int variable_count, const validation_options& options) {
  validation_report report;
  report.exhaustive = variable_count <= options.exhaustive_limit;
  if (report.exhaustive && variable_count > max_exhaustive_variables)
    throw error(
        "validate: exhaustive enumeration of " +
        std::to_string(variable_count) + " variables (2^" +
        std::to_string(variable_count) +
        " assignments) is refused; the limit is " +
        std::to_string(max_exhaustive_variables) +
        " variables. Use symbolic equivalence instead ('compact_cli lint' "
        "or verify::check_symbolic_equivalence), which is exact at any "
        "width, or lower validation_options::exhaustive_limit to sample.");
  const std::uint64_t total =
      report.exhaustive ? 1ULL << variable_count
                        : static_cast<std::uint64_t>(options.samples);
  const rng base(options.seed);
  // Assignment `index` depends only on (seed, index): exhaustive indices
  // enumerate the cube, sampled indices draw from substream(index). That
  // keeps the scan deterministic under any parallel schedule.
  auto assignment_for = [&](std::uint64_t index) {
    std::vector<bool> assignment(static_cast<std::size_t>(variable_count));
    if (report.exhaustive) {
      for (int v = 0; v < variable_count; ++v)
        assignment[static_cast<std::size_t>(v)] = (index >> v) & 1;
    } else {
      rng random = base.substream(index);
      for (int v = 0; v < variable_count; ++v)
        assignment[static_cast<std::size_t>(v)] = random.next_bool();
    }
    return assignment;
  };

  // First-failure scan. Workers skip indices above an already-found failure
  // (an optimization only); the report always names the lowest failing
  // index, so every thread count yields the same report.
  constexpr std::uint64_t none = std::numeric_limits<std::uint64_t>::max();
  std::atomic<std::uint64_t> first_failure{none};
  std::mutex failure_mutex;
  std::string first_description;
  parallel_for(options.parallel, total, [&](std::size_t index) {
    if (index >= first_failure.load(std::memory_order_relaxed)) return;
    const std::string failure = check_one(assignment_for(index));
    if (failure.empty()) return;
    std::lock_guard<std::mutex> lock(failure_mutex);
    if (index < first_failure.load(std::memory_order_relaxed)) {
      first_failure.store(index, std::memory_order_relaxed);
      first_description = failure;
    }
  });

  const std::uint64_t failed_at = first_failure.load();
  if (failed_at == none) {
    report.checked_assignments = static_cast<long long>(total);
  } else {
    report.valid = false;
    // Assignments 0 .. failed_at - 1 pass, matching the serial early-exit
    // count.
    report.checked_assignments = static_cast<long long>(failed_at);
    report.first_failure = first_description;
  }
  return report;
}

}  // namespace

validation_report validate_against_bdd(
    const crossbar& design, const bdd::manager& m,
    const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& output_names, int variable_count,
    const validation_options& options) {
  check(roots.size() == output_names.size(),
        "validate: roots/output_names size mismatch");

  // Check one assignment; returns a failure description, empty on success.
  auto check_one = [&](const std::vector<bool>& assignment) -> std::string {
    const std::vector<bool> row_reach = reachable_rows(design, assignment);
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const bool expected = m.evaluate(roots[i], assignment);
      bool got = false;
      bool found = false;
      for (const output_port& o : design.outputs()) {
        if (o.name == output_names[i]) {
          got = row_reach[static_cast<std::size_t>(o.row)];
          found = true;
          break;
        }
      }
      if (!found) {
        for (const auto& [name, value] : design.constant_outputs()) {
          if (name == output_names[i]) {
            got = value;
            found = true;
            break;
          }
        }
      }
      if (!found) return "design has no output named " + output_names[i];
      if (got != expected)
        return describe(assignment, output_names[i], expected, got);
    }
    return {};
  };

  return scan_assignments(check_one, variable_count, options);
}

validation_report validate_against_bdd(
    const partitioned_design& design, const bdd::manager& m,
    const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& output_names, int variable_count,
    const validation_options& options) {
  check(roots.size() == output_names.size(),
        "validate: roots/output_names size mismatch");

  auto check_one = [&](const std::vector<bool>& assignment) -> std::string {
    const std::vector<std::vector<bool>> row_reach =
        reachable_rows(design, assignment);
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const bool expected = m.evaluate(roots[i], assignment);
      bool got = false;
      bool found = false;
      for (int f = 0; f < design.array_count() && !found; ++f) {
        const crossbar& fragment = design.fragment(f);
        for (const output_port& o : fragment.outputs()) {
          if (o.name == output_names[i]) {
            got = row_reach[static_cast<std::size_t>(f)]
                           [static_cast<std::size_t>(o.row)];
            found = true;
            break;
          }
        }
      }
      for (int f = 0; f < design.array_count() && !found; ++f) {
        for (const auto& [name, value] :
             design.fragment(f).constant_outputs()) {
          if (name == output_names[i]) {
            got = value;
            found = true;
            break;
          }
        }
      }
      if (!found) return "design has no output named " + output_names[i];
      if (got != expected)
        return describe(assignment, output_names[i], expected, got);
    }
    return {};
  };

  return scan_assignments(check_one, variable_count, options);
}

}  // namespace compact::xbar
