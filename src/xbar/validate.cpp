#include "xbar/validate.hpp"

#include "util/rng.hpp"
#include "xbar/evaluate.hpp"

namespace compact::xbar {
namespace {

std::string describe(const std::vector<bool>& assignment,
                     const std::string& output, bool expected, bool got) {
  std::string text = "output '" + output + "' expected " +
                     (expected ? "1" : "0") + " got " + (got ? "1" : "0") +
                     " under assignment ";
  for (bool b : assignment) text += b ? '1' : '0';
  return text;
}

}  // namespace

validation_report validate_against_bdd(
    const crossbar& design, const bdd::manager& m,
    const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& output_names, int variable_count,
    const validation_options& options) {
  check(roots.size() == output_names.size(),
        "validate: roots/output_names size mismatch");
  validation_report report;

  auto check_one = [&](const std::vector<bool>& assignment) {
    const std::vector<bool> row_reach = reachable_rows(design, assignment);
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const bool expected = m.evaluate(roots[i], assignment);
      bool got = false;
      bool found = false;
      for (const output_port& o : design.outputs()) {
        if (o.name == output_names[i]) {
          got = row_reach[static_cast<std::size_t>(o.row)];
          found = true;
          break;
        }
      }
      if (!found) {
        for (const auto& [name, value] : design.constant_outputs()) {
          if (name == output_names[i]) {
            got = value;
            found = true;
            break;
          }
        }
      }
      if (!found) {
        report.valid = false;
        report.first_failure = "design has no output named " + output_names[i];
        return false;
      }
      if (got != expected) {
        report.valid = false;
        report.first_failure =
            describe(assignment, output_names[i], expected, got);
        return false;
      }
    }
    ++report.checked_assignments;
    return true;
  };

  if (variable_count <= options.exhaustive_limit) {
    report.exhaustive = true;
    std::vector<bool> assignment(static_cast<std::size_t>(variable_count));
    const std::uint64_t total = 1ULL << variable_count;
    for (std::uint64_t bits = 0; bits < total; ++bits) {
      for (int v = 0; v < variable_count; ++v)
        assignment[static_cast<std::size_t>(v)] = (bits >> v) & 1;
      if (!check_one(assignment)) return report;
    }
  } else {
    rng random(options.seed);
    std::vector<bool> assignment(static_cast<std::size_t>(variable_count));
    for (int s = 0; s < options.samples; ++s) {
      for (int v = 0; v < variable_count; ++v)
        assignment[static_cast<std::size_t>(v)] = random.next_bool();
      if (!check_one(assignment)) return report;
    }
  }
  return report;
}

}  // namespace compact::xbar
