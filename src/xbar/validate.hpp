// Validity checking of crossbar designs against their specification.
//
// The paper's Definition of validity (Section III): for every instance of
// the Boolean variables there is a conducting input-to-output path exactly
// when the function evaluates to true. We check this against the source BDD
// exhaustively for small supports and by deterministic random sampling for
// large ones (the paper's SPICE validation plays the analog counterpart —
// see src/analog).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "util/thread_pool.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/partitioned.hpp"

namespace compact::xbar {

/// Hard ceiling on exhaustive enumeration (2^24 = 16.7M assignments, a few
/// seconds; 2^25+ quickly becomes minutes to hours). validate_against_bdd
/// throws when options push the exhaustive path past it — symbolic
/// equivalence (verify/extract.hpp) is exact at any width and is the right
/// tool beyond this point.
inline constexpr int max_exhaustive_variables = 24;

struct validation_options {
  /// Exhaustive enumeration up to this many variables, sampling beyond.
  /// Clamped by max_exhaustive_variables: asking for an exhaustive scan of
  /// a wider support is an error, not a silent fallback.
  int exhaustive_limit = 12;
  int samples = 2000;
  std::uint64_t seed = 12345;
  /// Assignments are checked concurrently; each sample draws from its own
  /// rng substream and the scan reports the lowest-index failure, so the
  /// report is bit-identical for every thread count.
  parallel_options parallel;
};

struct validation_report {
  bool valid = true;
  long long checked_assignments = 0;
  bool exhaustive = false;
  std::string first_failure;  // human-readable description, empty if valid
};

/// Check the design against a set of BDD roots; `output_names[i]` must be an
/// output of the design realizing roots[i].
[[nodiscard]] validation_report validate_against_bdd(
    const crossbar& design, const bdd::manager& m,
    const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& output_names, int variable_count,
    const validation_options& options = {});

/// Same contract for a partitioned design: each output is sensed on
/// whichever fragment binds it, with reachability computed over the stitched
/// conduction graph (bridged wires are one net).
[[nodiscard]] validation_report validate_against_bdd(
    const partitioned_design& design, const bdd::manager& m,
    const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& output_names, int variable_count,
    const validation_options& options = {});

}  // namespace compact::xbar
