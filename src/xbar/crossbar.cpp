#include "xbar/crossbar.hpp"

#include <algorithm>

namespace compact::xbar {

crossbar::crossbar(int rows, int columns) : rows_(rows), columns_(columns) {
  check(rows >= 1 && columns >= 0, "crossbar: non-positive dimensions");
  devices_.resize(static_cast<std::size_t>(rows) *
                  static_cast<std::size_t>(std::max(columns, 0)));
}

const device& crossbar::at(int row, int column) const {
  check(row >= 0 && row < rows_ && column >= 0 && column < columns_,
        "crossbar: junction out of range");
  return devices_[static_cast<std::size_t>(row) *
                      static_cast<std::size_t>(columns_) +
                  static_cast<std::size_t>(column)];
}

void crossbar::set(int row, int column, device d) {
  check(row >= 0 && row < rows_ && column >= 0 && column < columns_,
        "crossbar: junction out of range");
  check((d.kind != literal_kind::positive &&
         d.kind != literal_kind::negative) ||
            d.variable >= 0,
        "crossbar: literal device needs a variable");
  devices_[static_cast<std::size_t>(row) *
               static_cast<std::size_t>(columns_) +
           static_cast<std::size_t>(column)] = d;
}

void crossbar::set_literal(int row, int column, int variable, bool positive) {
  set(row, column,
      {positive ? literal_kind::positive : literal_kind::negative, variable});
}

void crossbar::set_on(int row, int column) {
  set(row, column, {literal_kind::on, -1});
}

void crossbar::set_input_row(int row) {
  check(row >= 0 && row < rows_, "crossbar: input row out of range");
  input_row_ = row;
}

void crossbar::add_output(int row, std::string name) {
  check(row >= 0 && row < rows_, "crossbar: output row out of range");
  outputs_.push_back({row, std::move(name)});
}

void crossbar::add_constant_output(bool value, std::string name) {
  constant_outputs_.emplace_back(std::move(name), value);
}

int crossbar::active_device_count() const {
  int count = 0;
  for (const device& d : devices_)
    if (d.kind == literal_kind::positive || d.kind == literal_kind::negative)
      ++count;
  return count;
}

crossbar remap_variables(const crossbar& design,
                         const std::vector<int>& mapping) {
  crossbar remapped = design;
  for (int r = 0; r < design.rows(); ++r) {
    for (int c = 0; c < design.columns(); ++c) {
      const device& d = design.at(r, c);
      if (d.kind != literal_kind::positive &&
          d.kind != literal_kind::negative)
        continue;
      check(d.variable >= 0 &&
                static_cast<std::size_t>(d.variable) < mapping.size(),
            "remap_variables: device variable outside the mapping");
      remapped.set(r, c, {d.kind, mapping[static_cast<std::size_t>(d.variable)]});
    }
  }
  return remapped;
}

void crossbar::print(std::ostream& os,
                     const std::vector<std::string>& variable_names) const {
  auto label = [&](const device& d) -> std::string {
    switch (d.kind) {
      case literal_kind::off:
        return ".";
      case literal_kind::on:
        return "1";
      case literal_kind::positive:
      case literal_kind::negative: {
        std::string name =
            d.variable < static_cast<std::int32_t>(variable_names.size())
                ? variable_names[static_cast<std::size_t>(d.variable)]
                : "x" + std::to_string(d.variable);
        return d.kind == literal_kind::negative ? "!" + name : name;
      }
    }
    return "?";
  };

  std::size_t width = 1;
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < columns_; ++c)
      width = std::max(width, label(at(r, c)).size());

  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < columns_; ++c) {
      const std::string cell = label(at(r, c));
      os << cell << std::string(width - cell.size() + 1, ' ');
    }
    // Row annotations.
    if (r == input_row_) os << " <- input";
    for (const output_port& o : outputs_)
      if (o.row == r) os << " <- out:" << o.name;
    os << '\n';
  }
}

}  // namespace compact::xbar
