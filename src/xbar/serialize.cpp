#include "xbar/serialize.hpp"

#include <map>

#include "util/strings.hpp"

namespace compact::xbar {

void write_design(const crossbar& design, std::ostream& os,
                  const std::vector<std::string>& variable_names) {
  os << "xbar 1\n";
  os << "dim " << design.rows() << ' ' << design.columns() << '\n';
  if (design.input_row() >= 0) os << "input " << design.input_row() << '\n';
  for (const output_port& o : design.outputs())
    os << "output " << o.row << ' ' << o.name << '\n';
  for (const auto& [name, value] : design.constant_outputs())
    os << "const " << name << ' ' << (value ? 1 : 0) << '\n';
  for (std::size_t v = 0; v < variable_names.size(); ++v)
    os << "var " << v << ' ' << variable_names[v] << '\n';
  for (int r = 0; r < design.rows(); ++r) {
    for (int c = 0; c < design.columns(); ++c) {
      const device& d = design.at(r, c);
      switch (d.kind) {
        case literal_kind::off:
          break;
        case literal_kind::on:
          os << "d " << r << ' ' << c << " on\n";
          break;
        case literal_kind::positive:
          os << "d " << r << ' ' << c << " +" << d.variable << '\n';
          break;
        case literal_kind::negative:
          os << "d " << r << ' ' << c << " -" << d.variable << '\n';
          break;
      }
    }
  }
  os << "end\n";
}

loaded_design read_design(std::istream& is) {
  std::string line;
  auto next_tokens = [&](std::vector<std::string>& tokens) {
    while (std::getline(is, line)) {
      if (const auto hash = line.find('#'); hash != std::string::npos)
        line.erase(hash);
      tokens = split_ws(line);
      if (!tokens.empty()) return true;
    }
    return false;
  };

  std::vector<std::string> tokens;
  if (!next_tokens(tokens) || tokens.size() != 2 || tokens[0] != "xbar")
    throw parse_error("xbar: missing header");
  if (tokens[1] != "1")
    throw parse_error("xbar: unsupported format version " + tokens[1]);

  if (!next_tokens(tokens) || tokens.size() != 3 || tokens[0] != "dim")
    throw parse_error("xbar: missing dim line");
  int rows = 0;
  int cols = 0;
  try {  // non-numeric / out-of-range dims must not escape as raw stoi errors
    rows = std::stoi(tokens[1]);
    cols = std::stoi(tokens[2]);
  } catch (const std::logic_error&) {
    throw parse_error("xbar: malformed number in: " + line);
  }
  if (rows < 1 || cols < 0) throw parse_error("xbar: bad dimensions");

  crossbar design(rows, cols);
  std::map<int, std::string> names;

  while (next_tokens(tokens)) {
    if (tokens[0] == "end") {
      loaded_design result{std::move(design), {}};
      if (!names.empty()) {
        const int max_var = names.rbegin()->first;
        result.variable_names.resize(static_cast<std::size_t>(max_var) + 1);
        for (const auto& [v, n] : names)
          result.variable_names[static_cast<std::size_t>(v)] = n;
      }
      return result;
    }
    try {
      if (tokens[0] == "input" && tokens.size() == 2) {
        design.set_input_row(std::stoi(tokens[1]));
      } else if (tokens[0] == "output" && tokens.size() == 3) {
        design.add_output(std::stoi(tokens[1]), tokens[2]);
      } else if (tokens[0] == "const" && tokens.size() == 3) {
        design.add_constant_output(tokens[2] == "1", tokens[1]);
      } else if (tokens[0] == "var" && tokens.size() == 3) {
        names[std::stoi(tokens[1])] = tokens[2];
      } else if (tokens[0] == "d" && tokens.size() == 4) {
        const int r = std::stoi(tokens[1]);
        const int c = std::stoi(tokens[2]);
        const std::string& spec = tokens[3];
        if (spec == "on") {
          design.set_on(r, c);
        } else if (spec.size() >= 2 && (spec[0] == '+' || spec[0] == '-')) {
          design.set_literal(r, c, std::stoi(spec.substr(1)), spec[0] == '+');
        } else {
          throw parse_error("xbar: bad device spec " + spec);
        }
      } else {
        throw parse_error("xbar: unrecognized line: " + line);
      }
    } catch (const error&) {
      throw;
    } catch (const std::logic_error&) {  // stoi: invalid_argument/out_of_range
      throw parse_error("xbar: malformed number in: " + line);
    }
  }
  throw parse_error("xbar: missing end marker");
}

void write_design_dot(const crossbar& design, std::ostream& os,
                      const std::vector<std::string>& variable_names) {
  auto literal_label = [&](const device& d) -> std::string {
    switch (d.kind) {
      case literal_kind::on:
        return "1";
      case literal_kind::positive:
      case literal_kind::negative: {
        std::string name =
            d.variable >= 0 &&
                    static_cast<std::size_t>(d.variable) <
                        variable_names.size()
                ? variable_names[static_cast<std::size_t>(d.variable)]
                : "x" + std::to_string(d.variable);
        return d.kind == literal_kind::negative ? "!" + name : name;
      }
      case literal_kind::off:
        return {};
    }
    return {};
  };

  os << "graph crossbar {\n  rankdir=LR;\n";
  for (int r = 0; r < design.rows(); ++r) {
    std::string extra;
    if (r == design.input_row())
      extra = ",style=filled,fillcolor=lightblue";
    for (const output_port& o : design.outputs())
      if (o.row == r) extra = ",style=filled,fillcolor=palegreen";
    os << "  w" << r << " [shape=box,label=\"WL" << r << "\"" << extra
       << "];\n";
  }
  for (int c = 0; c < design.columns(); ++c)
    os << "  b" << c << " [shape=ellipse,label=\"BL" << c << "\"];\n";
  for (int r = 0; r < design.rows(); ++r) {
    for (int c = 0; c < design.columns(); ++c) {
      const std::string label = literal_label(design.at(r, c));
      if (label.empty()) continue;
      os << "  w" << r << " -- b" << c << " [label=\"" << label << "\"];\n";
    }
  }
  os << "}\n";
}

}  // namespace compact::xbar
