#include "xbar/serialize.hpp"

#include <map>

#include "util/strings.hpp"

namespace compact::xbar {
namespace {

/// Comment-stripping, blank-skipping line tokenizer shared by both format
/// versions. `line` keeps the raw text of the last tokenized line for error
/// messages.
struct line_reader {
  std::istream& is;
  std::string line;

  bool next(std::vector<std::string>& tokens) {
    while (std::getline(is, line)) {
      if (const auto hash = line.find('#'); hash != std::string::npos)
        line.erase(hash);
      tokens = split_ws(line);
      if (!tokens.empty()) return true;
    }
    return false;
  }
};

int parse_int(const std::string& token, const std::string& line) {
  try {  // non-numeric / out-of-range must not escape as raw stoi errors
    return std::stoi(token);
  } catch (const std::logic_error&) {
    throw parse_error("xbar: malformed number in: " + line);
  }
}

/// One crossbar body: the dim line through `terminator`. `names` collects
/// var lines when non-null (version 1); version-2 array blocks pass null
/// because variable names are global there.
crossbar read_body(line_reader& in, const std::string& terminator,
                   std::map<int, std::string>* names) {
  std::vector<std::string> tokens;
  if (!in.next(tokens) || tokens.size() != 3 || tokens[0] != "dim")
    throw parse_error("xbar: missing dim line");
  const int rows = parse_int(tokens[1], in.line);
  const int cols = parse_int(tokens[2], in.line);
  if (rows < 1 || cols < 0) throw parse_error("xbar: bad dimensions");

  crossbar design(rows, cols);
  while (in.next(tokens)) {
    if (tokens[0] == terminator) return design;
    try {
      if (tokens[0] == "input" && tokens.size() == 2) {
        design.set_input_row(std::stoi(tokens[1]));
      } else if (tokens[0] == "output" && tokens.size() == 3) {
        design.add_output(std::stoi(tokens[1]), tokens[2]);
      } else if (tokens[0] == "const" && tokens.size() == 3) {
        design.add_constant_output(tokens[2] == "1", tokens[1]);
      } else if (tokens[0] == "var" && tokens.size() == 3 &&
                 names != nullptr) {
        (*names)[std::stoi(tokens[1])] = tokens[2];
      } else if (tokens[0] == "d" && tokens.size() == 4) {
        const int r = std::stoi(tokens[1]);
        const int c = std::stoi(tokens[2]);
        const std::string& spec = tokens[3];
        if (spec == "on") {
          design.set_on(r, c);
        } else if (spec.size() >= 2 && (spec[0] == '+' || spec[0] == '-')) {
          design.set_literal(r, c, std::stoi(spec.substr(1)), spec[0] == '+');
        } else {
          throw parse_error("xbar: bad device spec " + spec);
        }
      } else {
        throw parse_error("xbar: unrecognized line: " + in.line);
      }
    } catch (const error&) {
      throw;
    } catch (const std::logic_error&) {  // stoi: invalid_argument/out_of_range
      throw parse_error("xbar: malformed number in: " + in.line);
    }
  }
  throw parse_error("xbar: missing " + terminator + " marker");
}

std::vector<std::string> pack_names(const std::map<int, std::string>& names) {
  std::vector<std::string> packed;
  if (!names.empty()) {
    const int max_var = names.rbegin()->first;
    packed.resize(static_cast<std::size_t>(max_var) + 1);
    for (const auto& [v, n] : names)
      packed[static_cast<std::size_t>(v)] = n;
  }
  return packed;
}

void write_ports_and_devices(const crossbar& design, std::ostream& os) {
  if (design.input_row() >= 0) os << "input " << design.input_row() << '\n';
  for (const output_port& o : design.outputs())
    os << "output " << o.row << ' ' << o.name << '\n';
  for (const auto& [name, value] : design.constant_outputs())
    os << "const " << name << ' ' << (value ? 1 : 0) << '\n';
}

void write_devices(const crossbar& design, std::ostream& os) {
  for (int r = 0; r < design.rows(); ++r) {
    for (int c = 0; c < design.columns(); ++c) {
      const device& d = design.at(r, c);
      switch (d.kind) {
        case literal_kind::off:
          break;
        case literal_kind::on:
          os << "d " << r << ' ' << c << " on\n";
          break;
        case literal_kind::positive:
          os << "d " << r << ' ' << c << " +" << d.variable << '\n';
          break;
        case literal_kind::negative:
          os << "d " << r << ' ' << c << " -" << d.variable << '\n';
          break;
      }
    }
  }
}

const char* wire_kind_name(wire_kind kind) {
  return kind == wire_kind::row ? "row" : "col";
}

wire_ref parse_wire_ref(const std::string& array_token,
                        const std::string& kind_token,
                        const std::string& index_token,
                        const std::string& line) {
  wire_ref ref;
  ref.array = parse_int(array_token, line);
  if (kind_token == "row") {
    ref.kind = wire_kind::row;
  } else if (kind_token == "col") {
    ref.kind = wire_kind::column;
  } else {
    throw parse_error("xbar: bad wire kind '" + kind_token +
                      "' (expected row or col) in: " + line);
  }
  ref.index = parse_int(index_token, line);
  return ref;
}

}  // namespace

void write_design(const crossbar& design, std::ostream& os,
                  const std::vector<std::string>& variable_names) {
  os << "xbar 1\n";
  os << "dim " << design.rows() << ' ' << design.columns() << '\n';
  write_ports_and_devices(design, os);
  for (std::size_t v = 0; v < variable_names.size(); ++v)
    os << "var " << v << ' ' << variable_names[v] << '\n';
  write_devices(design, os);
  os << "end\n";
}

loaded_design read_design(std::istream& is) {
  line_reader in{is, {}};
  std::vector<std::string> tokens;
  if (!in.next(tokens) || tokens.size() != 2 || tokens[0] != "xbar")
    throw parse_error("xbar: missing header");
  if (tokens[1] != "1")
    throw parse_error("xbar: unsupported format version " + tokens[1]);

  std::map<int, std::string> names;
  crossbar design = read_body(in, "end", &names);
  return {std::move(design), pack_names(names)};
}

void write_partitioned_design(const partitioned_design& design,
                              std::ostream& os,
                              const std::vector<std::string>& variable_names) {
  check(design.array_count() >= 1,
        "write_partitioned_design: design has no fragments");
  // Degenerate partitions keep the version-1 text so unpartitioned flows
  // stay byte-identical and old readers keep working.
  if (design.array_count() == 1 && design.connections().empty()) {
    write_design(design.fragment(0), os, variable_names);
    return;
  }
  os << "xbar 2\n";
  os << "arrays " << design.array_count() << '\n';
  for (std::size_t v = 0; v < variable_names.size(); ++v)
    os << "var " << v << ' ' << variable_names[v] << '\n';
  for (int f = 0; f < design.array_count(); ++f) {
    const crossbar& fragment = design.fragment(f);
    os << "array " << f << '\n';
    os << "dim " << fragment.rows() << ' ' << fragment.columns() << '\n';
    write_ports_and_devices(fragment, os);
    write_devices(fragment, os);
    os << "endarray\n";
  }
  for (const bridge& b : design.connections())
    os << "connect " << b.a.array << ' ' << wire_kind_name(b.a.kind) << ' '
       << b.a.index << ' ' << b.b.array << ' ' << wire_kind_name(b.b.kind)
       << ' ' << b.b.index << '\n';
  os << "end\n";
}

loaded_partitioned_design read_partitioned_design(std::istream& is) {
  line_reader in{is, {}};
  std::vector<std::string> tokens;
  if (!in.next(tokens) || tokens.size() != 2 || tokens[0] != "xbar")
    throw parse_error("xbar: missing header");

  if (tokens[1] == "1") {
    std::map<int, std::string> names;
    crossbar design = read_body(in, "end", &names);
    return {wrap_single(std::move(design)), pack_names(names)};
  }
  if (tokens[1] != "2")
    throw parse_error("xbar: unsupported format version " + tokens[1]);

  if (!in.next(tokens) || tokens.size() != 2 || tokens[0] != "arrays")
    throw parse_error("xbar: version 2 requires an arrays count after the "
                      "header");
  const int count = parse_int(tokens[1], in.line);
  if (count < 1) throw parse_error("xbar: bad arrays count");

  partitioned_design design;
  std::map<int, std::string> names;
  int next_array = 0;
  while (in.next(tokens)) {
    if (tokens[0] == "end") {
      if (next_array != count)
        throw parse_error("xbar: expected " + std::to_string(count) +
                          " arrays, found " + std::to_string(next_array));
      return {std::move(design), pack_names(names)};
    }
    if (tokens[0] == "var" && tokens.size() == 3) {
      names[parse_int(tokens[1], in.line)] = tokens[2];
    } else if (tokens[0] == "array" && tokens.size() == 2) {
      if (parse_int(tokens[1], in.line) != next_array || next_array >= count)
        throw parse_error("xbar: arrays must appear once each, in order: " +
                          in.line);
      design.add_fragment(read_body(in, "endarray", nullptr));
      ++next_array;
    } else if (tokens[0] == "connect" && tokens.size() == 7) {
      const std::string line = in.line;
      const wire_ref a = parse_wire_ref(tokens[1], tokens[2], tokens[3], line);
      const wire_ref b = parse_wire_ref(tokens[4], tokens[5], tokens[6], line);
      try {  // reference validation reuses add_connection's checks
        design.add_connection(a, b);
      } catch (const error& e) {
        throw parse_error(std::string(e.what()) + " in: " + line);
      }
    } else {
      throw parse_error("xbar: unrecognized line: " + in.line);
    }
  }
  throw parse_error("xbar: missing end marker");
}

void write_design_dot(const crossbar& design, std::ostream& os,
                      const std::vector<std::string>& variable_names) {
  auto literal_label = [&](const device& d) -> std::string {
    switch (d.kind) {
      case literal_kind::on:
        return "1";
      case literal_kind::positive:
      case literal_kind::negative: {
        std::string name =
            d.variable >= 0 &&
                    static_cast<std::size_t>(d.variable) <
                        variable_names.size()
                ? variable_names[static_cast<std::size_t>(d.variable)]
                : "x" + std::to_string(d.variable);
        return d.kind == literal_kind::negative ? "!" + name : name;
      }
      case literal_kind::off:
        return {};
    }
    return {};
  };

  os << "graph crossbar {\n  rankdir=LR;\n";
  for (int r = 0; r < design.rows(); ++r) {
    std::string extra;
    if (r == design.input_row())
      extra = ",style=filled,fillcolor=lightblue";
    for (const output_port& o : design.outputs())
      if (o.row == r) extra = ",style=filled,fillcolor=palegreen";
    os << "  w" << r << " [shape=box,label=\"WL" << r << "\"" << extra
       << "];\n";
  }
  for (int c = 0; c < design.columns(); ++c)
    os << "  b" << c << " [shape=ellipse,label=\"BL" << c << "\"];\n";
  for (int r = 0; r < design.rows(); ++r) {
    for (int c = 0; c < design.columns(); ++c) {
      const std::string label = literal_label(design.at(r, c));
      if (label.empty()) continue;
      os << "  w" << r << " -- b" << c << " [label=\"" << label << "\"];\n";
    }
  }
  os << "}\n";
}

}  // namespace compact::xbar
