// Digital (sneak-path) evaluation of a crossbar design.
//
// Models the evaluation phase of flow-based computing: program every device
// from the input assignment, then ask whether a path of conducting devices
// joins the input wordline to each output wordline (Section II-C). The
// crossbar's nanowires form a bipartite graph (wordlines x bitlines) whose
// edges are the conducting devices; reachability is a BFS over that graph.
#pragma once

#include <vector>

#include "xbar/crossbar.hpp"

namespace compact::xbar {

/// All outputs of the design under one assignment, in the order given by
/// design.outputs() followed by design.constant_outputs().
[[nodiscard]] std::vector<bool> evaluate(const crossbar& design,
                                         const std::vector<bool>& assignment);

/// Single output by name.
[[nodiscard]] bool evaluate_output(const crossbar& design,
                                   const std::vector<bool>& assignment,
                                   const std::string& output_name);

/// The set of wordlines reachable from the input row under `assignment`
/// (exposed for the analog simulator and for tests).
[[nodiscard]] std::vector<bool> reachable_rows(
    const crossbar& design, const std::vector<bool>& assignment);

}  // namespace compact::xbar
