#include "xbar/partitioned.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace compact::xbar {
namespace {

void check_wire(const std::vector<crossbar>& fragments, const wire_ref& w,
                const char* which) {
  check(w.array >= 0 && static_cast<std::size_t>(w.array) < fragments.size(),
        std::string("partitioned_design: connection ") + which +
            " references array " + std::to_string(w.array) + " of " +
            std::to_string(fragments.size()));
  const crossbar& f = fragments[static_cast<std::size_t>(w.array)];
  const int limit = w.kind == wire_kind::row ? f.rows() : f.columns();
  check(w.index >= 0 && w.index < limit,
        std::string("partitioned_design: connection ") + which +
            " references wire " + std::to_string(w.index) + " of " +
            std::to_string(limit));
}

}  // namespace

void partitioned_design::add_connection(wire_ref a, wire_ref b) {
  check_wire(fragments_, a, "endpoint a");
  check_wire(fragments_, b, "endpoint b");
  check(a.array != b.array,
        "partitioned_design: a connection must join distinct arrays");
  connections_.push_back({a, b});
}

const crossbar& partitioned_design::fragment(int array) const {
  check(array >= 0 && static_cast<std::size_t>(array) < fragments_.size(),
        "partitioned_design: array index out of range");
  return fragments_[static_cast<std::size_t>(array)];
}

crossbar& partitioned_design::fragment(int array) {
  check(array >= 0 && static_cast<std::size_t>(array) < fragments_.size(),
        "partitioned_design: array index out of range");
  return fragments_[static_cast<std::size_t>(array)];
}

int partitioned_design::input_array() const {
  for (std::size_t f = 0; f < fragments_.size(); ++f)
    if (fragments_[f].input_row() >= 0) return static_cast<int>(f);
  return -1;
}

int partitioned_design::total_semiperimeter() const {
  int total = 0;
  for (const crossbar& f : fragments_) total += f.semiperimeter();
  return total;
}

long long partitioned_design::total_area() const {
  long long total = 0;
  for (const crossbar& f : fragments_) total += f.area();
  return total;
}

int partitioned_design::active_device_count() const {
  int total = 0;
  for (const crossbar& f : fragments_) total += f.active_device_count();
  return total;
}

int partitioned_design::max_fragment_rows() const {
  int most = 0;
  for (const crossbar& f : fragments_) most = std::max(most, f.rows());
  return most;
}

int partitioned_design::max_fragment_columns() const {
  int most = 0;
  for (const crossbar& f : fragments_) most = std::max(most, f.columns());
  return most;
}

std::vector<std::string> partitioned_design::output_names() const {
  std::vector<std::string> names;
  for (const crossbar& f : fragments_)
    for (const output_port& o : f.outputs()) names.push_back(o.name);
  for (const crossbar& f : fragments_)
    for (const auto& [name, value] : f.constant_outputs())
      names.push_back(name);
  return names;
}

void partitioned_design::print(
    std::ostream& os, const std::vector<std::string>& variable_names) const {
  for (std::size_t f = 0; f < fragments_.size(); ++f) {
    os << "array " << f << " (" << fragments_[f].rows() << "x"
       << fragments_[f].columns() << ")\n";
    fragments_[f].print(os, variable_names);
  }
  for (const bridge& b : connections_) {
    const auto wire = [](const wire_ref& w) {
      return std::to_string(w.array) +
             (w.kind == wire_kind::row ? ":WL" : ":BL") +
             std::to_string(w.index);
    };
    os << "connect " << wire(b.a) << " -- " << wire(b.b) << '\n';
  }
}

partitioned_design wrap_single(crossbar design) {
  partitioned_design wrapped;
  wrapped.add_fragment(std::move(design));
  return wrapped;
}

partitioned_design remap_variables(const partitioned_design& design,
                                   const std::vector<int>& mapping) {
  partitioned_design remapped;
  for (const crossbar& f : design.fragments())
    remapped.add_fragment(remap_variables(f, mapping));
  for (const bridge& b : design.connections())
    remapped.add_connection(b.a, b.b);
  return remapped;
}

// --- stitched evaluation ----------------------------------------------------

namespace {

/// Flat wire numbering across fragments: fragment f contributes its rows
/// then its columns, fragments in order.
struct wire_index {
  std::vector<int> offset;  // per fragment, start of its row block
  int total = 0;

  explicit wire_index(const partitioned_design& design) {
    offset.reserve(static_cast<std::size_t>(design.array_count()));
    for (const crossbar& f : design.fragments()) {
      offset.push_back(total);
      total += f.rows() + f.columns();
    }
  }
  [[nodiscard]] int of_row(const partitioned_design&, int array,
                           int row) const {
    return offset[static_cast<std::size_t>(array)] + row;
  }
  [[nodiscard]] int of_column(const partitioned_design& design, int array,
                              int column) const {
    return offset[static_cast<std::size_t>(array)] +
           design.fragment(array).rows() + column;
  }
};

}  // namespace

std::vector<std::vector<bool>> reachable_rows(
    const partitioned_design& design, const std::vector<bool>& assignment) {
  const int input = design.input_array();
  check(input >= 0, "partitioned evaluate: design has no input row");

  wire_index index(design);
  // Adjacency over nets: conducting devices join a fragment's row and
  // column wires; bridges join wires unconditionally.
  std::vector<std::vector<int>> adjacent(
      static_cast<std::size_t>(index.total));
  for (int f = 0; f < design.array_count(); ++f) {
    const crossbar& frag = design.fragment(f);
    for (int r = 0; r < frag.rows(); ++r) {
      for (int c = 0; c < frag.columns(); ++c) {
        if (!frag.at(r, c).conducts(assignment)) continue;
        const int rw = index.of_row(design, f, r);
        const int cw = index.of_column(design, f, c);
        adjacent[static_cast<std::size_t>(rw)].push_back(cw);
        adjacent[static_cast<std::size_t>(cw)].push_back(rw);
      }
    }
  }
  for (const bridge& b : design.connections()) {
    const int aw = b.a.kind == wire_kind::row
                       ? index.of_row(design, b.a.array, b.a.index)
                       : index.of_column(design, b.a.array, b.a.index);
    const int bw = b.b.kind == wire_kind::row
                       ? index.of_row(design, b.b.array, b.b.index)
                       : index.of_column(design, b.b.array, b.b.index);
    adjacent[static_cast<std::size_t>(aw)].push_back(bw);
    adjacent[static_cast<std::size_t>(bw)].push_back(aw);
  }

  std::vector<bool> reached(static_cast<std::size_t>(index.total), false);
  std::queue<int> frontier;
  const int start =
      index.of_row(design, input, design.fragment(input).input_row());
  reached[static_cast<std::size_t>(start)] = true;
  frontier.push(start);
  while (!frontier.empty()) {
    const int wire = frontier.front();
    frontier.pop();
    for (const int next : adjacent[static_cast<std::size_t>(wire)]) {
      if (reached[static_cast<std::size_t>(next)]) continue;
      reached[static_cast<std::size_t>(next)] = true;
      frontier.push(next);
    }
  }

  std::vector<std::vector<bool>> rows;
  rows.reserve(static_cast<std::size_t>(design.array_count()));
  for (int f = 0; f < design.array_count(); ++f) {
    const crossbar& frag = design.fragment(f);
    std::vector<bool> fragment_rows(static_cast<std::size_t>(frag.rows()));
    for (int r = 0; r < frag.rows(); ++r)
      fragment_rows[static_cast<std::size_t>(r)] =
          reached[static_cast<std::size_t>(index.of_row(design, f, r))];
    rows.push_back(std::move(fragment_rows));
  }
  return rows;
}

std::vector<bool> evaluate(const partitioned_design& design,
                           const std::vector<bool>& assignment) {
  const std::vector<std::vector<bool>> rows =
      reachable_rows(design, assignment);
  std::vector<bool> values;
  for (int f = 0; f < design.array_count(); ++f)
    for (const output_port& o : design.fragment(f).outputs())
      values.push_back(
          rows[static_cast<std::size_t>(f)][static_cast<std::size_t>(o.row)]);
  for (const crossbar& frag : design.fragments())
    for (const auto& [name, value] : frag.constant_outputs())
      values.push_back(value);
  return values;
}

bool evaluate_output(const partitioned_design& design,
                     const std::vector<bool>& assignment,
                     const std::string& output_name) {
  const std::vector<std::string> names = design.output_names();
  const std::vector<bool> values = evaluate(design, assignment);
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == output_name) return values[i];
  throw error("partitioned evaluate: no output named '" + output_name + "'");
}

}  // namespace compact::xbar
