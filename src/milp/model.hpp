// Linear/mixed-integer model description.
//
// This is the repo's stand-in for a commercial MIP solver's modeling layer
// (the paper uses CPLEX). Models are always *minimization*; a maximization
// problem is expressed by negating its objective.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace compact::milp {

inline constexpr double infinity = std::numeric_limits<double>::infinity();

enum class relation { less_equal, greater_equal, equal };

struct linear_term {
  int variable = 0;
  double coefficient = 0.0;
};

struct constraint {
  std::vector<linear_term> terms;
  relation rel = relation::less_equal;
  double rhs = 0.0;
  std::string name;
};

struct variable {
  double lower = 0.0;
  double upper = infinity;
  double objective = 0.0;
  bool is_integer = false;
  /// Branch-and-bound picks a branching variable among the fractional
  /// integer variables of the highest priority class first. Structural
  /// decisions (e.g. VH labels) should outrank auxiliary selectors.
  int branch_priority = 0;
  std::string name;
};

class model {
 public:
  /// Add a variable; returns its index.
  int add_variable(double lower, double upper, double objective,
                   bool is_integer, std::string name = {});

  /// Convenience: binary decision variable.
  int add_binary(double objective, std::string name = {}) {
    return add_variable(0.0, 1.0, objective, /*is_integer=*/true,
                        std::move(name));
  }

  /// Convenience: continuous non-negative variable.
  int add_continuous(double objective, std::string name = {}) {
    return add_variable(0.0, infinity, objective, /*is_integer=*/false,
                        std::move(name));
  }

  /// Add `sum(terms) rel rhs`. Terms may repeat a variable; coefficients
  /// are accumulated.
  void add_constraint(std::vector<linear_term> terms, relation rel, double rhs,
                      std::string name = {});

  /// Tighten the bounds of an existing variable (used for branching).
  void set_bounds(int variable_index, double lower, double upper);

  /// Set the branch priority of a variable (default 0; higher first).
  void set_branch_priority(int variable_index, int priority);

  [[nodiscard]] std::size_t variable_count() const { return variables_.size(); }
  [[nodiscard]] std::size_t constraint_count() const {
    return constraints_.size();
  }
  [[nodiscard]] const variable& var(int i) const { return variables_.at(i); }
  [[nodiscard]] const std::vector<variable>& variables() const {
    return variables_;
  }
  [[nodiscard]] const std::vector<constraint>& constraints() const {
    return constraints_;
  }

  /// Objective value of an assignment (no feasibility check).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// True when `x` satisfies every constraint, bound, and integrality
  /// requirement within `tolerance`.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                 double tolerance = 1e-6) const;

  /// Like is_feasible but ignoring integrality (LP relaxation check).
  [[nodiscard]] bool is_feasible_continuous(const std::vector<double>& x,
                                            double tolerance = 1e-6) const;

 private:
  std::vector<variable> variables_;
  std::vector<constraint> constraints_;
};

}  // namespace compact::milp
