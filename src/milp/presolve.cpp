#include "milp/presolve.hpp"

#include <algorithm>
#include <cmath>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace compact::milp {
namespace {

struct work_row {
  std::vector<linear_term> terms;
  relation rel = relation::less_equal;
  double rhs = 0.0;
  std::string name;
  bool removed = false;
};

/// Contribution of one term to a row's minimum/maximum activity.
inline double min_contribution(const linear_term& t, const std::vector<double>& lo,
                               const std::vector<double>& hi) {
  return t.coefficient > 0.0 ? t.coefficient * lo[static_cast<std::size_t>(t.variable)]
                             : t.coefficient * hi[static_cast<std::size_t>(t.variable)];
}
inline double max_contribution(const linear_term& t, const std::vector<double>& lo,
                               const std::vector<double>& hi) {
  return t.coefficient > 0.0 ? t.coefficient * hi[static_cast<std::size_t>(t.variable)]
                             : t.coefficient * lo[static_cast<std::size_t>(t.variable)];
}

}  // namespace

presolve_result presolve_model(const model& m, const presolve_options& options) {
  const trace_span span("milp_presolve", "milp");
  presolve_result result;
  presolve_stats& stats = result.stats;
  const std::size_t n = m.variable_count();

  std::vector<double> lo(n);
  std::vector<double> hi(n);
  for (std::size_t j = 0; j < n; ++j) {
    lo[j] = m.var(static_cast<int>(j)).lower;
    hi[j] = m.var(static_cast<int>(j)).upper;
    // Integer bounds round inward once up front.
    if (m.var(static_cast<int>(j)).is_integer) {
      if (std::isfinite(lo[j])) lo[j] = std::ceil(lo[j] - 1e-6);
      if (std::isfinite(hi[j])) hi[j] = std::floor(hi[j] + 1e-6);
    }
  }

  std::vector<work_row> rows;
  rows.reserve(m.constraint_count());
  for (const constraint& c : m.constraints()) {
    work_row r;
    r.rel = c.rel;
    r.rhs = c.rhs;
    r.name = c.name;
    r.terms.reserve(c.terms.size());
    for (const linear_term& t : c.terms) {
      if (t.coefficient == 0.0) {
        ++stats.terms_removed;  // contributes nothing, drop immediately
        continue;
      }
      r.terms.push_back(t);
    }
    rows.push_back(std::move(r));
  }

  const double ftol = options.feasibility_tolerance;
  std::vector<bool> substituted(n, false);

  // Tighten a variable bound; returns true when it strictly improved.
  auto tighten_upper = [&](int j, double value) {
    const auto sj = static_cast<std::size_t>(j);
    if (m.var(j).is_integer) value = std::floor(value + 1e-6);
    if (value >= hi[sj] - 1e-7) return false;
    hi[sj] = value;
    ++stats.bounds_tightened;
    return true;
  };
  auto tighten_lower = [&](int j, double value) {
    const auto sj = static_cast<std::size_t>(j);
    if (m.var(j).is_integer) value = std::ceil(value - 1e-6);
    if (value <= lo[sj] + 1e-7) return false;
    lo[sj] = value;
    ++stats.bounds_tightened;
    return true;
  };

  bool changed = true;
  while (changed && stats.rounds < options.max_rounds &&
         !stats.proved_infeasible) {
    changed = false;
    ++stats.rounds;

    for (work_row& r : rows) {
      if (stats.proved_infeasible) break;
      if (r.removed) continue;

      // Substitute variables fixed since the row was last visited.
      std::erase_if(r.terms, [&](const linear_term& t) {
        const auto sj = static_cast<std::size_t>(t.variable);
        if (!substituted[sj]) return false;
        r.rhs -= t.coefficient * lo[sj];
        ++stats.terms_removed;
        return true;
      });

      // Activity bounds with explicit infinity accounting.
      double min_sum = 0.0;
      double max_sum = 0.0;
      int min_inf = 0;
      int max_inf = 0;
      for (const linear_term& t : r.terms) {
        const double mn = min_contribution(t, lo, hi);
        const double mx = max_contribution(t, lo, hi);
        if (std::isfinite(mn)) min_sum += mn; else ++min_inf;
        if (std::isfinite(mx)) max_sum += mx; else ++max_inf;
      }
      const double min_activity = min_inf > 0 ? -infinity : min_sum;
      const double max_activity = max_inf > 0 ? infinity : max_sum;

      // Infeasibility and redundancy from the activity range alone.
      const bool need_le = r.rel != relation::greater_equal;
      const bool need_ge = r.rel != relation::less_equal;
      if ((need_le && min_activity > r.rhs + ftol) ||
          (need_ge && max_activity < r.rhs - ftol)) {
        stats.proved_infeasible = true;
        break;
      }
      const bool le_redundant = !need_le || max_activity <= r.rhs + 1e-9;
      const bool ge_redundant = !need_ge || min_activity >= r.rhs - 1e-9;
      if (r.terms.empty() || (le_redundant && ge_redundant)) {
        r.removed = true;
        ++stats.rows_removed;
        changed = true;
        continue;
      }

      // Bound tightening: the row's residual after the other terms take
      // their extreme values implies a bound on each variable.
      for (const linear_term& t : r.terms) {
        const int j = t.variable;
        const auto sj = static_cast<std::size_t>(j);
        const double a = t.coefficient;
        if (need_le) {
          const double own_min = min_contribution(t, lo, hi);
          const bool others_finite =
              min_inf == 0 || (min_inf == 1 && !std::isfinite(own_min));
          if (others_finite) {
            const double others = std::isfinite(own_min) ? min_sum - own_min
                                                         : min_sum;
            const double bound = (r.rhs - others) / a;
            changed |= a > 0.0 ? tighten_upper(j, bound)
                               : tighten_lower(j, bound);
          }
        }
        if (need_ge) {
          const double own_max = max_contribution(t, lo, hi);
          const bool others_finite =
              max_inf == 0 || (max_inf == 1 && !std::isfinite(own_max));
          if (others_finite) {
            const double others = std::isfinite(own_max) ? max_sum - own_max
                                                         : max_sum;
            const double bound = (r.rhs - others) / a;
            changed |= a > 0.0 ? tighten_lower(j, bound)
                               : tighten_upper(j, bound);
          }
        }
        if (lo[sj] > hi[sj] + ftol) {
          stats.proved_infeasible = true;
          break;
        }
      }
    }

    // Newly fixed variables get substituted on the next sweep; make sure a
    // final sweep happens even when nothing else changed this round.
    for (std::size_t j = 0; j < n && !stats.proved_infeasible; ++j) {
      if (substituted[j] || !(hi[j] - lo[j] <= 1e-12)) continue;
      substituted[j] = true;
      ++stats.variables_fixed;
      changed = true;
    }
  }

  if (metrics_enabled()) {
    metrics_registry& registry = global_metrics();
    registry.counter("milp.presolve.runs").increment();
    registry.counter("milp.presolve.bounds_tightened")
        .add(stats.bounds_tightened);
    registry.counter("milp.presolve.variables_fixed")
        .add(stats.variables_fixed);
    registry.counter("milp.presolve.rows_removed").add(stats.rows_removed);
    if (stats.proved_infeasible)
      registry.counter("milp.presolve.proved_infeasible").increment();
  }
  if (stats.proved_infeasible) return result;

  // Rebuild: identical variable order, tightened bounds, surviving rows.
  for (std::size_t j = 0; j < n; ++j) {
    const variable& v = m.var(static_cast<int>(j));
    const int idx = result.reduced.add_variable(lo[j], hi[j], v.objective,
                                                v.is_integer, v.name);
    result.reduced.set_branch_priority(idx, v.branch_priority);
  }
  for (work_row& r : rows) {
    if (r.removed) continue;
    // Substitutions discovered on the last round may not have been folded in.
    std::erase_if(r.terms, [&](const linear_term& t) {
      const auto sj = static_cast<std::size_t>(t.variable);
      if (!substituted[sj]) return false;
      r.rhs -= t.coefficient * lo[sj];
      ++stats.terms_removed;
      return true;
    });
    if (r.terms.empty()) {
      // A row emptied by last-round substitutions never went through the
      // activity check; 0 REL rhs must still hold or the model is infeasible.
      const bool ok =
          (r.rel == relation::less_equal && 0.0 <= r.rhs + ftol) ||
          (r.rel == relation::greater_equal && 0.0 >= r.rhs - ftol) ||
          (r.rel == relation::equal && std::abs(r.rhs) <= ftol);
      if (!ok) {
        stats.proved_infeasible = true;
        return result;
      }
      ++stats.rows_removed;
      continue;
    }
    result.reduced.add_constraint(std::move(r.terms), r.rel, r.rhs,
                                  std::move(r.name));
  }
  return result;
}

}  // namespace compact::milp
