#include "milp/model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace compact::milp {

int model::add_variable(double lower, double upper, double objective,
                        bool is_integer, std::string name) {
  check(lower <= upper, "model: variable lower bound exceeds upper bound");
  variables_.push_back(
      {lower, upper, objective, is_integer, 0, std::move(name)});
  return static_cast<int>(variables_.size() - 1);
}

void model::set_branch_priority(int variable_index, int priority) {
  check(variable_index >= 0 &&
            static_cast<std::size_t>(variable_index) < variables_.size(),
        "model: set_branch_priority on unknown variable");
  variables_[static_cast<std::size_t>(variable_index)].branch_priority =
      priority;
}

void model::add_constraint(std::vector<linear_term> terms, relation rel,
                           double rhs, std::string name) {
  // Accumulate duplicate variables so the simplex sees clean columns.
  std::map<int, double> accumulated;
  for (const auto& t : terms) {
    check(t.variable >= 0 &&
              static_cast<std::size_t>(t.variable) < variables_.size(),
          "model: constraint references unknown variable");
    accumulated[t.variable] += t.coefficient;
  }
  constraint c;
  c.rel = rel;
  c.rhs = rhs;
  c.name = std::move(name);
  for (const auto& [v, coef] : accumulated)
    if (coef != 0.0) c.terms.push_back({v, coef});
  constraints_.push_back(std::move(c));
}

void model::set_bounds(int variable_index, double lower, double upper) {
  check(variable_index >= 0 &&
            static_cast<std::size_t>(variable_index) < variables_.size(),
        "model: set_bounds on unknown variable");
  check(lower <= upper, "model: set_bounds with crossed bounds");
  variables_[variable_index].lower = lower;
  variables_[variable_index].upper = upper;
}

double model::objective_value(const std::vector<double>& x) const {
  check(x.size() == variables_.size(), "model: assignment size mismatch");
  double value = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i)
    value += variables_[i].objective * x[i];
  return value;
}

bool model::is_feasible(const std::vector<double>& x, double tolerance) const {
  if (!is_feasible_continuous(x, tolerance)) return false;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i].is_integer &&
        std::abs(x[i] - std::round(x[i])) > tolerance)
      return false;
  }
  return true;
}

bool model::is_feasible_continuous(const std::vector<double>& x,
                                   double tolerance) const {
  if (x.size() != variables_.size()) return false;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    const auto& v = variables_[i];
    if (x[i] < v.lower - tolerance || x[i] > v.upper + tolerance) return false;
  }
  for (const auto& c : constraints_) {
    double lhs = 0.0;
    for (const auto& t : c.terms) lhs += t.coefficient * x[t.variable];
    switch (c.rel) {
      case relation::less_equal:
        if (lhs > c.rhs + tolerance) return false;
        break;
      case relation::greater_equal:
        if (lhs < c.rhs - tolerance) return false;
        break;
      case relation::equal:
        if (std::abs(lhs - c.rhs) > tolerance) return false;
        break;
    }
  }
  return true;
}

}  // namespace compact::milp
