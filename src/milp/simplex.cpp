#include "milp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/memtrack.hpp"
#include "util/stopwatch.hpp"

namespace compact::milp {
namespace {

enum class var_status : char { basic, at_lower, at_upper };

/// Dense tableau simplex state over the augmented column set
/// [structural | slack | artificial].
class tableau_solver {
 public:
  tableau_solver(const model& m, const lp_options& options)
      : model_(m), options_(options) {
    build();
  }
  ~tableau_solver() {
    if (bytes_accounted_ != 0)
      memtrack_account("milp.tableau").sub(bytes_accounted_);
  }
  tableau_solver(const tableau_solver&) = delete;
  tableau_solver& operator=(const tableau_solver&) = delete;

  lp_result run() {
    lp_result result;

    // ---- Phase 1: minimize the sum of artificial variables. ----
    if (artificial_count_ > 0) {
      std::vector<double> phase1_cost(total_, 0.0);
      for (int j = first_artificial_; j < total_; ++j) phase1_cost[j] = 1.0;
      set_costs(phase1_cost);
      const lp_status status = optimize(result.iterations);
      if (status == lp_status::iteration_limit) {
        result.status = status;
        return result;
      }
      if (current_objective() > 1e-6) {
        result.status = lp_status::infeasible;
        return result;
      }
      drive_out_artificials();
      // Freeze artificials at zero so phase 2 cannot reuse them.
      for (int j = first_artificial_; j < total_; ++j) upper_[j] = 0.0;
    }

    // ---- Phase 2: minimize the model objective. ----
    std::vector<double> phase2_cost(total_, 0.0);
    for (std::size_t j = 0; j < model_.variable_count(); ++j)
      phase2_cost[j] = model_.var(static_cast<int>(j)).objective;
    set_costs(phase2_cost);
    const lp_status status = optimize(result.iterations);
    result.status = status;
    if (status == lp_status::optimal) {
      result.x = structural_solution();
      result.objective = model_.objective_value(result.x);
      // Numerical self-check: an "optimal" point that violates the model
      // (drifted basis values) must never reach branch-and-bound as a
      // trusted dual bound.
      if (!model_.is_feasible_continuous(result.x, 1e-5))
        result.status = lp_status::iteration_limit;
    }
    return result;
  }

 private:
  static constexpr double inf = std::numeric_limits<double>::infinity();

  void build() {
    const int n = static_cast<int>(model_.variable_count());
    const int m = static_cast<int>(model_.constraint_count());

    lower_.resize(n);
    upper_.resize(n);
    for (int j = 0; j < n; ++j) {
      const variable& v = model_.var(j);
      check(std::isfinite(v.lower),
            "simplex: variables must have finite lower bounds");
      lower_[j] = v.lower;
      upper_[j] = v.upper;
    }

    // Slack layout: one slack per inequality constraint.
    slack_row_.assign(m, -1);
    int slack_count = 0;
    for (int i = 0; i < m; ++i)
      if (model_.constraints()[i].rel != relation::equal)
        slack_row_[i] = slack_count++;
    first_slack_ = n;
    first_artificial_ = n + slack_count;

    // Initial nonbasic point: structural vars at their lower bound, slacks
    // at zero. Compute each row's residual to decide whether the slack can
    // serve as the initial basic variable or an artificial is required.
    std::vector<double> residual(m);
    for (int i = 0; i < m; ++i) {
      const constraint& c = model_.constraints()[i];
      double lhs = 0.0;
      for (const auto& t : c.terms) lhs += t.coefficient * lower_[t.variable];
      residual[i] = c.rhs - lhs;
    }

    std::vector<int> artificial_of_row(m, -1);
    artificial_count_ = 0;
    for (int i = 0; i < m; ++i) {
      const relation rel = model_.constraints()[i].rel;
      const bool slack_can_absorb =
          (rel == relation::less_equal && residual[i] >= 0.0) ||
          (rel == relation::greater_equal && residual[i] <= 0.0);
      if (!slack_can_absorb) artificial_of_row[i] = artificial_count_++;
    }
    total_ = first_artificial_ + artificial_count_;

    lower_.resize(total_, 0.0);
    upper_.resize(total_, inf);

    // Dense tableau rows; column k in [0, total_).
    tableau_.assign(m, std::vector<double>(total_, 0.0));
    basis_.assign(m, -1);
    status_.assign(total_, var_status::at_lower);
    x_basic_.assign(m, 0.0);
    // Charge the dominant allocations (tableau rows + column-sized arrays)
    // to mem.milp.tableau for the life of this solve.
    static mem_account& tableau_account = memtrack_account("milp.tableau");
    account_set(tableau_account, bytes_accounted_,
                static_cast<std::uint64_t>(m) *
                        (static_cast<std::uint64_t>(total_) + 2) *
                        sizeof(double) +
                    static_cast<std::uint64_t>(total_) * 5 * sizeof(double));

    for (int i = 0; i < m; ++i) {
      const constraint& c = model_.constraints()[i];
      for (const auto& t : c.terms)
        tableau_[i][t.variable] = t.coefficient;
      if (slack_row_[i] >= 0) {
        const double coef = c.rel == relation::less_equal ? 1.0 : -1.0;
        tableau_[i][first_slack_ + slack_row_[i]] = coef;
      }
      // The pivot/ratio/update formulas assume canonical form: the basic
      // variable of row i appears with coefficient +1. Rows whose initial
      // basic column would carry -1 (>= slacks; artificials covering a
      // negative residual) are negated wholesale, which is just negating
      // both sides of the row equation.
      int basic_col;
      bool negate_row;
      if (artificial_of_row[i] >= 0) {
        basic_col = first_artificial_ + artificial_of_row[i];
        tableau_[i][basic_col] = 1.0;
        negate_row = residual[i] < 0.0;
        if (negate_row) tableau_[i][basic_col] = -1.0;  // +1 after negation
      } else {
        basic_col = first_slack_ + slack_row_[i];
        negate_row = c.rel == relation::greater_equal;
      }
      if (negate_row)
        for (int j = 0; j < total_; ++j) tableau_[i][j] = -tableau_[i][j];
      check(tableau_[i][basic_col] == 1.0,
            "simplex: initial basis column not canonical");
      basis_[i] = basic_col;
      status_[basic_col] = var_status::basic;
      // In all cases the initial basic value is |residual|: the artificial
      // absorbs the (sign-normalized) residual, a <= slack holds residual
      // >= 0, and a >= slack holds -residual >= 0.
      x_basic_[i] = std::abs(residual[i]);
    }

    cost_.assign(total_, 0.0);
    reduced_.assign(total_, 0.0);
  }

  /// Install a new objective and recompute reduced costs from scratch.
  void set_costs(const std::vector<double>& cost) {
    cost_ = cost;
    const int m = static_cast<int>(tableau_.size());
    for (int j = 0; j < total_; ++j) {
      double cb_t = 0.0;
      for (int i = 0; i < m; ++i) cb_t += cost_[basis_[i]] * tableau_[i][j];
      reduced_[j] = cost_[j] - cb_t;
    }
  }

  [[nodiscard]] double nonbasic_value(int j) const {
    return status_[j] == var_status::at_upper ? upper_[j] : lower_[j];
  }

  [[nodiscard]] double current_objective() const {
    double obj = 0.0;
    const int m = static_cast<int>(tableau_.size());
    for (int i = 0; i < m; ++i) obj += cost_[basis_[i]] * x_basic_[i];
    for (int j = 0; j < total_; ++j)
      if (status_[j] != var_status::basic && cost_[j] != 0.0)
        obj += cost_[j] * nonbasic_value(j);
    return obj;
  }

  [[nodiscard]] std::vector<double> structural_solution() const {
    std::vector<double> x(model_.variable_count());
    for (std::size_t j = 0; j < x.size(); ++j)
      x[j] = nonbasic_value(static_cast<int>(j));
    const int m = static_cast<int>(tableau_.size());
    for (int i = 0; i < m; ++i)
      if (basis_[i] < static_cast<int>(model_.variable_count()))
        x[basis_[i]] = x_basic_[i];
    return x;
  }

  /// Core simplex loop for the currently installed costs.
  lp_status optimize(long& iterations) {
    const int m = static_cast<int>(tableau_.size());
    const double eps_d = options_.reduced_cost_tolerance;
    const double eps_p = options_.pivot_tolerance;
    long stall = 0;
    double last_objective = current_objective();
    // Reduced costs are updated incrementally by pivoting and drift over
    // long runs; optimality claimed from drifted values would hand invalid
    // dual bounds to branch-and-bound. A claimed optimum is therefore
    // re-verified against freshly recomputed reduced costs once.
    bool reduced_costs_fresh = false;

    while (true) {
      if (iterations++ > options_.max_iterations)
        return lp_status::iteration_limit;
      // Clock probes are ~ns while large-tableau pivots are ~ms: probe
      // often, or a tight deadline overshoots by orders of magnitude.
      if ((iterations & 0xf) == 0 &&
          clock_.seconds() > options_.time_limit_seconds)
        return lp_status::iteration_limit;
      const bool bland = stall > 4L * (m + total_);

      // ---- Pricing: pick an entering variable. ----
      int entering = -1;
      double best_violation = eps_d;
      for (int j = 0; j < total_; ++j) {
        if (status_[j] == var_status::basic) continue;
        if (upper_[j] - lower_[j] <= 0.0) continue;  // fixed variable
        double violation = 0.0;
        if (status_[j] == var_status::at_lower && reduced_[j] < -eps_d)
          violation = -reduced_[j];
        else if (status_[j] == var_status::at_upper && reduced_[j] > eps_d)
          violation = reduced_[j];
        if (violation > 0.0) {
          if (bland) {
            entering = j;
            break;
          }
          if (violation > best_violation) {
            best_violation = violation;
            entering = j;
          }
        }
      }
      if (entering == -1) {
        if (reduced_costs_fresh) return lp_status::optimal;
        set_costs(cost_);  // exact recompute, then re-scan
        reduced_costs_fresh = true;
        continue;
      }
      reduced_costs_fresh = false;

      const double dir =
          status_[entering] == var_status::at_lower ? 1.0 : -1.0;

      // ---- Ratio test. ----
      double step = upper_[entering] - lower_[entering];  // may be +inf
      int leaving_row = -1;
      var_status leaving_bound = var_status::at_lower;
      for (int i = 0; i < m; ++i) {
        const double rate = -tableau_[i][entering] * dir;
        if (std::abs(rate) <= eps_p) continue;
        const int b = basis_[i];
        double limit = inf;
        var_status bound = var_status::at_lower;
        if (rate < 0.0) {
          limit = (x_basic_[i] - lower_[b]) / -rate;
          bound = var_status::at_lower;
        } else if (std::isfinite(upper_[b])) {
          limit = (upper_[b] - x_basic_[i]) / rate;
          bound = var_status::at_upper;
        } else {
          continue;
        }
        if (limit < -1e-9) limit = 0.0;  // numerical guard on degeneracy
        const bool better =
            limit < step - 1e-12 ||
            (leaving_row >= 0 && limit < step + 1e-12 &&
             (bland ? basis_[i] < basis_[leaving_row]
                    : std::abs(tableau_[i][entering]) >
                          std::abs(tableau_[leaving_row][entering])));
        if (better) {
          step = std::max(limit, 0.0);
          leaving_row = i;
          leaving_bound = bound;
        }
      }

      if (!std::isfinite(step)) return lp_status::unbounded;

      // ---- Apply the step to the basic solution. ----
      for (int i = 0; i < m; ++i)
        x_basic_[i] += -tableau_[i][entering] * dir * step;

      if (leaving_row == -1) {
        // Bound flip: the entering variable traverses its whole range.
        status_[entering] = status_[entering] == var_status::at_lower
                                ? var_status::at_upper
                                : var_status::at_lower;
      } else {
        // ---- Pivot: entering becomes basic in `leaving_row`. ----
        const int leaving = basis_[leaving_row];
        const double entering_value = nonbasic_value(entering) + dir * step;
        status_[leaving] = leaving_bound;
        // Snap the leaving variable exactly onto its bound.
        status_[entering] = var_status::basic;
        basis_[leaving_row] = entering;
        x_basic_[leaving_row] = entering_value;

        pivot(leaving_row, entering);
      }

      const double objective = current_objective();
      if (objective < last_objective - 1e-9) {
        stall = 0;
        last_objective = objective;
      } else {
        ++stall;
      }
    }
  }

  /// Gaussian elimination step making column `col` the unit vector for `row`.
  void pivot(int row, int col) {
    const int m = static_cast<int>(tableau_.size());
    std::vector<double>& pivot_row = tableau_[row];
    const double pivot_element = pivot_row[col];
    check(std::abs(pivot_element) > 1e-12, "simplex: zero pivot element");
    const double inverse = 1.0 / pivot_element;
    for (int j = 0; j < total_; ++j) pivot_row[j] *= inverse;
    pivot_row[col] = 1.0;  // exact

    for (int i = 0; i < m; ++i) {
      if (i == row) continue;
      const double factor = tableau_[i][col];
      if (factor == 0.0) continue;
      std::vector<double>& target = tableau_[i];
      for (int j = 0; j < total_; ++j) target[j] -= factor * pivot_row[j];
      target[col] = 0.0;  // exact
    }
    const double dfactor = reduced_[col];
    if (dfactor != 0.0) {
      for (int j = 0; j < total_; ++j) reduced_[j] -= dfactor * pivot_row[j];
      reduced_[col] = 0.0;
    }
  }

  /// After phase 1: pivot basic artificials onto any usable real column so
  /// that phase 2 starts from a basis of structural/slack variables.
  void drive_out_artificials() {
    const int m = static_cast<int>(tableau_.size());
    for (int i = 0; i < m; ++i) {
      if (basis_[i] < first_artificial_) continue;
      int col = -1;
      for (int j = 0; j < first_artificial_; ++j) {
        if (status_[j] == var_status::basic) continue;
        if (std::abs(tableau_[i][j]) > options_.pivot_tolerance) {
          col = j;
          break;
        }
      }
      if (col == -1) continue;  // redundant row; artificial stays at zero
      const int artificial = basis_[i];
      // Degenerate exchange: the artificial sits at zero, so no variable
      // changes value — the entering column keeps the bound value it had
      // while nonbasic. Capture it before flipping its status.
      const double entering_value = nonbasic_value(col);
      status_[artificial] = var_status::at_lower;
      status_[col] = var_status::basic;
      basis_[i] = col;
      pivot(i, col);
      x_basic_[i] = entering_value;
    }
  }

  const model& model_;
  const lp_options& options_;
  stopwatch clock_;

  int first_slack_ = 0;
  int first_artificial_ = 0;
  int artificial_count_ = 0;
  int total_ = 0;

  std::vector<int> slack_row_;
  std::vector<std::vector<double>> tableau_;
  std::vector<int> basis_;
  std::vector<var_status> status_;
  std::vector<double> x_basic_;
  std::vector<double> lower_, upper_;
  std::vector<double> cost_, reduced_;
  std::uint64_t bytes_accounted_ = 0;  // charged to mem.milp.tableau
};

}  // namespace

lp_result solve_lp(const model& m, const lp_options& options) {
  if (m.variable_count() == 0) {
    lp_result r;
    r.status = lp_status::optimal;
    return r;
  }
  tableau_solver solver(m, options);
  return solver.run();
}

}  // namespace compact::milp
