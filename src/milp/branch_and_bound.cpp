#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/trace.hpp"

namespace compact::milp {
namespace {

constexpr double inf = std::numeric_limits<double>::infinity();
constexpr double int_tolerance = 1e-6;

struct bb_node {
  double lp_bound = -inf;  // parent LP objective (lower bound for subtree)
  // Branching decisions along the path from the root: (var, lower, upper).
  std::vector<std::tuple<int, double, double>> fixings;
};

struct node_order {
  bool operator()(const bb_node& a, const bb_node& b) const {
    return a.lp_bound > b.lp_bound;  // min-heap on bound (best-first)
  }
};

/// Branching variable: among the fractional integer variables of the
/// highest branch-priority class, the one closest to 0.5. Returns -1 when
/// `x` is integral on all integer variables.
int most_fractional(const model& m, const std::vector<double>& x) {
  int best = -1;
  int best_priority = 0;
  double best_dist = 0.0;
  for (std::size_t j = 0; j < m.variable_count(); ++j) {
    const variable& v = m.var(static_cast<int>(j));
    if (!v.is_integer) continue;
    const double frac = x[j] - std::floor(x[j]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist <= int_tolerance) continue;
    const bool better = best == -1 ||
                        v.branch_priority > best_priority ||
                        (v.branch_priority == best_priority &&
                         dist > best_dist + 1e-12);
    if (better) {
      best = static_cast<int>(j);
      best_priority = v.branch_priority;
      best_dist = dist;
    }
  }
  return best;
}

/// Try rounding a fractional LP point to a feasible integer point.
std::optional<std::vector<double>> round_heuristic(const model& m,
                                                   std::vector<double> x) {
  for (std::size_t j = 0; j < m.variable_count(); ++j)
    if (m.var(static_cast<int>(j)).is_integer) x[j] = std::round(x[j]);
  if (m.is_feasible(x)) return x;
  return std::nullopt;
}

/// Diving heuristic: starting from `working`'s current bounds, repeatedly
/// fix the most fractional integer variable to its nearest value (flipping
/// once on infeasibility) until the LP relaxation turns integral. Returns
/// an integer-feasible point for the *original* bounds or nullopt. The
/// model's bounds are restored by the caller (apply_node).
std::optional<std::vector<double>> dive_heuristic(model& working,
                                                  const model& original,
                                                  const lp_options& lp_opts,
                                                  std::vector<double> x,
                                                  int max_depth,
                                                  double time_budget_seconds) {
  stopwatch dive_clock;
  std::vector<bool> skipped(working.variable_count(), false);
  for (int depth = 0; depth < max_depth; ++depth) {
    if (dive_clock.seconds() > time_budget_seconds) return std::nullopt;
    // Most fractional non-skipped integer variable (priority-aware).
    int var = -1;
    int best_priority = 0;
    double best_dist = 0.0;
    for (std::size_t j = 0; j < working.variable_count(); ++j) {
      const variable& v = working.var(static_cast<int>(j));
      if (!v.is_integer || skipped[j]) continue;
      const double frac = x[j] - std::floor(x[j]);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist <= int_tolerance) continue;
      if (var == -1 || v.branch_priority > best_priority ||
          (v.branch_priority == best_priority && dist > best_dist)) {
        var = static_cast<int>(j);
        best_priority = v.branch_priority;
        best_dist = dist;
      }
    }
    if (var == -1) {
      // Integral on every non-skipped variable; snap and test.
      for (std::size_t j = 0; j < working.variable_count(); ++j)
        if (working.var(static_cast<int>(j)).is_integer)
          x[j] = std::round(x[j]);
      if (original.is_feasible(x)) return x;
      return std::nullopt;
    }
    const double saved_lower = working.var(var).lower;
    const double saved_upper = working.var(var).upper;
    const double rounded = std::round(x[static_cast<std::size_t>(var)]);
    working.set_bounds(var, rounded, rounded);
    lp_result lp = solve_lp(working, lp_opts);
    if (lp.status != lp_status::optimal) {
      // Flip once; if that also fails, leave the variable free for later
      // instead of abandoning the dive.
      const double flipped = rounded > saved_lower ? saved_lower : saved_upper;
      if (std::isfinite(flipped)) {
        working.set_bounds(var, flipped, flipped);
        lp = solve_lp(working, lp_opts);
      }
      if (lp.status != lp_status::optimal) {
        working.set_bounds(var, saved_lower, saved_upper);
        skipped[static_cast<std::size_t>(var)] = true;
        continue;
      }
    }
    x = lp.x;
  }
  return std::nullopt;
}

double relative_gap(double incumbent, double bound) {
  if (!std::isfinite(incumbent) || !std::isfinite(bound)) return 1.0;
  const double gap =
      (incumbent - bound) / std::max(std::abs(incumbent), 1.0);
  return std::clamp(gap, 0.0, 1.0);
}

}  // namespace

// Adds the solve's totals to the "milp.bnb.*" counters on every exit path
// of solve_mip (several early returns). No-op when metrics are disabled.
struct solve_metrics_guard {
  const mip_result& result;
  const std::uint64_t& lp_iterations;
  const std::uint64_t& incumbents;
  ~solve_metrics_guard() {
    if (!metrics_enabled()) return;
    metrics_registry& registry = global_metrics();
    registry.counter("milp.bnb.nodes_explored")
        .add(static_cast<std::uint64_t>(result.nodes_explored));
    registry.counter("milp.bnb.lp_iterations").add(lp_iterations);
    registry.counter("milp.bnb.incumbents").add(incumbents);
    registry.counter("milp.bnb.solves").increment();
  }
};

mip_result solve_mip(const model& original, const mip_options& options) {
  const trace_span span("solve_mip", "milp");
  stopwatch clock;
  mip_result result;
  std::uint64_t lp_iterations = 0;  // node-LP simplex iterations
  std::uint64_t incumbents = 0;     // accepted incumbent improvements
  const solve_metrics_guard metrics_guard{result, lp_iterations, incumbents};

  for (std::size_t j = 0; j < original.variable_count(); ++j) {
    const variable& v = original.var(static_cast<int>(j));
    if (v.is_integer)
      check(std::isfinite(v.lower) && std::isfinite(v.upper),
            "solve_mip: integer variables need finite bounds");
  }

  double incumbent_obj = inf;
  std::vector<double> incumbent;

  // Milestones flow out through the on_trace event callback rather than a
  // stored vector; `recorded` only tracks whether the terminal summary entry
  // below should fire for bound-only runs.
  long recorded = 0;
  double last_metric_incumbent = inf;
  auto record = [&](double bound) {
    mip_trace_entry entry;
    entry.seconds = clock.seconds();
    entry.best_integer = incumbent_obj;
    entry.best_bound = bound;
    entry.relative_gap = relative_gap(incumbent_obj, bound);
    ++recorded;
    if (incumbent_obj < last_metric_incumbent - 1e-12) {
      last_metric_incumbent = incumbent_obj;
      ++incumbents;
    }
    if (metrics_enabled()) {
      metrics_registry& registry = global_metrics();
      registry.series("milp.gap_over_time")
          .append(entry.seconds, entry.relative_gap);
      if (std::isfinite(bound))
        registry.series("milp.bound_over_time").append(entry.seconds, bound);
      if (std::isfinite(incumbent_obj))
        registry.series("milp.incumbent_over_time")
            .append(entry.seconds, incumbent_obj);
    }
    if (options.on_trace) options.on_trace(entry);
    if (options.progress)
      options.progress(entry.seconds, incumbent_obj, bound);
  };

  if (options.warm_start) {
    check(original.is_feasible(*options.warm_start),
          "solve_mip: warm start is not feasible");
    incumbent = *options.warm_start;
    incumbent_obj = original.objective_value(incumbent);
  }

  // Working copy whose bounds are rewritten per node.
  model working = original;
  std::vector<std::pair<double, double>> root_bounds;
  root_bounds.reserve(original.variable_count());
  for (std::size_t j = 0; j < original.variable_count(); ++j) {
    const variable& v = original.var(static_cast<int>(j));
    root_bounds.emplace_back(v.lower, v.upper);
  }
  auto apply_node = [&](const bb_node& node) {
    for (std::size_t j = 0; j < root_bounds.size(); ++j)
      working.set_bounds(static_cast<int>(j), root_bounds[j].first,
                         root_bounds[j].second);
    for (const auto& [var, lo, hi] : node.fixings)
      working.set_bounds(var, lo, hi);
  };

  std::priority_queue<bb_node, std::vector<bb_node>, node_order> open;
  open.push(bb_node{});

  bool limits_hit = false;
  bool root_done = false;
  double last_recorded_bound = -inf;
  int dive_failures = 0;
  // Set when a node is dropped without a proven conclusion (LP hit its own
  // limit): the final bound can then no longer certify optimality.
  bool proof_incomplete = false;

  auto gap_closed = [&](double bound) {
    if (!std::isfinite(incumbent_obj)) return false;
    if (relative_gap(incumbent_obj, bound) <= options.gap_tolerance)
      return true;
    return incumbent_obj - bound <= options.absolute_gap_tolerance;
  };

  while (!open.empty()) {
    if (clock.seconds() > options.time_limit_seconds ||
        result.nodes_explored >= options.node_limit) {
      limits_hit = true;
      break;
    }

    // Global dual bound: best (lowest) bound among open nodes, capped by the
    // incumbent. Before the root LP is solved there is no meaningful bound.
    const double global_bound =
        root_done ? std::min(open.top().lp_bound, incumbent_obj) : -inf;
    // Trace bound improvements at ~0.2% granularity (keeps Fig.10-style
    // traces readable instead of one entry per explored node).
    const double record_step =
        std::isfinite(incumbent_obj)
            ? std::max(1e-6, 0.002 * std::max(std::abs(incumbent_obj), 1.0))
            : 1e-6;
    if (root_done && std::isfinite(global_bound) &&
        global_bound > last_recorded_bound + record_step) {
      last_recorded_bound = global_bound;
      record(global_bound);
    }
    if (root_done && gap_closed(global_bound)) break;

    bb_node node = open.top();
    open.pop();
    if (root_done && (node.lp_bound >= incumbent_obj - 1e-9 ||
                      gap_closed(node.lp_bound)))
      continue;

    ++result.nodes_explored;
    apply_node(node);
    lp_options node_lp = options.lp;
    node_lp.time_limit_seconds =
        std::min(node_lp.time_limit_seconds,
                 std::max(0.01, options.time_limit_seconds - clock.seconds()));
    const lp_result lp = solve_lp(working, node_lp);
    lp_iterations += static_cast<std::uint64_t>(lp.iterations);

    if (lp.status == lp_status::unbounded) {
      // Only possible at the root of a minimization with unbounded
      // continuous directions.
      result.status = mip_status::unbounded;
      result.seconds = clock.seconds();
      return result;
    }
    if (lp.status == lp_status::infeasible ||
        lp.status == lp_status::iteration_limit) {
      if (!root_done && lp.status == lp_status::infeasible &&
          !options.warm_start) {
        result.status = mip_status::infeasible;
        result.seconds = clock.seconds();
        return result;
      }
      if (lp.status == lp_status::iteration_limit) proof_incomplete = true;
      root_done = true;
      continue;
    }

    if (!root_done) {
      root_done = true;
      record(lp.objective);
    }
    if (lp.objective >= incumbent_obj - 1e-9) continue;  // pruned by bound

    const int branch_var = most_fractional(working, lp.x);
    if (branch_var == -1) {
      // Integer feasible: snap to exact integers and accept.
      std::vector<double> x = lp.x;
      for (std::size_t j = 0; j < working.variable_count(); ++j)
        if (working.var(static_cast<int>(j)).is_integer)
          x[j] = std::round(x[j]);
      const double obj = original.objective_value(x);
      if (obj < incumbent_obj - 1e-9 && original.is_feasible(x)) {
        incumbent_obj = obj;
        incumbent = std::move(x);
        const double bound =
            open.empty() ? incumbent_obj
                         : std::min(open.top().lp_bound, incumbent_obj);
        record(bound);
      }
      continue;
    }

    // Rounding heuristic: cheap incumbents early in the search.
    if (auto rounded = round_heuristic(original, lp.x)) {
      const double obj = original.objective_value(*rounded);
      if (obj < incumbent_obj - 1e-9) {
        incumbent_obj = obj;
        incumbent = std::move(*rounded);
        const double bound =
            std::min(open.empty() ? lp.objective : open.top().lp_bound,
                     incumbent_obj);
        record(bound);
      }
    }

    const double value = lp.x[branch_var];
    bb_node down = node;
    down.lp_bound = lp.objective;
    down.fixings.emplace_back(branch_var, working.var(branch_var).lower,
                              std::floor(value));
    bb_node up = node;
    up.lp_bound = lp.objective;
    up.fixings.emplace_back(branch_var, std::ceil(value),
                            working.var(branch_var).upper);
    open.push(std::move(down));
    open.push(std::move(up));

    // Diving heuristic: LP-guided fix-and-resolve. The workhorse incumbent
    // finder when rounding cannot repair fractional points — run eagerly
    // until a first incumbent exists, sparingly afterwards, and back off
    // when dives keep failing (each dive costs many LP solves).
    const long dive_period = std::isfinite(incumbent_obj)
                                 ? 128
                                 : (dive_failures < 5 ? 4 : 64);
    const double remaining =
        options.time_limit_seconds - clock.seconds();
    if (result.nodes_explored % dive_period == 1 && remaining > 0.5) {
      // A dive issues up to 2*depth LP solves; keep each one small so the
      // dive as a whole respects the global deadline.
      lp_options dive_lp = node_lp;
      dive_lp.time_limit_seconds =
          std::min(dive_lp.time_limit_seconds, std::max(0.01, remaining / 20.0));
      auto dived = dive_heuristic(
          working, original, dive_lp, lp.x,
          std::min<int>(static_cast<int>(working.variable_count()), 160),
          /*time_budget_seconds=*/remaining * 0.5);
      if (dived) {
        const double obj = original.objective_value(*dived);
        if (obj < incumbent_obj - 1e-9) {
          dive_failures = 0;
          incumbent_obj = obj;
          incumbent = std::move(*dived);
          record(std::min(open.empty() ? lp.objective : open.top().lp_bound,
                          incumbent_obj));
        }
      } else {
        ++dive_failures;
      }
    }
  }

  result.seconds = clock.seconds();
  // A completed search (queue drained, every node concluded) proves the
  // incumbent optimal; otherwise the bound is the best open-node bound, or
  // -inf when even the root never produced one.
  const bool search_complete = open.empty() && !limits_hit && !proof_incomplete;
  if (open.empty()) {
    result.best_bound = search_complete && std::isfinite(incumbent_obj)
                            ? incumbent_obj
                            : (root_done && !proof_incomplete &&
                                       std::isfinite(incumbent_obj)
                                   ? incumbent_obj
                                   : -inf);
  } else {
    result.best_bound = std::min(open.top().lp_bound, incumbent_obj);
  }
  if (!root_done && !std::isfinite(incumbent_obj)) {
    result.status = mip_status::no_solution;
    return result;
  }

  if (std::isfinite(incumbent_obj)) {
    result.x = incumbent;
    result.objective = incumbent_obj;
    result.relative_gap = relative_gap(incumbent_obj, result.best_bound);
    const bool proved = search_complete || gap_closed(result.best_bound);
    if (proved && search_complete) result.best_bound = incumbent_obj;
    result.relative_gap = relative_gap(incumbent_obj, result.best_bound);
    result.status = proved ? mip_status::optimal : mip_status::feasible;
  } else {
    result.relative_gap = 1.0;
    result.status = limits_hit || proof_incomplete ? mip_status::no_solution
                                                   : mip_status::infeasible;
  }
  if (recorded > 0 || std::isfinite(incumbent_obj)) {
    mip_trace_entry entry;
    entry.seconds = result.seconds;
    entry.best_integer = incumbent_obj;
    entry.best_bound = result.best_bound;
    entry.relative_gap = result.relative_gap;
    if (metrics_enabled())
      global_metrics()
          .series("milp.gap_over_time")
          .append(entry.seconds, entry.relative_gap);
    if (options.on_trace) options.on_trace(entry);
  }
  return result;
}

}  // namespace compact::milp
