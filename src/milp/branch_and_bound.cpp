#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "milp/presolve.hpp"
#include "util/error.hpp"
#include "util/memtrack.hpp"
#include "util/metrics.hpp"
#include "util/watchdog.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace compact::milp {
namespace {

constexpr double inf = std::numeric_limits<double>::infinity();
constexpr double int_tolerance = 1e-6;

/// Nodes solved per round. Constant by design: the search tree depends on
/// the batch size, so it must never depend on mip_options::threads or the
/// bit-identical-across-thread-counts guarantee breaks.
constexpr std::size_t batch_size = 8;

struct bb_node {
  double lp_bound = -inf;  // parent LP objective (lower bound for subtree)
  std::uint64_t id = 0;    // creation order; the deterministic tie-break
  // Branching decisions along the path from the root: (var, lower, upper).
  std::vector<std::tuple<int, double, double>> fixings;
};

struct node_order {
  bool operator()(const bb_node& a, const bb_node& b) const {
    // Min-heap on (bound, id): best-first, oldest node among equal bounds.
    if (a.lp_bound != b.lp_bound) return a.lp_bound > b.lp_bound;
    return a.id > b.id;
  }
};

/// Branching variable: among the fractional integer variables of the
/// highest branch-priority class, the one closest to 0.5. Returns -1 when
/// `x` is integral on all integer variables.
int most_fractional(const model& m, const std::vector<double>& x) {
  int best = -1;
  int best_priority = 0;
  double best_dist = 0.0;
  for (std::size_t j = 0; j < m.variable_count(); ++j) {
    const variable& v = m.var(static_cast<int>(j));
    if (!v.is_integer) continue;
    const double frac = x[j] - std::floor(x[j]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist <= int_tolerance) continue;
    const bool better = best == -1 ||
                        v.branch_priority > best_priority ||
                        (v.branch_priority == best_priority &&
                         dist > best_dist + 1e-12);
    if (better) {
      best = static_cast<int>(j);
      best_priority = v.branch_priority;
      best_dist = dist;
    }
  }
  return best;
}

/// Try rounding a fractional LP point to a feasible integer point.
std::optional<std::vector<double>> round_heuristic(const model& m,
                                                   std::vector<double> x) {
  for (std::size_t j = 0; j < m.variable_count(); ++j)
    if (m.var(static_cast<int>(j)).is_integer) x[j] = std::round(x[j]);
  if (m.is_feasible(x)) return x;
  return std::nullopt;
}

/// Diving heuristic: starting from `working`'s current bounds, repeatedly
/// fix the most fractional integer variable to its nearest value (flipping
/// once on infeasibility) until the LP relaxation turns integral. Returns
/// an integer-feasible point for the *original* model or nullopt. `working`
/// is a per-item scratch copy, so its bounds need no restoring.
std::optional<std::vector<double>> dive_heuristic(model& working,
                                                  const model& original,
                                                  const lp_options& lp_opts,
                                                  std::vector<double> x,
                                                  int max_depth,
                                                  double time_budget_seconds) {
  stopwatch dive_clock;
  std::vector<bool> skipped(working.variable_count(), false);
  for (int depth = 0; depth < max_depth; ++depth) {
    if (dive_clock.seconds() > time_budget_seconds) return std::nullopt;
    // Most fractional non-skipped integer variable (priority-aware).
    int var = -1;
    int best_priority = 0;
    double best_dist = 0.0;
    for (std::size_t j = 0; j < working.variable_count(); ++j) {
      const variable& v = working.var(static_cast<int>(j));
      if (!v.is_integer || skipped[j]) continue;
      const double frac = x[j] - std::floor(x[j]);
      const double dist = std::min(frac, 1.0 - frac);
      if (dist <= int_tolerance) continue;
      if (var == -1 || v.branch_priority > best_priority ||
          (v.branch_priority == best_priority && dist > best_dist)) {
        var = static_cast<int>(j);
        best_priority = v.branch_priority;
        best_dist = dist;
      }
    }
    if (var == -1) {
      // Integral on every non-skipped variable; snap and test.
      for (std::size_t j = 0; j < working.variable_count(); ++j)
        if (working.var(static_cast<int>(j)).is_integer)
          x[j] = std::round(x[j]);
      if (original.is_feasible(x)) return x;
      return std::nullopt;
    }
    const double saved_lower = working.var(var).lower;
    const double saved_upper = working.var(var).upper;
    const double rounded = std::round(x[static_cast<std::size_t>(var)]);
    working.set_bounds(var, rounded, rounded);
    lp_result lp = solve_lp(working, lp_opts);
    if (lp.status != lp_status::optimal) {
      // Flip once; if that also fails, leave the variable free for later
      // instead of abandoning the dive.
      const double flipped = rounded > saved_lower ? saved_lower : saved_upper;
      if (std::isfinite(flipped)) {
        working.set_bounds(var, flipped, flipped);
        lp = solve_lp(working, lp_opts);
      }
      if (lp.status != lp_status::optimal) {
        working.set_bounds(var, saved_lower, saved_upper);
        skipped[static_cast<std::size_t>(var)] = true;
        continue;
      }
    }
    x = lp.x;
  }
  return std::nullopt;
}

double relative_gap(double incumbent, double bound) {
  if (!std::isfinite(incumbent) || !std::isfinite(bound)) return 1.0;
  const double gap =
      (incumbent - bound) / std::max(std::abs(incumbent), 1.0);
  return std::clamp(gap, 0.0, 1.0);
}

/// Everything one batch item reports back to the (serial) merge step.
struct item_outcome {
  lp_status status = lp_status::infeasible;
  double objective = inf;
  long iterations = 0;
  bool pruned = false;  // bound >= round-start incumbent, node concluded
  int branch_var = -1;
  double down_lower = 0.0, down_upper = 0.0;  // child bounds when branching
  double up_lower = 0.0, up_upper = 0.0;
  // Child dual bounds from strong-branching probes (-inf = not probed; the
  // merge takes max(parent bound, probe bound)). A dead child was proven
  // infeasible or past the incumbent and must not be queued.
  double down_bound = -inf, up_bound = -inf;
  bool down_dead = false, up_dead = false;
  std::optional<std::vector<double>> integral;  // snapped integer point
  std::optional<std::vector<double>> rounded;   // rounding heuristic point
  bool dive_attempted = false;
  std::optional<std::vector<double>> dived;     // diving heuristic point
  int thread_slot = 0;
  std::uint64_t busy_us = 0;
};

}  // namespace

// Adds the solve's totals to the "milp.bnb.*" counters on every exit path
// of solve_mip (several early returns). No-op when metrics are disabled.
struct solve_metrics_guard {
  const mip_result& result;
  const std::uint64_t& lp_iterations;
  const std::uint64_t& incumbents;
  const std::uint64_t& rounds;
  ~solve_metrics_guard() {
    if (!metrics_enabled()) return;
    metrics_registry& registry = global_metrics();
    registry.counter("milp.bnb.nodes_explored")
        .add(static_cast<std::uint64_t>(result.nodes_explored));
    registry.counter("milp.bnb.lp_iterations").add(lp_iterations);
    registry.counter("milp.bnb.incumbents").add(incumbents);
    registry.counter("milp.bnb.rounds").add(rounds);
    registry.counter("milp.bnb.solves").increment();
  }
};

mip_result solve_mip(const model& original, const mip_options& options) {
  const trace_span span("solve_mip", "milp");
  stopwatch clock;
  mip_result result;
  std::uint64_t lp_iterations = 0;  // node-LP simplex iterations
  std::uint64_t incumbents = 0;     // accepted incumbent improvements
  std::uint64_t rounds = 0;         // synchronous search rounds
  const solve_metrics_guard metrics_guard{result, lp_iterations, incumbents,
                                          rounds};

  for (std::size_t j = 0; j < original.variable_count(); ++j) {
    const variable& v = original.var(static_cast<int>(j));
    if (v.is_integer)
      check(std::isfinite(v.lower) && std::isfinite(v.upper),
            "solve_mip: integer variables need finite bounds");
  }

  double incumbent_obj = inf;
  std::vector<double> incumbent;
  if (options.warm_start) {
    check(original.is_feasible(*options.warm_start),
          "solve_mip: warm start is not feasible");
    incumbent = *options.warm_start;
    incumbent_obj = original.objective_value(incumbent);
  }

  // Presolve: the tree search runs on the reduced model. Indexing is
  // preserved, so incumbents live in the original space and no postsolve is
  // needed; feasibility of accepted incumbents is always re-checked against
  // `original`.
  model searched = original;
  if (options.presolve) {
    presolve_result pre = presolve_model(original);
    if (pre.stats.proved_infeasible) {
      result.seconds = clock.seconds();
      if (!std::isfinite(incumbent_obj)) {
        result.status = mip_status::infeasible;
        return result;
      }
      // A feasible warm start contradicts the infeasibility proof; trust
      // the checked point (this can only happen right at tolerance edges)
      // and report it as the final incumbent.
      result.x = std::move(incumbent);
      result.objective = incumbent_obj;
      result.best_bound = incumbent_obj;
      result.relative_gap = 0.0;
      result.status = mip_status::optimal;
      return result;
    }
    searched = std::move(pre.reduced);
  }

  // Milestones flow out through the on_trace event callback rather than a
  // stored vector; `recorded` only tracks whether the terminal summary entry
  // below should fire for bound-only runs.
  long recorded = 0;
  double last_metric_incumbent = inf;
  auto record = [&](double bound) {
    mip_trace_entry entry;
    entry.seconds = clock.seconds();
    entry.best_integer = incumbent_obj;
    entry.best_bound = bound;
    entry.relative_gap = relative_gap(incumbent_obj, bound);
    ++recorded;
    if (incumbent_obj < last_metric_incumbent - 1e-12) {
      last_metric_incumbent = incumbent_obj;
      ++incumbents;
    }
    if (metrics_enabled()) {
      metrics_registry& registry = global_metrics();
      registry.series("milp.gap_over_time")
          .append(entry.seconds, entry.relative_gap);
      if (std::isfinite(bound))
        registry.series("milp.bound_over_time").append(entry.seconds, bound);
      if (std::isfinite(incumbent_obj))
        registry.series("milp.incumbent_over_time")
            .append(entry.seconds, incumbent_obj);
    }
    if (options.on_trace) options.on_trace(entry);
    if (options.progress)
      options.progress(entry.seconds, incumbent_obj, bound);
  };

  std::priority_queue<bb_node, std::vector<bb_node>, node_order> open;
  std::uint64_t next_node_id = 0;
  open.push(bb_node{-inf, next_node_id++, {}});

  // Worker pool for node LPs. Created once per solve; each batch item gets
  // its own copy of `searched`, so workers share nothing mutable.
  const int thread_count = std::max(1, options.threads);
  std::optional<thread_pool> pool;
  if (thread_count > 1) pool.emplace(thread_count);

  bool limits_hit = false;
  bool root_done = false;
  double last_recorded_bound = -inf;
  int dive_failures = 0;
  // Set when a node is dropped without a proven conclusion (LP hit its own
  // limit): the final bound can then no longer certify optimality.
  bool proof_incomplete = false;

  auto gap_closed = [&](double bound) {
    if (!std::isfinite(incumbent_obj)) return false;
    if (relative_gap(incumbent_obj, bound) <= options.gap_tolerance)
      return true;
    return incumbent_obj - bound <= options.absolute_gap_tolerance;
  };

  // Round a fractional LP bound up to the next objective-lattice point
  // (options.objective_lattice, caller's promise). Every integer-feasible
  // objective is a lattice multiple, so this stays a valid dual bound for
  // the subtree while making near-incumbent subtrees prunable.
  auto strengthen = [&](double bound) {
    const double step = options.objective_lattice;
    if (step <= 0.0 || !std::isfinite(bound)) return bound;
    return std::ceil(bound / step - 1e-6) * step;
  };

  /// Solve one node on (a copy of) the reduced model. Pure function of the
  /// node, the round-start incumbent and the LP options — never of thread
  /// scheduling — so the merge below is deterministic.
  auto process_item = [&](const bb_node& node, double round_incumbent,
                          bool root_known, bool dive_scheduled,
                          lp_options node_lp,
                          double remaining) -> item_outcome {
    stopwatch busy;
    item_outcome out;
    out.thread_slot = current_thread_slot();
    model working = searched;
    for (const auto& [var, lo, hi] : node.fixings)
      working.set_bounds(var, lo, hi);
    const lp_result lp = solve_lp(working, node_lp);
    out.status = lp.status;
    out.iterations = lp.iterations;
    if (lp.status != lp_status::optimal) {
      out.busy_us = static_cast<std::uint64_t>(busy.seconds() * 1e6);
      return out;
    }
    out.objective = strengthen(lp.objective);
    if (root_known && out.objective >= round_incumbent - 1e-9) {
      out.pruned = true;
      out.busy_us = static_cast<std::uint64_t>(busy.seconds() * 1e6);
      return out;
    }

    out.branch_var = most_fractional(working, lp.x);
    if (out.branch_var == -1) {
      // Integer feasible: snap to exact integers.
      std::vector<double> x = lp.x;
      for (std::size_t j = 0; j < working.variable_count(); ++j)
        if (working.var(static_cast<int>(j)).is_integer)
          x[j] = std::round(x[j]);
      out.integral = std::move(x);
      out.busy_us = static_cast<std::uint64_t>(busy.seconds() * 1e6);
      return out;
    }

    // Rounding heuristic: cheap incumbents early in the search.
    out.rounded = round_heuristic(original, lp.x);

    // Strong branching: probe the most fractional candidates with
    // iteration-capped child LPs; branch where the weaker child bound
    // improves most. A probe that proves a child infeasible or past the
    // incumbent concludes that subtree here — it is never queued — and a
    // node with both children dead is finished outright.
    if (options.strong_branching_candidates > 0) {
      struct sb_candidate {
        double dist;
        int priority;
        int var;
      };
      std::vector<sb_candidate> candidates;
      for (std::size_t j = 0; j < working.variable_count(); ++j) {
        const variable& v = working.var(static_cast<int>(j));
        if (!v.is_integer) continue;
        const double frac = lp.x[j] - std::floor(lp.x[j]);
        const double dist = std::min(frac, 1.0 - frac);
        if (dist <= int_tolerance) continue;
        candidates.push_back({dist, v.branch_priority, static_cast<int>(j)});
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const sb_candidate& a, const sb_candidate& b) {
                  if (a.priority != b.priority) return a.priority > b.priority;
                  if (a.dist != b.dist) return a.dist > b.dist;
                  return a.var < b.var;
                });
      if (candidates.size() >
          static_cast<std::size_t>(options.strong_branching_candidates))
        candidates.resize(
            static_cast<std::size_t>(options.strong_branching_candidates));

      lp_options probe_lp = node_lp;
      probe_lp.max_iterations = options.strong_branching_iterations;
      double best_score = -inf;
      for (const sb_candidate& c : candidates) {
        const double value = lp.x[static_cast<std::size_t>(c.var)];
        const double lo = working.var(c.var).lower;
        const double hi = working.var(c.var).upper;
        double bound[2] = {out.objective, out.objective};  // down, up
        bool dead[2] = {false, false};
        for (int side = 0; side < 2; ++side) {
          working.set_bounds(c.var, side == 0 ? lo : std::ceil(value),
                             side == 0 ? std::floor(value) : hi);
          const lp_result probe = solve_lp(working, probe_lp);
          out.iterations += probe.iterations;
          if (probe.status == lp_status::infeasible) {
            dead[side] = true;
          } else if (probe.status == lp_status::optimal) {
            bound[side] = std::max(out.objective, strengthen(probe.objective));
            if (root_known && bound[side] >= round_incumbent - 1e-9)
              dead[side] = true;
          }
          // Inconclusive probes (iteration cap) keep the parent bound.
        }
        working.set_bounds(c.var, lo, hi);
        if (dead[0] && dead[1]) {
          out.pruned = true;  // no improving solution below this node
          break;
        }
        const double gain_down = dead[0] ? 1e30 : bound[0] - out.objective;
        const double gain_up = dead[1] ? 1e30 : bound[1] - out.objective;
        const double score = std::min(gain_down, gain_up) +
                             1e-4 * std::max(gain_down, gain_up);
        if (score > best_score) {
          best_score = score;
          out.branch_var = c.var;
          out.down_bound = bound[0];
          out.up_bound = bound[1];
          out.down_dead = dead[0];
          out.up_dead = dead[1];
        }
      }
      if (out.pruned) {
        out.busy_us = static_cast<std::uint64_t>(busy.seconds() * 1e6);
        return out;
      }
    }

    const double value = lp.x[static_cast<std::size_t>(out.branch_var)];
    out.down_lower = working.var(out.branch_var).lower;
    out.down_upper = std::floor(value);
    out.up_lower = std::ceil(value);
    out.up_upper = working.var(out.branch_var).upper;

    // Diving heuristic: LP-guided fix-and-resolve, scheduled by the
    // coordinator (deterministically, by node ordinal).
    if (dive_scheduled) {
      out.dive_attempted = true;
      lp_options dive_lp = node_lp;
      dive_lp.time_limit_seconds = std::min(dive_lp.time_limit_seconds,
                                            std::max(0.01, remaining / 20.0));
      out.dived = dive_heuristic(
          working, original, dive_lp, lp.x,
          std::min<int>(static_cast<int>(working.variable_count()), 160),
          /*time_budget_seconds=*/remaining * 0.5);
    }
    out.busy_us = static_cast<std::uint64_t>(busy.seconds() * 1e6);
    return out;
  };

  std::vector<bb_node> batch;
  std::vector<bool> dive_flags;
  account_guard open_nodes_charge(memtrack_account("milp.bnb_nodes"));
  while (!open.empty()) {
    if (clock.seconds() > options.time_limit_seconds ||
        result.nodes_explored >= options.node_limit) {
      limits_hit = true;
      break;
    }
    ++rounds;
    // Round boundary: sample the ambient resource watchdog (a memory or
    // deadline trip aborts the whole solve with resource_limit_error) and
    // re-account the open-node queue. The byte figure counts node headers;
    // per-node branching paths are small and excluded.
    (void)resource_checkpoint("milp.bnb.round");
    open_nodes_charge.set(open.size() * sizeof(bb_node));
    const double round_start_seconds = clock.seconds();

    // Global dual bound: best (lowest) bound among open nodes, capped by the
    // incumbent. Before the root LP is solved there is no meaningful bound.
    const double global_bound =
        root_done ? std::min(open.top().lp_bound, incumbent_obj) : -inf;
    // Trace bound improvements at ~0.2% granularity (keeps Fig.10-style
    // traces readable instead of one entry per explored node).
    const double record_step =
        std::isfinite(incumbent_obj)
            ? std::max(1e-6, 0.002 * std::max(std::abs(incumbent_obj), 1.0))
            : 1e-6;
    if (root_done && std::isfinite(global_bound) &&
        global_bound > last_recorded_bound + record_step) {
      last_recorded_bound = global_bound;
      record(global_bound);
    }
    if (root_done && gap_closed(global_bound)) break;

    // Pop this round's batch, dropping nodes already pruned by the current
    // incumbent (they are concluded, not explored).
    batch.clear();
    while (batch.size() < batch_size && !open.empty()) {
      bb_node node = open.top();
      open.pop();
      if (root_done && (node.lp_bound >= incumbent_obj - 1e-9 ||
                        gap_closed(node.lp_bound)))
        continue;
      batch.push_back(std::move(node));
    }
    if (batch.empty()) break;

    // Round-start snapshot everything the items depend on.
    const double round_incumbent = incumbent_obj;
    const bool root_known = root_done;
    const double remaining =
        options.time_limit_seconds - clock.seconds();
    lp_options node_lp = options.lp;
    node_lp.time_limit_seconds =
        std::min(node_lp.time_limit_seconds, std::max(0.01, remaining));
    const long dive_period = std::isfinite(round_incumbent)
                                 ? 128
                                 : (dive_failures < 5 ? 4 : 64);
    dive_flags.assign(batch.size(), false);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const long ordinal = result.nodes_explored + static_cast<long>(i) + 1;
      dive_flags[i] = ordinal % dive_period == 1 && remaining > 0.5;
    }

    std::vector<item_outcome> outcomes;
    outcomes.reserve(batch.size());
    if (pool && batch.size() > 1) {
      std::vector<std::future<item_outcome>> futures;
      futures.reserve(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        futures.push_back(pool->submit([&, i] {
          return process_item(batch[i], round_incumbent, root_known,
                              dive_flags[i], node_lp, remaining);
        }));
      }
      for (auto& f : futures) f.wait();  // never unwind past running tasks
      for (auto& f : futures) outcomes.push_back(f.get());
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i)
        outcomes.push_back(process_item(batch[i], round_incumbent, root_known,
                                        dive_flags[i], node_lp, remaining));
    }

    // Merge in item order: this loop is the only place the incumbent, the
    // open heap, and node ids mutate, so the search is a deterministic
    // function of the batch (which is itself thread-count-independent).
    std::uint64_t round_busy_us = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const bb_node& node = batch[i];
      item_outcome& r = outcomes[i];
      ++result.nodes_explored;
      lp_iterations += static_cast<std::uint64_t>(r.iterations);
      round_busy_us += r.busy_us;
      if (metrics_enabled())
        global_metrics()
            .counter("milp.bnb.nodes_by_worker.tid" +
                     std::to_string(r.thread_slot))
            .increment();

      if (r.status == lp_status::unbounded) {
        // Only possible at the root of a minimization with unbounded
        // continuous directions.
        result.status = mip_status::unbounded;
        result.seconds = clock.seconds();
        return result;
      }
      if (r.status == lp_status::infeasible ||
          r.status == lp_status::iteration_limit) {
        if (!root_done && r.status == lp_status::infeasible &&
            !options.warm_start) {
          result.status = mip_status::infeasible;
          result.seconds = clock.seconds();
          return result;
        }
        if (r.status == lp_status::iteration_limit) proof_incomplete = true;
        root_done = true;
        continue;
      }
      if (!root_done) {
        root_done = true;
        record(r.objective);
      }
      if (r.pruned) continue;
      // Re-check against the merged incumbent, which may have improved
      // since the round-start snapshot the worker pruned against.
      if (r.objective >= incumbent_obj - 1e-9) continue;

      auto accept = [&](std::vector<double>&& x) {
        const double obj = original.objective_value(x);
        if (obj < incumbent_obj - 1e-9 && original.is_feasible(x)) {
          incumbent_obj = obj;
          incumbent = std::move(x);
          record(std::min(open.empty() ? r.objective : open.top().lp_bound,
                          incumbent_obj));
          return true;
        }
        return false;
      };

      if (r.branch_var == -1) {
        if (r.integral) accept(std::move(*r.integral));
        continue;
      }
      if (r.rounded) accept(std::move(*r.rounded));

      bb_node down;
      down.lp_bound = std::max(r.objective, r.down_bound);
      down.id = next_node_id++;
      down.fixings = node.fixings;
      down.fixings.emplace_back(r.branch_var, r.down_lower, r.down_upper);
      bb_node up;
      up.lp_bound = std::max(r.objective, r.up_bound);
      up.id = next_node_id++;
      up.fixings = node.fixings;
      up.fixings.emplace_back(r.branch_var, r.up_lower, r.up_upper);
      if (!r.down_dead) open.push(std::move(down));
      if (!r.up_dead) open.push(std::move(up));

      if (r.dive_attempted) {
        if (r.dived) {
          if (accept(std::move(*r.dived))) dive_failures = 0;
        } else {
          ++dive_failures;
        }
      }
    }

    // Busy vs idle worker time: the round wall-clock times the worker count
    // bounds what the pool could have done; the shortfall (merge barrier,
    // LP imbalance, batches smaller than the pool) is idle time.
    if (metrics_enabled() && pool) {
      metrics_registry& registry = global_metrics();
      registry.counter("milp.bnb.worker_busy_us").add(round_busy_us);
      const auto capacity_us = static_cast<std::uint64_t>(
          (clock.seconds() - round_start_seconds) * 1e6 *
          static_cast<double>(thread_count));
      if (capacity_us > round_busy_us)
        registry.counter("milp.bnb.worker_idle_us")
            .add(capacity_us - round_busy_us);
    }
  }

  result.seconds = clock.seconds();
  // A completed search (queue drained, every node concluded) proves the
  // incumbent optimal; otherwise the bound is the best open-node bound, or
  // -inf when even the root never produced one.
  const bool search_complete = open.empty() && !limits_hit && !proof_incomplete;
  if (open.empty()) {
    result.best_bound = search_complete && std::isfinite(incumbent_obj)
                            ? incumbent_obj
                            : (root_done && !proof_incomplete &&
                                       std::isfinite(incumbent_obj)
                                   ? incumbent_obj
                                   : -inf);
  } else {
    result.best_bound = std::min(open.top().lp_bound, incumbent_obj);
  }
  if (!root_done && !std::isfinite(incumbent_obj)) {
    result.status = mip_status::no_solution;
    return result;
  }

  if (std::isfinite(incumbent_obj)) {
    result.x = incumbent;
    result.objective = incumbent_obj;
    result.relative_gap = relative_gap(incumbent_obj, result.best_bound);
    const bool proved = search_complete || gap_closed(result.best_bound);
    if (proved && search_complete) result.best_bound = incumbent_obj;
    result.relative_gap = relative_gap(incumbent_obj, result.best_bound);
    result.status = proved ? mip_status::optimal : mip_status::feasible;
  } else {
    result.relative_gap = 1.0;
    result.status = limits_hit || proof_incomplete ? mip_status::no_solution
                                                   : mip_status::infeasible;
  }
  if (recorded > 0 || std::isfinite(incumbent_obj)) {
    mip_trace_entry entry;
    entry.seconds = result.seconds;
    entry.best_integer = incumbent_obj;
    entry.best_bound = result.best_bound;
    entry.relative_gap = result.relative_gap;
    if (metrics_enabled())
      global_metrics()
          .series("milp.gap_over_time")
          .append(entry.seconds, entry.relative_gap);
    if (options.on_trace) options.on_trace(entry);
  }
  return result;
}

}  // namespace compact::milp
