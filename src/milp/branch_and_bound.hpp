// Best-first branch-and-bound for mixed 0/1 integer programs.
//
// Substitutes for CPLEX in the COMPACT flow. It mirrors the solver features
// the paper relies on (Section VI-C and Figures 10-11): a wall-clock time
// limit, warm-start incumbents, and a convergence trace recording the best
// integer solution, the best bound, and the relative gap over time.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "milp/model.hpp"
#include "milp/simplex.hpp"

namespace compact::milp {

enum class mip_status {
  optimal,          // proven optimal incumbent
  feasible,         // incumbent found but limits hit before proof
  infeasible,       // no integer-feasible point exists
  unbounded,        // LP relaxation unbounded
  no_solution,      // limits hit before any incumbent was found
};

/// One entry per incumbent/bound improvement (drives Fig. 10).
struct mip_trace_entry {
  double seconds = 0.0;
  double best_integer = 0.0;   // +inf until an incumbent exists
  double best_bound = 0.0;
  double relative_gap = 1.0;   // (incumbent - bound) / max(|incumbent|, 1)
};

struct mip_options {
  double time_limit_seconds = 60.0;
  long node_limit = 1000000;
  /// Stop when (incumbent - bound) / max(|incumbent|, 1) falls below this.
  double gap_tolerance = 1e-6;
  /// Stop when incumbent - bound falls below this. When the objective is
  /// known to live on a lattice (e.g. gamma*S + (1-gamma)*D with integral
  /// S, D), setting this to half the lattice step proves optimality early.
  double absolute_gap_tolerance = 1e-9;
  /// Optional integer-feasible warm start (checked, then used as incumbent).
  std::optional<std::vector<double>> warm_start;
  lp_options lp;
  /// If set, called whenever the incumbent or bound improves.
  std::function<void(double seconds, double incumbent, double bound)>
      progress = nullptr;
  /// Convergence milestones are *events*, not a stored log: this callback
  /// receives one entry per incumbent/bound improvement plus a terminal
  /// entry summarizing the final state. Callers that want the historical
  /// trace vector accumulate it here (see core/label_mip).
  std::function<void(const mip_trace_entry&)> on_trace = nullptr;
};

struct mip_result {
  mip_status status = mip_status::no_solution;
  std::vector<double> x;       // best incumbent (empty if none)
  double objective = 0.0;      // incumbent objective
  double best_bound = 0.0;     // global dual bound at termination
  double relative_gap = 1.0;
  long nodes_explored = 0;
  double seconds = 0.0;
};

/// Solve `m` (minimization). Integer variables must have finite bounds.
[[nodiscard]] mip_result solve_mip(const model& m,
                                   const mip_options& options = {});

}  // namespace compact::milp
