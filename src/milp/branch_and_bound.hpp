// Best-first branch-and-bound for mixed 0/1 integer programs.
//
// Substitutes for CPLEX in the COMPACT flow. It mirrors the solver features
// the paper relies on (Section VI-C and Figures 10-11): a wall-clock time
// limit, warm-start incumbents, and a convergence trace recording the best
// integer solution, the best bound, and the relative gap over time.
//
// The search is organized in synchronous rounds so it parallelizes without
// losing determinism: each round pops a fixed-size batch of best-first nodes
// (ordered by (lp_bound, node id)), solves their LPs on worker threads with
// per-item model copies and the round-start incumbent, then merges children
// and incumbent candidates back in item order. Because the batch size, the
// node ids, and the merge order are all independent of the thread count,
// results are bit-identical for any mip_options::threads value (modulo the
// wall-clock limits, which are timing-dependent even serially).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "milp/model.hpp"
#include "milp/simplex.hpp"

namespace compact::milp {

enum class mip_status {
  optimal,          // proven optimal incumbent
  feasible,         // incumbent found but limits hit before proof
  infeasible,       // no integer-feasible point exists
  unbounded,        // LP relaxation unbounded
  no_solution,      // limits hit before any incumbent was found
};

/// One entry per incumbent/bound improvement (drives Fig. 10).
struct mip_trace_entry {
  double seconds = 0.0;
  double best_integer = 0.0;   // +inf until an incumbent exists
  double best_bound = 0.0;
  double relative_gap = 1.0;   // (incumbent - bound) / max(|incumbent|, 1)
};

struct mip_options {
  double time_limit_seconds = 60.0;
  long node_limit = 1000000;
  /// Stop when (incumbent - bound) / max(|incumbent|, 1) falls below this.
  double gap_tolerance = 1e-6;
  /// Stop when incumbent - bound falls below this. When the objective is
  /// known to live on a lattice (e.g. gamma*S + (1-gamma)*D with integral
  /// S, D), setting this to half the lattice step proves optimality early.
  double absolute_gap_tolerance = 1e-9;
  /// Caller's promise that every integer-feasible objective value is an
  /// integer multiple of this step (0 = no such structure). Node LP bounds
  /// are then rounded up to the next lattice point before pruning and
  /// ordering, which prunes subtrees whose fractional bound cannot reach a
  /// better lattice point than the incumbent. Purely bound strengthening:
  /// the incumbent set is unchanged, and results stay bit-identical across
  /// thread counts.
  double objective_lattice = 0.0;
  /// Optional integer-feasible warm start (checked, then used as incumbent).
  std::optional<std::vector<double>> warm_start;
  /// Run milp/presolve (bound tightening, fixed-variable substitution,
  /// redundant-row removal) before the root LP. The search then operates on
  /// the reduced model; variable indexing is preserved, so no postsolve is
  /// needed and `x` always matches the input model.
  bool presolve = true;
  /// Strong branching: at each branching node, probe up to this many of the
  /// most fractional candidates by solving iteration-capped LPs of both
  /// children, then branch where the weaker child bound improves most.
  /// Probes that prove a child infeasible or past the incumbent conclude
  /// that subtree on the spot, so it is never queued. Fewer, better nodes
  /// at a higher per-node cost; 0 restores plain most-fractional branching.
  /// Probing is part of the node's pure function, so determinism across
  /// thread counts is unaffected.
  int strong_branching_candidates = 4;
  /// Simplex iteration cap per strong-branching probe LP. Probes that hit
  /// the cap are inconclusive and fall back to the parent bound.
  long strong_branching_iterations = 150;
  /// Worker threads for node LP solves (1 = fully serial). Results are
  /// bit-identical for any value; see the file comment.
  int threads = 1;
  lp_options lp;
  /// If set, called whenever the incumbent or bound improves.
  std::function<void(double seconds, double incumbent, double bound)>
      progress = nullptr;
  /// Convergence milestones are *events*, not a stored log: this callback
  /// receives one entry per incumbent/bound improvement plus a terminal
  /// entry summarizing the final state. Callers that want the historical
  /// trace vector accumulate it here (see core/label_mip).
  std::function<void(const mip_trace_entry&)> on_trace = nullptr;
};

struct mip_result {
  mip_status status = mip_status::no_solution;
  std::vector<double> x;       // best incumbent (empty if none)
  double objective = 0.0;      // incumbent objective
  double best_bound = 0.0;     // global dual bound at termination
  double relative_gap = 1.0;
  long nodes_explored = 0;
  double seconds = 0.0;
};

/// Solve `m` (minimization). Integer variables must have finite bounds.
[[nodiscard]] mip_result solve_mip(const model& m,
                                   const mip_options& options = {});

}  // namespace compact::milp
