// Two-phase primal simplex with bounded variables (dense tableau).
//
// This is the LP engine underneath the branch-and-bound MIP solver; together
// they substitute for CPLEX in the paper's flow. Variables may have finite
// lower bounds and finite-or-infinite upper bounds; constraints may be <=,
// >= or =. Phase 1 minimizes artificial-variable infeasibility; phase 2
// optimizes the model objective. Dantzig pricing with an automatic fallback
// to Bland's rule guarantees termination in the presence of degeneracy.
#pragma once

#include <vector>

#include "milp/model.hpp"

namespace compact::milp {

enum class lp_status { optimal, infeasible, unbounded, iteration_limit };

struct lp_options {
  long max_iterations = 200000;
  /// Wall-clock budget; iteration_limit status is returned on expiry.
  double time_limit_seconds = infinity;
  double reduced_cost_tolerance = 1e-7;
  double pivot_tolerance = 1e-7;
};

struct lp_result {
  lp_status status = lp_status::iteration_limit;
  double objective = 0.0;
  std::vector<double> x;  // one value per model variable (structural only)
  long iterations = 0;
};

/// Solve the continuous relaxation of `m` (integrality flags are ignored).
[[nodiscard]] lp_result solve_lp(const model& m, const lp_options& options = {});

}  // namespace compact::milp
