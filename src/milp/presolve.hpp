// MIP presolve: shrink a model before the root LP is solved.
//
// Three classic, feasibility-preserving reductions run to a fixpoint:
//
//  * bound tightening — for each constraint, the minimum activity of the
//    other terms implies a bound on each variable; integer bounds round
//    inward. Implied bounds hold for *every* feasible point, so no solution
//    (and no warm start) is ever cut off.
//  * fixed-variable substitution — a variable whose bounds coincide is a
//    constant: its terms fold into the right-hand sides. The variable stays
//    in the model (indexing is preserved, so branch-and-bound needs no
//    postsolve), it just no longer appears in any row.
//  * redundant-row removal — a constraint satisfied by the variable bounds
//    alone constrains nothing and is dropped.
//
// Presolve may also prove infeasibility outright (a bound crossing or a row
// whose best achievable activity still violates it), which lets solve_mip
// answer without a single simplex iteration.
#pragma once

#include <cstddef>

#include "milp/model.hpp"

namespace compact::milp {

struct presolve_options {
  /// Maximum tightening sweeps before settling for the current fixpoint.
  int max_rounds = 10;
  /// Violations beyond this prove infeasibility; kept conservative so
  /// floating-point noise never declares a feasible model infeasible.
  double feasibility_tolerance = 1e-7;
};

struct presolve_stats {
  int rounds = 0;
  std::size_t bounds_tightened = 0;
  std::size_t variables_fixed = 0;      // variables substituted out of rows
  std::size_t rows_removed = 0;         // redundant or emptied constraints
  std::size_t terms_removed = 0;        // dropped coefficients (incl. zeros)
  bool proved_infeasible = false;
};

struct presolve_result {
  /// Same variables in the same order (bounds possibly tightened), with
  /// surviving rows only. Meaningless when stats.proved_infeasible.
  model reduced;
  presolve_stats stats;
};

/// Presolve `m`. Every point feasible for `m` is feasible for `reduced` and
/// vice versa (the feasible region is preserved exactly, up to bound
/// tightenings implied by the constraints themselves). Publishes
/// milp.presolve.* metrics when enabled.
[[nodiscard]] presolve_result presolve_model(const model& m,
                                             const presolve_options& options = {});

}  // namespace compact::milp
