// Dense linear algebra for the analog solver: LU factorization with partial
// pivoting. Crossbar conductance matrices are small (semiperimeter-sized,
// symmetric positive definite after grounding), so a dense solve is both
// simple and fast.
#pragma once

#include <vector>

namespace compact::analog {

/// Row-major dense matrix.
class matrix {
 public:
  matrix(int rows, int cols) : rows_(rows), cols_(cols),
                               data_(static_cast<std::size_t>(rows) *
                                     static_cast<std::size_t>(cols)) {}

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] double& at(int r, int c) {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  [[nodiscard]] double at(int r, int c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

 private:
  int rows_, cols_;
  std::vector<double> data_;
};

/// Solve A x = b by LU with partial pivoting. A must be square and
/// nonsingular (throws compact::error otherwise). A and b are consumed.
[[nodiscard]] std::vector<double> solve_dense(matrix a, std::vector<double> b);

}  // namespace compact::analog
