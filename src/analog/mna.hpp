// Analog verification of crossbar designs via nodal analysis.
//
// Substitutes for the paper's SPICE validation (Section VIII, using the
// memristor model of [33]): every junction is a resistor at R_on or R_off
// depending on its programmed literal and the input assignment; the input
// wordline is driven by an ideal source V_in, each output wordline is tied
// to ground through a sensing resistor, and every other nanowire floats.
// Solving the conductance system yields the sensed output voltages; an
// output reads logic 1 when its voltage exceeds `threshold * v_in`.
#pragma once

#include <string>
#include <vector>

#include "xbar/crossbar.hpp"

namespace compact::analog {

struct device_model {
  double r_on = 1e2;       // low resistive state, ohms
  double r_off = 1e8;      // high resistive state, ohms
  double r_sense = 1e4;    // sensing resistor, ohms
  double v_in = 1.0;       // drive voltage, volts
  double threshold = 0.3;  // logic-1 threshold as a fraction of v_in
};

struct analog_result {
  std::vector<double> output_voltages;  // parallel to design.outputs()
  std::vector<bool> output_logic;       // thresholded
};

/// Solve the programmed crossbar under `assignment`.
[[nodiscard]] analog_result simulate(const xbar::crossbar& design,
                                     const std::vector<bool>& assignment,
                                     const device_model& model = {});

/// Convenience: thresholded value of one named output.
[[nodiscard]] bool simulate_output(const xbar::crossbar& design,
                                   const std::vector<bool>& assignment,
                                   const std::string& output_name,
                                   const device_model& model = {});

}  // namespace compact::analog
