#include "analog/margins.hpp"

#include <algorithm>

#include "util/rng.hpp"
#include "xbar/evaluate.hpp"

namespace compact::analog {
namespace {

template <typename Visitor>
void sweep_assignments(int variable_count, const margin_options& options,
                       Visitor&& visit) {
  if (variable_count <= options.exhaustive_limit) {
    std::vector<bool> assignment(static_cast<std::size_t>(variable_count));
    const std::uint64_t total = 1ULL << variable_count;
    for (std::uint64_t bits = 0; bits < total; ++bits) {
      for (int v = 0; v < variable_count; ++v)
        assignment[static_cast<std::size_t>(v)] = (bits >> v) & 1;
      visit(assignment);
    }
  } else {
    rng random(options.seed);
    std::vector<bool> assignment(static_cast<std::size_t>(variable_count));
    for (int s = 0; s < options.samples; ++s) {
      for (int v = 0; v < variable_count; ++v)
        assignment[static_cast<std::size_t>(v)] = random.next_bool();
      visit(assignment);
    }
  }
}

}  // namespace

margin_report measure_margins(const xbar::crossbar& design,
                              int variable_count, const device_model& model,
                              const margin_options& options) {
  margin_report report;
  sweep_assignments(variable_count, options, [&](const std::vector<bool>& a) {
    ++report.checked_assignments;
    const std::vector<bool> reachable = xbar::reachable_rows(design, a);
    const analog_result sim = simulate(design, a, model);
    for (std::size_t o = 0; o < design.outputs().size(); ++o) {
      const bool expected =
          reachable[static_cast<std::size_t>(design.outputs()[o].row)];
      const double v = sim.output_voltages[o];
      if (expected)
        report.min_high_voltage = std::min(report.min_high_voltage, v);
      else
        report.max_low_voltage = std::max(report.max_low_voltage, v);
    }
  });
  report.margin = report.min_high_voltage - report.max_low_voltage;
  report.separable = report.margin > 0.0;
  return report;
}

double minimal_working_ratio(const xbar::crossbar& design, int variable_count,
                             device_model model, double step,
                             double max_ratio, const margin_options& options) {
  for (double ratio = step; ratio <= max_ratio; ratio *= step) {
    model.r_off = model.r_on * ratio;
    const margin_report report =
        measure_margins(design, variable_count, model, options);
    // Correct sensing with the configured threshold requires the threshold
    // to sit inside the (min_high, max_low) gap.
    const double threshold_voltage = model.threshold * model.v_in;
    if (report.separable && report.min_high_voltage >= threshold_voltage &&
        report.max_low_voltage < threshold_voltage)
      return ratio;
  }
  return 0.0;
}

}  // namespace compact::analog
