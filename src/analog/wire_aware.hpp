// Wire-resistance-aware crossbar simulation (IR drop).
//
// The ideal MNA model (analog/mna.hpp) treats every nanowire as one
// electrical node, as SPICE decks for small arrays often do. Real nanowires
// have per-segment resistance, so current through a long wordline drops
// voltage along it — the effect that ultimately caps crossbar dimensions,
// and thus interacts directly with the paper's max-dimension objective.
//
// Here every junction contributes two nodes (top/wordline layer and
// bottom/bitline layer); adjacent same-wire nodes are joined by r_wire and
// the programmed device joins the layers. The resulting sparse SPD system
// is solved with Jacobi-preconditioned conjugate gradients.
#pragma once

#include <vector>

#include "analog/mna.hpp"
#include "xbar/crossbar.hpp"

namespace compact::analog {

struct wire_model {
  device_model device;     // R_on / R_off / sensing / threshold
  double r_wire = 1.0;     // ohms per wire segment between junctions
  double cg_tolerance = 1e-10;
  int cg_max_iterations = 20000;
};

struct wire_aware_result {
  std::vector<double> output_voltages;  // parallel to design.outputs()
  std::vector<bool> output_logic;
  int cg_iterations = 0;
  bool converged = true;
};

/// Solve the distributed crossbar. The input wordline is driven at its
/// column-0 end; each output is sensed at its wordline's far (last-column)
/// end through the sensing resistor.
[[nodiscard]] wire_aware_result simulate_wire_aware(
    const xbar::crossbar& design, const std::vector<bool>& assignment,
    const wire_model& model = {});

/// Worst-case IR drop of the design: the largest loss of output voltage
/// versus the ideal (zero-wire-resistance) model over sampled assignments.
[[nodiscard]] double worst_ir_drop(const xbar::crossbar& design,
                                   int variable_count,
                                   const wire_model& model = {},
                                   int samples = 32,
                                   std::uint64_t seed = 5);

}  // namespace compact::analog
