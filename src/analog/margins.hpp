// Sensing-margin analysis.
//
// The paper verifies designs with SPICE at one device corner; real designs
// additionally care about the *margin* between the weakest logic-1 output
// voltage and the strongest logic-0 leakage (sneak paths through off
// devices erode it as crossbars grow). This module sweeps assignments to
// measure that margin and searches the minimal R_off/R_on ratio at which a
// design still senses correctly.
#pragma once

#include <cstdint>

#include "analog/mna.hpp"
#include "bdd/manager.hpp"
#include "xbar/crossbar.hpp"

namespace compact::analog {

struct margin_options {
  int exhaustive_limit = 10;  // enumerate up to 2^limit assignments
  int samples = 256;          // sampled sweep above the limit
  std::uint64_t seed = 99;
};

struct margin_report {
  double min_high_voltage = 1.0;  // weakest sensed logic 1
  double max_low_voltage = 0.0;   // strongest leakage at a logic 0
  double margin = 1.0;            // min_high - max_low
  bool separable = true;          // some threshold distinguishes 0 from 1
  long long checked_assignments = 0;
};

/// Sweep assignments of `variable_count` inputs and report the sensing
/// margins of every output, using digital evaluation as the reference.
[[nodiscard]] margin_report measure_margins(const xbar::crossbar& design,
                                            int variable_count,
                                            const device_model& model = {},
                                            const margin_options& options = {});

/// Smallest R_off/R_on ratio (powers of `step`) at which the design still
/// senses every swept assignment correctly with the model's threshold.
/// Returns 0.0 when even the largest tested ratio fails.
[[nodiscard]] double minimal_working_ratio(const xbar::crossbar& design,
                                           int variable_count,
                                           device_model model = {},
                                           double step = 10.0,
                                           double max_ratio = 1e8,
                                           const margin_options& options = {});

}  // namespace compact::analog
