#include "analog/wire_aware.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace compact::analog {
namespace {

/// Sparse symmetric conductance system in adjacency form, solved by
/// Jacobi-preconditioned conjugate gradients.
class conductance_network {
 public:
  explicit conductance_network(int nodes)
      : diagonal_(static_cast<std::size_t>(nodes), 0.0),
        adjacency_(static_cast<std::size_t>(nodes)),
        rhs_(static_cast<std::size_t>(nodes), 0.0) {}

  [[nodiscard]] int size() const {
    return static_cast<int>(diagonal_.size());
  }

  /// Conductance between two unknown nodes.
  void stamp(int a, int b, double conductance) {
    diagonal_[static_cast<std::size_t>(a)] += conductance;
    diagonal_[static_cast<std::size_t>(b)] += conductance;
    adjacency_[static_cast<std::size_t>(a)].emplace_back(b, conductance);
    adjacency_[static_cast<std::size_t>(b)].emplace_back(a, conductance);
  }

  /// Conductance from node `a` to a fixed-voltage terminal.
  void stamp_to_source(int a, double conductance, double voltage) {
    diagonal_[static_cast<std::size_t>(a)] += conductance;
    rhs_[static_cast<std::size_t>(a)] += conductance * voltage;
  }

  /// G v = rhs via CG. Returns (iterations, converged).
  std::pair<int, bool> solve(std::vector<double>& v, double tolerance,
                             int max_iterations) const {
    const std::size_t n = diagonal_.size();
    v.assign(n, 0.0);
    std::vector<double> r = rhs_;
    std::vector<double> z(n), p(n), ap(n);

    auto apply = [&](const std::vector<double>& x, std::vector<double>& out) {
      for (std::size_t i = 0; i < n; ++i) {
        double sum = diagonal_[i] * x[i];
        for (const auto& [j, g] : adjacency_[i])
          sum -= g * x[static_cast<std::size_t>(j)];
        out[i] = sum;
      }
    };
    auto precondition = [&](const std::vector<double>& x,
                            std::vector<double>& out) {
      for (std::size_t i = 0; i < n; ++i)
        out[i] = diagonal_[i] > 0.0 ? x[i] / diagonal_[i] : x[i];
    };
    auto dot = [&](const std::vector<double>& a, const std::vector<double>& b) {
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) sum += a[i] * b[i];
      return sum;
    };

    precondition(r, z);
    p = z;
    double rz = dot(r, z);
    const double rhs_norm = std::sqrt(std::max(dot(rhs_, rhs_), 1e-300));

    for (int it = 0; it < max_iterations; ++it) {
      if (std::sqrt(dot(r, r)) <= tolerance * rhs_norm) return {it, true};
      apply(p, ap);
      const double pap = dot(p, ap);
      if (pap <= 0.0) return {it, false};  // numerical breakdown
      const double alpha = rz / pap;
      for (std::size_t i = 0; i < n; ++i) {
        v[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
      }
      precondition(r, z);
      const double rz_next = dot(r, z);
      const double beta = rz_next / rz;
      rz = rz_next;
      for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    }
    return {max_iterations, false};
  }

 private:
  std::vector<double> diagonal_;
  std::vector<std::vector<std::pair<int, double>>> adjacency_;
  std::vector<double> rhs_;
};

}  // namespace

wire_aware_result simulate_wire_aware(const xbar::crossbar& design,
                                      const std::vector<bool>& assignment,
                                      const wire_model& model) {
  check(design.input_row() >= 0, "wire_aware: design has no input row");
  check(design.columns() >= 1, "wire_aware: design has no columns");
  check(model.r_wire > 0.0, "wire_aware: r_wire must be positive "
                            "(use analog::simulate for the ideal model)");
  const int rows = design.rows();
  const int cols = design.columns();

  // Node numbering: top layer (wordlines) T(r,c) = r*cols + c;
  // bottom layer (bitlines) B(r,c) = rows*cols + r*cols + c.
  const int top_base = 0;
  const int bottom_base = rows * cols;
  auto top = [&](int r, int c) { return top_base + r * cols + c; };
  auto bottom = [&](int r, int c) { return bottom_base + r * cols + c; };

  conductance_network net(2 * rows * cols);
  const double g_wire = 1.0 / model.r_wire;

  // Wire segments along wordlines and bitlines.
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c + 1 < cols; ++c) net.stamp(top(r, c), top(r, c + 1), g_wire);
  for (int c = 0; c < cols; ++c)
    for (int r = 0; r + 1 < rows; ++r)
      net.stamp(bottom(r, c), bottom(r + 1, c), g_wire);

  // Junction devices between the layers.
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const bool on = design.at(r, c).conducts(assignment);
      net.stamp(top(r, c), bottom(r, c),
                on ? 1.0 / model.device.r_on : 1.0 / model.device.r_off);
    }

  // Drive the input wordline at its column-0 end through a tiny source
  // resistance (keeps the system SPD without node elimination).
  const double g_source = 1.0 / std::max(model.r_wire * 1e-3, 1e-6);
  net.stamp_to_source(top(design.input_row(), 0), g_source,
                      model.device.v_in);

  // Sensing resistors at every output wordline's far end.
  for (const xbar::output_port& o : design.outputs())
    net.stamp_to_source(top(o.row, cols - 1), 1.0 / model.device.r_sense,
                        0.0);

  std::vector<double> v;
  const auto [iterations, converged] =
      net.solve(v, model.cg_tolerance, model.cg_max_iterations);

  wire_aware_result result;
  result.cg_iterations = iterations;
  result.converged = converged;
  for (const xbar::output_port& o : design.outputs()) {
    const double voltage = v[static_cast<std::size_t>(top(o.row, cols - 1))];
    result.output_voltages.push_back(voltage);
    result.output_logic.push_back(voltage >=
                                  model.device.threshold * model.device.v_in);
  }
  return result;
}

double worst_ir_drop(const xbar::crossbar& design, int variable_count,
                     const wire_model& model, int samples,
                     std::uint64_t seed) {
  rng random(seed);
  double worst = 0.0;
  std::vector<bool> assignment(static_cast<std::size_t>(variable_count));
  for (int s = 0; s < samples; ++s) {
    for (int i = 0; i < variable_count; ++i)
      assignment[static_cast<std::size_t>(i)] = random.next_bool();
    const analog_result ideal = simulate(design, assignment, model.device);
    const wire_aware_result wired =
        simulate_wire_aware(design, assignment, model);
    for (std::size_t o = 0; o < ideal.output_voltages.size(); ++o)
      worst = std::max(worst, ideal.output_voltages[o] -
                                  wired.output_voltages[o]);
  }
  return worst;
}

}  // namespace compact::analog
