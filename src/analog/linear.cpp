#include "analog/linear.hpp"

#include <cmath>

#include "util/error.hpp"

namespace compact::analog {

std::vector<double> solve_dense(matrix a, std::vector<double> b) {
  const int n = a.rows();
  check(a.cols() == n, "solve_dense: matrix must be square");
  check(static_cast<int>(b.size()) == n, "solve_dense: rhs size mismatch");

  // Forward elimination with partial pivoting.
  for (int k = 0; k < n; ++k) {
    int pivot = k;
    double best = std::abs(a.at(k, k));
    for (int r = k + 1; r < n; ++r) {
      if (std::abs(a.at(r, k)) > best) {
        best = std::abs(a.at(r, k));
        pivot = r;
      }
    }
    check(best > 1e-14, "solve_dense: matrix is singular");
    if (pivot != k) {
      for (int c = 0; c < n; ++c) std::swap(a.at(k, c), a.at(pivot, c));
      std::swap(b[static_cast<std::size_t>(k)],
                b[static_cast<std::size_t>(pivot)]);
    }
    const double inv = 1.0 / a.at(k, k);
    for (int r = k + 1; r < n; ++r) {
      const double factor = a.at(r, k) * inv;
      if (factor == 0.0) continue;
      for (int c = k; c < n; ++c) a.at(r, c) -= factor * a.at(k, c);
      b[static_cast<std::size_t>(r)] -=
          factor * b[static_cast<std::size_t>(k)];
    }
  }

  // Back substitution.
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int r = n - 1; r >= 0; --r) {
    double sum = b[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < n; ++c)
      sum -= a.at(r, c) * x[static_cast<std::size_t>(c)];
    x[static_cast<std::size_t>(r)] = sum / a.at(r, r);
  }
  return x;
}

}  // namespace compact::analog
