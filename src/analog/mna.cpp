#include "analog/mna.hpp"

#include "analog/linear.hpp"
#include "util/error.hpp"

namespace compact::analog {

analog_result simulate(const xbar::crossbar& design,
                       const std::vector<bool>& assignment,
                       const device_model& model) {
  check(design.input_row() >= 0, "analog: design has no input row");
  const int rows = design.rows();
  const int cols = design.columns();

  // Unknowns: all nanowire voltages except the driven input row.
  // Node numbering: wordline r -> r (input row excluded by remap),
  // bitline c -> rows + c, then compacted.
  const int total_nodes = rows + cols;
  std::vector<int> unknown_index(static_cast<std::size_t>(total_nodes), -1);
  int unknown_count = 0;
  for (int node = 0; node < total_nodes; ++node) {
    if (node == design.input_row()) continue;  // known voltage v_in
    unknown_index[static_cast<std::size_t>(node)] = unknown_count++;
  }

  matrix g(unknown_count, unknown_count);
  std::vector<double> rhs(static_cast<std::size_t>(unknown_count), 0.0);

  auto stamp = [&](int node_a, int node_b, double conductance) {
    const int ia = unknown_index[static_cast<std::size_t>(node_a)];
    const int ib = unknown_index[static_cast<std::size_t>(node_b)];
    if (ia >= 0) g.at(ia, ia) += conductance;
    if (ib >= 0) g.at(ib, ib) += conductance;
    if (ia >= 0 && ib >= 0) {
      g.at(ia, ib) -= conductance;
      g.at(ib, ia) -= conductance;
    } else if (ia >= 0) {
      rhs[static_cast<std::size_t>(ia)] += conductance * model.v_in;
    } else if (ib >= 0) {
      rhs[static_cast<std::size_t>(ib)] += conductance * model.v_in;
    }
  };

  // Junction resistors.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const bool on = design.at(r, c).conducts(assignment);
      const double conductance = on ? 1.0 / model.r_on : 1.0 / model.r_off;
      stamp(r, rows + c, conductance);
    }
  }

  // Sensing resistors to ground on output rows (ground contributes only to
  // the diagonal).
  for (const xbar::output_port& o : design.outputs()) {
    const int idx = unknown_index[static_cast<std::size_t>(o.row)];
    check(idx >= 0, "analog: the input row cannot also be an output");
    g.at(idx, idx) += 1.0 / model.r_sense;
  }

  std::vector<double> voltage =
      unknown_count > 0 ? solve_dense(std::move(g), std::move(rhs))
                        : std::vector<double>{};

  analog_result result;
  for (const xbar::output_port& o : design.outputs()) {
    const int idx = unknown_index[static_cast<std::size_t>(o.row)];
    const double v = voltage[static_cast<std::size_t>(idx)];
    result.output_voltages.push_back(v);
    result.output_logic.push_back(v >= model.threshold * model.v_in);
  }
  return result;
}

bool simulate_output(const xbar::crossbar& design,
                     const std::vector<bool>& assignment,
                     const std::string& output_name,
                     const device_model& model) {
  const analog_result result = simulate(design, assignment, model);
  for (std::size_t i = 0; i < design.outputs().size(); ++i)
    if (design.outputs()[i].name == output_name) return result.output_logic[i];
  for (const auto& [name, value] : design.constant_outputs())
    if (name == output_name) return value;
  throw error("simulate_output: unknown output " + output_name);
}

}  // namespace compact::analog
