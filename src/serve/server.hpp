// compact-serve core: a batched request executor over the facade v5 schema.
//
// The server owns one api::service (process-wide bounded labeling/partition
// caches) and a util/thread_pool, and turns request_v1 values into
// response_v1 values asynchronously: submit() enqueues a request with a
// completion callback, admission control answers immediately when the
// server is saturated, and per-request latency lands in the util/metrics
// histograms that the daemon reports.
//
// Admission control has two gates:
//   * queue depth — with queue_limit set, a request arriving while that
//     many are already in flight is rejected synchronously with code
//     `overload` (the structured backpressure signal clients retry on);
//   * deadline shedding — a request whose queue wait alone already exceeds
//     its deadline is answered with `deadline_exceeded` without running
//     (the deadline also caps solver effort and arms the util/watchdog
//     inside execution — see request_v1::deadline_seconds).
//
// Completion callbacks run on pool workers (or on the submitting thread for
// rejected requests) and must be thread-safe; run_stream() shows the
// pattern (one mutex around the output stream).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>

#include "api/compact_api.hpp"

namespace compact::serve {

struct server_options {
  /// Pool workers executing requests concurrently. Designs are
  /// bit-identical for any value.
  int threads = 1;
  /// Maximum requests in flight (queued + executing) before submit()
  /// answers `overload`; 0 = unlimited.
  std::size_t queue_limit = 0;
  /// Deadline applied to requests that carry none; 0 = none.
  double default_deadline_seconds = 0.0;
  /// Shared-cache configuration of the underlying api::service.
  api::service_options_v1 service;
};

struct server_stats {
  std::uint64_t submitted = 0;   ///< accepted into the queue
  std::uint64_t completed = 0;   ///< executed (includes shed)
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;      ///< executed with ok = false (includes shed)
  std::uint64_t overloaded = 0;  ///< rejected at admission (never queued)
  std::uint64_t shed = 0;        ///< deadline passed while queued
  std::uint64_t designs = 0;     ///< successful synthesize requests
};

class server {
 public:
  explicit server(const server_options& options = {});
  /// Drains in-flight requests, then joins the pool.
  ~server();
  server(const server&) = delete;
  server& operator=(const server&) = delete;

  using responder = std::function<void(const api::response_v1&)>;

  /// Enqueue one request. `done` is invoked exactly once with the response:
  /// asynchronously on a pool worker, or synchronously on this thread when
  /// admission control rejects the request (code `overload`).
  void submit(api::request_v1 request, responder done);

  /// Block until no requests are in flight.
  void drain();

  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] server_stats stats() const;

  /// The underlying executor (cache stats, direct synchronous handling).
  [[nodiscard]] api::service& service();

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

/// Drive a server from a JSON-lines stream: one request per input line, one
/// response per output line (completion order, matched by id; interleaved
/// writes are serialized). Unparseable lines are answered immediately with
/// code `parse`. Stops after max_requests lines (0 = until EOF), drains,
/// and returns the number of lines consumed. This is the daemon's stdin
/// mode and the in-process transport tests use.
std::size_t run_stream(server& s, std::istream& in, std::ostream& out,
                       std::size_t max_requests = 0);

}  // namespace compact::serve
