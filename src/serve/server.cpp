#include "serve/server.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>

#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace compact::serve {
namespace {

using steady_clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(steady_clock::time_point start) {
  return std::chrono::duration<double>(steady_clock::now() - start).count();
}

/// Latency buckets spanning sub-millisecond cache hits to minute-class MIP
/// solves (seconds).
[[nodiscard]] std::vector<double> latency_bounds() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
          0.5,   1.0,    2.5,   5.0,  10.0,  30.0, 60.0, 120.0};
}

void observe_latency(double seconds) {
  if (!metrics_enabled()) return;
  global_metrics()
      .histogram("serve.latency_seconds", latency_bounds())
      .observe(seconds);
}

void count(const char* name) {
  if (!metrics_enabled()) return;
  global_metrics().counter(name).increment();
}

}  // namespace

struct server::impl {
  explicit impl(const server_options& opts)
      : options(opts),
        service(opts.service),
        pool(opts.threads < 1 ? 1 : opts.threads) {}

  server_options options;
  api::service service;
  thread_pool pool;

  std::mutex mutex;
  std::condition_variable idle;
  std::size_t in_flight = 0;  // guarded by mutex

  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> succeeded{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> designs{0};

  void finish_one() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      --in_flight;
    }
    idle.notify_all();
  }
};

server::server(const server_options& options)
    : impl_(std::make_unique<impl>(options)) {}

server::~server() { drain(); }

void server::submit(api::request_v1 request, responder done) {
  impl& state = *impl_;
  if (request.deadline_seconds <= 0.0)
    request.deadline_seconds = state.options.default_deadline_seconds;

  // Admission control: reject synchronously when the queue is full. The
  // caller gets a structured overload response it can surface or retry on —
  // never an unbounded queue.
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    if (state.options.queue_limit != 0 &&
        state.in_flight >= state.options.queue_limit) {
      lock.unlock();
      state.overloaded.fetch_add(1, std::memory_order_relaxed);
      count("serve.overload_total");
      api::response_v1 resp;
      resp.id = request.id;
      resp.ok = false;
      resp.code = api::error_code_v1::overload;
      resp.error_message =
          "queue full (" + std::to_string(state.options.queue_limit) +
          " requests in flight); retry later";
      done(resp);
      return;
    }
    ++state.in_flight;
    if (metrics_enabled())
      global_metrics()
          .gauge("serve.in_flight")
          .set(static_cast<double>(state.in_flight));
  }

  state.submitted.fetch_add(1, std::memory_order_relaxed);
  const steady_clock::time_point arrival = steady_clock::now();
  // The future is deliberately discarded: the responder callback is the
  // result channel, and packaged_task futures do not block on destruction.
  auto pending = state.pool.submit(
      [&state, request = std::move(request), done = std::move(done),
       arrival]() mutable {
        const double queued = seconds_since(arrival);
        api::response_v1 resp;
        if (request.deadline_seconds > 0.0 &&
            queued >= request.deadline_seconds) {
          // Shed: the deadline passed while the request waited its turn.
          // Answer without running — the client has already given up.
          resp.id = request.id;
          resp.ok = false;
          resp.code = api::error_code_v1::deadline_exceeded;
          resp.error_message = "deadline exceeded while queued";
          state.shed.fetch_add(1, std::memory_order_relaxed);
          count("serve.shed_total");
        } else {
          resp = state.service.handle(request);
        }
        resp.queue_seconds = queued;
        state.completed.fetch_add(1, std::memory_order_relaxed);
        if (resp.ok) {
          state.succeeded.fetch_add(1, std::memory_order_relaxed);
          if (request.op == "synthesize")
            state.designs.fetch_add(1, std::memory_order_relaxed);
        } else {
          state.failed.fetch_add(1, std::memory_order_relaxed);
        }
        count("serve.requests_total");
        observe_latency(resp.queue_seconds + resp.service_seconds);
        try {
          done(resp);
        } catch (...) {
          // A failing response writer (closed pipe, dead socket) must not
          // take the worker down; the transport notices on its own.
        }
        state.finish_one();
      });
  (void)pending;
}

void server::drain() {
  impl& state = *impl_;
  std::unique_lock<std::mutex> lock(state.mutex);
  state.idle.wait(lock, [&state] { return state.in_flight == 0; });
}

std::size_t server::in_flight() const {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->in_flight;
}

server_stats server::stats() const {
  const impl& state = *impl_;
  server_stats out;
  out.submitted = state.submitted.load(std::memory_order_relaxed);
  out.completed = state.completed.load(std::memory_order_relaxed);
  out.succeeded = state.succeeded.load(std::memory_order_relaxed);
  out.failed = state.failed.load(std::memory_order_relaxed);
  out.overloaded = state.overloaded.load(std::memory_order_relaxed);
  out.shed = state.shed.load(std::memory_order_relaxed);
  out.designs = state.designs.load(std::memory_order_relaxed);
  return out;
}

api::service& server::service() { return impl_->service; }

std::size_t run_stream(server& s, std::istream& in, std::ostream& out,
                       std::size_t max_requests) {
  std::mutex write_mutex;
  const auto emit = [&write_mutex, &out](const api::response_v1& resp) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    out << api::to_json(resp) << '\n' << std::flush;
  };

  std::size_t consumed = 0;
  std::string line;
  while ((max_requests == 0 || consumed < max_requests) &&
         std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ++consumed;
    api::request_v1 request;
    try {
      request = api::request_from_json(line);
    } catch (const api::parse_error& e) {
      api::response_v1 resp;
      resp.ok = false;
      resp.code = api::error_code_v1::parse;
      resp.error_message = e.what();
      emit(resp);
      continue;
    }
    s.submit(std::move(request), emit);
  }
  // All responders write to `out` through emit's references; drain before
  // they dangle.
  s.drain();
  return consumed;
}

}  // namespace compact::serve
