// Unix-domain-socket transport for compact-serve, plus the tiny line-io
// client helpers compact_loadgen and the smoke tests use.
//
// Protocol: JSON-lines, symmetric with run_stream() — the client writes one
// request_v1 per line, the server writes one response_v1 per line (in
// completion order; correlate by id). Connections are independent: each
// accepted connection gets a reader thread that parses and submits into the
// shared server, and responses are written back under a per-connection
// mutex. POSIX only; on other platforms serve_unix() throws.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

#include "serve/server.hpp"

namespace compact::serve {

struct socket_options {
  /// Filesystem path of the listening socket (unlinked and re-bound).
  std::string path;
  /// Stop accepting and return after consuming this many request lines
  /// across all connections; 0 = serve until `stop` is set.
  std::size_t max_requests = 0;
};

/// Listen on a unix-domain socket and serve until max_requests is reached
/// or `stop` (optional) becomes true; drains in-flight work before
/// returning. Returns the number of request lines consumed. Throws
/// compact::error on socket setup failures.
std::size_t serve_unix(server& s, const socket_options& options,
                       const std::atomic<bool>* stop = nullptr);

// --- client helpers -------------------------------------------------------

/// Connect to a unix-domain socket; throws compact::error on failure.
[[nodiscard]] int connect_unix(const std::string& path);

/// Write `line` plus '\n'; returns false when the peer is gone (EPIPE).
bool write_line(int fd, const std::string& line);

/// Buffered line read: `buffer` carries the partial tail between calls.
/// Returns false on EOF with nothing pending.
bool read_line(int fd, std::string& buffer, std::string& line);

void close_fd(int fd);

}  // namespace compact::serve
