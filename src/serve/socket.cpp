#include "serve/socket.hpp"

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace compact::serve {
namespace {

/// One accepted connection. The fd is owned here and closed by the last
/// holder: the reader thread and every in-flight responder share ownership
/// through shared_ptr, so a response completing after the client stopped
/// reading still has a valid (if dead) fd to fail against.
struct connection {
  explicit connection(int descriptor) : fd(descriptor) {}
  ~connection() { close_fd(fd); }
  connection(const connection&) = delete;
  connection& operator=(const connection&) = delete;

  int fd;
  std::mutex write_mutex;
};

[[noreturn]] void socket_fail(const std::string& what) {
  throw compact::error(what + ": " + std::strerror(errno));
}

}  // namespace

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw compact::error("socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) socket_fail("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    socket_fail("connect " + path);
  }
  return fd;
}

bool write_line(int fd, const std::string& line) {
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    // MSG_NOSIGNAL: a vanished peer yields EPIPE instead of SIGPIPE.
    const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer, 0, newline);
      buffer.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      if (buffer.empty()) return false;
      line = std::move(buffer);  // unterminated final line
      buffer.clear();
      return true;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

std::size_t serve_unix(server& s, const socket_options& options,
                       const std::atomic<bool>* stop) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.path.size() >= sizeof(addr.sun_path))
    throw compact::error("socket path too long: " + options.path);
  std::strncpy(addr.sun_path, options.path.c_str(),
               sizeof(addr.sun_path) - 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) socket_fail("socket");
  ::unlink(options.path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd);
    errno = saved;
    socket_fail("bind " + options.path);
  }
  if (::listen(listen_fd, 128) != 0) {
    const int saved = errno;
    ::close(listen_fd);
    errno = saved;
    socket_fail("listen " + options.path);
  }

  std::atomic<std::size_t> consumed{0};
  std::mutex registry_mutex;
  std::vector<std::weak_ptr<connection>> registry;
  std::vector<std::thread> readers;

  const auto served_enough = [&] {
    return (options.max_requests != 0 &&
            consumed.load(std::memory_order_relaxed) >=
                options.max_requests) ||
           (stop != nullptr && stop->load(std::memory_order_relaxed));
  };

  while (!served_enough()) {
    pollfd waiter{};
    waiter.fd = listen_fd;
    waiter.events = POLLIN;
    const int ready = ::poll(&waiter, 1, 200);  // tick to re-check the stop
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const int client_fd = ::accept(listen_fd, nullptr, nullptr);
    if (client_fd < 0) continue;

    auto conn = std::make_shared<connection>(client_fd);
    {
      const std::lock_guard<std::mutex> lock(registry_mutex);
      registry.push_back(conn);
    }
    readers.emplace_back([&s, &consumed, &served_enough, conn,
                          max = options.max_requests] {
      std::string buffer;
      std::string line;
      while (read_line(conn->fd, buffer, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        const std::size_t serial =
            consumed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (max != 0 && serial > max) break;
        api::request_v1 request;
        try {
          request = api::request_from_json(line);
        } catch (const api::parse_error& e) {
          api::response_v1 resp;
          resp.ok = false;
          resp.code = api::error_code_v1::parse;
          resp.error_message = e.what();
          const std::lock_guard<std::mutex> lock(conn->write_mutex);
          write_line(conn->fd, api::to_json(resp));
          continue;
        }
        s.submit(std::move(request),
                 [conn](const api::response_v1& resp) {
                   const std::lock_guard<std::mutex> lock(conn->write_mutex);
                   write_line(conn->fd, api::to_json(resp));
                 });
        if (served_enough()) break;
      }
    });
  }

  ::close(listen_fd);
  // Force any reader still blocked in read() out (a client that never
  // disconnects must not wedge shutdown), then join and drain.
  {
    const std::lock_guard<std::mutex> lock(registry_mutex);
    for (const std::weak_ptr<connection>& weak : registry)
      if (const std::shared_ptr<connection> conn = weak.lock())
        ::shutdown(conn->fd, SHUT_RD);
  }
  for (std::thread& reader : readers) reader.join();
  s.drain();
  return consumed.load(std::memory_order_relaxed);
}

}  // namespace compact::serve

#else  // !(__unix__ || __APPLE__)

namespace compact::serve {

int connect_unix(const std::string&) {
  throw compact::error("unix-domain sockets are unsupported on this platform");
}
bool write_line(int, const std::string&) { return false; }
bool read_line(int, std::string&, std::string&) { return false; }
void close_fd(int) {}

std::size_t serve_unix(server&, const socket_options&,
                       const std::atomic<bool>*) {
  throw compact::error("unix-domain sockets are unsupported on this platform");
}

}  // namespace compact::serve

#endif
