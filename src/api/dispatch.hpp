// Internal bridge between the v5 request surface and the facade's
// implementation: dispatch functions that execute one request_v1 with an
// optional set of shared caches and either return the rich outcome or throw
// the facade's exception hierarchy. service::handle() and the one-shot
// handle() map the exceptions into error codes; the deprecated v4 shims
// call these directly so their exception behavior is unchanged.
//
// NOT part of the stable facade — first-party code only.
#pragma once

#include "api/compact_api.hpp"

namespace compact::core {
class labeling_cache;
class partition_cache;
}  // namespace compact::core

namespace compact::api {

/// Shared state injected into a dispatched request. Null members mean the
/// core falls back to its private per-call caches.
struct dispatch_caches {
  core::labeling_cache* label = nullptr;
  core::partition_cache* partition = nullptr;
};

/// Execute an op = "synthesize" request (deadline mapping applied, flight
/// recorder armed). Throws like the v4 synthesize().
[[nodiscard]] synthesis_outcome dispatch_synthesize(
    const request_v1& request, const dispatch_caches& caches);

/// Execute an op = "lint" request: design_text set checks that design
/// against the source, otherwise the netlist is synthesized and every
/// intermediate artifact checked. Throws like the v4 lint() overloads.
[[nodiscard]] lint_outcome dispatch_lint(const request_v1& request,
                                         const dispatch_caches& caches);

}  // namespace compact::api
