// JSON-lines serialization of the v5 request/response schema.
//
// One request or response per line, UTF-8, no embedded newlines (json_escape
// escapes control characters) — the wire format of compact-serve and the
// replay format of compact_loadgen. Requests parse strictly (unknown fields
// are errors, so typos fail loudly at the server boundary); responses parse
// leniently (unknown fields are ignored, so a v5 client keeps working
// against a server that appends fields in v6).
#include <cstdint>
#include <string>
#include <vector>

#include "api/compact_api.hpp"
#include "util/json.hpp"
#include "util/telemetry.hpp"

namespace compact::api {
namespace {

[[nodiscard]] std::string quoted(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

[[nodiscard]] std::string field(const char* key, const std::string& value) {
  return std::string("\"") + key + "\":" + quoted(value);
}
[[nodiscard]] std::string field(const char* key, double value) {
  return std::string("\"") + key + "\":" + json_number(value);
}
[[nodiscard]] std::string field(const char* key, bool value) {
  return std::string("\"") + key + "\":" + (value ? "true" : "false");
}
[[nodiscard]] std::string field(const char* key, int value) {
  return field(key, static_cast<double>(value));
}
[[nodiscard]] std::string field(const char* key, std::uint64_t value) {
  return field(key, static_cast<double>(value));
}
[[nodiscard]] std::string field(const char* key, long long value) {
  return field(key, static_cast<double>(value));
}

[[nodiscard]] std::string names_array(const std::vector<std::string>& names) {
  std::string out = "[";
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) out += ',';
    out += quoted(names[i]);
  }
  return out + "]";
}

// -------------------------------------------------------------------------
// Writers

[[nodiscard]] std::string synthesis_json(const synthesis_options_v1& o) {
  std::string out = "{";
  out += field("labeler", o.labeler);
  out += ',' + field("gamma", o.gamma);
  out += ',' + field("alignment", o.alignment);
  out += ',' + field("time_limit_seconds", o.time_limit_seconds);
  out += ',' + field("threads", o.threads);
  out += ',' + field("max_rows", o.max_rows);
  out += ',' + field("max_columns", o.max_columns);
  out += ',' + field("partition", o.partition);
  out += ',' + field("separate_robdds", o.separate_robdds);
  out += ',' + field("minimize_network", o.minimize_network);
  out += ',' + field("variable_order", o.variable_order);
  out += ',' + field("kernelize", o.kernelize);
  out += ',' + field("validate", o.validate);
  out += ',' + field("verify", o.verify);
  out += ',' + field("trace_json_path", o.trace_json_path);
  out += ',' + field("memory_limit_bytes", o.memory_limit_bytes);
  out += ',' + field("deadline_seconds", o.deadline_seconds);
  out += ',' + field("flight_record_path", o.flight_record_path);
  return out + "}";
}

[[nodiscard]] std::string lint_json(const lint_options_v1& o) {
  std::string out = "{";
  out += field("labeler", o.labeler);
  out += ',' + field("gamma", o.gamma);
  out += ',' + field("time_limit_seconds", o.time_limit_seconds);
  out += ',' + field("threads", o.threads);
  out += ',' + field("equivalence", o.equivalence);
  out += ',' + field("electrical", o.electrical);
  out += ',' + field("margin_threshold", o.margin_threshold);
  out += ',' + field("criticality", o.criticality);
  out += ',' + field("criticality_limit", o.criticality_limit);
  return out + "}";
}

[[nodiscard]] std::string stats_json(const synthesis_stats_v1& s) {
  std::string out = "{";
  out += field("graph_nodes", s.graph_nodes);
  out += ',' + field("vh_count", s.vh_count);
  out += ',' + field("rows", s.rows);
  out += ',' + field("columns", s.columns);
  out += ',' + field("semiperimeter", s.semiperimeter);
  out += ',' + field("max_dimension", s.max_dimension);
  out += ',' + field("area", s.area);
  out += ',' + field("power_proxy", s.power_proxy);
  out += ',' + field("delay_steps", s.delay_steps);
  out += ',' + field("optimal", s.optimal);
  out += ',' + field("relative_gap", s.relative_gap);
  out += ',' + field("synthesis_seconds", s.synthesis_seconds);
  out += ',' + field("arrays", s.arrays);
  out += ',' + field("cut_edges", s.cut_edges);
  out += ',' + field("bridge_connections", s.bridge_connections);
  out += ',' + field("total_semiperimeter", s.total_semiperimeter);
  return out + "}";
}

[[nodiscard]] std::string check_json(const check_result_v1& c) {
  std::string out = "{";
  out += field("ran", c.ran);
  out += ',' + field("passed", c.passed);
  out += ',' + field("detail", c.detail);
  return out + "}";
}

[[nodiscard]] std::string diagnostics_json(
    const std::vector<diagnostic_v1>& diagnostics) {
  std::string out = "[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const diagnostic_v1& d = diagnostics[i];
    if (i != 0) out += ',';
    out += "{" + field("check", d.check);
    out += ',' + field("severity", d.severity);
    out += ',' + field("message", d.message);
    if (!d.fix.empty()) out += ',' + field("fix", d.fix);
    if (!d.anchors.empty())
      out += ",\"anchors\":" + names_array(d.anchors);
    out += "}";
  }
  return out + "]";
}

// -------------------------------------------------------------------------
// Strict request parsing

[[noreturn]] void fail(const std::string& message) {
  throw compact::parse_error(message);
}

[[nodiscard]] int as_int(const json::value& v, const char* what) {
  const double n = v.as_number();
  const int i = static_cast<int>(n);
  if (static_cast<double>(i) != n) fail(std::string(what) + " must be an integer");
  return i;
}

[[nodiscard]] std::uint64_t as_u64(const json::value& v, const char* what) {
  const double n = v.as_number();
  if (n < 0) fail(std::string(what) + " must be >= 0");
  return static_cast<std::uint64_t>(n);
}

void parse_source(const json::value& v, netlist_source& out) {
  for (const auto& [key, val] : v.as_object()) {
    if (key == "path")
      out.path = val->as_string();
    else if (key == "text")
      out.text = val->as_string();
    else if (key == "format")
      out.format = val->as_string();
    else
      fail("unknown source field '" + key + "'");
  }
}

void parse_synthesis(const json::value& v, synthesis_options_v1& o) {
  for (const auto& [key, val] : v.as_object()) {
    if (key == "labeler")
      o.labeler = val->as_string();
    else if (key == "gamma")
      o.gamma = val->as_number();
    else if (key == "alignment")
      o.alignment = val->as_bool();
    else if (key == "time_limit_seconds")
      o.time_limit_seconds = val->as_number();
    else if (key == "threads")
      o.threads = as_int(*val, "threads");
    else if (key == "max_rows")
      o.max_rows = as_int(*val, "max_rows");
    else if (key == "max_columns")
      o.max_columns = as_int(*val, "max_columns");
    else if (key == "partition")
      o.partition = val->as_bool();
    else if (key == "separate_robdds")
      o.separate_robdds = val->as_bool();
    else if (key == "minimize_network")
      o.minimize_network = val->as_bool();
    else if (key == "variable_order")
      o.variable_order = val->as_string();
    else if (key == "kernelize")
      o.kernelize = val->as_bool();
    else if (key == "validate")
      o.validate = val->as_bool();
    else if (key == "verify")
      o.verify = val->as_bool();
    else if (key == "trace_json_path")
      o.trace_json_path = val->as_string();
    else if (key == "memory_limit_bytes")
      o.memory_limit_bytes = as_u64(*val, "memory_limit_bytes");
    else if (key == "deadline_seconds")
      o.deadline_seconds = val->as_number();
    else if (key == "flight_record_path")
      o.flight_record_path = val->as_string();
    else
      fail("unknown synthesis field '" + key + "'");
  }
}

void parse_lint(const json::value& v, lint_options_v1& o) {
  for (const auto& [key, val] : v.as_object()) {
    if (key == "labeler")
      o.labeler = val->as_string();
    else if (key == "gamma")
      o.gamma = val->as_number();
    else if (key == "time_limit_seconds")
      o.time_limit_seconds = val->as_number();
    else if (key == "threads")
      o.threads = as_int(*val, "threads");
    else if (key == "equivalence")
      o.equivalence = val->as_bool();
    else if (key == "electrical")
      o.electrical = val->as_bool();
    else if (key == "margin_threshold")
      o.margin_threshold = val->as_number();
    else if (key == "criticality")
      o.criticality = val->as_bool();
    else if (key == "criticality_limit")
      o.criticality_limit = as_int(*val, "criticality_limit");
    else
      fail("unknown lint field '" + key + "'");
  }
}

// -------------------------------------------------------------------------
// Lenient response parsing helpers

void read_check(const json::value* v, check_result_v1& out) {
  if (v == nullptr) return;
  if (const json::value* ran = v->find("ran")) out.ran = ran->as_bool();
  if (const json::value* passed = v->find("passed"))
    out.passed = passed->as_bool();
  if (const json::value* detail = v->find("detail"))
    out.detail = detail->as_string();
}

void read_diagnostics(const json::value* v, std::vector<diagnostic_v1>& out) {
  if (v == nullptr) return;
  for (const json::value_ptr& item : v->as_array()) {
    diagnostic_v1 d;
    if (const json::value* check = item->find("check"))
      d.check = check->as_string();
    if (const json::value* severity = item->find("severity"))
      d.severity = severity->as_string();
    if (const json::value* message = item->find("message"))
      d.message = message->as_string();
    if (const json::value* fix = item->find("fix")) d.fix = fix->as_string();
    if (const json::value* anchors = item->find("anchors"))
      for (const json::value_ptr& a : anchors->as_array())
        d.anchors.push_back(a->as_string());
    out.push_back(std::move(d));
  }
}

}  // namespace

std::string to_json(const request_v1& request) {
  std::string out = "{";
  out += field("id", request.id);
  out += ',' + field("op", request.op);
  if (request.api_version != 0)
    out += ',' + field("api_version", request.api_version);
  if (!request.source.path.empty() || !request.source.text.empty() ||
      !request.source.format.empty()) {
    out += ",\"source\":{";
    out += field("path", request.source.path);
    out += ',' + field("text", request.source.text);
    out += ',' + field("format", request.source.format);
    out += "}";
  }
  if (!request.design_text.empty())
    out += ',' + field("design", request.design_text);
  if (!request.assignment.empty())
    out += ',' + field("assignment", request.assignment);
  out += ',' + field("deadline_seconds", request.deadline_seconds);
  out += ',' + field("fail_on", request.fail_on);
  out += ",\"synthesis\":" + synthesis_json(request.synthesis);
  out += ",\"lint\":" + lint_json(request.lint);
  return out + "}";
}

std::string to_json(const response_v1& response) {
  std::string out = "{";
  out += field("id", response.id);
  out += ',' + field("ok", response.ok);
  out += ',' + field("code", std::string(error_code_name(response.code)));
  if (!response.error_message.empty())
    out += ',' + field("error", response.error_message);
  if (!response.design_text.empty())
    out += ',' + field("design", response.design_text);
  if (response.has_stats) out += ",\"stats\":" + stats_json(response.stats);
  if (response.validation.ran)
    out += ",\"validation\":" + check_json(response.validation);
  if (response.verification.ran)
    out += ",\"verification\":" + check_json(response.verification);
  if (!response.diagnostics.empty())
    out += ",\"diagnostics\":" + diagnostics_json(response.diagnostics);
  if (response.lint_ran) {
    out += ",\"lint\":{";
    out += field("clean", response.lint_clean);
    out += ',' + field("errors", response.lint_errors);
    out += ',' + field("warnings", response.lint_warnings);
    out += ',' + field("notes", response.lint_notes);
    if (response.electrical_ran) {
      out += ",\"electrical\":{";
      out += field("safe", response.electrically_safe);
      out += ',' + field("min_margin_ratio", response.min_margin_ratio);
      out += "}";
    }
    if (response.criticality_ran) {
      out += ",\"criticality\":{";
      out += field("junctions_analyzed", response.junctions_analyzed);
      out += ',' + field("critical_junctions", response.critical_junctions);
      out += ',' + field("truncated", response.criticality_truncated);
      out += "}";
    }
    out += "}";
  }
  if (!response.outputs.empty())
    out += ',' + field("outputs", response.outputs);
  if (!response.output_names.empty())
    out += ",\"output_names\":" + names_array(response.output_names);
  out += ',' + field("service_seconds", response.service_seconds);
  out += ',' + field("queue_seconds", response.queue_seconds);
  return out + "}";
}

request_v1 request_from_json(const std::string& text) {
  try {
    const json::value_ptr doc = json::parse(text);
    request_v1 r;
    for (const auto& [key, val] : doc->as_object()) {
      if (key == "id")
        r.id = val->as_string();
      else if (key == "op")
        r.op = val->as_string();
      else if (key == "api_version")
        r.api_version = as_int(*val, "api_version");
      else if (key == "source")
        parse_source(*val, r.source);
      else if (key == "design")
        r.design_text = val->as_string();
      else if (key == "assignment")
        r.assignment = val->as_string();
      else if (key == "deadline_seconds")
        r.deadline_seconds = val->as_number();
      else if (key == "fail_on")
        r.fail_on = val->as_string();
      else if (key == "synthesis")
        parse_synthesis(*val, r.synthesis);
      else if (key == "lint")
        parse_lint(*val, r.lint);
      else
        fail("unknown request field '" + key + "'");
    }
    return r;
  } catch (const compact::error& e) {
    throw parse_error(e.what());
  }
}

response_v1 response_from_json(const std::string& text) {
  try {
    const json::value_ptr doc = json::parse(text);
    response_v1 r;
    const json::value& v = *doc;
    (void)v.as_object();  // must be an object
    if (const json::value* id = v.find("id")) r.id = id->as_string();
    if (const json::value* ok = v.find("ok")) r.ok = ok->as_bool();
    if (const json::value* code = v.find("code")) {
      const std::optional<error_code_v1> parsed =
          parse_error_code(code->as_string());
      if (!parsed) fail("unknown error code '" + code->as_string() + "'");
      r.code = *parsed;
    }
    if (const json::value* e = v.find("error")) r.error_message = e->as_string();
    if (const json::value* d = v.find("design")) r.design_text = d->as_string();
    if (const json::value* stats = v.find("stats")) {
      r.has_stats = true;
      synthesis_stats_v1& s = r.stats;
      if (const json::value* x = stats->find("graph_nodes"))
        s.graph_nodes = static_cast<std::size_t>(x->as_number());
      if (const json::value* x = stats->find("vh_count"))
        s.vh_count = as_int(*x, "vh_count");
      if (const json::value* x = stats->find("rows"))
        s.rows = as_int(*x, "rows");
      if (const json::value* x = stats->find("columns"))
        s.columns = as_int(*x, "columns");
      if (const json::value* x = stats->find("semiperimeter"))
        s.semiperimeter = as_int(*x, "semiperimeter");
      if (const json::value* x = stats->find("max_dimension"))
        s.max_dimension = as_int(*x, "max_dimension");
      if (const json::value* x = stats->find("area"))
        s.area = static_cast<long long>(x->as_number());
      if (const json::value* x = stats->find("power_proxy"))
        s.power_proxy = as_int(*x, "power_proxy");
      if (const json::value* x = stats->find("delay_steps"))
        s.delay_steps = as_int(*x, "delay_steps");
      if (const json::value* x = stats->find("optimal"))
        s.optimal = x->as_bool();
      if (const json::value* x = stats->find("relative_gap"))
        s.relative_gap = x->as_number();
      if (const json::value* x = stats->find("synthesis_seconds"))
        s.synthesis_seconds = x->as_number();
      if (const json::value* x = stats->find("arrays"))
        s.arrays = as_int(*x, "arrays");
      if (const json::value* x = stats->find("cut_edges"))
        s.cut_edges = as_int(*x, "cut_edges");
      if (const json::value* x = stats->find("bridge_connections"))
        s.bridge_connections = as_int(*x, "bridge_connections");
      if (const json::value* x = stats->find("total_semiperimeter"))
        s.total_semiperimeter = as_int(*x, "total_semiperimeter");
    }
    read_check(v.find("validation"), r.validation);
    read_check(v.find("verification"), r.verification);
    read_diagnostics(v.find("diagnostics"), r.diagnostics);
    if (const json::value* lint = v.find("lint")) {
      r.lint_ran = true;
      if (const json::value* x = lint->find("clean"))
        r.lint_clean = x->as_bool();
      if (const json::value* x = lint->find("errors"))
        r.lint_errors = as_u64(*x, "errors");
      if (const json::value* x = lint->find("warnings"))
        r.lint_warnings = as_u64(*x, "warnings");
      if (const json::value* x = lint->find("notes"))
        r.lint_notes = as_u64(*x, "notes");
      if (const json::value* e = lint->find("electrical")) {
        r.electrical_ran = true;
        if (const json::value* x = e->find("safe"))
          r.electrically_safe = x->as_bool();
        if (const json::value* x = e->find("min_margin_ratio"))
          r.min_margin_ratio = x->as_number();
      }
      if (const json::value* c = lint->find("criticality")) {
        r.criticality_ran = true;
        if (const json::value* x = c->find("junctions_analyzed"))
          r.junctions_analyzed = as_int(*x, "junctions_analyzed");
        if (const json::value* x = c->find("critical_junctions"))
          r.critical_junctions = as_int(*x, "critical_junctions");
        if (const json::value* x = c->find("truncated"))
          r.criticality_truncated = x->as_bool();
      }
    }
    if (const json::value* o = v.find("outputs")) r.outputs = o->as_string();
    if (const json::value* names = v.find("output_names"))
      for (const json::value_ptr& n : names->as_array())
        r.output_names.push_back(n->as_string());
    if (const json::value* s = v.find("service_seconds"))
      r.service_seconds = s->as_number();
    if (const json::value* q = v.find("queue_seconds"))
      r.queue_seconds = q->as_number();
    return r;
  } catch (const compact::error& e) {
    throw parse_error(e.what());
  }
}

}  // namespace compact::api
