// Facade v5 request execution: the service handle, the one-shot handle(),
// and the structured error-code taxonomy. The service owns the process-wide
// labeling / partition caches (bounded via util/bounded_memo) and maps every
// exception the dispatch layer can throw into a response code — handle()
// never throws, so a batch of requests degrades per-request.
#include <atomic>
#include <cstdint>
#include <exception>
#include <string>
#include <utility>

#include "api/compact_api.hpp"
#include "api/dispatch.hpp"
#include "core/label_cache.hpp"
#include "core/partition.hpp"
#include "util/stopwatch.hpp"

namespace compact::api {

const char* error_code_name(error_code_v1 code) {
  switch (code) {
    case error_code_v1::none:
      return "none";
    case error_code_v1::invalid_request:
      return "invalid_request";
    case error_code_v1::parse:
      return "parse";
    case error_code_v1::infeasible:
      return "infeasible";
    case error_code_v1::resource_limit:
      return "resource_limit";
    case error_code_v1::deadline_exceeded:
      return "deadline_exceeded";
    case error_code_v1::overload:
      return "overload";
    case error_code_v1::version_mismatch:
      return "version_mismatch";
    case error_code_v1::internal:
      return "internal";
  }
  return "internal";
}

std::optional<error_code_v1> parse_error_code(const std::string& name) {
  for (const error_code_v1 code :
       {error_code_v1::none, error_code_v1::invalid_request,
        error_code_v1::parse, error_code_v1::infeasible,
        error_code_v1::resource_limit, error_code_v1::deadline_exceeded,
        error_code_v1::overload, error_code_v1::version_mismatch,
        error_code_v1::internal})
    if (name == error_code_name(code)) return code;
  return std::nullopt;
}

struct service::impl {
  service_options_v1 options;
  core::labeling_cache label_cache;
  core::partition_cache partition_cache;
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> succeeded{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> designs{0};

  [[nodiscard]] dispatch_caches caches() {
    dispatch_caches c;
    if (options.share_label_cache) c.label = &label_cache;
    if (options.share_partition_cache) c.partition = &partition_cache;
    return c;
  }
};

namespace {

// Both caches expose structurally identical counters (distinct bounded_memo
// instantiations), hence the template.
template <typename Counters>
[[nodiscard]] cache_stats_v1 to_cache_stats(const Counters& c) {
  cache_stats_v1 out;
  out.hits = c.hits;
  out.misses = c.misses;
  out.entries = c.entries;
  out.evictions = c.evictions;
  out.content_bytes = c.content_bytes;
  return out;
}

/// Execute the request body (everything between admission and accounting),
/// filling the op-specific response sections. Throws the facade hierarchy;
/// the caller maps exceptions to codes.
void execute(const dispatch_caches& caches, const request_v1& request,
             response_v1& resp) {
  if (request.op == "synthesize") {
    synthesis_outcome out = dispatch_synthesize(request, caches);
    resp.design_text = out.mapped.to_text();
    resp.output_names = out.mapped.output_names();
    resp.has_stats = true;
    resp.stats = out.stats;
    resp.validation = out.validation;
    resp.verification = out.verification;
    resp.diagnostics = std::move(out.diagnostics);
    resp.code = error_code_v1::none;
    return;
  }
  if (request.op == "lint") {
    lint_outcome out = dispatch_lint(request, caches);
    resp.lint_ran = true;
    resp.lint_clean = out.clean(request.fail_on);
    resp.lint_errors = out.errors;
    resp.lint_warnings = out.warnings;
    resp.lint_notes = out.notes;
    resp.electrical_ran = out.electrical_ran;
    resp.electrically_safe = out.electrically_safe;
    resp.min_margin_ratio = out.min_margin_ratio;
    resp.criticality_ran = out.criticality_ran;
    resp.junctions_analyzed = out.junctions_analyzed;
    resp.critical_junctions = out.critical_junctions;
    resp.criticality_truncated = out.criticality_truncated;
    resp.diagnostics = std::move(out.diagnostics);
    resp.code = error_code_v1::none;
    return;
  }
  if (request.op == "evaluate") {
    if (request.design_text.empty())
      throw error("evaluate needs design_text");
    const design d = design::from_text(request.design_text);
    std::vector<bool> assignment;
    assignment.reserve(request.assignment.size());
    for (const char c : request.assignment) {
      if (c != '0' && c != '1')
        throw error("assignment must be a string of '0'/'1' bits");
      assignment.push_back(c == '1');
    }
    const std::vector<bool> sensed = d.evaluate(assignment);
    resp.outputs.reserve(sensed.size());
    for (const bool bit : sensed) resp.outputs += bit ? '1' : '0';
    resp.output_names = d.output_names();
    resp.code = error_code_v1::none;
    return;
  }
  throw error("unknown op '" + request.op +
              "' (expected synthesize, lint, or evaluate)");
}

}  // namespace

service::service(const service_options_v1& options)
    : impl_(std::make_unique<impl>()) {
  impl_->options = options;
  if (options.cache_memory_limit_bytes > 0) {
    // Split the combined budget evenly across the enabled caches. The
    // partition cache stores small plans; an even split still bounds both.
    const int shared = (options.share_label_cache ? 1 : 0) +
                       (options.share_partition_cache ? 1 : 0);
    if (shared > 0) {
      const std::uint64_t each = options.cache_memory_limit_bytes /
                                 static_cast<std::uint64_t>(shared);
      if (options.share_label_cache)
        impl_->label_cache.set_capacity_bytes(each);
      if (options.share_partition_cache)
        impl_->partition_cache.set_capacity_bytes(each);
    }
  }
}

service::~service() = default;

response_v1 service::handle(const request_v1& request) {
  response_v1 resp;
  resp.id = request.id;
  const stopwatch clock;
  impl_->requests.fetch_add(1, std::memory_order_relaxed);
  try {
    if (request.api_version != 0 && request.api_version != api_version()) {
      resp.code = error_code_v1::version_mismatch;
      resp.error_message =
          "request targets api version " + std::to_string(request.api_version) +
          " but the library implements version " + std::to_string(api_version());
    } else {
      execute(impl_->caches(), request, resp);
    }
  } catch (const parse_error& e) {
    resp.code = error_code_v1::parse;
    resp.error_message = e.what();
  } catch (const infeasible_error& e) {
    resp.code = error_code_v1::infeasible;
    resp.error_message = e.what();
  } catch (const resource_limit_error& e) {
    resp.code = e.limit_kind() == resource_limit_error::kind::deadline
                    ? error_code_v1::deadline_exceeded
                    : error_code_v1::resource_limit;
    resp.error_message = e.what();
  } catch (const error& e) {
    // The facade's generic error means the request itself was unusable (bad
    // option value, missing field, unknown op) — a client error.
    resp.code = error_code_v1::invalid_request;
    resp.error_message = e.what();
  } catch (const std::exception& e) {
    resp.code = error_code_v1::internal;
    resp.error_message = e.what();
  } catch (...) {
    resp.code = error_code_v1::internal;
    resp.error_message = "unknown failure";
  }
  resp.ok = resp.code == error_code_v1::none;
  resp.service_seconds = clock.seconds();
  if (resp.ok) {
    impl_->succeeded.fetch_add(1, std::memory_order_relaxed);
    if (request.op == "synthesize")
      impl_->designs.fetch_add(1, std::memory_order_relaxed);
  } else {
    impl_->failed.fetch_add(1, std::memory_order_relaxed);
  }
  return resp;
}

service_stats_v1 service::stats() const {
  service_stats_v1 out;
  out.requests = impl_->requests.load(std::memory_order_relaxed);
  out.succeeded = impl_->succeeded.load(std::memory_order_relaxed);
  out.failed = impl_->failed.load(std::memory_order_relaxed);
  out.designs = impl_->designs.load(std::memory_order_relaxed);
  out.label_cache = to_cache_stats(impl_->label_cache.stats());
  out.partition_cache = to_cache_stats(impl_->partition_cache.stats());
  return out;
}

void service::clear_caches() {
  impl_->label_cache.clear();
  impl_->partition_cache.clear();
}

response_v1 handle(const request_v1& request) {
  service one_shot;
  return one_shot.handle(request);
}

}  // namespace compact::api
