#include "api/compact_api.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include "api/dispatch.hpp"
#include "core/compact.hpp"
#include "core/partition.hpp"
#include "core/pipeline.hpp"
#include "frontend/blif.hpp"
#include "frontend/minimize.hpp"
#include "frontend/pla.hpp"
#include "frontend/to_bdd.hpp"
#include "frontend/verilog.hpp"
#include "util/error.hpp"
#include "util/flight_recorder.hpp"
#include "util/telemetry.hpp"
#include "util/watchdog.hpp"
#include "verify/analyzer.hpp"
#include "verify/pass.hpp"
#include "xbar/evaluate.hpp"
#include "xbar/partitioned.hpp"
#include "xbar/serialize.hpp"
#include "xbar/validate.hpp"

namespace compact::api {
namespace {

/// Run `f`, translating the library's exception hierarchy into the facade's
/// own (clients compile against this header alone and must be able to catch
/// everything the facade throws by spelling api:: types only).
template <typename F>
auto translated(F&& f) -> decltype(f()) {
  try {
    return f();
  } catch (const compact::parse_error& e) {
    throw parse_error(e.what());
  } catch (const compact::infeasible_error& e) {
    throw infeasible_error(e.what());
  } catch (const compact::resource_limit_error& e) {
    throw resource_limit_error(
        e.limit_kind() == compact::resource_limit_error::kind::memory
            ? resource_limit_error::kind::memory
            : resource_limit_error::kind::deadline,
        e.what());
  } catch (const compact::error& e) {
    throw error(e.what());
  }
}

[[nodiscard]] std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Resolve the parser for `source`: explicit format, else path extension,
/// else BLIF for inline text.
[[nodiscard]] std::string resolve_format(const netlist_source& source) {
  if (!source.format.empty()) {
    const std::string f = lower(source.format);
    if (f != "blif" && f != "pla" && f != "verilog")
      throw parse_error("unknown netlist format '" + source.format +
                        "' (expected blif, pla, or verilog)");
    return f;
  }
  if (!source.path.empty()) {
    const std::string p = source.path;
    if (p.ends_with(".blif")) return "blif";
    if (p.ends_with(".pla")) return "pla";
    if (p.ends_with(".v") || p.ends_with(".verilog")) return "verilog";
    throw parse_error("cannot infer netlist format of " + p +
                      " (expected .blif, .pla, .v, or .verilog)");
  }
  return "blif";
}

[[nodiscard]] frontend::network load_network(const netlist_source& source) {
  if (source.path.empty() == source.text.empty())
    throw error("netlist_source needs exactly one of `path` or `text`");
  const std::string format = resolve_format(source);
  const auto parse = [&](std::istream& is) {
    if (format == "blif") return frontend::parse_blif(is);
    if (format == "pla") return frontend::parse_pla(is);
    return frontend::parse_verilog(is);
  };
  if (!source.path.empty()) {
    std::ifstream file(source.path);
    if (!file) throw parse_error("cannot open " + source.path);
    return parse(file);
  }
  std::istringstream text(source.text);
  return parse(text);
}

[[nodiscard]] std::vector<std::string> input_names(
    const frontend::network& net) {
  std::vector<std::string> names;
  for (int i : net.inputs()) names.push_back(net.node(i).name);
  return names;
}

[[nodiscard]] frontend::order_effort parse_order(const std::string& name) {
  if (name == "none") return frontend::order_effort::none;
  if (name == "sift") return frontend::order_effort::sift;
  if (name == "exhaustive") return frontend::order_effort::exhaustive;
  throw error("unknown variable_order '" + name +
              "' (expected none, sift, or exhaustive)");
}

[[nodiscard]] diagnostic_v1 to_diagnostic(const verify::diagnostic& d) {
  diagnostic_v1 out;
  out.check = d.check_id;
  out.severity = verify::severity_name(d.level);
  out.message = d.message;
  out.fix = d.fix;
  for (const verify::entity& e : d.anchors)
    out.anchors.push_back(verify::to_string(e));
  return out;
}

[[nodiscard]] lint_outcome to_lint_outcome(const verify::report& r) {
  lint_outcome out;
  out.checks_run = r.checks_run();
  out.errors = r.error_count();
  out.warnings = r.warning_count();
  out.notes = r.note_count();
  for (const verify::diagnostic& d : r.diagnostics())
    out.diagnostics.push_back(to_diagnostic(d));
  return out;
}

/// Shared tail of both lint() overloads: install the optional electrical /
/// criticality engines on the artifact bundle, analyze, and lift the engine
/// summaries into the versioned outcome.
[[nodiscard]] lint_outcome run_lint(verify::artifacts& artifacts,
                                    const lint_options_v1& options) {
  verify::analyzer_options analyzer_options;
  analyzer_options.equivalence = options.equivalence;

  verify::electrical_options electrical;
  if (options.electrical) {
    if (options.margin_threshold <= 0.0)
      throw error("margin_threshold must be positive");
    electrical.margin_threshold = options.margin_threshold;
    artifacts.electrical = &electrical;
  }
  verify::criticality_options criticality;
  if (options.criticality) {
    if (options.criticality_limit < 0)
      throw error("criticality_limit must be >= 0 (0 = exhaustive)");
    criticality.max_faults = options.criticality_limit;
    artifacts.criticality = &criticality;
  }
  verify::analysis_cache cache;
  artifacts.cache = &cache;

  lint_outcome out = to_lint_outcome(verify::analyze(artifacts,
                                                     analyzer_options));
  if (cache.electrical.has_value()) {
    out.electrical_ran = true;
    out.electrically_safe = cache.electrical->safe;
    out.min_margin_ratio = cache.electrical->min_margin_ratio;
  }
  if (cache.criticality.has_value()) {
    out.criticality_ran = true;
    out.junctions_analyzed = cache.criticality->junction_count;
    out.critical_junctions = cache.criticality->critical_count;
    out.criticality_truncated = cache.criticality->truncated;
  }
  return out;
}

/// Translate the versioned plain-struct knobs into the internal options.
[[nodiscard]] core::synthesis_options to_core_options(
    const synthesis_options_v1& options) {
  if (!(options.gamma >= 0.0 && options.gamma <= 1.0))
    throw error("gamma must lie in [0, 1]");
  if (options.time_limit_seconds <= 0.0)
    throw error("time_limit_seconds must be positive");
  if (options.threads < 1) throw error("threads must be >= 1");
  if (options.max_rows < 0 || options.max_columns < 0)
    throw error("max_rows / max_columns must be >= 0 (0 = unbounded)");

  core::synthesis_options core;
  if (options.labeler == "oct")
    core.method = core::labeling_method::minimal_semiperimeter;
  else if (options.labeler == "mip")
    core.method = core::labeling_method::weighted_mip;
  else
    core.labeler = options.labeler;  // registry dispatch by name
  core.gamma = options.gamma;
  core.alignment = options.alignment;
  core.time_limit_seconds = options.time_limit_seconds;
  core.parallel.threads = options.threads;
  if (options.max_rows > 0) core.max_rows = options.max_rows;
  if (options.max_columns > 0) core.max_columns = options.max_columns;
  core.oct_reduction = options.kernelize;
  core.partition = options.partition;
  if (options.deadline_seconds < 0.0)
    throw error("deadline_seconds must be >= 0 (0 = unlimited)");
  core.memory_limit_bytes = options.memory_limit_bytes;
  core.deadline_seconds = options.deadline_seconds;
  return core;
}

[[nodiscard]] synthesis_stats_v1 to_stats(const core::synthesis_stats& s) {
  synthesis_stats_v1 out;
  out.graph_nodes = s.graph_nodes;
  out.vh_count = s.vh_count;
  out.rows = s.rows;
  out.columns = s.columns;
  out.semiperimeter = s.semiperimeter;
  out.max_dimension = s.max_dimension;
  out.area = s.area;
  out.power_proxy = s.power_proxy;
  out.delay_steps = s.delay_steps;
  out.optimal = s.optimal;
  out.relative_gap = s.relative_gap;
  out.synthesis_seconds = s.synthesis_seconds;
  out.arrays = s.arrays;
  out.cut_edges = s.cut_edges;
  out.bridge_connections = s.bridges;
  out.total_semiperimeter = s.semiperimeter;
  return out;
}

}  // namespace

int api_version() { return COMPACT_API_VERSION; }

// ---------------------------------------------------------------------------
// design

struct design::impl {
  xbar::crossbar mapped{1, 1};
  /// Set for multi-array designs; `mapped` is then unused. Single-array
  /// designs (including degenerate partitions) always live in `mapped` so
  /// their serialization stays byte-identical to version 1.
  std::optional<xbar::partitioned_design> partitioned;
  std::vector<std::string> variable_names;
};

design::design() : impl_(std::make_unique<impl>()) {}
design::design(const design& other)
    : impl_(std::make_unique<impl>(*other.impl_)) {}
design::design(design&& other) noexcept = default;
design& design::operator=(const design& other) {
  impl_ = std::make_unique<impl>(*other.impl_);
  return *this;
}
design& design::operator=(design&& other) noexcept = default;
design::~design() = default;

int design::rows() const {
  return impl_->partitioned ? impl_->partitioned->max_fragment_rows()
                            : impl_->mapped.rows();
}
int design::columns() const {
  return impl_->partitioned ? impl_->partitioned->max_fragment_columns()
                            : impl_->mapped.columns();
}
int design::array_count() const {
  return impl_->partitioned ? impl_->partitioned->array_count() : 1;
}

std::vector<std::string> design::output_names() const {
  if (impl_->partitioned) return impl_->partitioned->output_names();
  std::vector<std::string> names;
  for (const xbar::output_port& o : impl_->mapped.outputs())
    names.push_back(o.name);
  for (const auto& [name, value] : impl_->mapped.constant_outputs()) {
    (void)value;
    names.push_back(name);
  }
  return names;
}

std::string design::to_text() const {
  std::ostringstream os;
  if (impl_->partitioned)
    xbar::write_partitioned_design(*impl_->partitioned, os,
                                   impl_->variable_names);
  else
    xbar::write_design(impl_->mapped, os, impl_->variable_names);
  return os.str();
}

design design::from_text(const std::string& text) {
  return translated([&] {
    std::istringstream is(text);
    xbar::loaded_partitioned_design loaded = xbar::read_partitioned_design(is);
    design d;
    d.impl_->variable_names = loaded.variable_names;
    // A one-array document with no bridges is a plain design; keep it in the
    // single-array representation so it round-trips as version 1.
    if (loaded.design.array_count() == 1 && loaded.design.connections().empty())
      d.impl_->mapped = std::move(loaded.design.fragment(0));
    else
      d.impl_->partitioned = std::move(loaded.design);
    return d;
  });
}

std::string design::render() const {
  std::ostringstream os;
  if (impl_->partitioned)
    impl_->partitioned->print(os, impl_->variable_names);
  else
    impl_->mapped.print(os, impl_->variable_names);
  return os.str();
}

std::vector<bool> design::evaluate(const std::vector<bool>& assignment) const {
  return translated([&] {
    return impl_->partitioned ? xbar::evaluate(*impl_->partitioned, assignment)
                              : xbar::evaluate(impl_->mapped, assignment);
  });
}

bool design::evaluate_output(const std::vector<bool>& assignment,
                             const std::string& output_name) const {
  return translated([&] {
    return impl_->partitioned
               ? xbar::evaluate_output(*impl_->partitioned, assignment,
                                       output_name)
               : xbar::evaluate_output(impl_->mapped, assignment, output_name);
  });
}

// ---------------------------------------------------------------------------
// synthesize

namespace {

synthesis_outcome synthesize_impl(const netlist_source& source,
                                  const synthesis_options_v1& options,
                                  const dispatch_caches& caches) {
  return translated([&]() -> synthesis_outcome {
    if (options.partition && options.separate_robdds)
      throw error(
          "partition and separate_robdds are mutually exclusive (the "
          "separate-ROBDD flow already composes one block per output)");
    core::synthesis_options core = to_core_options(options);
    // A service injects its process-wide caches here; null members keep the
    // core's private per-call caching.
    core.cache = caches.label;
    core.partition_memo = caches.partition;

    frontend::network net = load_network(source);
    if (options.minimize_network) net = frontend::minimize_network(net);

    // The separate-ROBDD flow builds per-output BDDs internally under the
    // declaration order; a permuted order would desynchronize validation.
    frontend::order_effort order = parse_order(options.variable_order);
    if (options.separate_robdds) order = frontend::order_effort::none;
    const std::vector<int> variable_order =
        frontend::optimize_order(net, order);
    bdd::manager m(net.input_count());
    const frontend::sbdd built = frontend::build_sbdd(net, m, variable_order);

    // The sink must outlive synthesis; one JSON object per pipeline stage.
    std::ofstream trace_file;
    std::optional<json_lines_sink> trace_sink;
    if (!options.trace_json_path.empty()) {
      trace_file.open(options.trace_json_path);
      if (!trace_file)
        throw compact::error("cannot write " + options.trace_json_path);
      trace_sink.emplace(trace_file);
      core.telemetry = &*trace_sink;
    }
    if (options.verify) {
      // The pass body lives in the verify library; installing explicitly
      // keeps this working even if no other verify symbol is referenced.
      // once: installation writes a global slot, and a service fans
      // concurrent requests out across threads.
      static std::once_flag installed;
      std::call_once(installed, [] { verify::install_pipeline_pass(); });
      core.verify_design = true;
    }

    // Multi-array flow: partition the SBDD under the budgets, synthesize
    // every fragment, stitch via bridges. A plan of one fragment falls back
    // to the canonical pipeline, so the design matches an unpartitioned run.
    if (options.partition) {
      core::partitioned_synthesis_result result =
          core::synthesize_partitioned(m, built.roots, built.names, core);

      synthesis_outcome outcome;
      outcome.stats = to_stats(result.stats);
      if (result.verification.has_value()) {
        const verify::report& r = *result.verification;
        outcome.verification.ran = true;
        outcome.verification.passed = r.clean();
        outcome.verification.detail =
            std::to_string(r.error_count()) + " error(s), " +
            std::to_string(r.warning_count()) + " warning(s), " +
            std::to_string(r.note_count()) + " note(s); " +
            std::to_string(r.checks_run().size()) + " checks run";
        for (const verify::diagnostic& d : r.diagnostics())
          outcome.diagnostics.push_back(to_diagnostic(d));
      }
      if (options.validate) {
        xbar::validation_options validation_options;
        validation_options.parallel = core.parallel;
        const xbar::validation_report report = xbar::validate_against_bdd(
            result.design, m, built.roots, built.names, net.input_count(),
            validation_options);
        outcome.validation.ran = true;
        outcome.validation.passed = report.valid;
        outcome.validation.detail =
            report.valid
                ? std::to_string(report.checked_assignments) +
                      " assignments (" +
                      (report.exhaustive ? "exhaustive" : "sampled") + ")"
                : report.first_failure;
      }
      if (!variable_order.empty()) {
        bool identity = true;
        for (std::size_t l = 0; l < variable_order.size(); ++l)
          if (variable_order[l] != static_cast<int>(l)) identity = false;
        if (!identity)
          result.design = xbar::remap_variables(result.design, variable_order);
      }
      if (result.design.array_count() == 1 &&
          result.design.connections().empty())
        outcome.mapped.internals().mapped =
            std::move(result.design.fragment(0));
      else
        outcome.mapped.internals().partitioned = std::move(result.design);
      outcome.mapped.internals().variable_names = input_names(net);
      return outcome;
    }

    // The manager is owned by this call and only `built.roots` is read
    // afterwards (validation, remapping), so the GC entry point is safe:
    // stage-boundary sweeps free the SBDD build's intermediates.
    core::synthesis_result result =
        options.separate_robdds
            ? core::synthesize_separate_robdds(net, core)
            : core::synthesize_gc(m, built.roots, built.names, core);

    synthesis_outcome outcome;
    outcome.stats = to_stats(result.stats);

    if (result.verification.has_value()) {
      const verify::report& r = *result.verification;
      outcome.verification.ran = true;
      outcome.verification.passed = r.clean();
      outcome.verification.detail =
          std::to_string(r.error_count()) + " error(s), " +
          std::to_string(r.warning_count()) + " warning(s), " +
          std::to_string(r.note_count()) + " note(s); " +
          std::to_string(r.checks_run().size()) + " checks run";
      for (const verify::diagnostic& d : r.diagnostics())
        outcome.diagnostics.push_back(to_diagnostic(d));
    }

    if (options.validate) {
      // Validation runs in BDD-variable space (the space the design was
      // synthesized in), before any remapping.
      xbar::validation_options validation_options;
      validation_options.parallel = core.parallel;
      const xbar::validation_report report = xbar::validate_against_bdd(
          result.design, m, built.roots, built.names, net.input_count(),
          validation_options);
      outcome.validation.ran = true;
      outcome.validation.passed = report.valid;
      outcome.validation.detail =
          report.valid
              ? std::to_string(report.checked_assignments) + " assignments (" +
                    (report.exhaustive ? "exhaustive" : "sampled") + ")"
              : report.first_failure;
    }

    // Express device literals in declared-input numbering so evaluate()
    // assignments read naturally (level l tested input variable_order[l]).
    if (!options.separate_robdds && !variable_order.empty()) {
      bool identity = true;
      for (std::size_t l = 0; l < variable_order.size(); ++l)
        if (variable_order[l] != static_cast<int>(l)) identity = false;
      if (!identity)
        result.design = xbar::remap_variables(result.design, variable_order);
    }

    outcome.mapped.internals().mapped = std::move(result.design);
    outcome.mapped.internals().variable_names = input_names(net);
    return outcome;
  });
}

/// Fold a request-level deadline into the synthesis knobs: the solver's
/// effort budget (time_limit_seconds) can never exceed the deadline, and the
/// run-abort watchdog (deadline_seconds) is armed with the tighter of the
/// two. Deadline 0 leaves the options untouched.
synthesis_options_v1 with_deadline(synthesis_options_v1 options,
                                   double deadline_seconds) {
  if (deadline_seconds > 0.0) {
    options.time_limit_seconds =
        std::min(options.time_limit_seconds, deadline_seconds);
    options.deadline_seconds =
        options.deadline_seconds > 0.0
            ? std::min(options.deadline_seconds, deadline_seconds)
            : deadline_seconds;
  }
  return options;
}

}  // namespace

synthesis_outcome dispatch_synthesize(const request_v1& request,
                                      const dispatch_caches& caches) {
  const synthesis_options_v1 options =
      with_deadline(request.synthesis, request.deadline_seconds);
  // Arm the flight recorder before any work so the postmortem captures the
  // whole run; dump on any failure, then let the exception propagate (the
  // translated() wrapper inside synthesize_impl has already mapped it into
  // the api:: hierarchy).
  if (!options.flight_record_path.empty())
    compact::set_flight_record_path(options.flight_record_path);
  try {
    return synthesize_impl(request.source, options, caches);
  } catch (const std::exception& e) {
    if (!options.flight_record_path.empty())
      compact::dump_flight_postmortem(std::string("api.synthesize failed: ") +
                                      e.what());
    throw;
  }
}

// The deprecated v4 entry points are thin shims that construct a request_v1
// and dispatch it — one execution path for old and new callers. Their
// definitions reference their own deprecated declarations, hence the pragma.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
synthesis_outcome synthesize(const netlist_source& source,
                             const synthesis_options_v1& options) {
  request_v1 request;
  request.op = "synthesize";
  request.source = source;
  request.synthesis = options;
  return dispatch_synthesize(request, {});
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

// ---------------------------------------------------------------------------
// lint

bool lint_outcome::clean(const std::string& fail_on) const {
  const std::optional<verify::severity> floor =
      verify::parse_severity(fail_on);
  if (!floor)
    throw error("unknown fail_on severity '" + fail_on +
                "' (expected note, warning, or error)");
  switch (*floor) {
    case verify::severity::note:
      return notes + warnings + errors == 0;
    case verify::severity::warning:
      return warnings + errors == 0;
    case verify::severity::error:
      return errors == 0;
  }
  return errors == 0;
}

namespace {

/// Lint a netlist end-to-end: synthesize it through the pipeline and keep
/// every intermediate stage for the checks (labeling, mapping, structural,
/// equivalence).
lint_outcome lint_source_impl(const netlist_source& source,
                              const lint_options_v1& options,
                              const dispatch_caches& caches) {
  return translated([&]() -> lint_outcome {
    synthesis_options_v1 synth;
    synth.labeler = options.labeler;
    synth.gamma = options.gamma;
    synth.time_limit_seconds = options.time_limit_seconds;
    synth.threads = options.threads;
    core::synthesis_options core = to_core_options(synth);
    core.cache = caches.label;
    core.partition_memo = caches.partition;

    const frontend::network net = load_network(source);
    bdd::manager m(net.input_count());
    const frontend::sbdd built = frontend::build_sbdd(net, m);

    core::synthesis_context ctx;
    ctx.manager = &m;
    ctx.roots = &built.roots;
    ctx.names = &built.names;
    ctx.options = core;
    ctx.cache = core.cache;
    const core::pipeline pipeline = core::make_synthesis_pipeline(ctx.options);
    pipeline.run(ctx);

    verify::artifacts artifacts = verify::make_artifacts(ctx);
    artifacts.spec = &m;
    artifacts.spec_roots = &built.roots;
    artifacts.spec_names = &built.names;
    artifacts.variable_count = net.input_count();

    return run_lint(artifacts, options);
  });
}

/// Lint an existing design against the netlist it claims to implement.
lint_outcome lint_design_impl(const design& d, const netlist_source& source,
                              const lint_options_v1& options) {
  return translated([&]() -> lint_outcome {
    const frontend::network net = load_network(source);
    bdd::manager m(net.input_count());
    const frontend::sbdd built = frontend::build_sbdd(net, m);

    verify::artifacts artifacts;
    if (d.internals().partitioned)
      artifacts.partitioned = &*d.internals().partitioned;
    else
      artifacts.design = &d.internals().mapped;
    artifacts.spec = &m;
    artifacts.spec_roots = &built.roots;
    artifacts.spec_names = &built.names;
    artifacts.variable_count = net.input_count();

    return run_lint(artifacts, options);
  });
}

}  // namespace

lint_outcome dispatch_lint(const request_v1& request,
                           const dispatch_caches& caches) {
  lint_options_v1 options = request.lint;
  // Request deadlines cap the solver budget and arm the abort watchdog for
  // the duration of the dispatch (the lint pipeline has no scope of its
  // own; outermost-wins semantics make this safe under nesting).
  std::optional<resource_limit_scope> watchdog;
  if (request.deadline_seconds > 0.0) {
    options.time_limit_seconds =
        std::min(options.time_limit_seconds, request.deadline_seconds);
    resource_limits limits;
    limits.deadline_seconds = request.deadline_seconds;
    watchdog.emplace(limits);
  }
  if (!request.design_text.empty())
    return lint_design_impl(design::from_text(request.design_text),
                            request.source, options);
  return lint_source_impl(request.source, options, caches);
}

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
lint_outcome lint(const netlist_source& source,
                  const lint_options_v1& options) {
  request_v1 request;
  request.op = "lint";
  request.source = source;
  request.lint = options;
  return dispatch_lint(request, {});
}

lint_outcome lint(const design& d, const netlist_source& source,
                  const lint_options_v1& options) {
  return lint_design_impl(d, source, options);
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace compact::api
