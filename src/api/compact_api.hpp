// compact::api — the stable public facade of the COMPACT library.
//
// Everything an embedding application needs lives in this one header:
// describe a Boolean function (a netlist file or inline text), synthesize a
// flow-based crossbar design, inspect / serialize / evaluate the result, and
// run the static design analyzer. The facade is deliberately narrow and
// versioned:
//
//   * plain-struct options — every knob is a value type with a default; new
//     knobs are only ever appended, so client code compiled against version
//     N keeps compiling against version N+1.
//   * an opaque `design` handle — internal representation changes never leak
//     into client builds (the header includes only the standard library).
//   * COMPACT_API_VERSION / api_version() — the macro is the version this
//     header was shipped with, the function is the version the linked
//     library implements; compare them to catch header/library skew.
//
// The internal subsystem headers (core/, xbar/, milp/, ...) remain available
// but are *transitional* for external consumers: they may change between
// versions without notice (see DESIGN.md). New integrations should include
// only this header and link compact::all.
//
// Quickstart (facade v5 — every operation is a request):
//
//   compact::api::request_v1 req;
//   req.id = "r1";
//   req.op = "synthesize";
//   req.source.text = "...BLIF text...";       // or req.source.path = "..."
//   req.synthesis.labeler = "mip";
//   req.synthesis.gamma = 0.5;
//   const compact::api::response_v1 resp = compact::api::handle(req);
//   if (resp.ok) std::cout << resp.design_text;
//   else std::cerr << compact::api::error_code_name(resp.code) << ": "
//                  << resp.error_message << "\n";
//
// Long-running embedders (compact-serve, sweep harnesses) construct one
// `service` and call service::handle() from any number of threads: requests
// then share the process-wide labeling/partition caches with bounded memory.
// The request/response pair serializes to JSON-lines (to_json /
// request_from_json / response_from_json) — the same schema the daemon
// speaks on its socket.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

/// Version of the facade this header describes. Bumped whenever a public
/// struct gains a field or a function changes meaning; see api_version().
/// Version 2 added partitioned (multi-array) synthesis: the `partition`
/// option, the multi-array fields of synthesis_stats_v1, and
/// design::array_count().
/// Version 3 added resource budgets and failure observability: the
/// `memory_limit_bytes` / `deadline_seconds` / `flight_record_path` options
/// and the resource_limit_error exception.
/// Version 4 added electrical & fault-criticality static analysis: the
/// `electrical` / `margin_threshold` / `criticality` / `criticality_limit`
/// lint options and the margin / criticality summary fields of
/// lint_outcome.
/// Version 5 redesigned the entry points around request_v1 / response_v1
/// (op = synthesize | lint | evaluate, structured error_code_v1 taxonomy,
/// JSON-lines serialization), added the `service` handle with shared
/// bounded-memory caches, and deprecated the loose synthesize()/lint()
/// functions in favor of thin shims over handle().
#define COMPACT_API_VERSION 5

namespace compact::api {

/// Facade version implemented by the linked library. A mismatch with
/// COMPACT_API_VERSION means the header and the library come from different
/// checkouts.
[[nodiscard]] int api_version();

// ---------------------------------------------------------------------------
// Errors

/// Base class of every exception the facade throws.
class error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A netlist or design could not be read or parsed.
class parse_error : public error {
 public:
  using error::error;
};

/// The requested constraints (row/column budgets) admit no design.
class infeasible_error : public error {
 public:
  using error::error;
};

/// A resource budget (synthesis_options_v1::memory_limit_bytes or
/// deadline_seconds) was exceeded. The run fails with a structured error
/// instead of letting the process OOM or silently overrun its deadline;
/// limit_kind() names the budget that tripped.
class resource_limit_error : public error {
 public:
  enum class kind { memory, deadline };
  resource_limit_error(kind which, const std::string& message)
      : error(message), kind_(which) {}
  [[nodiscard]] kind limit_kind() const { return kind_; }
  /// "memory" or "deadline" — stable strings for logs and exit paths.
  [[nodiscard]] const char* kind_name() const {
    return kind_ == kind::memory ? "memory" : "deadline";
  }

 private:
  kind kind_;
};

// ---------------------------------------------------------------------------
// Inputs

/// A Boolean-function specification. Exactly one of `path` / `text` must be
/// set. Formats: "blif", "pla", "verilog"; empty means infer from the path
/// extension (.blif / .pla / .v / .verilog), or "blif" for inline text.
struct netlist_source {
  std::string path;
  std::string text;
  std::string format;
};

/// Synthesis knobs, version 1. Plain values only; the defaults reproduce the
/// paper's headline configuration (weighted MIP, gamma = 0.5).
struct synthesis_options_v1 {
  /// Labeling strategy: "oct" (Method 1, minimal semiperimeter), "mip"
  /// (Method 2, weighted objective), or any name registered with the
  /// labeler registry.
  std::string labeler = "mip";
  /// Weight of the semiperimeter vs. the max dimension in Method 2's
  /// objective gamma*S + (1-gamma)*D. Must lie in [0, 1].
  double gamma = 0.5;
  /// Run the alignment post-pass after labeling.
  bool alignment = true;
  /// Wall-clock budget for the labeling solver, in seconds.
  double time_limit_seconds = 60.0;
  /// Worker threads for the parallel stages (solver branch-and-bound,
  /// per-output fan-out, validation). Results are bit-identical for any
  /// value; 1 is fully serial.
  int threads = 1;
  /// Hard crossbar budgets; 0 = unbounded. Every labeler honors them: the
  /// "mip" labeler enforces them inside the solver, and the map stage
  /// re-checks the mapped design for all labelers — synthesize() throws
  /// infeasible_error naming the overflow dimension when no design fits
  /// (unless `partition` below is set).
  int max_rows = 0;
  int max_columns = 0;
  /// Split designs that exceed the budgets across multiple crossbar arrays
  /// joined by bridge connections instead of failing. The outcome's design
  /// then reports array_count() > 1 and serializes in the multi-array
  /// `xbar 2` format; without budgets (or when one array suffices) the
  /// design is identical to an unpartitioned run's. Incompatible with
  /// separate_robdds.
  bool partition = false;
  /// Map one ROBDD per output and compose along the diagonal (the prior
  /// multi-output strategy) instead of one shared SBDD.
  bool separate_robdds = false;
  /// Two-level minimize the network before building BDDs.
  bool minimize_network = false;
  /// BDD variable-order effort: "none", "sift", or "exhaustive". Ignored
  /// (forced to "none") when separate_robdds is set.
  std::string variable_order = "none";
  /// Kernelize OCT instances (strip bipartite components, eliminate
  /// degree-<=2 vertices) before the exact solvers run. Lossless; disable
  /// only to A/B the reductions.
  bool kernelize = true;
  /// Check the design against the source BDDs (exhaustive or sampled) and
  /// record the verdict in synthesis_outcome::validation.
  bool validate = false;
  /// Run the static analyzer as a pipeline pass and record its diagnostics
  /// in synthesis_outcome::diagnostics / verification.
  bool verify = false;
  /// When non-empty, write per-stage telemetry as JSON lines to this path.
  std::string trace_json_path;
  /// Hard byte budget for the run's accounted memory (the BDD arena and
  /// tables, labeling/partition caches, solver pools); 0 = unlimited. The
  /// watchdog samples at stage/round boundaries, sheds caches past ~85% of
  /// the budget, and throws resource_limit_error (kind memory) on a breach.
  /// Observation only: the synthesized design is bit-identical with or
  /// without a (non-tripping) budget. Appended in version 3.
  std::uint64_t memory_limit_bytes = 0;
  /// Hard wall-clock budget for the whole run, in seconds; 0 = unlimited.
  /// Unlike time_limit_seconds (a solver effort knob that degrades to the
  /// best incumbent), hitting the deadline aborts the run with
  /// resource_limit_error (kind deadline). Appended in version 3.
  double deadline_seconds = 0.0;
  /// When non-empty, enable the failure flight recorder and, if synthesis
  /// throws, write a postmortem JSON artifact (recent events, memory
  /// accounts, metrics, active spans) to this path before the exception
  /// propagates. Appended in version 3.
  std::string flight_record_path;
};

// ---------------------------------------------------------------------------
// The design handle

/// A synthesized crossbar design. Opaque value type: copyable, movable,
/// serializable; the memristor-level representation stays internal.
class design {
 public:
  design();
  design(const design& other);
  design(design&& other) noexcept;
  design& operator=(const design& other);
  design& operator=(design&& other) noexcept;
  ~design();

  /// Crossbar dimensions (wordlines x bitlines). For a multi-array design
  /// these are the largest fragment's dimensions.
  [[nodiscard]] int rows() const;
  [[nodiscard]] int columns() const;
  /// Number of crossbar arrays (1 for a single-array design).
  [[nodiscard]] int array_count() const;
  /// Output names in evaluation order (function outputs, then constants).
  [[nodiscard]] std::vector<std::string> output_names() const;

  /// Serialize to the textual `.xbar` format (round-trips via from_text).
  /// Single-array designs write format version 1; multi-array designs write
  /// the `xbar 2` multi-array format.
  [[nodiscard]] std::string to_text() const;
  /// Parse a `.xbar` document (format version 1 or 2); throws parse_error
  /// on malformed input.
  [[nodiscard]] static design from_text(const std::string& text);
  /// Human-readable grid rendering (for terminals and logs).
  [[nodiscard]] std::string render() const;

  /// Program every device from `assignment` (declared-input order) and sense
  /// all outputs, in output_names() order.
  [[nodiscard]] std::vector<bool> evaluate(
      const std::vector<bool>& assignment) const;
  /// Single output by name.
  [[nodiscard]] bool evaluate_output(const std::vector<bool>& assignment,
                                     const std::string& output_name) const;

  /// Internal bridge for first-party tools (the CLI); NOT part of the
  /// stable facade — its layout may change between versions.
  struct impl;
  [[nodiscard]] const impl& internals() const { return *impl_; }
  [[nodiscard]] impl& internals() { return *impl_; }

 private:
  std::unique_ptr<impl> impl_;
};

// ---------------------------------------------------------------------------
// Outcomes

/// Size and quality measures of a synthesized design (Table 4 columns).
struct synthesis_stats_v1 {
  std::size_t graph_nodes = 0;  // n: BDD nodes after 0-terminal removal
  int vh_count = 0;             // k: nodes labeled VH
  int rows = 0;
  int columns = 0;
  int semiperimeter = 0;        // S = n + k
  int max_dimension = 0;        // D = max(rows, columns)
  long long area = 0;
  int power_proxy = 0;          // active (literal-carrying) memristors
  int delay_steps = 0;          // rows + 1
  bool optimal = false;         // labeling proven optimal within the budget
  double relative_gap = 0.0;    // solver gap at termination
  double synthesis_seconds = 0.0;
  /// Multi-array accounting (1 / 0 / 0 / semiperimeter for single-array
  /// designs). For partitioned designs rows/columns above are the largest
  /// fragment's and total_semiperimeter sums every fragment's.
  int arrays = 1;
  int cut_edges = 0;           // SBDD edges crossing fragment boundaries
  int bridge_connections = 0;  // inter-array net welds
  int total_semiperimeter = 0;
};

/// Verdict of an optional post-synthesis check.
struct check_result_v1 {
  bool ran = false;
  bool passed = false;
  std::string detail;  // failure description / summary counts
};

/// One analyzer finding.
struct diagnostic_v1 {
  std::string check;     // registry ID, e.g. "XBR003"
  std::string severity;  // "note" | "warning" | "error"
  std::string message;
  std::string fix;       // suggested remedy; may be empty
  /// Human-readable locations (devices, nodes, outputs) the finding anchors
  /// to; may be empty.
  std::vector<std::string> anchors;
};

struct synthesis_outcome {
  design mapped;
  synthesis_stats_v1 stats;
  /// Digital validity check (options.validate).
  check_result_v1 validation;
  /// Static-analyzer verdict (options.verify); findings in `diagnostics`.
  check_result_v1 verification;
  std::vector<diagnostic_v1> diagnostics;
};

/// Parse + BDD-build + synthesis in one call. Throws parse_error on bad
/// input, infeasible_error when budgets admit no design, error otherwise.
///
/// Deprecated in v5: a thin shim that constructs a request_v1 (op =
/// "synthesize") and dispatches it; exceptions and the returned outcome are
/// unchanged. Migrate to handle() / service::handle(), which add the
/// structured error taxonomy, deadlines, and shared caches — see
/// docs/serving.md for the v4 -> v5 migration table.
[[deprecated(
    "construct a request_v1 (op = \"synthesize\") and call "
    "compact::api::handle(); see docs/serving.md")]] [[nodiscard]]
synthesis_outcome synthesize(const netlist_source& source,
                             const synthesis_options_v1& options = {});

// ---------------------------------------------------------------------------
// Lint

struct lint_options_v1 {
  /// Synthesis knobs used when linting a netlist (the full pipeline runs so
  /// labeling / mapping / equivalence checks all apply).
  std::string labeler = "mip";
  double gamma = 0.5;
  double time_limit_seconds = 60.0;
  int threads = 1;
  /// Run the symbolic-equivalence check family (the expensive one).
  bool equivalence = true;
  /// Run the ELCxxx electrical-integrity family: static worst-case ON-path
  /// vs. best-case sneak-path resistance bounds over the conduction graph,
  /// flagging outputs whose sensing margin falls below margin_threshold.
  /// Appended in version 4.
  bool electrical = false;
  /// Minimum acceptable static margin ratio (best-case OFF resistance over
  /// worst-case ON resistance) before ELC001 fires. Ratios below 1.0
  /// escalate to errors. Only read when `electrical` is set. Appended in
  /// version 4.
  double margin_threshold = 10.0;
  /// Run the FLTxxx fault-criticality family: decide symbolically, per
  /// junction, whether a stuck-open / stuck-closed defect can flip any
  /// output. Requires `equivalence` (the family shares its cost class).
  /// Appended in version 4.
  bool criticality = false;
  /// Cap on analyzed faults for the criticality family; 0 = exhaustive.
  /// Truncated runs are reported as such, never silently. Appended in
  /// version 4.
  int criticality_limit = 0;
};

struct lint_outcome {
  std::vector<diagnostic_v1> diagnostics;
  std::vector<std::string> checks_run;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
  /// Electrical summary (meaningful when options.electrical was set and
  /// `electrical_ran` is true): the smallest static margin ratio across
  /// sensed outputs and whether every output met the threshold. Appended
  /// in version 4.
  bool electrical_ran = false;
  bool electrically_safe = false;
  double min_margin_ratio = 0.0;
  /// Fault-criticality summary (meaningful when options.criticality was
  /// set and `criticality_ran` is true). `critical_junctions` counts
  /// single-point-of-failure devices; `criticality_truncated` reports a
  /// fault budget cut the sweep short. Appended in version 4.
  bool criticality_ran = false;
  int junctions_analyzed = 0;
  int critical_junctions = 0;
  bool criticality_truncated = false;
  /// True when no diagnostic at or above `fail_on` severity was reported.
  /// fail_on is "note", "warning" (default), or "error".
  [[nodiscard]] bool clean(const std::string& fail_on = "warning") const;
};

/// Synthesize `source` and run every applicable static check on the
/// intermediate artifacts (never simulating a single input vector).
///
/// Deprecated in v5: a shim over a request_v1 with op = "lint"; migrate to
/// handle() / service::handle() (see docs/serving.md).
[[deprecated(
    "construct a request_v1 (op = \"lint\") and call compact::api::handle(); "
    "see docs/serving.md")]] [[nodiscard]]
lint_outcome lint(const netlist_source& source,
                  const lint_options_v1& options = {});

/// Check an existing design against the netlist it claims to implement
/// (structural checks + symbolic equivalence).
///
/// Deprecated in v5: set request_v1::design_text alongside the source in an
/// op = "lint" request instead (see docs/serving.md).
[[deprecated(
    "construct a request_v1 (op = \"lint\", design_text set) and call "
    "compact::api::handle(); see docs/serving.md")]] [[nodiscard]]
lint_outcome lint(const design& d, const netlist_source& source,
                  const lint_options_v1& options = {});

// ---------------------------------------------------------------------------
// Facade v5 — requests and responses
//
// Every operation the library offers is expressible as one request_v1 value:
// the CLI, the compact-serve daemon, and out-of-tree embedders all speak
// this schema, in-process (handle / service::handle) or as JSON-lines over a
// pipe or socket (to_json / request_from_json). Responses never throw —
// failures come back as a structured error code plus a human-readable
// message, so a batch of thousands of requests degrades per-request instead
// of aborting the batch.

/// Structured failure taxonomy. Stable wire names via error_code_name().
enum class error_code_v1 {
  none = 0,          ///< success
  invalid_request,   ///< malformed request: bad op, bad option value, ...
  parse,             ///< netlist / design text could not be parsed
  infeasible,        ///< budgets admit no design
  resource_limit,    ///< memory budget exceeded (watchdog)
  deadline_exceeded, ///< deadline passed (watchdog abort or queue shed)
  overload,          ///< admission control rejected the request (queue full)
  version_mismatch,  ///< request_v1::api_version != the library's version
  internal,          ///< unexpected library failure
};

/// Stable lowercase wire name ("none", "invalid_request", ...).
[[nodiscard]] const char* error_code_name(error_code_v1 code);
/// Inverse of error_code_name; nullopt for unknown names.
[[nodiscard]] std::optional<error_code_v1> parse_error_code(
    const std::string& name);

/// One unit of work. `op` selects the operation:
///   * "synthesize" — `source` + `synthesis`; the response carries the
///     serialized design, stats, and any validation/verification verdicts.
///   * "lint"       — `source` + `lint` (+ optional `design_text` to check
///     an existing design against the netlist).
///   * "evaluate"   — `design_text` + `assignment`; the response carries the
///     sensed output bits.
struct request_v1 {
  /// Client-chosen correlation id, echoed verbatim in the response.
  std::string id;
  std::string op = "synthesize";
  /// When non-zero, the service rejects the request (version_mismatch)
  /// unless it equals the library's api_version(). Set it to
  /// COMPACT_API_VERSION to assert header/library/schema agreement across
  /// the wire; 0 skips the check.
  int api_version = 0;
  /// Netlist input for synthesize / lint.
  netlist_source source;
  /// A serialized `.xbar` document: the design to evaluate, or the design to
  /// lint against `source`.
  std::string design_text;
  /// Evaluate: one '0'/'1' per declared input, in declaration order.
  std::string assignment;
  synthesis_options_v1 synthesis;
  lint_options_v1 lint;
  /// Severity floor for response_v1::lint_clean ("note" | "warning" |
  /// "error").
  std::string fail_on = "warning";
  /// End-to-end deadline in seconds; 0 = none. Caps the solver effort knob
  /// (time_limit_seconds) and arms the run-abort watchdog
  /// (synthesis_options_v1::deadline_seconds); under a server it is also the
  /// shedding budget — a request whose queue wait alone exceeds it is
  /// answered with deadline_exceeded without running.
  double deadline_seconds = 0.0;
};

/// The answer to one request. `ok` is true exactly when `code` is none;
/// sections irrelevant to the op keep their defaults (has_stats / lint_ran
/// gate the meaningful ones).
struct response_v1 {
  std::string id;
  bool ok = false;
  error_code_v1 code = error_code_v1::internal;
  std::string error_message;
  /// Synthesize: the mapped design in `.xbar` text form (design::from_text
  /// parses it back into a handle).
  std::string design_text;
  bool has_stats = false;
  synthesis_stats_v1 stats;
  check_result_v1 validation;
  check_result_v1 verification;
  std::vector<diagnostic_v1> diagnostics;
  /// Lint summary (when lint_ran); mirrors lint_outcome including the
  /// electrical / criticality engine summaries.
  bool lint_ran = false;
  bool lint_clean = false;
  std::uint64_t lint_errors = 0;
  std::uint64_t lint_warnings = 0;
  std::uint64_t lint_notes = 0;
  bool electrical_ran = false;
  bool electrically_safe = false;
  double min_margin_ratio = 0.0;
  bool criticality_ran = false;
  int junctions_analyzed = 0;
  int critical_junctions = 0;
  bool criticality_truncated = false;
  /// Evaluate: one '0'/'1' per output, aligned with output_names.
  std::string outputs;
  std::vector<std::string> output_names;
  /// Wall seconds spent executing the request (excludes queueing).
  double service_seconds = 0.0;
  /// Wall seconds spent queued before execution (0 outside a server).
  double queue_seconds = 0.0;
};

/// Serialize to one single-line JSON object (no trailing newline) — the
/// JSON-lines wire format of compact-serve. All option fields are written
/// explicitly, so a logged line fully reproduces the run.
[[nodiscard]] std::string to_json(const request_v1& request);
[[nodiscard]] std::string to_json(const response_v1& response);

/// Parse one JSON request line. Strict: unknown fields, wrong types, and
/// malformed JSON throw parse_error (a server answers that with code
/// `parse` rather than guessing).
[[nodiscard]] request_v1 request_from_json(const std::string& text);
/// Parse one JSON response line. Lenient: unknown fields are ignored, so a
/// v5 client keeps working against servers that append response fields.
[[nodiscard]] response_v1 response_from_json(const std::string& text);

/// Cache counters exposed through service_stats_v1.
struct cache_stats_v1 {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
  std::uint64_t evictions = 0;
  std::uint64_t content_bytes = 0;
};

struct service_options_v1 {
  /// Share one labeling / partition-plan cache across every request the
  /// service handles (identical subproblems across requests then hit
  /// instead of recomputing). Designs are byte-identical either way.
  bool share_label_cache = true;
  bool share_partition_cache = true;
  /// Combined byte budget for the shared caches (split evenly across the
  /// enabled ones); 0 = unbounded. Exceeding it evicts least-recently-used
  /// entries — see cache_stats_v1::evictions.
  std::uint64_t cache_memory_limit_bytes = 0;
};

struct service_stats_v1 {
  std::uint64_t requests = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  /// Successful synthesize requests (the designs/sec numerator).
  std::uint64_t designs = 0;
  cache_stats_v1 label_cache;
  cache_stats_v1 partition_cache;
};

/// A long-lived request executor: one per process. Thread-safe — handle()
/// may be called concurrently from any number of threads; requests share
/// the service's bounded-memory labeling/partition caches. Results are
/// bit-identical to one-shot handle() calls.
class service {
 public:
  explicit service(const service_options_v1& options = {});
  ~service();
  service(const service&) = delete;
  service& operator=(const service&) = delete;

  /// Execute one request. Never throws the facade's exceptions: every
  /// failure is a response with ok = false and a structured code.
  [[nodiscard]] response_v1 handle(const request_v1& request);

  [[nodiscard]] service_stats_v1 stats() const;
  /// Drop every shared cache entry (counters reset too).
  void clear_caches();

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

/// One-shot convenience: execute `request` with private (per-call) caches.
/// Equivalent to constructing a throwaway service and handling one request.
[[nodiscard]] response_v1 handle(const request_v1& request);

}  // namespace compact::api
