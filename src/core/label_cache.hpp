// Graph-keyed memoization of VH-labelings.
//
// The NP-hard labeling stage dominates synthesis time, and the surrounding
// flows repeatedly pose *identical* subproblems: the separate-ROBDD flow
// labels one graph per output (duplicated output functions yield duplicated
// graphs), gamma sweeps re-run Method 1 as the warm start for every gamma,
// and benchmark harnesses synthesize the same circuits under several
// configurations. labeling_cache memoizes labeler results keyed by a
// canonical FNV-1a hash of everything a labeler observes: the graph
// structure (node count + edge list), the alignment-constrained vertex set,
// the labeler's registered name, and a labeler-provided "salt" encoding the
// options that affect its output. Two graphs share an entry exactly when
// they are structurally equal under the (deterministic) construction order —
// no isomorphism detection is attempted.
//
// The cache is thread-safe (the separate-ROBDD flow fans labeling out across
// pool workers) and collision-safe: the full canonical key string is stored
// alongside the digest and compared on lookup. Storage and eviction live in
// util/bounded_memo: set_capacity_bytes() caps the estimated content size
// and evicts least-recently-used entries, which compact-serve uses to share
// one process-wide cache across thousands of requests without unbounded
// growth. Eviction only turns future hits into recomputes of identical
// values — designs stay byte-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/bdd_graph.hpp"
#include "core/labeling.hpp"
#include "util/bounded_memo.hpp"

namespace compact::core {

/// A fully resolved cache key: the 64-bit digest used for bucketing plus the
/// canonical encoding used to rule out collisions.
struct label_cache_key {
  std::uint64_t digest = 0;
  std::string canonical;
};

/// Build the key for labeling `graph` with the labeler registered as
/// `labeler_name` under the option encoding `option_salt` (see
/// labeler::cache_salt). The graph contributes its node count, its edge
/// list, and its aligned vertex set — the exact inputs every labeler sees;
/// edge literals and output names do not affect labelings and are excluded.
[[nodiscard]] label_cache_key make_label_cache_key(
    const bdd_graph& graph, const std::string& labeler_name,
    const std::string& option_salt);

/// A memoized labeler outcome. Captures everything synthesis_stats needs so
/// a cache hit is observationally identical to a recompute (the MIP
/// convergence trace is the one exception: a hit emits a cache event instead
/// of replaying solver milestones).
struct cached_labeling {
  labeling l;
  bool optimal = false;
  double relative_gap = 0.0;
  std::size_t oct_size = 0;   // Method 1: VH labels before promotions
  std::size_t promoted = 0;   // Method 1: alignment promotions
};

class labeling_cache {
 public:
  /// Returns the entry stored under `key`, or nullopt. Counts a hit or miss;
  /// a hit refreshes the entry's LRU recency.
  [[nodiscard]] std::optional<cached_labeling> find(
      const label_cache_key& key) const;

  /// Store `entry` under `key`. Racing stores of the same key keep the first
  /// value; labelers are deterministic, so racing values are identical. May
  /// evict least-recently-used entries when a capacity is set.
  void store(const label_cache_key& key, cached_labeling entry);

  using counters = bounded_memo<cached_labeling>::counters;
  [[nodiscard]] counters stats() const;

  /// Cap the estimated content bytes (the mem.cache.labeling gauge value).
  /// 0 = unbounded (default). Lowering below current content evicts now.
  void set_capacity_bytes(std::uint64_t capacity);
  [[nodiscard]] std::uint64_t capacity_bytes() const;

  void clear();

  labeling_cache();
  labeling_cache(const labeling_cache&) = delete;
  labeling_cache& operator=(const labeling_cache&) = delete;

 private:
  bounded_memo<cached_labeling> memo_;
};

}  // namespace compact::core
