// Graph-keyed memoization of VH-labelings.
//
// The NP-hard labeling stage dominates synthesis time, and the surrounding
// flows repeatedly pose *identical* subproblems: the separate-ROBDD flow
// labels one graph per output (duplicated output functions yield duplicated
// graphs), gamma sweeps re-run Method 1 as the warm start for every gamma,
// and benchmark harnesses synthesize the same circuits under several
// configurations. labeling_cache memoizes labeler results keyed by a
// canonical FNV-1a hash of everything a labeler observes: the graph
// structure (node count + edge list), the alignment-constrained vertex set,
// the labeler's registered name, and a labeler-provided "salt" encoding the
// options that affect its output. Two graphs share an entry exactly when
// they are structurally equal under the (deterministic) construction order —
// no isomorphism detection is attempted.
//
// The cache is thread-safe (the separate-ROBDD flow fans labeling out across
// pool workers) and collision-safe: the full canonical key string is stored
// alongside the digest and compared on lookup.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/bdd_graph.hpp"
#include "core/labeling.hpp"
#include "util/thread_annotations.hpp"

namespace compact::core {

/// A fully resolved cache key: the 64-bit digest used for bucketing plus the
/// canonical encoding used to rule out collisions.
struct label_cache_key {
  std::uint64_t digest = 0;
  std::string canonical;
};

/// Build the key for labeling `graph` with the labeler registered as
/// `labeler_name` under the option encoding `option_salt` (see
/// labeler::cache_salt). The graph contributes its node count, its edge
/// list, and its aligned vertex set — the exact inputs every labeler sees;
/// edge literals and output names do not affect labelings and are excluded.
[[nodiscard]] label_cache_key make_label_cache_key(
    const bdd_graph& graph, const std::string& labeler_name,
    const std::string& option_salt);

/// A memoized labeler outcome. Captures everything synthesis_stats needs so
/// a cache hit is observationally identical to a recompute (the MIP
/// convergence trace is the one exception: a hit emits a cache event instead
/// of replaying solver milestones).
struct cached_labeling {
  labeling l;
  bool optimal = false;
  double relative_gap = 0.0;
  std::size_t oct_size = 0;   // Method 1: VH labels before promotions
  std::size_t promoted = 0;   // Method 1: alignment promotions
};

class labeling_cache {
 public:
  /// Returns the entry stored under `key`, or nullopt. Counts a hit or miss.
  [[nodiscard]] std::optional<cached_labeling> find(
      const label_cache_key& key) const;

  /// Store `entry` under `key`. Racing stores of the same key keep the first
  /// value; labelers are deterministic, so racing values are identical.
  void store(const label_cache_key& key, cached_labeling entry);

  struct counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] counters stats() const;

  void clear();

  ~labeling_cache();
  labeling_cache() = default;
  labeling_cache(const labeling_cache&) = delete;
  labeling_cache& operator=(const labeling_cache&) = delete;

 private:
  using bucket = std::vector<std::pair<std::string, cached_labeling>>;
  mutable annotated_mutex mutex_;
  mutable counters counters_ COMPACT_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, bucket> entries_
      COMPACT_GUARDED_BY(mutex_);
  // Estimated bytes held (keys + payload vectors + per-entry overhead) and
  // the portion charged to the mem.cache.labeling account.
  std::uint64_t content_bytes_ COMPACT_GUARDED_BY(mutex_) = 0;
  std::uint64_t bytes_accounted_ COMPACT_GUARDED_BY(mutex_) = 0;
};

}  // namespace compact::core
