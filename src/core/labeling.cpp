#include "core/labeling.hpp"

#include <algorithm>

namespace compact::core {

labeling_stats compute_stats(const labeling& l) {
  labeling_stats stats;
  for (vh_label label : l.label_of) {
    switch (label) {
      case vh_label::v:
        ++stats.columns;
        break;
      case vh_label::h:
        ++stats.rows;
        break;
      case vh_label::vh:
        ++stats.rows;
        ++stats.columns;
        ++stats.vh_count;
        break;
    }
  }
  stats.semiperimeter = stats.rows + stats.columns;
  stats.max_dimension = std::max(stats.rows, stats.columns);
  return stats;
}

bool is_feasible(const graph::undirected_graph& g, const labeling& l) {
  if (l.label_of.size() != g.node_count()) return false;
  for (const graph::edge& e : g.edges()) {
    // A memristor joins a wordline and a bitline: one endpoint must offer a
    // row and the other a column (VH offers both).
    const bool ok_uv = l.has_row(e.u) && l.has_column(e.v);
    const bool ok_vu = l.has_column(e.u) && l.has_row(e.v);
    if (!ok_uv && !ok_vu) return false;
  }
  return true;
}

bool satisfies_alignment(const bdd_graph& graph, const labeling& l) {
  for (graph::node_id u : graph.aligned_nodes())
    if (!l.has_row(u)) return false;
  return true;
}

labeling all_vh_labeling(std::size_t node_count) {
  labeling l;
  l.label_of.assign(node_count, vh_label::vh);
  return l;
}

}  // namespace compact::core
