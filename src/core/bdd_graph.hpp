// Graph pre-processing (Section V-A).
//
// Converts a (shared) BDD into the undirected graph the VH-labeling step
// operates on: the '0' terminal and its incoming edges are removed (flow
// computing only captures the '1' output), every remaining BDD node becomes
// a graph vertex, and every remaining BDD edge becomes a graph edge tagged
// with the literal (variable, polarity) that will program its memristor.
#pragma once

#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "graph/graph.hpp"

namespace compact::core {

struct edge_literal {
  std::int32_t variable = -1;
  bool positive = false;
};

struct bdd_graph {
  graph::undirected_graph g;
  /// Parallel to g.edges(): the literal programming each edge's memristor.
  std::vector<edge_literal> literal_of_edge;
  /// Graph vertex of the '1' terminal; -1 when no root reaches 1 (all
  /// outputs constant 0).
  graph::node_id terminal_node = -1;
  /// Graph vertices that carry at least one output, with their names.
  struct output_binding {
    graph::node_id node;
    std::string name;
  };
  std::vector<output_binding> outputs;
  /// Outputs that are constant functions (no crossbar hardware).
  std::vector<std::pair<std::string, bool>> constant_outputs;
  /// Graph vertex -> BDD handle (diagnostics, tests).
  std::vector<bdd::node_handle> handle_of;

  /// Distinct vertices that must obey the alignment constraint (outputs and
  /// the terminal), i.e. must receive at least an H label.
  [[nodiscard]] std::vector<graph::node_id> aligned_nodes() const;
};

/// Build the labeled undirected graph from the SBDD rooted at `roots`
/// (named by `names`, parallel). Constant roots become constant_outputs.
[[nodiscard]] bdd_graph build_bdd_graph(const bdd::manager& m,
                                        const std::vector<bdd::node_handle>& roots,
                                        const std::vector<std::string>& names);

}  // namespace compact::core
