#include "core/pipeline.hpp"

#include <utility>

#include "core/partition.hpp"
#include "util/error.hpp"
#include "util/flight_recorder.hpp"
#include "util/memtrack.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/trace.hpp"
#include "util/watchdog.hpp"

namespace compact::core {
namespace {

void run_build_graph(synthesis_context& ctx) {
  check(ctx.manager != nullptr && ctx.roots != nullptr && ctx.names != nullptr,
        "pipeline: build_graph needs manager, roots and names");
  ctx.graph = build_bdd_graph(*ctx.manager, *ctx.roots, *ctx.names);
  ctx.stats.graph_nodes = ctx.graph.g.node_count();
  ctx.stats.graph_edges = ctx.graph.g.edge_count();
  ctx.metric("graph_nodes", static_cast<double>(ctx.stats.graph_nodes));
  ctx.metric("graph_edges", static_cast<double>(ctx.stats.graph_edges));
  ctx.metric("outputs", static_cast<double>(ctx.graph.outputs.size()));
  ctx.metric("constant_outputs",
             static_cast<double>(ctx.graph.constant_outputs.size()));
}

void run_label(synthesis_context& ctx) {
  const std::string name = resolve_labeler_name(ctx.options);
  const labeler& engine = find_labeler(name);
  ctx.attribute("labeler", name);

  labeler_request request;
  request.gamma = ctx.options.gamma;
  request.alignment = ctx.options.alignment;
  request.time_limit_seconds = ctx.options.time_limit_seconds;
  request.oct_engine = ctx.options.oct_engine;
  request.max_rows = ctx.options.max_rows;
  request.max_columns = ctx.options.max_columns;
  request.reduce = ctx.options.oct_reduction;
  request.threads = ctx.options.parallel.threads;
  request.cache = ctx.cache;
  request.telemetry = ctx.telemetry;

  // Memoization: identical (graph, labeler, options) triples reuse the
  // stored labeling. Labelers are deterministic, so a hit is
  // observationally identical to a recompute — except the solver trace,
  // which a hit does not replay.
  std::optional<label_cache_key> key;
  if (ctx.cache != nullptr)
    key = make_label_cache_key(ctx.graph, name, engine.cache_salt(request));
  if (key) {
    if (std::optional<cached_labeling> hit = ctx.cache->find(*key)) {
      ctx.labels = std::move(hit->l);
      ctx.label_optimal = hit->optimal;
      ctx.label_gap = hit->relative_gap;
      ctx.label_cache_hit = true;
      ctx.attribute("cache", "hit");
    }
  }
  if (!ctx.label_cache_hit) {
    labeler_result r = engine.label(ctx.graph, request);
    ctx.labels = std::move(r.l);
    ctx.label_optimal = r.optimal;
    ctx.label_gap = r.relative_gap;
    ctx.stats.trace = std::move(r.trace);
    if (key) {
      cached_labeling entry;
      entry.l = ctx.labels;
      entry.optimal = ctx.label_optimal;
      entry.relative_gap = ctx.label_gap;
      entry.oct_size = r.oct_size;
      entry.promoted = r.promoted;
      ctx.cache->store(*key, std::move(entry));
      ctx.attribute("cache", "miss");
    }
  }
  ctx.stats.optimal = ctx.label_optimal;
  ctx.stats.relative_gap = ctx.label_gap;
  if (ctx.cache != nullptr) {
    const labeling_cache::counters c = ctx.cache->stats();
    ctx.stats.cache_hits = c.hits;
    ctx.stats.cache_misses = c.misses;
  }

  const labeling_stats ls = compute_stats(ctx.labels);
  ctx.stats.vh_count = ls.vh_count;
  ctx.metric("vh_count", ls.vh_count);
  ctx.metric("rows", ls.rows);
  ctx.metric("columns", ls.columns);
  ctx.metric("semiperimeter", ls.semiperimeter);
  ctx.metric("optimal", ctx.label_optimal ? 1.0 : 0.0);
  ctx.metric("relative_gap", ctx.label_gap);
}

void run_map(synthesis_context& ctx) {
  ctx.mapped.emplace(map_to_crossbar(ctx.graph, ctx.labels));
  const xbar::crossbar& design = ctx.mapped->design;
  // Dimension budgets are a contract for every labeler, not only the MIP
  // (which enforces them in-solver): an oversized mapped design must fail
  // loudly, naming the overflow dimension, never ship silently. Partitioned
  // flows suppress the guard — their fragments are packed to fit, and the
  // partition pass is the remedy the message recommends.
  if (!ctx.options.partition) {
    const auto overflow = [](const char* dimension, int needed, int budget,
                             const char* flag) {
      return std::string("infeasible: mapped design needs ") +
             std::to_string(needed) + " " + dimension + " but " + flag +
             " is " + std::to_string(budget) +
             "; enable partitioning (--partition) or raise the budget";
    };
    if (ctx.options.max_rows && design.rows() > *ctx.options.max_rows)
      throw infeasible_error(overflow("rows", design.rows(),
                                      *ctx.options.max_rows, "--max-rows"));
    if (ctx.options.max_columns &&
        design.columns() > *ctx.options.max_columns)
      throw infeasible_error(overflow("columns", design.columns(),
                                      *ctx.options.max_columns,
                                      "--max-cols"));
  }
  ctx.stats.rows = design.rows();
  ctx.stats.columns = design.columns();
  ctx.stats.semiperimeter = design.semiperimeter();
  ctx.stats.max_dimension = design.max_dimension();
  ctx.stats.area = design.area();
  ctx.stats.power_proxy = design.active_device_count();
  ctx.stats.delay_steps = design.delay_steps();
  ctx.metric("rows", design.rows());
  ctx.metric("columns", design.columns());
  ctx.metric("semiperimeter", design.semiperimeter());
  ctx.metric("max_dimension", design.max_dimension());
  ctx.metric("area", static_cast<double>(design.area()));
  ctx.metric("power_proxy", design.active_device_count());
  ctx.metric("delay_steps", design.delay_steps());
}

void run_validate(synthesis_context& ctx) {
  // Validation runs against the full root list: constant outputs are part
  // of the design's contract too.
  xbar::validation_options options;
  options.parallel = ctx.options.parallel;
  check(ctx.mapped.has_value(), "pipeline: validate needs a mapped design");
  ctx.validation =
      xbar::validate_against_bdd(ctx.mapped->design, *ctx.manager, *ctx.roots,
                                 *ctx.names, ctx.manager->variable_count(),
                                 options);
  ctx.attribute("verdict", ctx.validation->valid ? "pass" : "fail");
  ctx.metric("checked_assignments",
             static_cast<double>(ctx.validation->checked_assignments));
  ctx.metric("exhaustive", ctx.validation->exhaustive ? 1.0 : 0.0);
}

// The verify pass body lives in the verify library (verify/pass.cpp) and is
// installed at startup by whoever links it; a plain function pointer slot
// keeps core free of a dependency on the analyzer.
verify_pass_fn& verify_pass_slot() {
  static verify_pass_fn slot;
  return slot;
}

}  // namespace

void set_verify_pass(verify_pass_fn fn) { verify_pass_slot() = std::move(fn); }

bool verify_pass_installed() { return verify_pass_slot() != nullptr; }

pipeline& pipeline::add_pass(std::string name, pass_fn run) {
  check(!name.empty(), "pipeline: pass needs a name");
  check(run != nullptr, "pipeline: pass '" + name + "' has no body");
  passes_.push_back({std::move(name), std::move(run)});
  return *this;
}

std::vector<std::string> pipeline::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const pass& p : passes_) names.push_back(p.name);
  return names;
}

void pipeline::run(synthesis_context& ctx) const {
  for (const pass& p : passes_) {
    telemetry_event event;
    event.stage = p.name;
    event.stamp();  // ts_us marks the pass *start* on the shared clock
    ctx.current_event = &event;
    stopwatch clock;
    try {
      const trace_span span(p.name, "pipeline");
      p.run(ctx);
    } catch (...) {
      ctx.current_event = nullptr;
      if (flight_recorder_enabled())
        flight_record("pipeline.error", p.name + " threw");
      throw;
    }
    event.seconds = clock.seconds();
    ctx.current_event = nullptr;
    ctx.stats.stage_seconds.push_back({p.name, event.seconds});
    if (flight_recorder_enabled())
      flight_record("pipeline.stage",
                    p.name + " done in " + std::to_string(event.seconds) + "s");
    // Stage boundaries sample the ambient resource watchdog. A hard breach
    // throws resource_limit_error out of the run; soft memory pressure
    // sheds load first — force a sweep even when stage-boundary GC is off
    // and evict the memoization caches (pure time/space trades: designs
    // never depend on cache contents or collection points).
    const bool shed = resource_checkpoint("pipeline.stage_boundary") ==
                      resource_pressure::soft_memory;
    // Stage boundaries are the engine's collection points: between passes
    // the live set is exactly the synthesis roots, so everything else the
    // build left behind (intermediate ite results) can be swept. Designs
    // are bit-identical with GC on or off — later passes only read the
    // roots' DAGs, which the sweep provably keeps.
    if ((ctx.options.gc_at_stage_boundaries || shed) &&
        ctx.gc_manager != nullptr && ctx.roots != nullptr)
      ctx.gc_manager->collect_garbage(*ctx.roots);
    if (shed) {
      if (ctx.cache != nullptr) ctx.cache->clear();
      if (ctx.options.partition_memo != nullptr)
        ctx.options.partition_memo->clear();
    }
    // Stage boundaries are also where the BDD engine's internal counters
    // become externally visible (the manager itself is metrics-agnostic).
    if (metrics_enabled() && ctx.manager != nullptr)
      ctx.manager->publish_metrics();
    publish_memtrack_metrics();
    if (ctx.telemetry != nullptr) ctx.telemetry->emit(event);
  }
}

std::string resolve_labeler_name(const synthesis_options& options) {
  if (!options.labeler.empty()) return options.labeler;
  return options.method == labeling_method::minimal_semiperimeter ? "oct"
                                                                  : "mip";
}

pipeline make_label_map_pipeline(const synthesis_options&) {
  // Per-fragment synthesis (core/partition): the fragment graph is already
  // installed in the context, and verification/validation run stitched over
  // the whole partitioned design, not per fragment.
  pipeline p;
  p.add_pass("label", run_label);
  p.add_pass("map", run_map);
  return p;
}

pipeline make_synthesis_pipeline(const synthesis_options& options) {
  pipeline p;
  p.add_pass("build_graph", run_build_graph);
  p.add_pass("label", run_label);
  p.add_pass("map", run_map);
  if (options.verify_design) {
    check(verify_pass_installed(),
          "pipeline: options.verify_design is set but no verify pass is "
          "installed; link the verify library (compact::all) or call "
          "verify::install_pipeline_pass() first");
    p.add_pass("verify", verify_pass_slot());
  }
  if (options.validate_design) p.add_pass("validate", run_validate);
  return p;
}

synthesis_result run_synthesis_pipeline(synthesis_context& ctx) {
  const pipeline p = make_synthesis_pipeline(ctx.options);
  p.run(ctx);
  check(ctx.mapped.has_value(),
        "pipeline: run finished without a mapped design");
  synthesis_result result{std::move(ctx.mapped->design), std::move(ctx.labels),
                          std::move(ctx.stats), std::move(ctx.validation),
                          std::move(ctx.verification)};
  return result;
}

}  // namespace compact::core
