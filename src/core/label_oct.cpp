#include <algorithm>
#include <array>

#include "core/labelers.hpp"
#include "core/oct_reduce.hpp"
#include "graph/bipartite.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace compact::core {
namespace {

/// Choose per-component flips minimizing max(row total, column total).
/// Component i contributes per_component[i] = (to_H, to_V) when kept and the
/// swapped pair when flipped; `bias` seeds both totals (VH nodes and fixed
/// components). Returns the flip decisions.
std::vector<char> balance_flips(
    const std::vector<std::pair<int, int>>& per_component, int bias_rows,
    int bias_columns) {
  const int k = static_cast<int>(per_component.size());
  int total = bias_rows + bias_columns;
  for (const auto& [a, b] : per_component) total += a + b;

  // DP over achievable row totals, with parent pointers for the backtrace.
  std::vector<std::vector<int>> parent(
      static_cast<std::size_t>(k), std::vector<int>(total + 1, -1));
  std::vector<char> reachable(static_cast<std::size_t>(total) + 1, 0);
  reachable[static_cast<std::size_t>(bias_rows)] = 1;
  for (int c = 0; c < k; ++c) {
    std::vector<char> next(static_cast<std::size_t>(total) + 1, 0);
    for (int t = 0; t <= total; ++t) {
      if (!reachable[static_cast<std::size_t>(t)]) continue;
      const int keep = t + per_component[static_cast<std::size_t>(c)].first;
      const int flip = t + per_component[static_cast<std::size_t>(c)].second;
      if (keep <= total && !next[static_cast<std::size_t>(keep)]) {
        next[static_cast<std::size_t>(keep)] = 1;
        parent[static_cast<std::size_t>(c)][static_cast<std::size_t>(keep)] =
            t * 2;
      }
      if (flip <= total && !next[static_cast<std::size_t>(flip)]) {
        next[static_cast<std::size_t>(flip)] = 1;
        parent[static_cast<std::size_t>(c)][static_cast<std::size_t>(flip)] =
            t * 2 + 1;
      }
    }
    reachable.swap(next);
  }

  int best_rows = -1;
  int best_objective = total + 1;
  for (int t = 0; t <= total; ++t) {
    if (!reachable[static_cast<std::size_t>(t)]) continue;
    const int objective = std::max(t, total - t);
    if (objective < best_objective) {
      best_objective = objective;
      best_rows = t;
    }
  }
  check(best_rows >= 0, "balance_flips: no achievable assignment");

  std::vector<char> flips(static_cast<std::size_t>(k), 0);
  int t = best_rows;
  for (int c = k - 1; c >= 0; --c) {
    const int enc = parent[static_cast<std::size_t>(c)][static_cast<std::size_t>(t)];
    check(enc >= 0, "balance_flips: broken backtrace");
    flips[static_cast<std::size_t>(c)] = static_cast<char>(enc & 1);
    t = enc >> 1;
  }
  return flips;
}

}  // namespace

oct_label_result label_minimal_semiperimeter(const bdd_graph& graph,
                                             const oct_label_options& options) {
  const trace_span span("label_oct", "label");
  const graph::undirected_graph& g = graph.g;
  oct_label_result result;
  result.l.label_of.assign(g.node_count(), vh_label::v);
  if (g.node_count() == 0) {
    result.optimal = true;
    return result;
  }

  // Step 1: minimum odd cycle transversal -> the VH set. Kernelize first
  // (unless disabled): the reductions are exact, so the lifted transversal
  // has the same size as an unreduced solve, and the solver only sees the
  // irreducible core of the graph.
  graph::oct_options oct;
  oct.engine = options.engine;
  oct.time_limit_seconds = options.time_limit_seconds;
  oct.threads = options.threads;
  const graph::oct_result transversal =
      options.reduce ? reduced_odd_cycle_transversal(g, oct)
                     : graph::odd_cycle_transversal(g, oct);
  result.oct_size = transversal.size;
  result.optimal = transversal.optimal;
  if (metrics_enabled()) {
    metrics_registry& registry = global_metrics();
    registry.counter("label_oct.runs").increment();
    registry
        .histogram("label_oct.oct_size",
                   {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0})
        .observe(static_cast<double>(result.oct_size));
  }

  // Step 2: 2-color the induced bipartite subgraph G_B.
  std::vector<bool> keep(g.node_count());
  for (std::size_t v = 0; v < g.node_count(); ++v)
    keep[v] = !transversal.in_transversal[v];
  const auto induced = g.induced_subgraph(keep);
  const auto coloring = graph::try_two_color(induced.subgraph);
  check(coloring.has_value(), "label_oct: G - OCT is not bipartite");
  const auto components = induced.subgraph.connected_components();

  // color_of / component_of in *original* vertex ids (-1 for VH nodes).
  std::vector<int> color_of(g.node_count(), -1);
  std::vector<int> component_of(g.node_count(), -1);
  for (graph::node_id v = 0; v < static_cast<graph::node_id>(g.node_count());
       ++v) {
    const graph::node_id nv = induced.new_id_of[static_cast<std::size_t>(v)];
    if (nv < 0) continue;
    color_of[static_cast<std::size_t>(v)] =
        coloring->color_of[static_cast<std::size_t>(nv)];
    component_of[static_cast<std::size_t>(v)] =
        components.component_of[static_cast<std::size_t>(nv)];
  }

  // Step 3: per-component alignment analysis. Orientation 0 maps color 0 to
  // H (rows); orientation 1 maps color 1 to H.
  const int k = components.count;
  std::vector<std::array<int, 2>> size_by_color(
      static_cast<std::size_t>(k), {0, 0});
  std::vector<std::array<int, 2>> aligned_by_color(
      static_cast<std::size_t>(k), {0, 0});
  for (graph::node_id v = 0; v < static_cast<graph::node_id>(g.node_count());
       ++v) {
    const int c = component_of[static_cast<std::size_t>(v)];
    if (c < 0) continue;
    ++size_by_color[static_cast<std::size_t>(c)]
                   [static_cast<std::size_t>(color_of[static_cast<std::size_t>(v)])];
  }
  std::vector<bool> is_aligned(g.node_count(), false);
  for (graph::node_id v : graph.aligned_nodes()) {
    is_aligned[static_cast<std::size_t>(v)] = true;
    const int c = component_of[static_cast<std::size_t>(v)];
    if (c < 0) continue;  // already VH: alignment satisfied
    ++aligned_by_color[static_cast<std::size_t>(c)]
                      [static_cast<std::size_t>(color_of[static_cast<std::size_t>(v)])];
  }

  // orientation[c]: 0 or 1 when fixed, -1 when free (left to balancing).
  std::vector<int> orientation(static_cast<std::size_t>(k), -1);
  std::vector<bool> promote(g.node_count(), false);
  if (options.alignment) {
    for (int c = 0; c < k; ++c) {
      // Promotions if color x maps to H: aligned nodes of the other color.
      const int promote0 = aligned_by_color[static_cast<std::size_t>(c)][1];
      const int promote1 = aligned_by_color[static_cast<std::size_t>(c)][0];
      if (promote0 == 0 && promote1 == 0) continue;  // free
      orientation[static_cast<std::size_t>(c)] = promote0 <= promote1 ? 0 : 1;
    }
    // Mark promoted nodes: aligned nodes on the V side of a fixed
    // orientation.
    for (graph::node_id v = 0;
         v < static_cast<graph::node_id>(g.node_count()); ++v) {
      if (!is_aligned[static_cast<std::size_t>(v)]) continue;
      const int c = component_of[static_cast<std::size_t>(v)];
      if (c < 0) continue;
      const int o = orientation[static_cast<std::size_t>(c)];
      if (o < 0) continue;
      if (color_of[static_cast<std::size_t>(v)] != o) {
        promote[static_cast<std::size_t>(v)] = true;
        ++result.promoted;
      }
    }
  }

  // Step 4: balance the free components (Fig. 6). VH nodes (transversal +
  // promotions) occupy one row and one column each; fixed components
  // contribute their oriented counts.
  const int vh_total =
      static_cast<int>(result.oct_size) + static_cast<int>(result.promoted);
  int bias_rows = vh_total;
  int bias_columns = vh_total;
  std::vector<int> free_components;
  std::vector<std::pair<int, int>> free_contribution;  // (rows, cols) if kept
  for (int c = 0; c < k; ++c) {
    // Promoted nodes were counted in size_by_color but are VH now; subtract.
    int promoted_here[2] = {0, 0};
    if (options.alignment && orientation[static_cast<std::size_t>(c)] >= 0) {
      const int o = orientation[static_cast<std::size_t>(c)];
      promoted_here[1 - o] =
          aligned_by_color[static_cast<std::size_t>(c)][static_cast<std::size_t>(1 - o)];
    }
    const int n0 =
        size_by_color[static_cast<std::size_t>(c)][0] - promoted_here[0];
    const int n1 =
        size_by_color[static_cast<std::size_t>(c)][1] - promoted_here[1];
    const int o = orientation[static_cast<std::size_t>(c)];
    if (o == 0) {
      bias_rows += n0;
      bias_columns += n1;
    } else if (o == 1) {
      bias_rows += n1;
      bias_columns += n0;
    } else {
      free_components.push_back(c);
      free_contribution.emplace_back(n0, n1);  // orientation 0 when "kept"
    }
  }

  std::vector<char> flips(free_components.size(), 0);
  if (options.balance && !free_components.empty())
    flips = balance_flips(free_contribution, bias_rows, bias_columns);
  for (std::size_t i = 0; i < free_components.size(); ++i)
    orientation[static_cast<std::size_t>(free_components[i])] = flips[i];
  // Any still-free component (balance disabled): orientation 0.
  for (int c = 0; c < k; ++c)
    if (orientation[static_cast<std::size_t>(c)] < 0)
      orientation[static_cast<std::size_t>(c)] = 0;

  // Step 5: emit labels.
  for (graph::node_id v = 0; v < static_cast<graph::node_id>(g.node_count());
       ++v) {
    if (transversal.in_transversal[static_cast<std::size_t>(v)] ||
        promote[static_cast<std::size_t>(v)]) {
      result.l.label_of[static_cast<std::size_t>(v)] = vh_label::vh;
      continue;
    }
    const int c = component_of[static_cast<std::size_t>(v)];
    const int o = orientation[static_cast<std::size_t>(c)];
    const bool is_h = color_of[static_cast<std::size_t>(v)] == o;
    result.l.label_of[static_cast<std::size_t>(v)] =
        is_h ? vh_label::h : vh_label::v;
  }

  check(is_feasible(g, result.l), "label_oct: infeasible labeling produced");
  if (options.alignment)
    check(satisfies_alignment(graph, result.l),
          "label_oct: alignment violated");
  return result;
}

}  // namespace compact::core
