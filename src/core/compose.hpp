// Diagonal composition of per-output crossbar blocks (Figure 8a).
//
// The prior multi-output strategy synthesizes one crossbar per output and
// stacks them corner-to-corner, merging every block's '1'-terminal input
// wordline into a single shared bottom wordline. Used by both the COMPACT
// separate-ROBDD mode and the staircase baseline.
#pragma once

#include <vector>

#include "util/thread_pool.hpp"
#include "xbar/crossbar.hpp"

namespace compact::core {

/// Compose blocks along the diagonal with a shared input row. Blocks with
/// zero columns (constant-only) contribute just their constant outputs.
/// Device copy fans out across `parallel` workers (blocks write disjoint
/// junction ranges); the result is identical for every thread count.
[[nodiscard]] xbar::crossbar compose_diagonal(
    const std::vector<const xbar::crossbar*>& blocks,
    const parallel_options& parallel = {});

}  // namespace compact::core
