// Multi-array partitioning (ROADMAP item 3: "too big for one array").
//
// When hard `max_rows x max_columns` budgets are smaller than the SBDD, no
// single-crossbar labeling can fit — CONTRA (arXiv:2009.00881) and the
// constrained technology mapper of arXiv:1809.08195 partition the logic
// across several arrays instead. This pass splits the SBDD graph into an
// ordered list of fragments, each guaranteed to fit the budgets under *any*
// feasible VH-labeling, then synthesizes every fragment through the normal
// label/map pipeline and stitches the results into one
// xbar::partitioned_design.
//
// The fit guarantee needs no retry loop: a fragment of k vertices maps to at
// most k rows (|H| + |VH| <= k) and at most k columns, so packing at most
// capacity = min(max_rows, max_columns) vertices per fragment fits every
// feasible labeling. A cut edge (u, v) with u in an earlier fragment places
// its device in v's fragment, attached to a local *port* vertex mirroring u;
// an explicit bridge connection welds u's home nanowire and the port's
// nanowire into one electrical net. The union conduction graph is then
// isomorphic to the single-array design's, so sneak-path semantics are
// preserved exactly (verified symbolically by verify's stitched checker).
//
// Plans are deterministic (greedy interval packing over the SBDD vertex
// order plus bounded cut-reducing boundary refinement) and cache-keyed like
// labelings: identical (graph, budgets) pairs reuse the stored plan.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/bdd_graph.hpp"
#include "core/compact.hpp"
#include "core/label_cache.hpp"
#include "util/thread_annotations.hpp"
#include "xbar/partitioned.hpp"

namespace compact::core {

struct partition_options {
  /// Hard per-array budgets; at least one must be set for a plan with more
  /// than one fragment to ever be produced.
  std::optional<int> max_rows;
  std::optional<int> max_columns;
  /// Run the deterministic boundary-refinement sweeps that shift fragment
  /// boundaries to reduce the cut. Off only for A/B experiments (the cache
  /// key includes this flag).
  bool refine = true;
};

struct partition_plan {
  /// Fragment index per SBDD graph vertex; monotone non-decreasing in the
  /// vertex order (fragments are intervals).
  std::vector<int> fragment_of;
  int fragment_count = 1;
  /// min over the set budgets (0 when neither is set = unbounded).
  int capacity = 0;
  /// Indices into graph.g.edges() whose endpoints land in different
  /// fragments.
  std::vector<std::size_t> cut_edges;
};

/// Thread-safe memoization of partition plans, keyed like the labeling
/// cache: an FNV-1a digest over the graph structure and the partition
/// options, with the canonical string stored to rule out collisions.
/// Storage and LRU eviction live in util/bounded_memo (account
/// mem.cache.partition, metrics partition_cache.*); see labeling_cache.
class partition_cache {
 public:
  [[nodiscard]] std::optional<partition_plan> find(
      const label_cache_key& key) const;
  void store(const label_cache_key& key, partition_plan plan);

  using counters = bounded_memo<partition_plan>::counters;
  [[nodiscard]] counters stats() const;

  /// Cap the estimated content bytes; 0 = unbounded (default).
  void set_capacity_bytes(std::uint64_t capacity);
  [[nodiscard]] std::uint64_t capacity_bytes() const;

  void clear();

  partition_cache();
  partition_cache(const partition_cache&) = delete;
  partition_cache& operator=(const partition_cache&) = delete;

 private:
  bounded_memo<partition_plan> memo_;
};

/// Cache key for partitioning `graph` under `options` (graph node count +
/// edge list + the budgets/refine flag + the algorithm version).
[[nodiscard]] label_cache_key make_partition_cache_key(
    const bdd_graph& graph, const partition_options& options);

/// Compute (or recall) the plan. Throws infeasible_error when a budget is
/// below 1, or when some vertex plus its mandatory bridge ports cannot fit
/// the capacity — the greedy packing has no fragment that can hold it.
[[nodiscard]] partition_plan plan_partition(const bdd_graph& graph,
                                            const partition_options& options,
                                            partition_cache* cache = nullptr);

/// One fragment's labeled graph plus the bookkeeping linking it back to the
/// global SBDD graph.
struct fragment_graph {
  bdd_graph graph;
  /// Local vertex -> global vertex (members first, then ports).
  std::vector<graph::node_id> global_of;
  std::size_t member_count = 0;
  /// Port vertices: local mirrors of earlier-fragment vertices that cut
  /// edges attach to.
  struct port {
    graph::node_id local;
    graph::node_id global;
    int home_fragment;
  };
  std::vector<port> ports;
};

/// Split the SBDD graph along `plan`: member vertices keep their intra-
/// fragment edges, each cut edge becomes a local edge from its later
/// endpoint to a port vertex mirroring the earlier endpoint (one port per
/// (vertex, fragment) pair). The terminal and each output binding land only
/// in their home fragments; constant outputs land in fragment 0.
[[nodiscard]] std::vector<fragment_graph> build_fragment_graphs(
    const bdd_graph& graph, const partition_plan& plan);

// --- partitioned synthesis --------------------------------------------------

struct partitioned_synthesis_result {
  xbar::partitioned_design design;
  /// Per-fragment labelings, parallel to design.fragments().
  std::vector<labeling> fragment_labels;
  partition_plan plan;
  /// Aggregated stats: rows/columns are the largest fragment's,
  /// semiperimeter/area/power are totals, arrays/cut_edges/bridges count the
  /// partition itself.
  synthesis_stats stats;
  /// Stitched verification report (options.verify_design).
  std::optional<verify::report> verification;
  /// Stitched validation verdict (options.validate_design).
  std::optional<xbar::validation_report> validation;
};

/// Build the SBDD graph of `roots`, partition it under options.max_rows /
/// options.max_columns, synthesize every fragment (budgets stripped — the
/// packing guarantees fit, so fragment labelings share cache entries with
/// unbudgeted runs), and stitch. A plan of one fragment falls back to the
/// canonical single-array pipeline, producing a byte-identical design
/// wrapped as one fragment. The manager is GC'd at stage boundaries exactly
/// like synthesize_gc.
[[nodiscard]] partitioned_synthesis_result synthesize_partitioned(
    bdd::manager& m, const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& names, const synthesis_options& options);

/// Convenience: build the SBDD of `net` (identity order) and partition-map.
[[nodiscard]] partitioned_synthesis_result synthesize_partitioned_network(
    const frontend::network& net, const synthesis_options& options = {});

/// The stitched-verification body is installed by the verify library (see
/// verify/pass.hpp), mirroring the single-array verify pass slot, so core
/// stays free of a dependency on the analyzer.
using partition_verify_fn = std::function<verify::report(
    const xbar::partitioned_design& design, const bdd::manager& spec,
    const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& names, const synthesis_options& options)>;
void set_partition_verify(partition_verify_fn fn);
[[nodiscard]] bool partition_verify_installed();

}  // namespace compact::core
