// VH-labeling (Section V-B).
//
// Assigns every vertex of the pre-processed BDD graph a label V (bitline),
// H (wordline) or VH (both, bridged with an always-on memristor). A labeling
// is feasible when no edge joins two V's or two H's — such an edge could not
// be realized by a memristor, which always joins a wordline to a bitline.
#pragma once

#include <vector>

#include "core/bdd_graph.hpp"
#include "graph/graph.hpp"

namespace compact::core {

enum class vh_label : char { v, h, vh };

struct labeling {
  std::vector<vh_label> label_of;  // indexed by graph vertex

  [[nodiscard]] bool has_row(graph::node_id u) const {
    return label_of[static_cast<std::size_t>(u)] != vh_label::v;
  }
  [[nodiscard]] bool has_column(graph::node_id u) const {
    return label_of[static_cast<std::size_t>(u)] != vh_label::h;
  }
};

struct labeling_stats {
  int vh_count = 0;
  int rows = 0;         // R = #H + #VH
  int columns = 0;      // C = #V + #VH
  int semiperimeter = 0;  // S = R + C
  int max_dimension = 0;  // D = max(R, C)
};

[[nodiscard]] labeling_stats compute_stats(const labeling& l);

/// Feasibility: every edge joins a row-capable and a column-capable side.
[[nodiscard]] bool is_feasible(const graph::undirected_graph& g,
                               const labeling& l);

/// Alignment (Section VII-B): every aligned vertex has at least an H label.
[[nodiscard]] bool satisfies_alignment(const bdd_graph& graph,
                                       const labeling& l);

/// The trivial labeling mapping every node to both a wordline and a bitline
/// (semiperimeter 2n). This is both the paper's description of prior work
/// [16] and the fallback that is always feasible.
[[nodiscard]] labeling all_vh_labeling(std::size_t node_count);

}  // namespace compact::core
