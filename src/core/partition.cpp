#include "core/partition.hpp"

#include <algorithm>
#include <utility>

#include "core/pipeline.hpp"
#include "frontend/to_bdd.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/watchdog.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace compact::core {
namespace {

/// Bump when the planning algorithm changes which plan it produces for an
/// unchanged input: stored plans must never be served across algorithm
/// revisions (the cache key includes this).
constexpr int partition_algorithm_version = 1;

/// Refinement is a local search; a small fixed sweep bound keeps planning
/// linear-ish while catching the boundary-misplacement the greedy pass
/// leaves behind.
constexpr int max_refine_sweeps = 8;

/// min over the set budgets; 0 = unbounded (no partitioning possible).
int capacity_of(const partition_options& options) {
  int capacity = 0;
  if (options.max_rows) capacity = *options.max_rows;
  if (options.max_columns)
    capacity = capacity == 0 ? *options.max_columns
                             : std::min(capacity, *options.max_columns);
  return capacity;
}

/// Footprint feasibility + cut size of an interval assignment. A fragment
/// holding m member vertices and p ports (distinct earlier-fragment
/// endpoints of its incoming cut edges) occupies at most m + p nanowires in
/// either dimension under any feasible VH-labeling.
struct assessment {
  bool feasible = false;
  int cut = 0;
};

assessment assess(const bdd_graph& graph, const std::vector<int>& fragment_of,
                  int fragment_count, int capacity) {
  std::vector<int> members(static_cast<std::size_t>(fragment_count), 0);
  for (const int f : fragment_of) ++members[static_cast<std::size_t>(f)];

  // One port per distinct (earlier endpoint, later fragment) pair.
  std::vector<std::pair<graph::node_id, int>> port_pairs;
  assessment result;
  for (const graph::edge& e : graph.g.edges()) {
    const int fu = fragment_of[static_cast<std::size_t>(e.u)];
    const int fv = fragment_of[static_cast<std::size_t>(e.v)];
    if (fu == fv) continue;
    ++result.cut;
    port_pairs.emplace_back(fu < fv ? e.u : e.v, std::max(fu, fv));
  }
  std::sort(port_pairs.begin(), port_pairs.end());
  port_pairs.erase(std::unique(port_pairs.begin(), port_pairs.end()),
                   port_pairs.end());
  std::vector<int> ports(static_cast<std::size_t>(fragment_count), 0);
  for (const auto& [vertex, fragment] : port_pairs)
    ++ports[static_cast<std::size_t>(fragment)];

  result.feasible = true;
  for (int f = 0; f < fragment_count; ++f) {
    const auto i = static_cast<std::size_t>(f);
    if (members[i] == 0 || members[i] + ports[i] > capacity) {
      result.feasible = false;
      break;
    }
  }
  return result;
}

/// Greedy interval packing over the SBDD vertex order: open a fragment,
/// admit vertices while members + ports stay within capacity, close and
/// reopen otherwise. Throws when a single vertex plus its mandatory ports
/// overflows the capacity.
std::vector<int> greedy_pack(const bdd_graph& graph, int capacity) {
  const auto n = static_cast<graph::node_id>(graph.g.node_count());
  std::vector<int> fragment_of(static_cast<std::size_t>(n), 0);
  std::vector<char> is_port(static_cast<std::size_t>(n), 0);
  std::vector<graph::node_id> port_list;  // open fragment's ports, for reset
  int current = 0;
  int members = 0;

  // Distinct earlier-fragment neighbors of v not yet ports of the open
  // fragment. Only u < v are assigned, so the scan is well-defined.
  const auto fresh_ports = [&](graph::node_id v) {
    int fresh = 0;
    for (const graph::node_id u : graph.g.neighbors(v))
      if (u < v && fragment_of[static_cast<std::size_t>(u)] < current &&
          is_port[static_cast<std::size_t>(u)] == 0)
        ++fresh;
    return fresh;
  };

  for (graph::node_id v = 0; v < n; ++v) {
    int fresh = fresh_ports(v);
    if (members > 0 &&
        members + static_cast<int>(port_list.size()) + fresh + 1 > capacity) {
      ++current;
      members = 0;
      for (const graph::node_id u : port_list)
        is_port[static_cast<std::size_t>(u)] = 0;
      port_list.clear();
      fresh = fresh_ports(v);
    }
    if (members == 0 && fresh + 1 > capacity)
      throw infeasible_error(
          "infeasible: SBDD vertex " + std::to_string(v) + " needs " +
          std::to_string(fresh + 1) + " nanowires (itself plus " +
          std::to_string(fresh) +
          " bridge ports) but the per-array capacity min(--max-rows, "
          "--max-cols) is " +
          std::to_string(capacity) + "; raise the budgets");
    fragment_of[static_cast<std::size_t>(v)] = current;
    ++members;
    for (const graph::node_id u : graph.g.neighbors(v))
      if (u < v && fragment_of[static_cast<std::size_t>(u)] < current &&
          is_port[static_cast<std::size_t>(u)] == 0) {
        is_port[static_cast<std::size_t>(u)] = 1;
        port_list.push_back(u);
      }
  }
  return fragment_of;
}

/// Bounded local search over fragment boundaries: try shifting each boundary
/// one vertex left or right, keep strict cut reductions that stay feasible.
/// Deterministic (fixed boundary order, fixed move order, strict decrease).
void refine_boundaries(const bdd_graph& graph, std::vector<int>& fragment_of,
                       int fragment_count, int capacity) {
  assessment best = assess(graph, fragment_of, fragment_count, capacity);
  const auto n = fragment_of.size();
  for (int sweep = 0; sweep < max_refine_sweeps; ++sweep) {
    bool improved = false;
    for (int f = 1; f < fragment_count; ++f) {
      // First vertex of fragment f (fragments are non-empty intervals).
      std::size_t boundary = 0;
      while (boundary < n && fragment_of[boundary] != f) ++boundary;
      for (const bool pull_left : {true, false}) {
        std::vector<int> candidate = fragment_of;
        if (pull_left) {
          if (boundary == 0 || candidate[boundary - 1] != f - 1) continue;
          candidate[boundary - 1] = f;  // last of f-1 joins f
        } else {
          candidate[boundary] = f - 1;  // first of f joins f-1
        }
        const assessment a =
            assess(graph, candidate, fragment_count, capacity);
        if (a.feasible && a.cut < best.cut) {
          fragment_of = std::move(candidate);
          best = a;
          improved = true;
          break;  // boundary moved; recompute it before trying again
        }
      }
    }
    if (!improved) break;
  }
}

partition_verify_fn& partition_verify_slot() {
  static partition_verify_fn slot;
  return slot;
}

}  // namespace

label_cache_key make_partition_cache_key(const bdd_graph& graph,
                                         const partition_options& options) {
  // Same canonical-string scheme as make_label_cache_key. Budgets enter
  // only through the capacity: (64, 128) and (64, nullopt) plan
  // identically, so they share an entry.
  std::string canonical;
  canonical.reserve(16 * graph.g.edge_count() + 96);
  canonical += "partition;v=" + std::to_string(partition_algorithm_version);
  canonical += ";cap=" + std::to_string(capacity_of(options));
  canonical += std::string(";refine=") + (options.refine ? "1" : "0");
  canonical += ";n=" + std::to_string(graph.g.node_count());
  canonical += ";e=";
  for (const graph::edge& e : graph.g.edges()) {
    canonical += std::to_string(e.u);
    canonical += '-';
    canonical += std::to_string(e.v);
    canonical += ',';
  }

  fnv1a_hasher hasher;
  hasher.add_string(canonical);
  return {hasher.digest(), std::move(canonical)};
}

partition_cache::partition_cache()
    : memo_("partition_cache", "cache.partition") {}

std::optional<partition_plan> partition_cache::find(
    const label_cache_key& key) const {
  return memo_.find(key.digest, key.canonical);
}

void partition_cache::store(const label_cache_key& key, partition_plan plan) {
  const std::uint64_t bytes = plan.fragment_of.size() * sizeof(int) +
                              plan.cut_edges.size() * sizeof(std::size_t) +
                              sizeof(partition_plan);
  memo_.store(key.digest, key.canonical, std::move(plan), bytes);
}

partition_cache::counters partition_cache::stats() const {
  return memo_.stats();
}

void partition_cache::set_capacity_bytes(std::uint64_t capacity) {
  memo_.set_capacity_bytes(capacity);
}

std::uint64_t partition_cache::capacity_bytes() const {
  return memo_.capacity_bytes();
}

void partition_cache::clear() { memo_.clear(); }

partition_plan plan_partition(const bdd_graph& graph,
                              const partition_options& options,
                              partition_cache* cache) {
  if (options.max_rows && *options.max_rows < 1)
    throw infeasible_error("infeasible: --max-rows must be at least 1");
  if (options.max_columns && *options.max_columns < 1)
    throw infeasible_error("infeasible: --max-cols must be at least 1");

  partition_plan plan;
  plan.capacity = capacity_of(options);
  const std::size_t n = graph.g.node_count();
  plan.fragment_of.assign(n, 0);
  // Unbounded, or the whole graph fits one array under any labeling: the
  // trivial plan, never worth caching.
  if (plan.capacity == 0 || n <= static_cast<std::size_t>(plan.capacity))
    return plan;

  std::optional<label_cache_key> key;
  if (cache != nullptr) {
    key = make_partition_cache_key(graph, options);
    if (std::optional<partition_plan> hit = cache->find(*key)) return *hit;
  }

  plan.fragment_of = greedy_pack(graph, plan.capacity);
  plan.fragment_count = plan.fragment_of.empty()
                            ? 1
                            : plan.fragment_of.back() + 1;
  if (options.refine && plan.fragment_count > 1)
    refine_boundaries(graph, plan.fragment_of, plan.fragment_count,
                      plan.capacity);

  const std::vector<graph::edge>& edges = graph.g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i)
    if (plan.fragment_of[static_cast<std::size_t>(edges[i].u)] !=
        plan.fragment_of[static_cast<std::size_t>(edges[i].v)])
      plan.cut_edges.push_back(i);

  if (key) cache->store(*key, plan);
  return plan;
}

std::vector<fragment_graph> build_fragment_graphs(const bdd_graph& graph,
                                                  const partition_plan& plan) {
  const std::size_t n = graph.g.node_count();
  check(plan.fragment_of.size() == n,
        "partition: plan does not match the graph");
  const int k = plan.fragment_count;
  std::vector<fragment_graph> fragments(static_cast<std::size_t>(k));
  std::vector<graph::node_id> local_of(n, -1);
  const bool have_handles = graph.handle_of.size() == n;

  // Members first, in global vertex order, so fragment construction (and
  // therefore labeling cache keys) is deterministic.
  for (std::size_t v = 0; v < n; ++v) {
    fragment_graph& f = fragments[static_cast<std::size_t>(plan.fragment_of[v])];
    local_of[v] = f.graph.g.add_node();
    f.global_of.push_back(static_cast<graph::node_id>(v));
    if (have_handles) f.graph.handle_of.push_back(graph.handle_of[v]);
  }
  for (fragment_graph& f : fragments) f.member_count = f.graph.g.node_count();

  // Edges in global order. A cut edge's device lives in the later fragment,
  // attached to a port vertex mirroring the earlier endpoint (one port per
  // distinct earlier endpoint per fragment).
  std::vector<std::unordered_map<graph::node_id, graph::node_id>> port_of(
      static_cast<std::size_t>(k));
  const std::vector<graph::edge>& edges = graph.g.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const graph::edge& e = edges[i];
    const int fu = plan.fragment_of[static_cast<std::size_t>(e.u)];
    const int fv = plan.fragment_of[static_cast<std::size_t>(e.v)];
    if (fu == fv) {
      fragment_graph& f = fragments[static_cast<std::size_t>(fu)];
      f.graph.g.add_edge(local_of[static_cast<std::size_t>(e.u)],
                         local_of[static_cast<std::size_t>(e.v)]);
      f.graph.literal_of_edge.push_back(graph.literal_of_edge[i]);
      continue;
    }
    const int later = std::max(fu, fv);
    const graph::node_id earlier_global = fu < fv ? e.u : e.v;
    const graph::node_id later_local =
        local_of[static_cast<std::size_t>(fu < fv ? e.v : e.u)];
    fragment_graph& f = fragments[static_cast<std::size_t>(later)];
    auto& ports = port_of[static_cast<std::size_t>(later)];
    graph::node_id port_local;
    const auto it = ports.find(earlier_global);
    if (it == ports.end()) {
      port_local = f.graph.g.add_node();
      f.global_of.push_back(earlier_global);
      if (have_handles)
        f.graph.handle_of.push_back(
            graph.handle_of[static_cast<std::size_t>(earlier_global)]);
      f.ports.push_back(
          {port_local, earlier_global,
           plan.fragment_of[static_cast<std::size_t>(earlier_global)]});
      ports.emplace(earlier_global, port_local);
    } else {
      port_local = it->second;
    }
    f.graph.g.add_edge(port_local, later_local);
    f.graph.literal_of_edge.push_back(graph.literal_of_edge[i]);
  }

  // The terminal and each output bind only in their home fragments; the
  // stitched evaluation reaches them through the bridges. Constant outputs
  // need no hardware, so they ride on fragment 0.
  if (graph.terminal_node >= 0) {
    const std::size_t home =
        static_cast<std::size_t>(plan.fragment_of[static_cast<std::size_t>(
            graph.terminal_node)]);
    fragments[home].graph.terminal_node =
        local_of[static_cast<std::size_t>(graph.terminal_node)];
  }
  for (const bdd_graph::output_binding& out : graph.outputs) {
    const std::size_t home = static_cast<std::size_t>(
        plan.fragment_of[static_cast<std::size_t>(out.node)]);
    fragments[home].graph.outputs.push_back(
        {local_of[static_cast<std::size_t>(out.node)], out.name});
  }
  for (const auto& constant : graph.constant_outputs)
    fragments[0].graph.constant_outputs.push_back(constant);
  return fragments;
}

void set_partition_verify(partition_verify_fn fn) {
  partition_verify_slot() = std::move(fn);
}

bool partition_verify_installed() {
  return partition_verify_slot() != nullptr;
}

partitioned_synthesis_result synthesize_partitioned(
    bdd::manager& m, const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& names, const synthesis_options& options) {
  stopwatch clock;
  const resource_limit_scope watchdog(
      {options.memory_limit_bytes, options.deadline_seconds});
  partitioned_synthesis_result result;

  stopwatch graph_clock;
  const bdd_graph graph = build_bdd_graph(m, roots, names);
  if (options.gc_at_stage_boundaries) m.collect_garbage(roots);
  const double graph_seconds = graph_clock.seconds();

  partition_options plan_options;
  plan_options.max_rows = options.max_rows;
  plan_options.max_columns = options.max_columns;
  stopwatch plan_clock;
  result.plan = plan_partition(graph, plan_options, options.partition_memo);
  const double plan_seconds = plan_clock.seconds();

  if (options.telemetry != nullptr) {
    telemetry_event event;
    event.stage = "partition";
    event.seconds = plan_seconds;
    event.metric("arrays", static_cast<double>(result.plan.fragment_count));
    event.metric("cut_edges",
                 static_cast<double>(result.plan.cut_edges.size()));
    event.metric("capacity", static_cast<double>(result.plan.capacity));
    options.telemetry->emit(event);
  }

  if (result.plan.fragment_count <= 1) {
    // Degenerate partition: run the canonical single-array pipeline so the
    // design is byte-identical to an unpartitioned run. Budgets are
    // stripped — the plan proves any labeling fits (rows <= n <= capacity).
    synthesis_options single = options;
    single.max_rows.reset();
    single.max_columns.reset();
    synthesis_result inner = synthesize_gc(m, roots, names, single);
    result.fragment_labels.push_back(std::move(inner.labels));
    result.stats = std::move(inner.stats);
    result.stats.arrays = 1;
    result.verification = std::move(inner.verification);
    result.validation = std::move(inner.validation);
    result.design = xbar::wrap_single(std::move(inner.design));
    result.stats.synthesis_seconds = clock.seconds();
    return result;
  }

  const int k = result.plan.fragment_count;
  const std::vector<fragment_graph> fragments =
      build_fragment_graphs(graph, result.plan);

  // Per-fragment subproblems share cache entries with unbudgeted runs:
  // budgets are stripped (the packing guarantees fit), and like the
  // separate-ROBDD flow the inner sites stay serial so only this fan-out
  // level multiplies threads and designs stay thread-count-invariant.
  labeling_cache local_cache;
  labeling_cache* cache =
      options.cache != nullptr
          ? options.cache
          : (options.use_labeling_cache ? &local_cache : nullptr);
  synthesis_options per_fragment = options;
  per_fragment.max_rows.reset();
  per_fragment.max_columns.reset();
  per_fragment.partition = true;
  per_fragment.parallel = {};
  per_fragment.cache = cache;
  per_fragment.validate_design = false;
  per_fragment.verify_design = false;
  per_fragment.time_limit_seconds =
      std::max(0.5, options.time_limit_seconds / static_cast<double>(k));

  struct fragment_outcome {
    labeling labels;
    mapping_result mapped;
    synthesis_stats stats;
  };
  stopwatch fragments_clock;
  std::vector<fragment_outcome> outcomes = parallel_map(
      options.parallel, static_cast<std::size_t>(k), [&](std::size_t i) {
        const trace_span span("fragment:" + std::to_string(i), "partition");
        synthesis_context ctx;
        ctx.options = per_fragment;
        ctx.telemetry = options.telemetry;
        ctx.cache = cache;
        ctx.graph = fragments[i].graph;
        ctx.stats.graph_nodes = ctx.graph.g.node_count();
        ctx.stats.graph_edges = ctx.graph.g.edge_count();
        const pipeline p = make_label_map_pipeline(per_fragment);
        p.run(ctx);
        check(ctx.mapped.has_value(),
              "partition: fragment pipeline produced no design");
        return fragment_outcome{std::move(ctx.labels), std::move(*ctx.mapped),
                                std::move(ctx.stats)};
      });
  const double fragments_seconds = fragments_clock.seconds();

  // Stitch: fragments in order, then one bridge per port welding the port's
  // nanowire to its home vertex's nanowire. Fragments without the terminal
  // drop the input-row designation map_to_crossbar defaulted in — they are
  // driven through bridges, not by the input wordline.
  for (int f = 0; f < k; ++f) {
    xbar::crossbar design = std::move(outcomes[static_cast<std::size_t>(f)]
                                          .mapped.design);
    if (fragments[static_cast<std::size_t>(f)].graph.terminal_node < 0)
      design.clear_input_row();
    result.design.add_fragment(std::move(design));
  }

  const std::size_t n = graph.g.node_count();
  std::vector<int> home_fragment(n, -1);
  std::vector<graph::node_id> home_local(n, -1);
  for (int f = 0; f < k; ++f) {
    const fragment_graph& frag = fragments[static_cast<std::size_t>(f)];
    for (std::size_t i = 0; i < frag.member_count; ++i) {
      const auto global = static_cast<std::size_t>(frag.global_of[i]);
      home_fragment[global] = f;
      home_local[global] = static_cast<graph::node_id>(i);
    }
  }
  const auto wire_of = [&](int fragment, graph::node_id local) {
    const mapping_result& mapped =
        outcomes[static_cast<std::size_t>(fragment)].mapped;
    xbar::wire_ref ref;
    ref.array = fragment;
    const auto v = static_cast<std::size_t>(local);
    if (mapped.row_of[v] >= 0) {
      ref.kind = xbar::wire_kind::row;
      ref.index = mapped.row_of[v];
    } else {
      ref.kind = xbar::wire_kind::column;
      ref.index = mapped.column_of[v];
    }
    return ref;
  };
  int bridge_count = 0;
  for (int f = 0; f < k; ++f)
    for (const fragment_graph::port& port :
         fragments[static_cast<std::size_t>(f)].ports) {
      const auto global = static_cast<std::size_t>(port.global);
      result.design.add_connection(
          wire_of(home_fragment[global], home_local[global]),
          wire_of(f, port.local));
      ++bridge_count;
    }

  result.fragment_labels.reserve(static_cast<std::size_t>(k));
  for (fragment_outcome& outcome : outcomes)
    result.fragment_labels.push_back(std::move(outcome.labels));

  synthesis_stats& stats = result.stats;
  stats.graph_nodes = graph.g.node_count();
  stats.graph_edges = graph.g.edge_count();
  stats.arrays = k;
  stats.cut_edges = static_cast<int>(result.plan.cut_edges.size());
  stats.bridges = bridge_count;
  bool all_optimal = true;
  double worst_gap = 0.0;
  for (const fragment_outcome& outcome : outcomes) {
    stats.vh_count += outcome.stats.vh_count;
    all_optimal = all_optimal && outcome.stats.optimal;
    worst_gap = std::max(worst_gap, outcome.stats.relative_gap);
  }
  stats.optimal = all_optimal;
  stats.relative_gap = worst_gap;
  stats.rows = result.design.max_fragment_rows();
  stats.columns = result.design.max_fragment_columns();
  stats.max_dimension = std::max(stats.rows, stats.columns);
  stats.semiperimeter = result.design.total_semiperimeter();
  stats.area = result.design.total_area();
  stats.power_proxy = result.design.active_device_count();
  stats.delay_steps = result.design.delay_steps();
  if (cache != nullptr) {
    const labeling_cache::counters counters = cache->stats();
    stats.cache_hits = counters.hits;
    stats.cache_misses = counters.misses;
  }
  stats.stage_seconds.push_back({"build_graph", graph_seconds});
  stats.stage_seconds.push_back({"partition", plan_seconds});
  stats.stage_seconds.push_back({"fragments", fragments_seconds});

  if (options.verify_design) {
    check(partition_verify_installed(),
          "partition: options.verify_design is set but no stitched verify "
          "pass is installed; link the verify library (compact::all) or call "
          "verify::install_pipeline_pass() first");
    stopwatch verify_clock;
    result.verification = partition_verify_slot()(result.design, m, roots,
                                                  names, options);
    stats.stage_seconds.push_back({"verify", verify_clock.seconds()});
  }
  if (options.validate_design) {
    xbar::validation_options validate_options;
    validate_options.parallel = options.parallel;
    stopwatch validate_clock;
    result.validation = xbar::validate_against_bdd(
        result.design, m, roots, names, m.variable_count(), validate_options);
    stats.stage_seconds.push_back({"validate", validate_clock.seconds()});
  }

  stats.synthesis_seconds = clock.seconds();
  return result;
}

partitioned_synthesis_result synthesize_partitioned_network(
    const frontend::network& net, const synthesis_options& options) {
  // Installed before the SBDD build, which allocates long before the first
  // sampled boundary inside synthesize_partitioned.
  const resource_limit_scope watchdog(
      {options.memory_limit_bytes, options.deadline_seconds});
  bdd::manager m(net.input_count());
  const frontend::sbdd built = frontend::build_sbdd(net, m);
  return synthesize_partitioned(m, built.roots, built.names, options);
}

}  // namespace compact::core
