#include "core/bdd_graph.hpp"

#include <algorithm>
#include <unordered_map>

#include "bdd/stats.hpp"
#include "util/error.hpp"

namespace compact::core {

std::vector<graph::node_id> bdd_graph::aligned_nodes() const {
  std::vector<graph::node_id> nodes;
  for (const output_binding& o : outputs) nodes.push_back(o.node);
  if (terminal_node >= 0) nodes.push_back(terminal_node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

bdd_graph build_bdd_graph(const bdd::manager& m,
                          const std::vector<bdd::node_handle>& roots,
                          const std::vector<std::string>& names) {
  check(roots.size() == names.size(),
        "build_bdd_graph: roots/names size mismatch");
  bdd_graph result;

  // Collect the non-constant roots; constants never touch the crossbar.
  std::vector<bdd::node_handle> live_roots;
  std::vector<std::string> live_names;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (m.is_terminal(roots[i]))
      result.constant_outputs.emplace_back(names[i],
                                           roots[i] == bdd::true_handle);
    else {
      live_roots.push_back(roots[i]);
      live_names.push_back(names[i]);
    }
  }
  if (live_roots.empty()) return result;

  // One graph vertex per reachable BDD node except the '0' terminal.
  const bdd::reachable_set reachable = bdd::collect_reachable(m, live_roots);
  std::unordered_map<bdd::node_handle, graph::node_id> vertex_of;
  for (bdd::node_handle u : reachable.nodes) {
    if (u == bdd::false_handle) continue;
    const graph::node_id v = result.g.add_node();
    vertex_of.emplace(u, v);
    result.handle_of.push_back(u);
    if (u == bdd::true_handle) result.terminal_node = v;
  }
  // Every live root reaches the 1-terminal (a node all of whose paths lead
  // to 0 would have been reduced to the 0 terminal).
  check(result.terminal_node >= 0,
        "build_bdd_graph: no path to the 1-terminal");

  // Edges: each BDD edge to a non-0 child, tagged with its literal
  // (high edge: variable true; low edge: variable false).
  for (bdd::node_handle u : reachable.nodes) {
    if (m.is_terminal(u)) continue;
    const bdd::node& n = m.at(u);
    const graph::node_id gu = vertex_of.at(u);
    auto add = [&](bdd::node_handle child, bool positive) {
      if (child == bdd::false_handle) return;
      const std::size_t before = result.g.edge_count();
      result.g.add_edge(gu, vertex_of.at(child));
      check(result.g.edge_count() == before + 1,
            "build_bdd_graph: unexpected parallel BDD edge");
      result.literal_of_edge.push_back({n.var, positive});
    };
    add(n.high, /*positive=*/true);
    add(n.low, /*positive=*/false);
  }

  for (std::size_t i = 0; i < live_roots.size(); ++i)
    result.outputs.push_back({vertex_of.at(live_roots[i]), live_names[i]});
  return result;
}

}  // namespace compact::core
