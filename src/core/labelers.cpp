// Labeler registry and the built-in "oct" / "mip" labeler adapters.
#include "core/labelers.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <unordered_map>

#include "core/oct_reduce.hpp"
#include "util/error.hpp"

namespace compact::core {
namespace {

/// Deterministic, round-trip-exact double encoding for cache salts.
std::string encode_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string encode_optional_int(const std::optional<int>& value) {
  return value ? std::to_string(*value) : std::string("-");
}

const char* engine_name(graph::oct_engine engine) {
  return engine == graph::oct_engine::bnb ? "bnb" : "ilp";
}

/// Method 1 as a pluggable labeler.
class oct_labeler final : public labeler {
 public:
  [[nodiscard]] std::string name() const override { return "oct"; }

  [[nodiscard]] static oct_label_options to_options(
      const labeler_request& request) {
    oct_label_options oct;
    oct.alignment = request.alignment;
    oct.engine = request.oct_engine;
    oct.time_limit_seconds = request.time_limit_seconds;
    oct.reduce = request.reduce;
    oct.threads = request.threads;
    return oct;
  }

  [[nodiscard]] std::string cache_salt(
      const labeler_request& request) const override {
    return oct_cache_salt(to_options(request));
  }

  [[nodiscard]] labeler_result label(
      const bdd_graph& graph, const labeler_request& request) const override {
    // Dimension budgets are not part of the OCT objective; the map pass
    // enforces them post hoc (and partitioning splits designs that cannot
    // fit), so a budgeted request labels exactly like an unbudgeted one.
    oct_label_result r = label_minimal_semiperimeter(graph, to_options(request));
    labeler_result result;
    result.l = std::move(r.l);
    result.optimal = r.optimal;
    result.oct_size = r.oct_size;
    result.promoted = r.promoted;
    return result;
  }
};

/// Method 2 as a pluggable labeler.
class mip_labeler final : public labeler {
 public:
  [[nodiscard]] std::string name() const override { return "mip"; }

  [[nodiscard]] static mip_label_options to_options(
      const labeler_request& request) {
    mip_label_options mip;
    mip.gamma = request.gamma;
    mip.alignment = request.alignment;
    mip.time_limit_seconds = request.time_limit_seconds;
    mip.max_rows = request.max_rows;
    mip.max_columns = request.max_columns;
    mip.oct_time_limit_seconds =
        std::max(1.0, request.time_limit_seconds * 0.25);
    mip.reduce = request.reduce;
    mip.threads = request.threads;
    mip.cache = request.cache;
    mip.telemetry = request.telemetry;
    return mip;
  }

  [[nodiscard]] std::string cache_salt(
      const labeler_request& request) const override {
    return mip_cache_salt(to_options(request));
  }

  [[nodiscard]] labeler_result label(
      const bdd_graph& graph, const labeler_request& request) const override {
    mip_label_result r = label_weighted(graph, to_options(request));
    labeler_result result;
    result.l = std::move(r.l);
    result.optimal = r.optimal;
    result.relative_gap = r.relative_gap;
    result.trace = std::move(r.trace);
    return result;
  }
};

struct registry {
  std::mutex mutex;
  std::unordered_map<std::string, std::unique_ptr<labeler>> labelers;
};

registry& global_registry() {
  // The built-ins are registered as part of constructing the singleton, so
  // every lookup path sees them without a separate init call.
  static registry* instance = [] {
    auto* r = new registry;
    r->labelers.emplace("oct", std::make_unique<oct_labeler>());
    r->labelers.emplace("mip", std::make_unique<mip_labeler>());
    return r;
  }();
  return *instance;
}

/// Sorted names; the caller must hold `r.mutex`.
std::vector<std::string> names_locked(const registry& r) {
  std::vector<std::string> names;
  names.reserve(r.labelers.size());
  for (const auto& [name, impl] : r.labelers) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

// Both salts deliberately EXCLUDE the thread count: every labeler is
// required to be bit-identical across thread counts, so a cache entry
// written at --threads 8 must satisfy a --threads 1 request (and the
// determinism tests would catch a violation). They deliberately INCLUDE the
// reduction toggle and oct_reduction_version: reductions change which of
// several equal-cost labelings is found, so entries written with reductions
// off (or under an older rule set) must never be served to a reductions-on
// request.

std::string oct_cache_salt(const oct_label_options& options) {
  return std::string("align=") + (options.alignment ? "1" : "0") +
         ";balance=" + (options.balance ? "1" : "0") +
         ";engine=" + engine_name(options.engine) +
         ";tl=" + encode_double(options.time_limit_seconds) +
         ";reduce=" + (options.reduce ? "1" : "0") +
         ";rv=" + std::to_string(options.reduce ? oct_reduction_version : 0);
}

std::string mip_cache_salt(const mip_label_options& options) {
  return std::string("gamma=") + encode_double(options.gamma) +
         ";align=" + (options.alignment ? "1" : "0") +
         ";tl=" + encode_double(options.time_limit_seconds) +
         ";warm=" + (options.warm_start_with_oct ? "1" : "0") +
         ";oct_tl=" + encode_double(options.oct_time_limit_seconds) +
         ";max_r=" + encode_optional_int(options.max_rows) +
         ";max_c=" + encode_optional_int(options.max_columns) +
         ";reduce=" + (options.reduce ? "1" : "0") +
         ";rv=" + std::to_string(options.reduce ? oct_reduction_version : 0);
}

void register_labeler(std::unique_ptr<labeler> implementation) {
  check(implementation != nullptr, "register_labeler: null labeler");
  const std::string name = implementation->name();
  check(!name.empty(), "register_labeler: labeler has an empty name");
  registry& r = global_registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.labelers[name] = std::move(implementation);
}

const labeler& find_labeler(const std::string& name) {
  registry& r = global_registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.labelers.find(name);
  if (it == r.labelers.end()) {
    std::string known;
    for (const std::string& n : names_locked(r))
      known += (known.empty() ? "" : ", ") + n;
    throw error("unknown labeler '" + name + "' (registered: " + known + ")");
  }
  return *it->second;
}

std::vector<std::string> registered_labeler_names() {
  registry& r = global_registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  return names_locked(r);
}

}  // namespace compact::core
