// Human-readable synthesis reports.
//
// Bundles everything a reviewer asks about a crossbar design — dimensions,
// labeling breakdown, optimality status, solver trace, validation verdict —
// into one markdown document. Emitted by the CLI's --report flag and used
// in EXPERIMENTS.md-style record keeping.
#pragma once

#include <ostream>
#include <string>

#include "core/compact.hpp"
#include "xbar/validate.hpp"

namespace compact::core {

struct report_inputs {
  std::string circuit_name;
  const synthesis_result* result = nullptr;          // required
  const xbar::validation_report* validation = nullptr;  // optional
};

/// Write a markdown report for one synthesis run.
void write_report(const report_inputs& inputs, std::ostream& os);

}  // namespace compact::core
