// The two VH-labeling engines of Section VI.
//
//  * label_minimal_semiperimeter — Method 1: minimum odd cycle transversal
//    via vertex cover of G x K2 (Lemma 1), then a 2-coloring of the induced
//    bipartite subgraph. Extended here (beyond the paper's description) to
//    honor alignment by per-component orientation and minimal VH promotion,
//    and to balance R vs C via a per-component flip DP (the Fig. 6
//    mechanism).
//  * label_weighted — Method 2: the MIP of Eq. 4 with the alignment
//    constraints of Eq. 7, minimizing gamma*S + (1-gamma)*D, warm-started
//    from Method 1's labeling.
#pragma once

#include <optional>

#include "core/bdd_graph.hpp"
#include "core/labeling.hpp"
#include "graph/oct.hpp"
#include "milp/branch_and_bound.hpp"

namespace compact::core {

struct oct_label_options {
  bool alignment = true;
  bool balance = true;  // balance R vs C among equal-semiperimeter colorings
  graph::oct_engine engine = graph::oct_engine::bnb;
  double time_limit_seconds = 60.0;
};

struct oct_label_result {
  labeling l;
  std::size_t oct_size = 0;  // VH labels before alignment promotions
  std::size_t promoted = 0;  // extra VH labels forced by alignment
  bool optimal = false;      // OCT proven minimum
};

[[nodiscard]] oct_label_result label_minimal_semiperimeter(
    const bdd_graph& graph, const oct_label_options& options = {});

struct mip_label_options {
  double gamma = 0.5;
  bool alignment = true;
  double time_limit_seconds = 60.0;
  /// Warm start with Method 1's labeling (strongly recommended; guarantees
  /// an incumbent even when the solver times out at the root).
  bool warm_start_with_oct = true;
  double oct_time_limit_seconds = 30.0;
  /// Optional hard budgets on the crossbar dimensions (Section III's
  /// constrained problem formulation). When no labeling fits,
  /// label_weighted throws infeasible_error; when the solver cannot decide
  /// within the time limit it throws a plain error.
  std::optional<int> max_rows;
  std::optional<int> max_columns;
};

struct mip_label_result {
  labeling l;
  bool optimal = false;
  double relative_gap = 0.0;
  double best_bound = 0.0;
  double objective = 0.0;
  long nodes_explored = 0;
  std::vector<milp::mip_trace_entry> trace;
};

[[nodiscard]] mip_label_result label_weighted(
    const bdd_graph& graph, const mip_label_options& options = {});

}  // namespace compact::core
