// The VH-labeling engines of Section VI, behind a pluggable interface.
//
// Two engines ship with the library:
//
//  * label_minimal_semiperimeter — Method 1: minimum odd cycle transversal
//    via vertex cover of G x K2 (Lemma 1), then a 2-coloring of the induced
//    bipartite subgraph. Extended here (beyond the paper's description) to
//    honor alignment by per-component orientation and minimal VH promotion,
//    and to balance R vs C via a per-component flip DP (the Fig. 6
//    mechanism).
//  * label_weighted — Method 2: the MIP of Eq. 4 with the alignment
//    constraints of Eq. 7, minimizing gamma*S + (1-gamma)*D, warm-started
//    from Method 1's labeling.
//
// Both are also exposed as `labeler` implementations registered under "oct"
// and "mip" in a process-wide registry, which is how the synthesis pipeline
// (core/pipeline) dispatches the label stage. A third labeling strategy is
// one register_labeler() call — no edits to the pipeline or to compact.cpp.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bdd_graph.hpp"
#include "core/label_cache.hpp"
#include "core/labeling.hpp"
#include "graph/oct.hpp"
#include "milp/branch_and_bound.hpp"
#include "util/telemetry.hpp"

namespace compact::core {

struct oct_label_options {
  bool alignment = true;
  bool balance = true;  // balance R vs C among equal-semiperimeter colorings
  graph::oct_engine engine = graph::oct_engine::bnb;
  double time_limit_seconds = 60.0;
  /// Kernelize the graph (core/oct_reduce) before running the OCT engine.
  /// Exact: the lifted transversal has the same size as an unreduced solve.
  bool reduce = true;
  /// Worker threads for the underlying solver (ilp engine only; the
  /// combinatorial bnb engine is single-threaded). Never part of cache
  /// keys: results are bit-identical across thread counts.
  int threads = 1;
};

struct oct_label_result {
  labeling l;
  std::size_t oct_size = 0;  // VH labels before alignment promotions
  std::size_t promoted = 0;  // extra VH labels forced by alignment
  bool optimal = false;      // OCT proven minimum
};

[[nodiscard]] oct_label_result label_minimal_semiperimeter(
    const bdd_graph& graph, const oct_label_options& options = {});

struct mip_label_options {
  double gamma = 0.5;
  bool alignment = true;
  double time_limit_seconds = 60.0;
  /// Warm start with Method 1's labeling (strongly recommended; guarantees
  /// an incumbent even when the solver times out at the root).
  bool warm_start_with_oct = true;
  double oct_time_limit_seconds = 30.0;
  /// Kernelize the OCT warm-start subproblem (core/oct_reduce). Part of the
  /// cache key (tie-breaking among equal-cost labelings can differ).
  bool reduce = true;
  /// Worker threads for the branch-and-bound solver. Never part of cache
  /// keys: the solver is deterministic across thread counts.
  int threads = 1;
  /// Optional hard budgets on the crossbar dimensions (Section III's
  /// constrained problem formulation). When no labeling fits,
  /// label_weighted throws infeasible_error; when the solver cannot decide
  /// within the time limit it throws a plain error.
  std::optional<int> max_rows;
  std::optional<int> max_columns;
  /// When set, the Method 1 warm start is looked up in / stored into this
  /// cache (keyed exactly like the standalone "oct" labeler), so gamma
  /// sweeps over one graph solve the OCT subproblem once.
  labeling_cache* cache = nullptr;
  /// When set, every solver incumbent/bound improvement is emitted as a
  /// "mip_trace" telemetry event in addition to being returned in `trace`.
  telemetry_sink* telemetry = nullptr;
};

struct mip_label_result {
  labeling l;
  bool optimal = false;
  double relative_gap = 0.0;
  double best_bound = 0.0;
  double objective = 0.0;
  long nodes_explored = 0;
  std::vector<milp::mip_trace_entry> trace;
};

[[nodiscard]] mip_label_result label_weighted(
    const bdd_graph& graph, const mip_label_options& options = {});

// ---------------------------------------------------------------------------
// Pluggable labeler interface + registry.

/// The option set the pipeline hands any labeler. Engine-specific options
/// are derived from these (see the "oct" and "mip" implementations); custom
/// labelers are free to ignore fields that do not apply to them.
struct labeler_request {
  double gamma = 0.5;
  bool alignment = true;
  double time_limit_seconds = 60.0;
  graph::oct_engine oct_engine = graph::oct_engine::bnb;
  std::optional<int> max_rows;
  std::optional<int> max_columns;
  /// Kernelize OCT instances before solving (core/oct_reduce). Affects
  /// cache keys (together with oct_reduction_version).
  bool reduce = true;
  /// Solver worker threads. Excluded from cache keys by contract: every
  /// labeler must return bit-identical results for any thread count.
  int threads = 1;
  /// Shared labeling cache for nested subproblems (e.g. the MIP labeler's
  /// OCT warm start); the pipeline separately memoizes the labeler's own
  /// result. May be null.
  labeling_cache* cache = nullptr;
  /// Sink for solver-milestone events (e.g. MIP convergence). May be null.
  telemetry_sink* telemetry = nullptr;
};

/// What the pipeline needs back from any labeling strategy.
struct labeler_result {
  labeling l;
  bool optimal = false;
  double relative_gap = 0.0;
  std::vector<milp::mip_trace_entry> trace;  // MIP convergence (Fig. 10)
  std::size_t oct_size = 0;                  // Method 1 diagnostics
  std::size_t promoted = 0;
};

/// A VH-labeling strategy. Implementations must be deterministic functions
/// of (graph, request) — the labeling cache and the thread-count-invariance
/// guarantees both rely on it — and safe to call concurrently.
class labeler {
 public:
  virtual ~labeler() = default;

  /// Registry key, e.g. "oct". Stable; also part of cache keys.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Canonical encoding of every request field that can change this
  /// labeler's output. Two requests with equal salts (on the same graph)
  /// must produce identical labelings; used to key the labeling cache.
  [[nodiscard]] virtual std::string cache_salt(
      const labeler_request& request) const = 0;

  [[nodiscard]] virtual labeler_result label(
      const bdd_graph& graph, const labeler_request& request) const = 0;
};

/// Register `implementation` under its name(). Registering a name twice
/// replaces the previous implementation (tests use this to stub labelers).
/// Thread-safe.
void register_labeler(std::unique_ptr<labeler> implementation);

/// Look up a registered labeler; throws compact::error (listing the
/// registered names) when `name` is unknown. The built-in "oct" and "mip"
/// labelers are registered on first use. The returned reference stays valid
/// for the process lifetime unless the name is re-registered.
[[nodiscard]] const labeler& find_labeler(const std::string& name);

/// Names currently registered, sorted.
[[nodiscard]] std::vector<std::string> registered_labeler_names();

/// Canonical option salts for the built-in engines; exposed so nested uses
/// (the MIP labeler's warm start) key the cache identically to a standalone
/// "oct" run with the same options.
[[nodiscard]] std::string oct_cache_salt(const oct_label_options& options);
[[nodiscard]] std::string mip_cache_salt(const mip_label_options& options);

}  // namespace compact::core
