#include "core/compact.hpp"

#include <algorithm>

#include "core/compose.hpp"
#include "core/mapping.hpp"
#include "frontend/to_bdd.hpp"
#include "util/stopwatch.hpp"

namespace compact::core {
namespace {

synthesis_stats stats_from(const bdd_graph& graph, const labeling& l,
                           const xbar::crossbar& design) {
  synthesis_stats stats;
  stats.graph_nodes = graph.g.node_count();
  stats.graph_edges = graph.g.edge_count();
  const labeling_stats ls = compute_stats(l);
  stats.vh_count = ls.vh_count;
  stats.rows = design.rows();
  stats.columns = design.columns();
  stats.semiperimeter = design.semiperimeter();
  stats.max_dimension = design.max_dimension();
  stats.area = design.area();
  stats.power_proxy = design.active_device_count();
  stats.delay_steps = design.delay_steps();
  return stats;
}

}  // namespace

synthesis_result synthesize(const bdd::manager& m,
                            const std::vector<bdd::node_handle>& roots,
                            const std::vector<std::string>& names,
                            const synthesis_options& options) {
  stopwatch clock;
  const bdd_graph graph = build_bdd_graph(m, roots, names);

  labeling labels;
  bool optimal = false;
  double gap = 0.0;
  std::vector<milp::mip_trace_entry> trace;
  if (options.method == labeling_method::minimal_semiperimeter) {
    check(!options.max_rows && !options.max_columns,
          "synthesize: dimension budgets require the weighted_mip method");
    oct_label_options oct;
    oct.alignment = options.alignment;
    oct.engine = options.oct_engine;
    oct.time_limit_seconds = options.time_limit_seconds;
    oct_label_result r = label_minimal_semiperimeter(graph, oct);
    labels = std::move(r.l);
    optimal = r.optimal;
  } else {
    mip_label_options mip;
    mip.gamma = options.gamma;
    mip.alignment = options.alignment;
    mip.time_limit_seconds = options.time_limit_seconds;
    mip.max_rows = options.max_rows;
    mip.max_columns = options.max_columns;
    mip.oct_time_limit_seconds =
        std::max(1.0, options.time_limit_seconds * 0.25);
    mip_label_result r = label_weighted(graph, mip);
    labels = std::move(r.l);
    optimal = r.optimal;
    gap = r.relative_gap;
    trace = std::move(r.trace);
  }

  mapping_result mapped = map_to_crossbar(graph, labels);
  synthesis_result result{std::move(mapped.design), std::move(labels), {}};
  result.stats = stats_from(graph, result.labels, result.design);
  result.stats.optimal = optimal;
  result.stats.relative_gap = gap;
  result.stats.trace = std::move(trace);
  result.stats.synthesis_seconds = clock.seconds();
  return result;
}

synthesis_result synthesize_network(const frontend::network& net,
                                    const synthesis_options& options) {
  bdd::manager m(net.input_count());
  const frontend::sbdd built = frontend::build_sbdd(net, m);
  return synthesize(m, built.roots, built.names, options);
}

synthesis_result synthesize_separate_robdds(const frontend::network& net,
                                            const synthesis_options& options) {
  stopwatch clock;
  const auto output_count = static_cast<int>(net.outputs().size());
  check(output_count > 0, "synthesize_separate_robdds: network has no outputs");

  // Per-output synthesis. The time budget is split across outputs so the
  // total remains comparable to the SBDD flow's. Outputs fan out across
  // options.parallel workers — each builds its ROBDD in a private manager —
  // and the inner sites stay serial so only this level multiplies threads.
  synthesis_options per_output = options;
  per_output.time_limit_seconds = std::max(
      0.5, options.time_limit_seconds / static_cast<double>(output_count));
  per_output.parallel = {};

  const std::vector<synthesis_result> parts = parallel_map(
      options.parallel, static_cast<std::size_t>(output_count),
      [&](std::size_t o) {
        bdd::manager m(net.input_count());
        const bdd::node_handle root =
            frontend::build_output(net, m, static_cast<int>(o));
        return synthesize(m, {root}, {net.outputs()[o].name}, per_output);
      });

  std::size_t total_nodes = 0;
  std::size_t total_edges = 0;
  int total_vh = 0;
  bool all_optimal = true;
  double worst_gap = 0.0;
  for (const synthesis_result& part : parts) {
    total_nodes += part.stats.graph_nodes;
    total_edges += part.stats.graph_edges;
    total_vh += part.stats.vh_count;
    all_optimal = all_optimal && part.stats.optimal;
    worst_gap = std::max(worst_gap, part.stats.relative_gap);
  }

  // Diagonal composition (Figure 8a): blocks stacked corner to corner, all
  // sharing one bottom input wordline (the merged '1' terminals).
  std::vector<const xbar::crossbar*> blocks;
  blocks.reserve(parts.size());
  for (const synthesis_result& part : parts) blocks.push_back(&part.design);
  xbar::crossbar composed = compose_diagonal(blocks, options.parallel);

  synthesis_result result{std::move(composed), {}, {}};
  result.stats.graph_nodes = total_nodes;
  result.stats.graph_edges = total_edges;
  result.stats.vh_count = total_vh;
  result.stats.rows = result.design.rows();
  result.stats.columns = result.design.columns();
  result.stats.semiperimeter = result.design.semiperimeter();
  result.stats.max_dimension = result.design.max_dimension();
  result.stats.area = result.design.area();
  result.stats.power_proxy = result.design.active_device_count();
  result.stats.delay_steps = result.design.delay_steps();
  result.stats.optimal = all_optimal;
  result.stats.relative_gap = worst_gap;
  result.stats.synthesis_seconds = clock.seconds();
  return result;
}

}  // namespace compact::core
