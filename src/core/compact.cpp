#include "core/compact.hpp"

#include <algorithm>

#include "core/compose.hpp"
#include "core/pipeline.hpp"
#include "frontend/to_bdd.hpp"
#include "util/stopwatch.hpp"
#include "util/trace.hpp"
#include "util/watchdog.hpp"

namespace compact::core {
namespace {

resource_limits limits_of(const synthesis_options& options) {
  resource_limits limits;
  limits.memory_limit_bytes = options.memory_limit_bytes;
  limits.deadline_seconds = options.deadline_seconds;
  return limits;
}

}  // namespace

double synthesis_stats::stage_time(const std::string& stage) const {
  for (const stage_timing& t : stage_seconds)
    if (t.stage == stage) return t.seconds;
  return 0.0;
}

synthesis_result synthesize(const bdd::manager& m,
                            const std::vector<bdd::node_handle>& roots,
                            const std::vector<std::string>& names,
                            const synthesis_options& options) {
  stopwatch clock;
  const resource_limit_scope watchdog(limits_of(options));
  synthesis_context ctx;
  ctx.manager = &m;
  ctx.roots = &roots;
  ctx.names = &names;
  ctx.options = options;
  ctx.telemetry = options.telemetry;
  ctx.cache = options.cache;
  synthesis_result result = run_synthesis_pipeline(ctx);
  result.stats.synthesis_seconds = clock.seconds();
  return result;
}

synthesis_result synthesize_gc(bdd::manager& m,
                               const std::vector<bdd::node_handle>& roots,
                               const std::vector<std::string>& names,
                               const synthesis_options& options) {
  stopwatch clock;
  const resource_limit_scope watchdog(limits_of(options));
  synthesis_context ctx;
  ctx.manager = &m;
  ctx.gc_manager = &m;
  ctx.roots = &roots;
  ctx.names = &names;
  ctx.options = options;
  ctx.telemetry = options.telemetry;
  ctx.cache = options.cache;
  synthesis_result result = run_synthesis_pipeline(ctx);
  result.stats.synthesis_seconds = clock.seconds();
  return result;
}

synthesis_result synthesize_network(const frontend::network& net,
                                    const synthesis_options& options) {
  // Install the watchdog before the SBDD build: that is where a runaway
  // netlist allocates, long before the first pipeline stage boundary.
  const resource_limit_scope watchdog(limits_of(options));
  bdd::manager m(net.input_count());
  const frontend::sbdd built = frontend::build_sbdd(net, m);
  return synthesize_gc(m, built.roots, built.names, options);
}

synthesis_result synthesize_separate_robdds(const frontend::network& net,
                                            const synthesis_options& options) {
  stopwatch clock;
  const resource_limit_scope watchdog(limits_of(options));
  const auto output_count = static_cast<int>(net.outputs().size());
  check(output_count > 0, "synthesize_separate_robdds: network has no outputs");

  // Duplicate per-output subgraphs (common in decoders and replicated
  // logic) are labeled once: every per-output pipeline consults this cache.
  labeling_cache local_cache;
  labeling_cache* cache = options.cache != nullptr
                              ? options.cache
                              : (options.use_labeling_cache ? &local_cache
                                                            : nullptr);

  // Per-output synthesis. The time budget is split across outputs so the
  // total remains comparable to the SBDD flow's. Outputs fan out across
  // options.parallel workers — each builds its ROBDD in a private manager —
  // and the inner sites stay serial so only this level multiplies threads.
  // The telemetry sink and the cache are the only shared state; both are
  // thread-safe.
  synthesis_options per_output = options;
  per_output.time_limit_seconds = std::max(
      0.5, options.time_limit_seconds / static_cast<double>(output_count));
  per_output.parallel = {};
  per_output.cache = cache;
  per_output.validate_design = false;  // the composed design is what counts

  stopwatch outputs_clock;
  const std::vector<synthesis_result> parts = parallel_map(
      options.parallel, static_cast<std::size_t>(output_count),
      [&](std::size_t o) {
        // One span per output: the fan-out shows up as parallel lanes in
        // the Chrome trace, keyed by the worker's tid.
        const trace_span span("output:" + net.outputs()[o].name, "synthesis");
        bdd::manager m(net.input_count());
        const std::vector<bdd::node_handle> roots{
            frontend::build_output(net, m, static_cast<int>(o))};
        const std::vector<std::string> names{net.outputs()[o].name};
        return synthesize_gc(m, roots, names, per_output);
      });
  const double outputs_seconds = outputs_clock.seconds();

  std::size_t total_nodes = 0;
  std::size_t total_edges = 0;
  int total_vh = 0;
  bool all_optimal = true;
  double worst_gap = 0.0;
  for (const synthesis_result& part : parts) {
    total_nodes += part.stats.graph_nodes;
    total_edges += part.stats.graph_edges;
    total_vh += part.stats.vh_count;
    all_optimal = all_optimal && part.stats.optimal;
    worst_gap = std::max(worst_gap, part.stats.relative_gap);
  }

  // Diagonal composition (Figure 8a): blocks stacked corner to corner, all
  // sharing one bottom input wordline (the merged '1' terminals).
  stopwatch compose_clock;
  const trace_span compose_span("compose", "synthesis");
  std::vector<const xbar::crossbar*> blocks;
  blocks.reserve(parts.size());
  for (const synthesis_result& part : parts) blocks.push_back(&part.design);
  xbar::crossbar composed = compose_diagonal(blocks, options.parallel);
  const double compose_seconds = compose_clock.seconds();

  synthesis_result result{std::move(composed), {}, {}, {}, {}};
  result.stats.graph_nodes = total_nodes;
  result.stats.graph_edges = total_edges;
  result.stats.vh_count = total_vh;
  result.stats.rows = result.design.rows();
  result.stats.columns = result.design.columns();
  result.stats.semiperimeter = result.design.semiperimeter();
  result.stats.max_dimension = result.design.max_dimension();
  result.stats.area = result.design.area();
  result.stats.power_proxy = result.design.active_device_count();
  result.stats.delay_steps = result.design.delay_steps();
  result.stats.optimal = all_optimal;
  result.stats.relative_gap = worst_gap;
  result.stats.stage_seconds.push_back({"synthesize_outputs", outputs_seconds});
  result.stats.stage_seconds.push_back({"compose", compose_seconds});
  if (cache != nullptr) {
    const labeling_cache::counters counters = cache->stats();
    result.stats.cache_hits = counters.hits;
    result.stats.cache_misses = counters.misses;
  }
  result.stats.synthesis_seconds = clock.seconds();

  if (options.telemetry != nullptr) {
    telemetry_event event;
    event.stage = "compose";
    event.seconds = compose_seconds;
    event.metric("blocks", static_cast<double>(parts.size()));
    event.metric("rows", result.stats.rows);
    event.metric("columns", result.stats.columns);
    event.metric("semiperimeter", result.stats.semiperimeter);
    event.metric("cache_hits", static_cast<double>(result.stats.cache_hits));
    event.metric("cache_misses",
                 static_cast<double>(result.stats.cache_misses));
    options.telemetry->emit(event);
  }
  return result;
}

}  // namespace compact::core
