#include "core/mapping.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace compact::core {

mapping_result map_to_crossbar(const bdd_graph& graph, const labeling& l) {
  const graph::undirected_graph& g = graph.g;
  check(l.label_of.size() == g.node_count(),
        "map_to_crossbar: labeling size mismatch");
  check(is_feasible(g, l), "map_to_crossbar: infeasible labeling");
  check(satisfies_alignment(graph, l),
        "map_to_crossbar: terminal/outputs must carry a wordline "
        "(run the labeler with alignment enabled)");

  const auto n = static_cast<graph::node_id>(g.node_count());

  // ---- Node assignment. ---------------------------------------------------
  // Row order: distinct output nodes first (top), then the other wordline
  // holders, then the '1' terminal (bottom, the input row).
  std::vector<int> row_of(g.node_count(), -1);
  std::vector<int> column_of(g.node_count(), -1);

  std::vector<graph::node_id> row_order;
  std::vector<bool> placed(g.node_count(), false);
  for (const bdd_graph::output_binding& o : graph.outputs) {
    if (!placed[static_cast<std::size_t>(o.node)]) {
      placed[static_cast<std::size_t>(o.node)] = true;
      row_order.push_back(o.node);
    }
  }
  for (graph::node_id v = 0; v < n; ++v) {
    if (placed[static_cast<std::size_t>(v)] || v == graph.terminal_node)
      continue;
    if (l.has_row(v)) row_order.push_back(v);
  }
  if (graph.terminal_node >= 0) row_order.push_back(graph.terminal_node);

  for (std::size_t r = 0; r < row_order.size(); ++r)
    row_of[static_cast<std::size_t>(row_order[r])] = static_cast<int>(r);

  int columns = 0;
  for (graph::node_id v = 0; v < n; ++v)
    if (l.has_column(v)) column_of[static_cast<std::size_t>(v)] = columns++;

  const int rows = static_cast<int>(row_order.size());
  mapping_result result{
      xbar::crossbar(std::max(rows, 1), columns), std::move(row_of),
      std::move(column_of)};
  xbar::crossbar& design = result.design;

  // VH bridges: the node's wordline and bitline are the same electrical
  // node, realized with an always-on memristor at their junction.
  for (graph::node_id v = 0; v < n; ++v) {
    if (l.label_of[static_cast<std::size_t>(v)] == vh_label::vh)
      design.set_on(result.row_of[static_cast<std::size_t>(v)],
                    result.column_of[static_cast<std::size_t>(v)]);
  }

  // ---- Edge assignment. ----------------------------------------------------
  const std::vector<graph::edge>& edges = g.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const graph::node_id u = edges[e].u;
    const graph::node_id v = edges[e].v;
    const edge_literal lit = graph.literal_of_edge[e];
    int row, column;
    if (l.has_row(u) && l.has_column(v)) {
      row = result.row_of[static_cast<std::size_t>(u)];
      column = result.column_of[static_cast<std::size_t>(v)];
    } else {
      row = result.row_of[static_cast<std::size_t>(v)];
      column = result.column_of[static_cast<std::size_t>(u)];
    }
    check(design.at(row, column).kind == xbar::literal_kind::off,
          "map_to_crossbar: junction assigned twice");
    design.set_literal(row, column, lit.variable, lit.positive);
  }

  // ---- Ports. ----------------------------------------------------------------
  if (graph.terminal_node >= 0)
    design.set_input_row(
        result.row_of[static_cast<std::size_t>(graph.terminal_node)]);
  else
    design.set_input_row(0);  // degenerate: constants only
  for (const bdd_graph::output_binding& o : graph.outputs)
    design.add_output(result.row_of[static_cast<std::size_t>(o.node)], o.name);
  for (const auto& [name, value] : graph.constant_outputs)
    design.add_constant_output(value, name);

  return result;
}

}  // namespace compact::core
