// Crossbar mapping (Section V-C).
//
// Binds a feasibly-labeled BDD graph to a concrete crossbar design:
//  * node assignment — every H node gets a wordline, every V node a bitline,
//    every VH node one of each plus an always-on memristor bridging them;
//  * edge assignment — every graph edge becomes a memristor programmed with
//    its literal at the junction of one endpoint's wordline and the other
//    endpoint's bitline.
// Layout follows the paper's conventions: output wordlines top-most, the
// '1'-terminal (input) wordline bottom-most.
#pragma once

#include <vector>

#include "core/bdd_graph.hpp"
#include "core/labeling.hpp"
#include "xbar/crossbar.hpp"

namespace compact::core {

struct mapping_result {
  xbar::crossbar design;
  std::vector<int> row_of;     // per graph vertex; -1 when V-labeled
  std::vector<int> column_of;  // per graph vertex; -1 when H-labeled
};

/// Requires a feasible labeling that gives a row to the terminal and to
/// every output node (use alignment in the labelers to guarantee this).
[[nodiscard]] mapping_result map_to_crossbar(const bdd_graph& graph,
                                             const labeling& l);

}  // namespace compact::core
