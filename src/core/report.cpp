#include "core/report.hpp"

#include <array>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace compact::core {

void write_report(const report_inputs& inputs, std::ostream& os) {
  check(inputs.result != nullptr, "write_report: result is required");
  const synthesis_result& r = *inputs.result;
  const synthesis_stats& s = r.stats;

  os << "# COMPACT synthesis report";
  if (!inputs.circuit_name.empty()) os << " — " << inputs.circuit_name;
  os << "\n\n";

  os << "## Crossbar\n\n";
  os << "| metric | value |\n|---|---|\n";
  os << "| rows x columns | " << s.rows << " x " << s.columns << " |\n";
  os << "| semiperimeter S | " << s.semiperimeter << " |\n";
  os << "| max dimension D | " << s.max_dimension << " |\n";
  os << "| area | " << s.area << " |\n";
  os << "| programmed literal devices (power proxy) | " << s.power_proxy
     << " |\n";
  os << "| evaluation delay (steps) | " << s.delay_steps << " |\n\n";

  os << "## Labeling\n\n";
  os << "| metric | value |\n|---|---|\n";
  os << "| BDD graph nodes n | " << s.graph_nodes << " |\n";
  os << "| BDD graph edges | " << s.graph_edges << " |\n";
  os << "| VH labels k | " << s.vh_count << " |\n";
  if (s.graph_nodes > 0) {
    os << "| S / n | "
       << format_fixed(static_cast<double>(s.semiperimeter) /
                           static_cast<double>(s.graph_nodes),
                       3)
       << " |\n";
  }
  if (!r.labels.label_of.empty()) {
    std::array<int, 3> counts{0, 0, 0};
    for (vh_label label : r.labels.label_of)
      ++counts[static_cast<std::size_t>(label)];
    os << "| label histogram (V / H / VH) | " << counts[0] << " / "
       << counts[1] << " / " << counts[2] << " |\n";
  }
  os << "| labeling proven optimal | " << (s.optimal ? "yes" : "no")
     << " |\n";
  os << "| relative gap at termination | "
     << format_fixed(100.0 * s.relative_gap, 2) << "% |\n";
  if (s.cache_hits + s.cache_misses > 0) {
    os << "| labeling cache (hits / misses) | " << s.cache_hits << " / "
       << s.cache_misses << " |\n";
  }
  os << "\n";

  // Per-stage wall times from the pass pipeline; the total also covers
  // orchestration outside the named stages.
  os << "## Timing\n\n";
  os << "| stage | seconds |\n|---|---|\n";
  for (const stage_timing& t : s.stage_seconds)
    os << "| " << t.stage << " | " << format_fixed(t.seconds, 3) << " |\n";
  os << "| **total** | " << format_fixed(s.synthesis_seconds, 3) << " |\n\n";

  if (!s.trace.empty()) {
    os << "## Solver convergence\n\n";
    os << "| time (s) | best integer | best bound | gap % |\n|---|---|---|---|\n";
    for (const milp::mip_trace_entry& e : s.trace) {
      os << "| " << format_fixed(e.seconds, 3) << " | ";
      if (std::isfinite(e.best_integer))
        os << format_fixed(e.best_integer, 1);
      else
        os << "-";
      os << " | " << format_fixed(e.best_bound, 1) << " | "
         << format_fixed(100.0 * e.relative_gap, 2) << " |\n";
    }
    os << "\n";
  }

  if (inputs.validation != nullptr) {
    const xbar::validation_report& v = *inputs.validation;
    os << "## Validation\n\n";
    os << "- verdict: **" << (v.valid ? "PASS" : "FAIL") << "**\n";
    os << "- assignments checked: " << v.checked_assignments << " ("
       << (v.exhaustive ? "exhaustive" : "sampled") << ")\n";
    if (!v.valid) os << "- first failure: " << v.first_failure << "\n";
    os << "\n";
  }
}

}  // namespace compact::core
