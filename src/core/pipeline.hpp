// The COMPACT synthesis flow as an explicit pass pipeline.
//
// Figure 3's staged structure is reified as data: a `pipeline` is an ordered
// list of named passes, each a function over one shared `synthesis_context`.
// The canonical pipeline is
//
//   build_graph -> label -> map [-> validate]
//
// and `synthesize()` (core/compact) is now just "run the canonical pipeline".
// Reifying the stages buys three things the monolithic function could not
// offer:
//
//  * pluggable labeling — the label pass dispatches through the labeler
//    registry (core/labelers), so a new strategy is a registration, not an
//    edit to compact.cpp;
//  * per-stage observability — the pipeline times every pass, records the
//    timings in synthesis_stats::stage_seconds, and emits one structured
//    telemetry event per pass into the context's sink;
//  * labeling memoization — when a labeling_cache is attached, the label
//    pass keys the (graph, labeler, options) triple and skips re-solving
//    identical subproblems (separate-ROBDD duplicate outputs, gamma-sweep
//    warm starts, repeated bench configurations).
//
// Contexts are single-threaded; concurrency happens *above* the pipeline
// (one context per work item), with the cache and sink as the only shared —
// and internally synchronized — state.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/compact.hpp"
#include "core/label_cache.hpp"
#include "core/mapping.hpp"
#include "util/telemetry.hpp"
#include "xbar/validate.hpp"

namespace compact::core {

/// Everything that flows between passes: the inputs (BDD roots + options),
/// the intermediate artifacts each stage produces, and the accumulating
/// stats. Pass code reads what upstream stages wrote and fills in its own
/// slice.
struct synthesis_context {
  // Inputs (non-owning; must outlive the run).
  const bdd::manager* manager = nullptr;
  const std::vector<bdd::node_handle>* roots = nullptr;
  const std::vector<std::string>* names = nullptr;
  /// Mutable alias of `manager`, set only by flows that own the manager
  /// (synthesize_network, the separate-ROBDD per-output workers). When set
  /// and options.gc_at_stage_boundaries holds, the pipeline runs
  /// mark-and-sweep after every pass with `roots` as the live set. Leave
  /// null for caller-provided managers — a sweep would invalidate handles
  /// the caller still holds outside `roots`.
  bdd::manager* gc_manager = nullptr;
  synthesis_options options;

  // Shared services (both may be null; both are thread-safe when shared).
  telemetry_sink* telemetry = nullptr;
  labeling_cache* cache = nullptr;

  // Stage artifacts.
  bdd_graph graph;          // build_graph
  labeling labels;          // label
  bool label_optimal = false;
  double label_gap = 0.0;
  bool label_cache_hit = false;
  std::optional<mapping_result> mapped;               // map
  std::optional<xbar::validation_report> validation;  // validate
  std::optional<verify::report> verification;         // verify
  synthesis_stats stats;

  /// The event for the currently running pass; passes attach their metrics
  /// and attributes here. Managed by pipeline::run; null between passes.
  telemetry_event* current_event = nullptr;

  void metric(const std::string& name, double value) {
    if (current_event != nullptr) current_event->metric(name, value);
  }
  void attribute(const std::string& name, const std::string& value) {
    if (current_event != nullptr) current_event->attribute(name, value);
  }
};

/// An ordered list of named passes. run() executes them in order, timing
/// each one, appending to stats.stage_seconds, and emitting one telemetry
/// event per pass.
class pipeline {
 public:
  using pass_fn = std::function<void(synthesis_context&)>;

  pipeline& add_pass(std::string name, pass_fn run);

  [[nodiscard]] std::size_t pass_count() const { return passes_.size(); }
  [[nodiscard]] std::vector<std::string> pass_names() const;

  void run(synthesis_context& ctx) const;

 private:
  struct pass {
    std::string name;
    pass_fn run;
  };
  std::vector<pass> passes_;
};

/// The labeler registry name the label pass will dispatch to: an explicit
/// options.labeler wins, otherwise the method enum maps to "oct" / "mip".
[[nodiscard]] std::string resolve_labeler_name(const synthesis_options& options);

/// Build the canonical pipeline for `options`: build_graph -> label -> map,
/// plus verify when options.verify_design and validate when
/// options.validate_design.
[[nodiscard]] pipeline make_synthesis_pipeline(const synthesis_options& options);

/// label -> map only, for contexts whose graph is installed directly (the
/// per-fragment runs of core/partition).
[[nodiscard]] pipeline make_label_map_pipeline(const synthesis_options& options);

/// The verify pass body is installed by the verify library (see
/// verify/pass.hpp) rather than linked directly, so core does not depend on
/// the analyzer it feeds. make_synthesis_pipeline throws when
/// options.verify_design is set and no pass is installed.
using verify_pass_fn = std::function<void(synthesis_context&)>;
void set_verify_pass(verify_pass_fn fn);
[[nodiscard]] bool verify_pass_installed();

/// Run the canonical pipeline over an initialized context and package the
/// result. The context's options/telemetry/cache fields must already be set.
[[nodiscard]] synthesis_result run_synthesis_pipeline(synthesis_context& ctx);

}  // namespace compact::core
