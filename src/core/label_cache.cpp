#include "core/label_cache.hpp"

#include "util/hash.hpp"

namespace compact::core {
namespace {

// Estimated payload footprint of one stored entry; the memo adds the
// canonical key string and fixed bucket/bookkeeping overhead itself.
std::uint64_t payload_bytes(const cached_labeling& entry) {
  return entry.l.label_of.size() * sizeof(vh_label) + sizeof(cached_labeling);
}

}  // namespace

label_cache_key make_label_cache_key(const bdd_graph& graph,
                                     const std::string& labeler_name,
                                     const std::string& option_salt) {
  // Canonical text encoding; the digest is the FNV-1a hash of this string.
  // The encoding is unambiguous (fixed field order, explicit separators), so
  // string equality == key equality.
  std::string canonical;
  canonical.reserve(16 * graph.g.edge_count() + 64 + option_salt.size());
  canonical += "labeler=" + labeler_name + ";opts=" + option_salt + ";n=";
  canonical += std::to_string(graph.g.node_count());
  canonical += ";e=";
  for (const graph::edge& e : graph.g.edges()) {
    canonical += std::to_string(e.u);
    canonical += '-';
    canonical += std::to_string(e.v);
    canonical += ',';
  }
  canonical += ";a=";
  for (const graph::node_id v : graph.aligned_nodes()) {
    canonical += std::to_string(v);
    canonical += ',';
  }

  fnv1a_hasher hasher;
  hasher.add_string(canonical);
  return {hasher.digest(), std::move(canonical)};
}

labeling_cache::labeling_cache() : memo_("label_cache", "cache.labeling") {}

std::optional<cached_labeling> labeling_cache::find(
    const label_cache_key& key) const {
  return memo_.find(key.digest, key.canonical);
}

void labeling_cache::store(const label_cache_key& key, cached_labeling entry) {
  const std::uint64_t bytes = payload_bytes(entry);
  memo_.store(key.digest, key.canonical, std::move(entry), bytes);
}

labeling_cache::counters labeling_cache::stats() const { return memo_.stats(); }

void labeling_cache::set_capacity_bytes(std::uint64_t capacity) {
  memo_.set_capacity_bytes(capacity);
}

std::uint64_t labeling_cache::capacity_bytes() const {
  return memo_.capacity_bytes();
}

void labeling_cache::clear() { memo_.clear(); }

}  // namespace compact::core
