#include "core/label_cache.hpp"

#include "util/hash.hpp"
#include "util/memtrack.hpp"
#include "util/metrics.hpp"

namespace compact::core {
namespace {

mem_account& cache_account() {
  static mem_account& account = memtrack_account("cache.labeling");
  return account;
}

// Estimated footprint of one stored entry: the canonical key string, the
// labeling payload, and fixed bucket/bookkeeping overhead.
std::uint64_t entry_bytes(const std::string& canonical,
                          const cached_labeling& entry) {
  return canonical.size() + entry.l.label_of.size() * sizeof(vh_label) +
         sizeof(cached_labeling) + 48;
}

}  // namespace

label_cache_key make_label_cache_key(const bdd_graph& graph,
                                     const std::string& labeler_name,
                                     const std::string& option_salt) {
  // Canonical text encoding; the digest is the FNV-1a hash of this string.
  // The encoding is unambiguous (fixed field order, explicit separators), so
  // string equality == key equality.
  std::string canonical;
  canonical.reserve(16 * graph.g.edge_count() + 64 + option_salt.size());
  canonical += "labeler=" + labeler_name + ";opts=" + option_salt + ";n=";
  canonical += std::to_string(graph.g.node_count());
  canonical += ";e=";
  for (const graph::edge& e : graph.g.edges()) {
    canonical += std::to_string(e.u);
    canonical += '-';
    canonical += std::to_string(e.v);
    canonical += ',';
  }
  canonical += ";a=";
  for (const graph::node_id v : graph.aligned_nodes()) {
    canonical += std::to_string(v);
    canonical += ',';
  }

  fnv1a_hasher hasher;
  hasher.add_string(canonical);
  return {hasher.digest(), std::move(canonical)};
}

std::optional<cached_labeling> labeling_cache::find(
    const label_cache_key& key) const {
  const mutex_lock lock(mutex_);
  const auto it = entries_.find(key.digest);
  if (it != entries_.end())
    for (const auto& [canonical, entry] : it->second)
      if (canonical == key.canonical) {
        ++counters_.hits;
        if (metrics_enabled())
          global_metrics().counter("label_cache.hits").increment();
        return entry;
      }
  ++counters_.misses;
  if (metrics_enabled())
    global_metrics().counter("label_cache.misses").increment();
  return std::nullopt;
}

void labeling_cache::store(const label_cache_key& key, cached_labeling entry) {
  const mutex_lock lock(mutex_);
  bucket& slot = entries_[key.digest];
  for (const auto& [canonical, existing] : slot)
    if (canonical == key.canonical) return;  // first store wins
  content_bytes_ += entry_bytes(key.canonical, entry);
  slot.emplace_back(key.canonical, std::move(entry));
  ++counters_.entries;
  account_set(cache_account(), bytes_accounted_, content_bytes_);
  if (metrics_enabled())
    global_metrics()
        .gauge("label_cache.entries")
        .set(static_cast<double>(counters_.entries));
}

labeling_cache::counters labeling_cache::stats() const {
  const mutex_lock lock(mutex_);
  return counters_;
}

void labeling_cache::clear() {
  const mutex_lock lock(mutex_);
  entries_.clear();
  counters_ = {};
  content_bytes_ = 0;
  account_set(cache_account(), bytes_accounted_, content_bytes_);
}

labeling_cache::~labeling_cache() {
  // Drain the charge regardless of the current enabled flag. The lock is
  // formally redundant in a destructor but keeps the guarded-field access
  // visible to the thread-safety analysis.
  const mutex_lock lock(mutex_);
  if (bytes_accounted_ != 0) cache_account().sub(bytes_accounted_);
}

}  // namespace compact::core
