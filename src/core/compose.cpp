#include "core/compose.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace compact::core {

xbar::crossbar compose_diagonal(
    const std::vector<const xbar::crossbar*>& blocks) {
  int total_rows = 1;  // the shared input row
  int total_columns = 0;
  for (const xbar::crossbar* block : blocks) {
    check(block != nullptr && block->input_row() >= 0,
          "compose_diagonal: block without input row");
    if (block->columns() == 0) continue;
    total_rows += block->rows() - 1;
    total_columns += block->columns();
  }

  xbar::crossbar composed(total_rows, total_columns);
  const int shared_input = total_rows - 1;
  composed.set_input_row(shared_input);

  int row_offset = 0;
  int column_offset = 0;
  for (const xbar::crossbar* block : blocks) {
    if (block->columns() == 0) {
      for (const auto& [name, value] : block->constant_outputs())
        composed.add_constant_output(value, name);
      continue;
    }
    auto remap_row = [&](int r) {
      if (r == block->input_row()) return shared_input;
      return row_offset + r - (r > block->input_row() ? 1 : 0);
    };
    for (int r = 0; r < block->rows(); ++r)
      for (int c = 0; c < block->columns(); ++c) {
        const xbar::device& d = block->at(r, c);
        if (d.kind != xbar::literal_kind::off)
          composed.set(remap_row(r), column_offset + c, d);
      }
    for (const xbar::output_port& o : block->outputs())
      composed.add_output(remap_row(o.row), o.name);
    for (const auto& [name, value] : block->constant_outputs())
      composed.add_constant_output(value, name);
    row_offset += block->rows() - 1;
    column_offset += block->columns();
  }
  return composed;
}

}  // namespace compact::core
