#include "core/compose.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace compact::core {

xbar::crossbar compose_diagonal(const std::vector<const xbar::crossbar*>& blocks,
                                const parallel_options& parallel) {
  int total_rows = 1;  // the shared input row
  int total_columns = 0;
  std::vector<int> row_offsets(blocks.size(), 0);
  std::vector<int> column_offsets(blocks.size(), 0);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const xbar::crossbar* block = blocks[b];
    check(block != nullptr && block->input_row() >= 0,
          "compose_diagonal: block without input row");
    row_offsets[b] = total_rows - 1;
    column_offsets[b] = total_columns;
    if (block->columns() == 0) continue;
    total_rows += block->rows() - 1;
    total_columns += block->columns();
  }

  xbar::crossbar composed(total_rows, total_columns);
  const int shared_input = total_rows - 1;
  composed.set_input_row(shared_input);

  // Device copy fans out per block: every block writes a disjoint column
  // range (rows overlap only at the shared input wordline, still within the
  // block's own columns), so no two workers touch the same junction.
  parallel_for(parallel, blocks.size(), [&](std::size_t b) {
    const xbar::crossbar* block = blocks[b];
    if (block->columns() == 0) return;
    auto remap_row = [&](int r) {
      if (r == block->input_row()) return shared_input;
      return row_offsets[b] + r - (r > block->input_row() ? 1 : 0);
    };
    for (int r = 0; r < block->rows(); ++r)
      for (int c = 0; c < block->columns(); ++c) {
        const xbar::device& d = block->at(r, c);
        if (d.kind != xbar::literal_kind::off)
          composed.set(remap_row(r), column_offsets[b] + c, d);
      }
  });

  // Ports are order-sensitive (they name the composed design's outputs), so
  // they are registered serially in block order.
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const xbar::crossbar* block = blocks[b];
    if (block->columns() != 0) {
      for (const xbar::output_port& o : block->outputs()) {
        const int row = o.row == block->input_row()
                            ? shared_input
                            : row_offsets[b] + o.row -
                                  (o.row > block->input_row() ? 1 : 0);
        composed.add_output(row, o.name);
      }
    }
    for (const auto& [name, value] : block->constant_outputs())
      composed.add_constant_output(value, name);
  }
  return composed;
}

}  // namespace compact::core
