// COMPACT — the top-level synthesis API (Figure 3).
//
//   Boolean function (network / BDD roots)
//     -> graph pre-processing          (core/bdd_graph)
//     -> VH-labeling                   (core/labelers: registry dispatch)
//     -> crossbar mapping              (core/mapping)
//     -> crossbar design D             (xbar/crossbar)
//
// The flow runs as an explicit pass pipeline (core/pipeline): named stages
// over one synthesis_context, per-stage wall-time accounting, structured
// telemetry events into a pluggable sink, and graph-keyed labeling
// memoization through core/label_cache.
//
// Two entry points: synthesize() maps a shared BDD built in one manager
// (the paper's SBDD flow, Section VII-A), and synthesize_separate_robdds()
// reproduces the prior multi-output strategy — one ROBDD per output, each
// mapped independently and composed along the diagonal sharing the input
// wordline (Figure 8a).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "core/bdd_graph.hpp"
#include "core/label_cache.hpp"
#include "core/labelers.hpp"
#include "core/labeling.hpp"
#include "frontend/network.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"
#include "verify/diagnostics.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/validate.hpp"

namespace compact::core {

class partition_cache;  // core/partition

enum class labeling_method {
  minimal_semiperimeter,  // Method 1: OCT + 2-coloring (gamma = 1 semantics)
  weighted_mip,           // Method 2: MIP on gamma*S + (1-gamma)*D
};

struct synthesis_options {
  labeling_method method = labeling_method::weighted_mip;
  /// Registry name of the labeling strategy (core/labelers). Empty = derive
  /// from `method` ("oct" / "mip"); set it to dispatch a custom registered
  /// labeler without touching this struct's enum.
  std::string labeler;
  double gamma = 0.5;
  bool alignment = true;
  double time_limit_seconds = 60.0;
  graph::oct_engine oct_engine = graph::oct_engine::bnb;
  /// Hard budgets on the crossbar dimensions (Section III). The weighted_mip
  /// method enforces them inside the solver; for every method the map pass
  /// re-checks the mapped design and throws infeasible_error naming the
  /// overflow dimension when a budget is exceeded (unless `partition` below
  /// splits the design across arrays instead).
  std::optional<int> max_rows;
  std::optional<int> max_columns;
  /// Split designs that exceed the budgets across multiple crossbar arrays
  /// (core/partition) instead of failing. Read by the
  /// synthesize_partitioned entry points and the api facade; the
  /// single-array entry points above ignore it except to suppress the
  /// overflow guard for per-fragment runs.
  bool partition = false;
  /// Partition-plan memoization shared across synthesize_partitioned calls
  /// (benchmark sweeps), keyed like the labeling cache. Non-owning; may be
  /// null. Thread-safe.
  partition_cache* partition_memo = nullptr;
  /// Kernelize OCT instances (core/oct_reduce) before the solvers run:
  /// bipartite components are stripped and degree-<=2 vertices eliminated,
  /// with the transversal lifted back exactly. On by default; disable only
  /// to A/B the reductions (cache keys include this flag).
  bool oct_reduction = true;
  /// Used by synthesize_separate_robdds to fan per-output ROBDD synthesis
  /// and block composition out across workers, and by the labeling stage
  /// for the parallel branch-and-bound solver. Results are deterministic
  /// for any thread count (modulo the wall-clock solver time limits, which
  /// are timing-dependent even serially).
  parallel_options parallel;
  /// Run bdd::manager mark-and-sweep at every pipeline stage boundary,
  /// keeping only the synthesis roots (plus externally protected handles)
  /// alive. Only takes effect for flows that own their manager — the
  /// network entry points below and anyone who wires
  /// synthesis_context::gc_manager — because sweeping a caller-provided
  /// manager could invalidate handles the caller still holds. Designs are
  /// bit-identical with GC on or off; collection only frees the build's
  /// intermediate nodes (peak-memory control on large SBDDs).
  bool gc_at_stage_boundaries = true;
  /// Labeling memoization cache shared across synthesize() calls (gamma
  /// sweeps, benchmark re-runs). Non-owning; may be null. Thread-safe.
  labeling_cache* cache = nullptr;
  /// When true (default) synthesize_separate_robdds memoizes per-output
  /// labelings in a run-local cache even when `cache` is null, so repeated
  /// per-output subgraphs are labeled once. Labelers are deterministic, so
  /// designs are bit-identical with the cache on or off.
  bool use_labeling_cache = true;
  /// Sink for per-stage telemetry events (see core/pipeline for the event
  /// schema). Non-owning; may be null. Must be thread-safe when the
  /// separate-ROBDD flow fans out.
  telemetry_sink* telemetry = nullptr;
  /// Append a validate pass to the pipeline: check the mapped design
  /// against the source BDD (exhaustive or sampled, see xbar/validate) and
  /// record the verdict in synthesis_result::validation.
  bool validate_design = false;
  /// Hard byte budget for the run, enforced by the ambient resource
  /// watchdog (util/watchdog) against the memtrack process-live total and
  /// sampled at pipeline stage boundaries, branch-and-bound rounds and BDD
  /// arena growth. 0 = unlimited. A breach throws resource_limit_error
  /// (kind memory); crossing ~85% of the budget triggers load shedding
  /// (stage-boundary GC plus labeling-cache eviction) first. Setting a
  /// budget force-enables memtrack for the run. The outermost entry point
  /// installs the watchdog; nested flows share its budget.
  std::uint64_t memory_limit_bytes = 0;
  /// Wall-clock deadline for the run, enforced at the same sampling points;
  /// 0 = none. A breach throws resource_limit_error (kind deadline). Unlike
  /// time_limit_seconds (a solver heuristic budget that degrades answer
  /// quality gracefully), the deadline is a hard failure.
  double deadline_seconds = 0.0;
  /// Append the static analyzer (src/verify) as a verify pass after map:
  /// structural + labeling checks and symbolic equivalence against the
  /// source BDD, never simulating an input vector. The report lands in
  /// synthesis_result::verification. Requires the compact_verify library
  /// to be linked (it installs the pass; tools and tests link it via
  /// compact::all).
  bool verify_design = false;
  /// With verify_design: also run the ELCxxx electrical-integrity family
  /// (static ON/OFF sensing-margin bounds over the conduction graph). Off
  /// by default so the verify pass stays purely structural/symbolic.
  bool verify_electrical = false;
  /// Minimum acceptable static margin ratio (best-case OFF resistance over
  /// worst-case ON resistance) before ELC001 fires. Only read when
  /// verify_electrical is set.
  double verify_margin_threshold = 10.0;
};

/// Wall time of one named pipeline stage.
struct stage_timing {
  std::string stage;
  double seconds = 0.0;
};

struct synthesis_stats {
  std::size_t graph_nodes = 0;  // n: BDD nodes after 0-terminal removal
  std::size_t graph_edges = 0;
  int vh_count = 0;             // k: nodes mapped to a wordline AND a bitline
  int rows = 0;
  int columns = 0;
  int semiperimeter = 0;
  int max_dimension = 0;
  long long area = 0;
  int power_proxy = 0;          // active (literal-carrying) memristors
  int delay_steps = 0;          // rows + 1
  /// Per-stage wall times in pipeline order; synthesis_seconds is the
  /// end-to-end total (stages plus orchestration overhead).
  std::vector<stage_timing> stage_seconds;
  double synthesis_seconds = 0.0;
  /// Labeling-cache traffic observed by this run (0/0 when no cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  bool optimal = false;         // labeling proven optimal within the limit
  double relative_gap = 0.0;    // MIP gap at termination (0 for method 1)
  std::vector<milp::mip_trace_entry> trace;  // MIP convergence (Fig. 10)
  /// Multi-array accounting (1 / 0 / 0 for single-array designs). For
  /// partitioned designs, rows/columns above are the largest fragment's
  /// while semiperimeter, area and power_proxy are totals over fragments.
  int arrays = 1;               // fragments in the mapped design
  int cut_edges = 0;            // SBDD edges crossing fragment boundaries
  int bridges = 0;              // inter-array net welds (one per port)

  /// Wall time of the named stage, or 0 when it did not run.
  [[nodiscard]] double stage_time(const std::string& stage) const;
};

struct synthesis_result {
  xbar::crossbar design;
  labeling labels;
  synthesis_stats stats;
  /// Verdict of the optional validate pass (synthesis_options::
  /// validate_design); nullopt when the pass did not run.
  std::optional<xbar::validation_report> validation;
  /// Diagnostics of the optional verify pass (synthesis_options::
  /// verify_design); nullopt when the pass did not run.
  std::optional<verify::report> verification;
};

/// Map the shared BDD rooted at `roots` (named `names`) onto one crossbar.
/// The manager is const and is never garbage-collected through this entry
/// point — the caller may hold handles outside `roots`.
[[nodiscard]] synthesis_result synthesize(
    const bdd::manager& m, const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& names,
    const synthesis_options& options = {});

/// synthesize() for callers that cede the manager's contents to the flow:
/// when options.gc_at_stage_boundaries holds, mark-and-sweep runs at every
/// pipeline stage boundary with `roots` (plus protected handles) as the
/// live set. Handles in `roots` stay valid; any other handle the caller
/// holds may be swept. Designs are bit-identical to the const overload's.
[[nodiscard]] synthesis_result synthesize_gc(
    bdd::manager& m, const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& names,
    const synthesis_options& options = {});

/// Convenience: build the SBDD of `net` (identity variable order) and map it.
[[nodiscard]] synthesis_result synthesize_network(
    const frontend::network& net, const synthesis_options& options = {});

/// Prior multi-output strategy: one ROBDD per output in its own manager,
/// each synthesized independently, then composed along the diagonal with a
/// shared input wordline. Stats are those of the composed design; the
/// per-output node counts are summed (Table III's "merged ROBDDs" column).
/// Duplicate per-output subgraphs are labeled once through the labeling
/// cache (see synthesis_options::use_labeling_cache).
[[nodiscard]] synthesis_result synthesize_separate_robdds(
    const frontend::network& net, const synthesis_options& options = {});

}  // namespace compact::core
