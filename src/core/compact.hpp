// COMPACT — the top-level synthesis API (Figure 3).
//
//   Boolean function (network / BDD roots)
//     -> graph pre-processing          (core/bdd_graph)
//     -> VH-labeling                   (core/labelers: OCT or MIP)
//     -> crossbar mapping              (core/mapping)
//     -> crossbar design D             (xbar/crossbar)
//
// Two entry points: synthesize() maps a shared BDD built in one manager
// (the paper's SBDD flow, Section VII-A), and synthesize_separate_robdds()
// reproduces the prior multi-output strategy — one ROBDD per output, each
// mapped independently and composed along the diagonal sharing the input
// wordline (Figure 8a).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "core/bdd_graph.hpp"
#include "core/labelers.hpp"
#include "core/labeling.hpp"
#include "frontend/network.hpp"
#include "util/thread_pool.hpp"
#include "xbar/crossbar.hpp"

namespace compact::core {

enum class labeling_method {
  minimal_semiperimeter,  // Method 1: OCT + 2-coloring (gamma = 1 semantics)
  weighted_mip,           // Method 2: MIP on gamma*S + (1-gamma)*D
};

struct synthesis_options {
  labeling_method method = labeling_method::weighted_mip;
  double gamma = 0.5;
  bool alignment = true;
  double time_limit_seconds = 60.0;
  graph::oct_engine oct_engine = graph::oct_engine::bnb;
  /// Hard budgets on the crossbar dimensions (Section III). Only supported
  /// by the weighted_mip method; synthesis throws infeasible_error when no
  /// design fits.
  std::optional<int> max_rows;
  std::optional<int> max_columns;
  /// Used by synthesize_separate_robdds to fan per-output ROBDD synthesis
  /// and block composition out across workers. Results are deterministic
  /// for any thread count (modulo the wall-clock solver time limits, which
  /// are timing-dependent even serially).
  parallel_options parallel;
};

struct synthesis_stats {
  std::size_t graph_nodes = 0;  // n: BDD nodes after 0-terminal removal
  std::size_t graph_edges = 0;
  int vh_count = 0;             // k: nodes mapped to a wordline AND a bitline
  int rows = 0;
  int columns = 0;
  int semiperimeter = 0;
  int max_dimension = 0;
  long long area = 0;
  int power_proxy = 0;          // active (literal-carrying) memristors
  int delay_steps = 0;          // rows + 1
  double synthesis_seconds = 0.0;
  bool optimal = false;         // labeling proven optimal within the limit
  double relative_gap = 0.0;    // MIP gap at termination (0 for method 1)
  std::vector<milp::mip_trace_entry> trace;  // MIP convergence (Fig. 10)
};

struct synthesis_result {
  xbar::crossbar design;
  labeling labels;
  synthesis_stats stats;
};

/// Map the shared BDD rooted at `roots` (named `names`) onto one crossbar.
[[nodiscard]] synthesis_result synthesize(
    const bdd::manager& m, const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& names,
    const synthesis_options& options = {});

/// Convenience: build the SBDD of `net` (identity variable order) and map it.
[[nodiscard]] synthesis_result synthesize_network(
    const frontend::network& net, const synthesis_options& options = {});

/// Prior multi-output strategy: one ROBDD per output in its own manager,
/// each synthesized independently, then composed along the diagonal with a
/// shared input wordline. Stats are those of the composed design; the
/// per-output node counts are summed (Table III's "merged ROBDDs" column).
[[nodiscard]] synthesis_result synthesize_separate_robdds(
    const frontend::network& net, const synthesis_options& options = {});

}  // namespace compact::core
