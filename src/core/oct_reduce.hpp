// OCT kernelization: safe reductions applied to the BDD graph before the
// odd-cycle-transversal solver runs.
//
// OCT is fixed-parameter tractable and admits classic kernelization rules.
// We apply the degree-based ones on a *parity multigraph*: every original
// edge starts with odd parity, and folding a degree-2 vertex v with incident
// parities p1, p2 replaces the path a–v–b by a single edge (a, b) of parity
// p1 xor p2. A cycle of the parity graph is "odd" iff its parities sum to 1,
// which matches odd cycles of the original graph exactly, so minimum odd
// cycle transversals are preserved by:
//
//   * deleting degree-0/1 vertices (they lie on no cycle),
//   * stripping components with no odd-parity cycle (parity-bipartite
//     components need no transversal vertices),
//   * folding degree-2 vertices as above (any cycle through v passes both
//     neighbors, so a transversal never *needs* v: swapping v for a neighbor
//     keeps it a transversal of equal size),
//   * merging parallel edges of equal parity (they carry the same cycle
//     constraints), and
//   * when v's only two edges both lead to a with *different* parities, the
//     pair forms an odd 2-cycle, every odd cycle through v contains a, and
//     some minimum transversal therefore contains a: force a into the
//     transversal and delete both vertices.
//
// The surviving kernel is materialized back into a simple undirected graph
// for the unchanged solvers in graph/: odd-parity edges become plain edges
// and each even-parity edge becomes a two-edge path through a fresh
// subdivision vertex. lift() maps a kernel transversal back to the full
// graph (subdivision vertices are swapped for a kernel endpoint, which lies
// on every cycle the subdivision vertex lies on) and adds the forced
// vertices. The lift is valid for *any* kernel transversal and
// size-preserving for optimal ones: OPT(G) = OPT(kernel) + |forced|.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/oct.hpp"

namespace compact::core {

/// Bumped whenever a reduction rule changes behaviour. Cached labelings are
/// keyed on this (see core/labelers.cpp): a cache written by one
/// kernelization version must never satisfy a request made under another.
inline constexpr int oct_reduction_version = 1;

struct oct_reduction_stats {
  std::size_t original_nodes = 0;
  std::size_t original_edges = 0;
  std::size_t kernel_nodes = 0;  // materialized, incl. subdivision vertices
  std::size_t kernel_edges = 0;
  std::size_t bipartite_stripped = 0;  // vertices removed with components
  std::size_t low_degree_removed = 0;  // degree-0/1 deletions
  std::size_t folds = 0;               // degree-2 eliminations
  std::size_t merges = 0;              // parallel same-parity edges dropped
  std::size_t forced = 0;              // vertices proven to be in a min OCT
  int rounds = 0;                      // strip/fold sweeps until fixpoint
};

/// Result of kernelizing one graph. The object owns the materialized kernel
/// and everything needed to lift a kernel transversal back.
class oct_kernel {
 public:
  [[nodiscard]] const graph::undirected_graph& kernel_graph() const {
    return kernel_;
  }
  [[nodiscard]] const oct_reduction_stats& stats() const { return stats_; }

  /// True when reductions solved the instance outright (empty kernel): the
  /// minimum transversal is exactly the forced set, lift({}) returns it.
  [[nodiscard]] bool solved() const { return kernel_.node_count() == 0; }

  /// Map a transversal of kernel_graph() (indexed by kernel node id; may be
  /// empty when solved()) to a transversal of the original graph.
  [[nodiscard]] std::vector<bool> lift(
      const std::vector<bool>& kernel_transversal) const;

 private:
  friend oct_kernel kernelize_for_oct(const graph::undirected_graph& g);

  graph::undirected_graph kernel_;
  oct_reduction_stats stats_;
  std::size_t original_node_count_ = 0;
  // Kernel node id -> original vertex placed in the transversal when the
  // solver picks it (identity for surviving vertices, an endpoint for
  // subdivision vertices).
  std::vector<graph::node_id> original_of_kernel_;
  std::vector<graph::node_id> forced_;  // original ids, always in the lift
};

/// Run all reductions to a fixpoint and materialize the kernel. Publishes
/// oct_reduce.* metrics when enabled.
[[nodiscard]] oct_kernel kernelize_for_oct(const graph::undirected_graph& g);

/// Drop-in replacement for graph::odd_cycle_transversal that kernelizes
/// first, solves on the kernel only, and lifts the transversal back. The
/// returned transversal is always valid for `g`; optimal is true when the
/// kernel solve was optimal (reductions themselves are exact).
[[nodiscard]] graph::oct_result reduced_odd_cycle_transversal(
    const graph::undirected_graph& g, const graph::oct_options& options = {},
    oct_reduction_stats* stats_out = nullptr);

}  // namespace compact::core
