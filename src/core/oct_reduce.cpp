#include "core/oct_reduce.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace compact::core {
namespace {

using graph::node_id;

/// Mutable parity multigraph the reductions run on. Vertices and edges are
/// removed by flipping alive flags; incident lists are filtered lazily.
struct parity_graph {
  struct pedge {
    node_id u = 0;
    node_id v = 0;
    int parity = 1;  // 1 = odd (an original edge), 0 = even (folded path)
    bool alive = true;
  };

  explicit parity_graph(const graph::undirected_graph& g)
      : vertex_alive(g.node_count(), true),
        degree(g.node_count(), 0),
        incident(g.node_count()) {
    edges.reserve(g.edge_count());
    for (const graph::edge& e : g.edges()) add_edge(e.u, e.v, 1);
  }

  std::vector<pedge> edges;
  std::vector<bool> vertex_alive;
  std::vector<int> degree;                 // alive incident edges, with multiplicity
  std::vector<std::vector<int>> incident;  // edge ids, stale entries filtered

  [[nodiscard]] node_id other(int e, node_id v) const {
    return edges[static_cast<std::size_t>(e)].u == v
               ? edges[static_cast<std::size_t>(e)].v
               : edges[static_cast<std::size_t>(e)].u;
  }

  void add_edge(node_id u, node_id v, int parity) {
    const int id = static_cast<int>(edges.size());
    edges.push_back({u, v, parity, true});
    incident[static_cast<std::size_t>(u)].push_back(id);
    incident[static_cast<std::size_t>(v)].push_back(id);
    ++degree[static_cast<std::size_t>(u)];
    ++degree[static_cast<std::size_t>(v)];
  }

  void remove_edge(int e) {
    pedge& edge = edges[static_cast<std::size_t>(e)];
    if (!edge.alive) return;
    edge.alive = false;
    --degree[static_cast<std::size_t>(edge.u)];
    --degree[static_cast<std::size_t>(edge.v)];
  }

  /// Remove `v` and every edge incident to it.
  void remove_vertex(node_id v) {
    if (!vertex_alive[static_cast<std::size_t>(v)]) return;
    vertex_alive[static_cast<std::size_t>(v)] = false;
    for (const int e : incident[static_cast<std::size_t>(v)]) remove_edge(e);
  }

  /// The alive edges incident to `v`, compacting out stale entries.
  std::vector<int>& alive_incident(node_id v) {
    auto& list = incident[static_cast<std::size_t>(v)];
    std::erase_if(list, [this](int e) {
      return !edges[static_cast<std::size_t>(e)].alive;
    });
    return list;
  }

  /// Id of an alive edge {u, v} with the given parity, or -1.
  [[nodiscard]] int find_edge(node_id u, node_id v, int parity) {
    for (const int e : alive_incident(u)) {
      const pedge& edge = edges[static_cast<std::size_t>(e)];
      if (edge.parity == parity && other(e, u) == v) return e;
    }
    return -1;
  }
};

/// Remove every component with no odd-parity cycle (parity-bipartite): a
/// 2-coloring with color[w] = color[u] xor parity(u, w) exists exactly when
/// no cycle has odd parity sum, and such components need no transversal
/// vertices at all. Returns the number of vertices stripped.
std::size_t strip_parity_bipartite_components(parity_graph& pg) {
  const std::size_t n = pg.vertex_alive.size();
  std::vector<int> color(n, -1);
  std::size_t stripped = 0;
  std::vector<node_id> component;
  std::deque<node_id> queue;
  for (std::size_t s = 0; s < n; ++s) {
    if (!pg.vertex_alive[s] || color[s] != -1) continue;
    component.clear();
    color[s] = 0;
    queue.push_back(static_cast<node_id>(s));
    component.push_back(static_cast<node_id>(s));
    bool bipartite = true;
    while (!queue.empty()) {
      const node_id u = queue.front();
      queue.pop_front();
      for (const int e : pg.alive_incident(u)) {
        const node_id w = pg.other(e, u);
        const int expected =
            color[static_cast<std::size_t>(u)] ^
            pg.edges[static_cast<std::size_t>(e)].parity;
        if (color[static_cast<std::size_t>(w)] == -1) {
          color[static_cast<std::size_t>(w)] = expected;
          queue.push_back(w);
          component.push_back(w);
        } else if (color[static_cast<std::size_t>(w)] != expected) {
          bipartite = false;
        }
      }
    }
    if (!bipartite) continue;
    stripped += component.size();
    for (const node_id v : component) pg.remove_vertex(v);
  }
  return stripped;
}

/// One low-degree sweep: delete degree-0/1 vertices and fold degree-2
/// vertices until no vertex of degree <= 2 remains. Returns whether anything
/// changed.
bool reduce_low_degree(parity_graph& pg, oct_reduction_stats& stats,
                       std::vector<node_id>& forced) {
  const std::size_t n = pg.vertex_alive.size();
  std::deque<node_id> work;
  for (std::size_t v = 0; v < n; ++v)
    if (pg.vertex_alive[v] && pg.degree[v] <= 2)
      work.push_back(static_cast<node_id>(v));

  bool changed = false;
  auto enqueue_if_low = [&](node_id v) {
    if (pg.vertex_alive[static_cast<std::size_t>(v)] &&
        pg.degree[static_cast<std::size_t>(v)] <= 2)
      work.push_back(v);
  };

  while (!work.empty()) {
    const node_id v = work.front();
    work.pop_front();
    if (!pg.vertex_alive[static_cast<std::size_t>(v)]) continue;
    const int deg = pg.degree[static_cast<std::size_t>(v)];
    if (deg > 2) continue;  // stale queue entry

    if (deg <= 1) {
      // Degree-0/1: v lies on no cycle.
      node_id neighbor = -1;
      if (deg == 1) neighbor = pg.other(pg.alive_incident(v).front(), v);
      pg.remove_vertex(v);
      ++stats.low_degree_removed;
      changed = true;
      if (neighbor >= 0) enqueue_if_low(neighbor);
      continue;
    }

    auto& inc = pg.alive_incident(v);
    const int e1 = inc[0];
    const int e2 = inc[1];
    const node_id a = pg.other(e1, v);
    const node_id b = pg.other(e2, v);
    const int p1 = pg.edges[static_cast<std::size_t>(e1)].parity;
    const int p2 = pg.edges[static_cast<std::size_t>(e2)].parity;

    if (a == b) {
      if (p1 == p2) {
        // Parallel equal-parity pair: drop one copy, then v is degree-1.
        pg.remove_edge(e1);
        ++stats.merges;
        pg.remove_vertex(v);
        ++stats.low_degree_removed;
      } else {
        // Odd 2-cycle v <-> a and v has no other edges: every odd cycle
        // through v contains a, so a minimum transversal containing a
        // exists. Force a and delete both.
        forced.push_back(a);
        ++stats.forced;
        std::vector<int> a_edges = pg.alive_incident(a);  // copy: mutation
        pg.remove_vertex(a);
        pg.remove_vertex(v);
        for (const int e : a_edges) {
          const node_id w = pg.other(e, a);
          if (w != v) enqueue_if_low(w);
        }
      }
      changed = true;
      enqueue_if_low(a);
      continue;
    }

    // Fold the path a–v–b into one edge of parity p1 xor p2, merging into
    // an existing equal-parity edge if present.
    pg.remove_vertex(v);
    ++stats.folds;
    changed = true;
    const int parity = p1 ^ p2;
    if (pg.find_edge(a, b, parity) >= 0) {
      ++stats.merges;
    } else {
      pg.add_edge(a, b, parity);
    }
    enqueue_if_low(a);
    enqueue_if_low(b);
  }
  return changed;
}

}  // namespace

std::vector<bool> oct_kernel::lift(
    const std::vector<bool>& kernel_transversal) const {
  check(kernel_transversal.size() == kernel_.node_count() ||
            (kernel_transversal.empty() && solved()),
        "oct_kernel::lift: transversal does not match the kernel");
  std::vector<bool> out(original_node_count_, false);
  for (std::size_t j = 0; j < kernel_transversal.size(); ++j)
    if (kernel_transversal[j])
      out[static_cast<std::size_t>(original_of_kernel_[j])] = true;
  for (const node_id v : forced_) out[static_cast<std::size_t>(v)] = true;
  return out;
}

oct_kernel kernelize_for_oct(const graph::undirected_graph& g) {
  const trace_span span("oct_reduce", "label");
  oct_kernel kernel;
  kernel.original_node_count_ = g.node_count();
  kernel.stats_.original_nodes = g.node_count();
  kernel.stats_.original_edges = g.edge_count();

  parity_graph pg(g);
  std::vector<node_id> forced;

  // Alternate component stripping and low-degree sweeps until neither fires:
  // forcing a vertex can disconnect a component and leave parity-bipartite
  // pieces, and stripping can expose new low-degree vertices.
  bool changed = true;
  while (changed) {
    ++kernel.stats_.rounds;
    changed = false;
    const std::size_t stripped = strip_parity_bipartite_components(pg);
    kernel.stats_.bipartite_stripped += stripped;
    if (stripped > 0) changed = true;
    if (reduce_low_degree(pg, kernel.stats_, forced)) changed = true;
  }
  kernel.forced_ = std::move(forced);

  // Materialize the surviving parity graph as a simple graph: odd edges map
  // directly, each even edge becomes a path through a subdivision vertex
  // that lifts to one of its endpoints.
  std::vector<node_id> kernel_of_original(g.node_count(), -1);
  for (std::size_t v = 0; v < g.node_count(); ++v) {
    if (!pg.vertex_alive[v]) continue;
    kernel_of_original[v] =
        static_cast<node_id>(kernel.original_of_kernel_.size());
    kernel.original_of_kernel_.push_back(static_cast<node_id>(v));
  }
  graph::undirected_graph materialized(kernel.original_of_kernel_.size());
  for (const parity_graph::pedge& e : pg.edges) {
    if (!e.alive) continue;
    const node_id ku = kernel_of_original[static_cast<std::size_t>(e.u)];
    const node_id kv = kernel_of_original[static_cast<std::size_t>(e.v)];
    if (e.parity == 1) {
      materialized.add_edge(ku, kv);
    } else {
      const node_id w = materialized.add_node();
      kernel.original_of_kernel_.push_back(e.u);
      materialized.add_edge(ku, w);
      materialized.add_edge(w, kv);
    }
  }
  kernel.kernel_ = std::move(materialized);
  kernel.stats_.kernel_nodes = kernel.kernel_.node_count();
  kernel.stats_.kernel_edges = kernel.kernel_.edge_count();

  if (metrics_enabled()) {
    metrics_registry& registry = global_metrics();
    registry.counter("oct_reduce.runs").increment();
    registry.counter("oct_reduce.original_nodes")
        .add(kernel.stats_.original_nodes);
    registry.counter("oct_reduce.kernel_nodes")
        .add(kernel.stats_.kernel_nodes);
    registry.counter("oct_reduce.bipartite_stripped")
        .add(kernel.stats_.bipartite_stripped);
    registry.counter("oct_reduce.low_degree_removed")
        .add(kernel.stats_.low_degree_removed);
    registry.counter("oct_reduce.folds").add(kernel.stats_.folds);
    registry.counter("oct_reduce.merges").add(kernel.stats_.merges);
    registry.counter("oct_reduce.forced").add(kernel.stats_.forced);
    registry
        .histogram("oct_reduce.kernel_ratio",
                   {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0})
        .observe(kernel.stats_.original_nodes == 0
                     ? 0.0
                     : static_cast<double>(kernel.stats_.kernel_nodes) /
                           static_cast<double>(kernel.stats_.original_nodes));
  }
  return kernel;
}

graph::oct_result reduced_odd_cycle_transversal(
    const graph::undirected_graph& g, const graph::oct_options& options,
    oct_reduction_stats* stats_out) {
  const oct_kernel kernel = kernelize_for_oct(g);
  if (stats_out != nullptr) *stats_out = kernel.stats();

  graph::oct_result result;
  if (kernel.solved()) {
    result.in_transversal = kernel.lift({});
    result.optimal = true;
  } else {
    const graph::oct_result on_kernel =
        graph::odd_cycle_transversal(kernel.kernel_graph(), options);
    result.in_transversal = kernel.lift(on_kernel.in_transversal);
    result.optimal = on_kernel.optimal;
  }
  result.size = static_cast<std::size_t>(std::count(
      result.in_transversal.begin(), result.in_transversal.end(), true));
  check(graph::is_odd_cycle_transversal(g, result.in_transversal),
        "oct_reduce: lifted transversal is not a valid OCT");
  return result;
}

}  // namespace compact::core
