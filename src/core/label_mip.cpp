#include <algorithm>
#include <cmath>

#include "core/labelers.hpp"
#include "milp/model.hpp"
#include "util/error.hpp"
#include "util/trace.hpp"

namespace compact::core {
namespace {

/// Variable layout inside the MIP: for node i, x^H_i = 2i, x^V_i = 2i+1;
/// edge selectors and D follow.
struct mip_layout {
  static int xh(graph::node_id i) { return 2 * i; }
  static int xv(graph::node_id i) { return 2 * i + 1; }
};

/// Method 1 run used as warm start / fallback, memoized through `cache` when
/// one is supplied. The key matches a standalone "oct" labeler run with the
/// same options, so gamma sweeps over one graph share a single OCT solve.
oct_label_result warm_oct_labeling(const bdd_graph& graph,
                                   const oct_label_options& oct,
                                   labeling_cache* cache) {
  if (cache == nullptr) return label_minimal_semiperimeter(graph, oct);
  const label_cache_key key =
      make_label_cache_key(graph, "oct", oct_cache_salt(oct));
  if (std::optional<cached_labeling> hit = cache->find(key)) {
    oct_label_result result;
    result.l = std::move(hit->l);
    result.optimal = hit->optimal;
    result.oct_size = hit->oct_size;
    result.promoted = hit->promoted;
    return result;
  }
  oct_label_result result = label_minimal_semiperimeter(graph, oct);
  cached_labeling entry;
  entry.l = result.l;
  entry.optimal = result.optimal;
  entry.oct_size = result.oct_size;
  entry.promoted = result.promoted;
  cache->store(key, std::move(entry));
  return result;
}

}  // namespace

mip_label_result label_weighted(const bdd_graph& graph,
                                const mip_label_options& options) {
  const trace_span span("label_mip", "label");
  check(options.gamma >= 0.0 && options.gamma <= 1.0,
        "label_weighted: gamma must lie in [0, 1]");
  const graph::undirected_graph& g = graph.g;
  const auto n = static_cast<graph::node_id>(g.node_count());

  mip_label_result result;
  if (n == 0) {
    result.optimal = true;
    return result;
  }

  // Memory guard: the LP engine keeps a dense tableau of roughly
  // (n + 2|E| + 4) x (3n + |E| + rows) doubles. Beyond ~500 MB we fall back
  // to Method 1's labeling and report the instance as unconverged — the
  // same observable behaviour as the paper's timed-out large circuits.
  {
    const double rows_estimate = static_cast<double>(g.node_count()) +
                                 2.0 * static_cast<double>(g.edge_count()) + 4.0;
    const double cols_estimate = 3.0 * static_cast<double>(g.node_count()) +
                                 static_cast<double>(g.edge_count()) +
                                 rows_estimate;
    if (rows_estimate * cols_estimate * 8.0 > 500e6) {
      check(!options.max_rows && !options.max_columns,
            "label_weighted: instance too large for constrained synthesis");
      oct_label_options oct;
      oct.alignment = options.alignment;
      oct.time_limit_seconds = options.oct_time_limit_seconds;
      oct.reduce = options.reduce;
      oct.threads = options.threads;
      oct_label_result fallback = warm_oct_labeling(graph, oct, options.cache);
      result.l = std::move(fallback.l);
      result.optimal = false;
      result.relative_gap = 1.0;
      result.objective =
          options.gamma * compute_stats(result.l).semiperimeter +
          (1.0 - options.gamma) * compute_stats(result.l).max_dimension;
      return result;
    }
  }

  // ---- Build the MIP of Eq. 4 (+ Eq. 7 alignment). ----------------------
  milp::model m;
  const double gamma = options.gamma;
  for (graph::node_id i = 0; i < n; ++i) {
    // Objective gamma*S with S = sum of all label indicators.
    const int xh = m.add_binary(gamma, "xH" + std::to_string(i));
    const int xv = m.add_binary(gamma, "xV" + std::to_string(i));
    check(xh == mip_layout::xh(i) && xv == mip_layout::xv(i),
          "label_weighted: variable layout mismatch");
    // Every node needs at least one label.
    m.add_constraint({{xh, 1.0}, {xv, 1.0}}, milp::relation::greater_equal,
                     1.0);
  }
  // D is integral at every labeling (it is max(R, C)); declaring it integer
  // lets branch-and-bound round the LP's D = S/2 relaxation value, which is
  // what closes the gap on balanced designs.
  const int d_var =
      m.add_variable(0.0, 2.0 * static_cast<double>(g.node_count()),
                     1.0 - gamma, /*is_integer=*/true, "D");
  m.set_branch_priority(d_var, 2);

  // Edge orientation selectors and connection constraints.
  std::vector<int> edge_selector;
  edge_selector.reserve(g.edge_count());
  for (const graph::edge& e : g.edges()) {
    const int sel = m.add_binary(0.0);
    edge_selector.push_back(sel);
    // x^V_i + x^H_j >= 2 - 2*sel   (sel = 0: i is the bitline side)
    m.add_constraint({{mip_layout::xv(e.u), 1.0},
                      {mip_layout::xh(e.v), 1.0},
                      {sel, 2.0}},
                     milp::relation::greater_equal, 2.0);
    // x^H_i + x^V_j >= 2*sel       (sel = 1: i is the wordline side)
    m.add_constraint({{mip_layout::xh(e.u), 1.0},
                      {mip_layout::xv(e.v), 1.0},
                      {sel, -2.0}},
                     milp::relation::greater_equal, 0.0);
  }

  // D >= R and D >= C.
  {
    std::vector<milp::linear_term> r_terms, c_terms;
    for (graph::node_id i = 0; i < n; ++i) {
      r_terms.push_back({mip_layout::xh(i), 1.0});
      c_terms.push_back({mip_layout::xv(i), 1.0});
    }
    r_terms.push_back({d_var, -1.0});
    c_terms.push_back({d_var, -1.0});
    m.add_constraint(std::move(r_terms), milp::relation::less_equal, 0.0);
    m.add_constraint(std::move(c_terms), milp::relation::less_equal, 0.0);
  }

  // Alignment (Eq. 7): aligned nodes must take at least the H label.
  if (options.alignment)
    for (graph::node_id i : graph.aligned_nodes())
      m.set_bounds(mip_layout::xh(i), 1.0, 1.0);

  // Optional hard dimension budgets (Section III).
  if (options.max_rows) {
    std::vector<milp::linear_term> terms;
    for (graph::node_id i = 0; i < n; ++i)
      terms.push_back({mip_layout::xh(i), 1.0});
    m.add_constraint(std::move(terms), milp::relation::less_equal,
                     static_cast<double>(*options.max_rows), "max_rows");
  }
  if (options.max_columns) {
    std::vector<milp::linear_term> terms;
    for (graph::node_id i = 0; i < n; ++i)
      terms.push_back({mip_layout::xv(i), 1.0});
    m.add_constraint(std::move(terms), milp::relation::less_equal,
                     static_cast<double>(*options.max_columns), "max_cols");
  }

  // Branching priorities: the label indicators are the real decisions; the
  // edge-orientation selectors follow from them.
  for (graph::node_id i = 0; i < n; ++i) {
    m.set_branch_priority(mip_layout::xh(i), 1);
    m.set_branch_priority(mip_layout::xv(i), 1);
  }

  // Valid inequality: D >= max(R, C) >= (R + C)/2 = S/2, i.e. 2D - S >= 0.
  // Tightens the LP relaxation (which otherwise balances R and C at will).
  {
    std::vector<milp::linear_term> terms;
    terms.push_back({d_var, 2.0});
    for (graph::node_id i = 0; i < n; ++i) {
      terms.push_back({mip_layout::xh(i), -1.0});
      terms.push_back({mip_layout::xv(i), -1.0});
    }
    m.add_constraint(std::move(terms), milp::relation::greater_equal, 0.0);
  }

  // ---- Warm start from Method 1. -----------------------------------------
  milp::mip_options mip;
  mip.time_limit_seconds = options.time_limit_seconds;
  mip.threads = options.threads;
  // The objective lives on the lattice {gamma*s + (1-gamma)*d : s, d in Z};
  // when gamma sits on the 1/20 grid the minimal positive lattice element
  // is gcd(p, 20-p)/20, and half of it certifies optimality.
  {
    const double scaled = gamma * 20.0;
    if (std::abs(scaled - std::round(scaled)) < 1e-9) {
      const int p = static_cast<int>(std::llround(scaled));
      const int q = 20;
      int a = p == 0 ? q : p;
      int b = p == 0 ? q : q - p;
      if (b == 0) b = a;
      while (b != 0) {
        const int t = a % b;
        a = b;
        b = t;
      }
      mip.absolute_gap_tolerance = 0.499 * static_cast<double>(a) / q;
      // Same lattice, stronger use: node LP bounds round up to the next
      // lattice point, pruning subtrees that cannot beat the incumbent.
      mip.objective_lattice = static_cast<double>(a) / q;
    }
  }
  if (options.warm_start_with_oct) {
    oct_label_options oct;
    oct.alignment = options.alignment;
    oct.reduce = options.reduce;
    oct.threads = options.threads;
    // The warm start must not dwarf the MIP's own budget.
    oct.time_limit_seconds = std::min(
        options.oct_time_limit_seconds,
        std::max(1.0, options.time_limit_seconds));
    const oct_label_result warm = warm_oct_labeling(graph, oct, options.cache);

    // Any feasible labeling's VH set is an odd cycle transversal (removing
    // it leaves a V/H 2-colorable, hence bipartite, graph). When the OCT
    // engine proved k_min, S >= n + k_min is a valid cut that typically
    // closes the gamma-weighted root gap.
    if (warm.optimal) {
      std::vector<milp::linear_term> terms;
      for (graph::node_id i = 0; i < n; ++i) {
        terms.push_back({mip_layout::xh(i), 1.0});
        terms.push_back({mip_layout::xv(i), 1.0});
      }
      m.add_constraint(std::move(terms), milp::relation::greater_equal,
                       static_cast<double>(g.node_count() + warm.oct_size));
    }
    std::vector<double> x(m.variable_count(), 0.0);
    for (graph::node_id i = 0; i < n; ++i) {
      const vh_label label = warm.l.label_of[static_cast<std::size_t>(i)];
      x[static_cast<std::size_t>(mip_layout::xh(i))] =
          label != vh_label::v ? 1.0 : 0.0;
      x[static_cast<std::size_t>(mip_layout::xv(i))] =
          label != vh_label::h ? 1.0 : 0.0;
    }
    for (std::size_t e = 0; e < g.edges().size(); ++e) {
      const graph::edge& edge = g.edges()[e];
      const bool v_then_h =
          x[static_cast<std::size_t>(mip_layout::xv(edge.u))] > 0.5 &&
          x[static_cast<std::size_t>(mip_layout::xh(edge.v))] > 0.5;
      x[static_cast<std::size_t>(edge_selector[e])] = v_then_h ? 0.0 : 1.0;
    }
    const labeling_stats stats = compute_stats(warm.l);
    x[static_cast<std::size_t>(d_var)] = stats.max_dimension;
    if (m.is_feasible(x)) {
      mip.warm_start = std::move(x);
    } else {
      // Only dimension budgets can invalidate the constructed warm start.
      check(options.max_rows.has_value() || options.max_columns.has_value(),
            "label_weighted: OCT warm start infeasible");
    }
  }

  // ---- Solve and decode. ---------------------------------------------------
  // Solver milestones arrive as events: each one lands in the returned
  // trace (Fig. 10) and, when a sink is attached, in telemetry.
  mip.on_trace = [&result, &options](const milp::mip_trace_entry& entry) {
    result.trace.push_back(entry);
    if (options.telemetry != nullptr) {
      telemetry_event event;
      event.stage = "mip_trace";
      event.seconds = entry.seconds;
      event.metric("best_integer", entry.best_integer);
      event.metric("best_bound", entry.best_bound);
      event.metric("relative_gap", entry.relative_gap);
      options.telemetry->emit(event);
    }
  };
  const milp::mip_result solved = milp::solve_mip(m, mip);
  if (solved.status == milp::mip_status::infeasible)
    throw infeasible_error(
        "label_weighted: the requested design constraints are infeasible");
  check(solved.status == milp::mip_status::optimal ||
            solved.status == milp::mip_status::feasible,
        "label_weighted: no labeling found within the limits");

  result.l.label_of.assign(g.node_count(), vh_label::v);
  for (graph::node_id i = 0; i < n; ++i) {
    const bool h = solved.x[static_cast<std::size_t>(mip_layout::xh(i))] > 0.5;
    const bool v = solved.x[static_cast<std::size_t>(mip_layout::xv(i))] > 0.5;
    check(h || v, "label_weighted: unlabeled node in MIP solution");
    result.l.label_of[static_cast<std::size_t>(i)] =
        h && v ? vh_label::vh : (h ? vh_label::h : vh_label::v);
  }
  result.optimal = solved.status == milp::mip_status::optimal;
  result.relative_gap = solved.relative_gap;
  result.best_bound = solved.best_bound;
  result.objective = solved.objective;
  result.nodes_explored = solved.nodes_explored;

  check(is_feasible(g, result.l), "label_weighted: infeasible labeling");
  if (options.alignment)
    check(satisfies_alignment(graph, result.l),
          "label_weighted: alignment violated");
  return result;
}

}  // namespace compact::core
