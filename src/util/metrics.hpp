// Process-wide metrics registry: counters, gauges, fixed-bucket histograms
// and (seconds, value) time series, registered by name and dumpable as JSON.
//
// The registry exists so the hot engines (bdd::manager, the branch-and-bound
// MIP, the labeling cache, the thread pool) can publish what happens inside
// them without threading a sink through every call chain. Publication is
// gated on a global enabled flag (one relaxed atomic load when off), and
// metrics only observe — designs are bit-identical with metrics on or off.
//
// Thread-safety: every metric object is internally synchronized and safe to
// update from pool workers; handles returned by the registry stay valid for
// the process lifetime (metrics are never deleted, only reset to zero).
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace compact {

/// Monotonically increasing event count.
class metric_counter {
 public:
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void increment() { add(1); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class metric_gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// bounds[i-1] < v <= bounds[i]; an implicit overflow bucket catches
/// v > bounds.back(). Quantiles are extracted by linear interpolation
/// inside the containing bucket (the standard Prometheus estimate), so
/// they are approximations whose error is bounded by the bucket width.
class metric_histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit metric_histogram(std::vector<double> bounds);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  /// Observations in bucket `i` (i == bounds().size() is the overflow
  /// bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  /// Approximate q-quantile (q in [0, 1]) of the observations. Returns 0
  /// when empty. Values in the overflow bucket clamp to bounds().back().
  [[nodiscard]] double quantile(double q) const;

  void reset();

 private:
  std::vector<double> bounds_;
  mutable annotated_mutex mutex_;
  // bounds_.size() + 1 buckets (overflow last).
  std::vector<std::uint64_t> buckets_ COMPACT_GUARDED_BY(mutex_);
  std::uint64_t count_ COMPACT_GUARDED_BY(mutex_) = 0;
  double sum_ COMPACT_GUARDED_BY(mutex_) = 0.0;
};

/// Append-only (seconds, value) series for convergence-style metrics (e.g.
/// the MIP's gap over time). Retention is bounded: at most max_points()
/// points are kept, and on overflow the series deterministically halves its
/// resolution (drops every other stored point and doubles the accept
/// stride), so long-running processes never grow a series without limit
/// while the retained points still span the whole timeline.
class metric_series {
 public:
  /// Hard cap on stored points; reaching it triggers downsampling.
  [[nodiscard]] static constexpr std::size_t max_points() { return 4096; }

  void append(double seconds, double value);
  [[nodiscard]] std::vector<std::pair<double, double>> points() const;
  [[nodiscard]] std::size_t size() const;
  /// Current accept stride: 1 until the first downsample, then 2, 4, ...
  /// Only every stride()-th append is stored.
  [[nodiscard]] std::size_t stride() const {
    const mutex_lock lock(mutex_);
    return stride_;
  }
  void reset();

 private:
  mutable annotated_mutex mutex_;
  std::vector<std::pair<double, double>> points_ COMPACT_GUARDED_BY(mutex_);
  std::size_t stride_ COMPACT_GUARDED_BY(mutex_) = 1;
  std::size_t skip_ COMPACT_GUARDED_BY(mutex_) = 0;
};

/// Globally enable/disable metric publication from the instrumented hot
/// paths. Off by default so library code stays untouched inside benchmarks.
void set_metrics_enabled(bool enabled);
[[nodiscard]] bool metrics_enabled();

class metrics_registry {
 public:
  /// Get-or-create by name. Handles remain valid for the process lifetime.
  /// Names are conventionally dotted paths: "bdd.ite_cache_hits",
  /// "milp.bnb.nodes_explored", "thread_pool.queue_depth".
  [[nodiscard]] metric_counter& counter(const std::string& name);
  [[nodiscard]] metric_gauge& gauge(const std::string& name);
  /// `bounds` is used on first creation only; later callers get the
  /// existing histogram whatever its bounds.
  [[nodiscard]] metric_histogram& histogram(const std::string& name,
                                            std::vector<double> bounds);
  [[nodiscard]] metric_series& series(const std::string& name);

  /// Registered names in sorted order, as (name, kind) pairs with kind in
  /// {"counter", "gauge", "histogram", "series"}.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> names() const;

  /// Dump every metric as one JSON object keyed by metric name. Counters
  /// and gauges map to numbers; histograms map to {count, sum, buckets,
  /// p50, p90, p99}; series map to {points: [[s, v], ...]}.
  void write_json(std::ostream& os) const;

  /// Zero every registered metric (registrations themselves persist).
  void reset();

 private:
  struct entry;
  entry& find_or_create(const std::string& name, const char* kind)
      COMPACT_REQUIRES(mutex_);

  mutable annotated_mutex mutex_;
  // Insertion order; entries leak by design (process-lifetime handles).
  std::vector<std::pair<std::string, entry*>> entries_
      COMPACT_GUARDED_BY(mutex_);
};

/// The process-wide registry used by all built-in instrumentation.
[[nodiscard]] metrics_registry& global_metrics();

}  // namespace compact
