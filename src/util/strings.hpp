// Small string utilities shared by the BLIF/PLA parsers and table writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace compact {

/// Strip leading and trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Split on any run of spaces/tabs; no empty tokens are produced.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// Split on a single character delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Format a double with `digits` significant decimal places (fixed notation).
[[nodiscard]] std::string format_fixed(double value, int digits);

}  // namespace compact
