#include "util/thread_pool.hpp"

#include <limits>

#include "util/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/trace.hpp"

namespace compact {

thread_pool::thread_pool(int threads) {
  check(threads >= 1, "thread_pool: need at least one worker");
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t)
    workers_.emplace_back([this] { worker_loop(); });
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void thread_pool::note_queue_depth(std::size_t depth) {
  if (!metrics_enabled()) return;
  global_metrics()
      .histogram("thread_pool.queue_depth",
                 {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})
      .observe(static_cast<double>(depth));
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(const parallel_options& options, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const int workers = options.worker_count(count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex failure_mutex;
  std::size_t failure_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr failure;
  auto runner = [&] {
    const trace_span span("parallel_for.worker", "thread_pool");
    const stopwatch busy;
    std::size_t executed = 0;
    for (std::size_t i = next.fetch_add(1); i < count;
         i = next.fetch_add(1)) {
      ++executed;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(failure_mutex);
        // Keep the lowest-indexed failure so the reported exception does
        // not depend on scheduling.
        if (i < failure_index) {
          failure_index = i;
          failure = std::current_exception();
        }
      }
    }
    if (metrics_enabled() && executed > 0) {
      metrics_registry& registry = global_metrics();
      registry.counter("thread_pool.items_executed").add(executed);
      const auto busy_us = static_cast<std::uint64_t>(busy.seconds() * 1e6);
      registry.counter("thread_pool.worker_busy_us").add(busy_us);
      // Per-worker breakdown, keyed by the dense thread slot so the
      // numbers line up with the Chrome trace "tid" column.
      registry
          .counter("thread_pool.worker_busy_us.tid" +
                   std::to_string(current_thread_slot()))
          .add(busy_us);
    }
  };

  thread_pool pool(workers);
  std::vector<std::future<void>> done;
  done.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) done.push_back(pool.submit(runner));
  for (std::future<void>& d : done) d.get();
  if (failure) std::rethrow_exception(failure);
}

}  // namespace compact
