// Hierarchical span tracing with Chrome trace-event export.
//
// A process-wide tracer records named spans (RAII via trace_span) carrying a
// monotonic microsecond timestamp and a small dense thread id, so the
// thread-pool fan-out of separate-ROBDD synthesis shows up as a real
// timeline in chrome://tracing or Perfetto. Tracing is off by default; when
// disabled, trace_span construction is a single relaxed atomic load and no
// allocation or locking happens anywhere on the hot path. Designs are
// bit-identical with tracing on or off: the tracer only observes.
//
// Export format (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// an object {"traceEvents": [...]} of complete events (ph = "X") with
// ts/dur in microseconds, plus one metadata event per thread naming it.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace compact {

/// Microseconds on the process-wide monotonic clock (steady_clock, zeroed at
/// first use). Shared by the tracer and telemetry event stamping so both
/// timelines line up.
[[nodiscard]] std::int64_t monotonic_now_us();

/// Small dense id of the calling thread (0, 1, 2, ... in first-use order).
/// Stable for the thread's lifetime; used as the Chrome trace "tid".
[[nodiscard]] int current_thread_slot();

/// One completed span, in Chrome trace-event terms.
struct trace_record {
  std::string name;
  std::string category;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  int thread_id = 0;
};

/// Globally enable/disable span recording. Enabling also clears nothing —
/// spans accumulate until trace_reset(). Thread-safe.
void set_trace_enabled(bool enabled);
[[nodiscard]] bool trace_enabled();

/// Drop every recorded span (the enabled flag is untouched).
void trace_reset();

/// Snapshot count of recorded spans.
[[nodiscard]] std::size_t trace_span_count();

/// Record one completed span directly (the RAII path below is preferred).
void trace_complete(std::string name, std::string category,
                    std::int64_t start_us, std::int64_t duration_us);

/// Serialize every recorded span as {"traceEvents": [...]} — loadable by
/// chrome://tracing and Perfetto. Complete events carry ph/ts/dur/pid/tid.
void write_chrome_trace(std::ostream& os);

/// Enable per-thread tracking of the currently-open span names, independent
/// of chrome-trace recording, so postmortem dumps (the flight recorder) can
/// report where a failure happened. Off by default; when off, trace_span
/// pays one extra relaxed load and nothing else.
void set_span_stack_tracking(bool enabled);
[[nodiscard]] bool span_stack_tracking();

/// The calling thread's currently-open span names, outermost first. Only
/// spans constructed while tracking was enabled appear.
[[nodiscard]] std::vector<std::string> active_spans();

namespace detail {
void push_active_span(const std::string& name);
void pop_active_span();
}  // namespace detail

/// RAII scoped span: records [construction, destruction) on the calling
/// thread when tracing is enabled at construction time. Cheap to construct
/// when disabled (one relaxed load, no allocation).
class trace_span {
 public:
  explicit trace_span(const char* name, const char* category = "synthesis")
      : active_(trace_enabled()), tracked_(span_stack_tracking()) {
    if (active_ || tracked_) {
      name_ = name;
      category_ = category;
      if (active_) start_us_ = monotonic_now_us();
    }
    if (tracked_) detail::push_active_span(name_);
  }
  trace_span(std::string name, const char* category = "synthesis")
      : active_(trace_enabled()), tracked_(span_stack_tracking()) {
    if (active_ || tracked_) {
      name_ = std::move(name);
      category_ = category;
      if (active_) start_us_ = monotonic_now_us();
    }
    if (tracked_) detail::push_active_span(name_);
  }
  ~trace_span() {
    if (tracked_) detail::pop_active_span();
    if (active_)
      trace_complete(std::move(name_), category_,
                     start_us_, monotonic_now_us() - start_us_);
  }
  trace_span(const trace_span&) = delete;
  trace_span& operator=(const trace_span&) = delete;

 private:
  bool active_ = false;
  bool tracked_ = false;
  std::string name_;
  const char* category_ = "";
  std::int64_t start_us_ = 0;
};

}  // namespace compact
