// Process-wide byte accounting: named memory accounts with relaxed-atomic
// live/peak gauges, published into the metrics registry as mem.<name>.bytes.
//
// The facility exists so the heavyweights (the BDD arena and tables, the
// labeling/partition caches, the MILP tableau and branch-and-bound queue)
// can report how many bytes they hold without a real allocator hook. Each
// owner tracks the bytes it knows it allocated and reconciles them into an
// account via account_set(); temporaries use scoped_mem. Accounting follows
// the util/metrics gating idiom: off by default, one relaxed atomic load on
// the fast path when disabled, and observation only — designs are
// bit-identical with memtrack on or off.
//
// Thread-safety: accounts are internally synchronized (relaxed atomics with
// a CAS-maintained peak) and safe to update from pool workers. Handles from
// memtrack_account() stay valid for the process lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace compact {

/// Globally enable/disable byte accounting. Off by default.
void set_memtrack_enabled(bool enabled);
[[nodiscard]] bool memtrack_enabled();

/// One named byte account (e.g. "bdd.arena"). Updates also maintain the
/// process-wide live total and peak, so a memory watchdog can compare one
/// number against its limit.
class mem_account {
 public:
  /// Unconditional add/sub (callers gate; prefer account_set below).
  void add(std::uint64_t bytes);
  void sub(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t live() const {
    return live_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peak() const {
    return peak_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Drop live to zero (adjusting the process total) and clear the peak.
  void reset();

 private:
  friend mem_account& memtrack_account(const std::string& name);
  explicit mem_account(std::string name) : name_(std::move(name)) {}

  std::string name_;
  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// Get-or-create an account by dotted name ("bdd.unique_table",
/// "cache.labeling"). Handles remain valid for the process lifetime.
[[nodiscard]] mem_account& memtrack_account(const std::string& name);

/// Every registered account, sorted by name. Pointers are process-lifetime.
[[nodiscard]] std::vector<const mem_account*> memtrack_accounts();

/// Sum of live bytes across all accounts, and its high-water mark.
[[nodiscard]] std::uint64_t memtrack_process_live();
[[nodiscard]] std::uint64_t memtrack_process_peak();

/// Zero every account and the process totals (registrations persist).
void memtrack_reset();

/// Reconcile an owner-tracked byte count with an account. `accounted` is the
/// caller's record of what it previously charged; `now` is what it currently
/// holds. When memtrack is disabled the target is zero, so an owner that
/// keeps calling this after a mid-run disable drains its charge instead of
/// leaving stale bytes behind. Near-zero cost when disabled and drained.
inline void account_set(mem_account& account, std::uint64_t& accounted,
                        std::uint64_t now) {
  const std::uint64_t target = memtrack_enabled() ? now : 0;
  if (target == accounted) return;
  if (target > accounted)
    account.add(target - accounted);
  else
    account.sub(accounted - target);
  accounted = target;
}

/// RAII charge for a temporary allocation (e.g. one LP solve's tableau):
/// charges at construction when memtrack is enabled, releases exactly what
/// it charged at destruction regardless of any mid-scope toggle.
class scoped_mem {
 public:
  scoped_mem(mem_account& account, std::uint64_t bytes)
      : account_(account), charged_(memtrack_enabled() ? bytes : 0) {
    if (charged_ != 0) account_.add(charged_);
  }
  ~scoped_mem() {
    if (charged_ != 0) account_.sub(charged_);
  }
  scoped_mem(const scoped_mem&) = delete;
  scoped_mem& operator=(const scoped_mem&) = delete;

 private:
  mem_account& account_;
  std::uint64_t charged_;
};

/// Owner-tracked charge with RAII drain: set() reconciles like account_set,
/// and destruction releases whatever is still charged (exception-safe, so a
/// throw out of the owning scope cannot leak accounted bytes).
class account_guard {
 public:
  explicit account_guard(mem_account& account) : account_(account) {}
  ~account_guard() {
    if (accounted_ != 0) account_.sub(accounted_);
  }
  void set(std::uint64_t now) { account_set(account_, accounted_, now); }
  account_guard(const account_guard&) = delete;
  account_guard& operator=(const account_guard&) = delete;

 private:
  mem_account& account_;
  std::uint64_t accounted_ = 0;
};

/// Push every account into the global metrics registry as gauges
/// mem.<account>.bytes / mem.<account>.peak_bytes plus mem.process.bytes and
/// mem.process.peak_bytes, so --metrics-json and `stats` pick them up. No-op
/// unless both memtrack and metrics are enabled.
void publish_memtrack_metrics();

}  // namespace compact
