#include "util/watchdog.hpp"

#include <atomic>
#include <string>

#include "util/flight_recorder.hpp"
#include "util/memtrack.hpp"
#include "util/trace.hpp"

namespace compact {
namespace {

// The installed budgets, all relaxed atomics so pool workers can sample
// them without locking. Written only by the installing thread while
// g_active is false, then published with a release store on g_active.
std::atomic<bool> g_active{false};
std::atomic<std::uint64_t> g_memory_limit{0};
std::atomic<std::uint64_t> g_soft_limit{0};
std::atomic<std::int64_t> g_deadline_us{0};  // absolute monotonic us; 0 = off

std::string span_context() {
  const std::vector<std::string> spans = active_spans();
  if (spans.empty()) return std::string();
  std::string out = " (spans: ";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += " > ";
    out += spans[i];
  }
  out += ")";
  return out;
}

}  // namespace

bool resource_limits_active() {
  return g_active.load(std::memory_order_relaxed);
}

resource_pressure resource_checkpoint(const char* where) {
  if (!g_active.load(std::memory_order_acquire)) return resource_pressure::none;

  const std::int64_t deadline_us = g_deadline_us.load(std::memory_order_relaxed);
  if (deadline_us != 0) {
    const std::int64_t now_us = monotonic_now_us();
    if (now_us > deadline_us) {
      const std::string message =
          "resource limit exceeded: deadline (" +
          std::to_string(now_us / 1000) + " ms elapsed past the budget) at " +
          where + span_context();
      flight_record("watchdog.trip", message);
      throw resource_limit_error(resource_limit_error::kind::deadline, message);
    }
  }

  const std::uint64_t limit = g_memory_limit.load(std::memory_order_relaxed);
  if (limit != 0) {
    const std::uint64_t live = memtrack_process_live();
    if (live > limit) {
      const std::string message =
          "resource limit exceeded: memory (" + std::to_string(live) +
          " bytes live > " + std::to_string(limit) + " byte limit) at " +
          where + span_context();
      flight_record("watchdog.trip", message);
      throw resource_limit_error(resource_limit_error::kind::memory, message);
    }
    if (live > g_soft_limit.load(std::memory_order_relaxed)) {
      flight_record("watchdog.pressure",
                    std::string("soft memory pressure at ") + where + ": " +
                        std::to_string(live) + " / " + std::to_string(limit) +
                        " bytes");
      return resource_pressure::soft_memory;
    }
  }
  return resource_pressure::none;
}

resource_limit_scope::resource_limit_scope(const resource_limits& limits) {
  const bool wants_limits =
      limits.memory_limit_bytes != 0 || limits.deadline_seconds > 0.0;
  if (!wants_limits || g_active.load(std::memory_order_relaxed)) return;

  previous_memtrack_ = memtrack_enabled();
  if (limits.memory_limit_bytes != 0) set_memtrack_enabled(true);

  g_memory_limit.store(limits.memory_limit_bytes, std::memory_order_relaxed);
  const double soft_fraction =
      limits.soft_fraction > 0.0 && limits.soft_fraction <= 1.0
          ? limits.soft_fraction
          : 0.85;
  g_soft_limit.store(static_cast<std::uint64_t>(
                         soft_fraction *
                         static_cast<double>(limits.memory_limit_bytes)),
                     std::memory_order_relaxed);
  g_deadline_us.store(
      limits.deadline_seconds > 0.0
          ? monotonic_now_us() +
                static_cast<std::int64_t>(limits.deadline_seconds * 1e6)
          : 0,
      std::memory_order_relaxed);
  g_active.store(true, std::memory_order_release);
  installed_ = true;
}

resource_limit_scope::~resource_limit_scope() {
  if (!installed_) return;
  g_active.store(false, std::memory_order_release);
  g_memory_limit.store(0, std::memory_order_relaxed);
  g_soft_limit.store(0, std::memory_order_relaxed);
  g_deadline_us.store(0, std::memory_order_relaxed);
  set_memtrack_enabled(previous_memtrack_);
}

}  // namespace compact
