// Structured per-stage telemetry for the synthesis pipeline.
//
// Every pipeline stage (core/pipeline) and solver milestone emits one
// telemetry_event into a pluggable sink. Sinks must be thread-safe: the
// separate-ROBDD flow and the benchmark harnesses emit from pool workers
// concurrently. Two sinks ship with the library:
//
//   * json_lines_sink — one JSON object per line (JSON-lines), the format
//     behind `compact_cli synthesize --trace-json FILE`;
//   * memory_sink — records events in memory for tests and for harnesses
//     that aggregate counters after a run.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace compact {

/// One pipeline stage execution or solver milestone.
struct telemetry_event {
  std::string stage;     // e.g. "build_graph", "label", "map", "mip_trace"
  double seconds = 0.0;  // wall time of the stage (0 for point events)
  /// Emission order across pool workers: microseconds on the process-wide
  /// monotonic clock (util/trace) and the emitting thread's dense slot id.
  /// -1 = unstamped; stamp() fills both, and json_lines_sink stamps any
  /// event that arrives unstamped so JSON-lines traces are always
  /// cross-thread orderable.
  std::int64_t timestamp_us = -1;
  int thread_id = -1;
  /// Numeric observations (node counts, dimensions, solver bounds, ...).
  std::vector<std::pair<std::string, double>> metrics;
  /// Categorical observations (labeler name, cache hit/miss, ...).
  std::vector<std::pair<std::string, std::string>> attributes;

  void metric(std::string name, double value) {
    metrics.emplace_back(std::move(name), value);
  }
  void attribute(std::string name, std::string value) {
    attributes.emplace_back(std::move(name), std::move(value));
  }

  /// Record the current monotonic time and calling thread id.
  void stamp();

  /// First metric with `name`, or `fallback` when absent.
  [[nodiscard]] double metric_or(const std::string& name,
                                 double fallback) const;
  /// First attribute with `name`, or an empty string when absent.
  [[nodiscard]] std::string attribute_or(const std::string& name,
                                         std::string fallback = {}) const;
};

/// Destination for telemetry events. Implementations must tolerate emit()
/// being called concurrently from multiple threads.
class telemetry_sink {
 public:
  virtual ~telemetry_sink() = default;
  virtual void emit(const telemetry_event& event) = 0;
};

/// Writes one JSON object per event to an ostream (JSON-lines). Keys:
/// "stage", "seconds", "ts_us", "tid", then every metric (number or null
/// when non-finite) and attribute (string). Unstamped events are stamped at
/// emission time. Every line is flushed so a truncated run (crash,
/// std::exit) still leaves only whole, parseable lines behind. Emission is
/// serialized by an internal mutex.
class json_lines_sink final : public telemetry_sink {
 public:
  explicit json_lines_sink(std::ostream& os) : os_(os) {}
  void emit(const telemetry_event& event) override;

 private:
  std::mutex mutex_;
  std::ostream& os_;
};

/// Collects events in memory; events() returns a snapshot copy.
class memory_sink final : public telemetry_sink {
 public:
  void emit(const telemetry_event& event) override;
  [[nodiscard]] std::vector<telemetry_event> events() const;
  /// Number of recorded events whose stage equals `stage`.
  [[nodiscard]] std::size_t count(const std::string& stage) const;

 private:
  mutable std::mutex mutex_;
  std::vector<telemetry_event> events_;
};

/// Escape `text` for inclusion inside a double-quoted JSON string.
[[nodiscard]] std::string json_escape(const std::string& text);

/// Render a double as a JSON number ("null" when non-finite; integral
/// values print without a fraction).
[[nodiscard]] std::string json_number(double value);

/// Render one event as a single-line JSON object (no trailing newline).
[[nodiscard]] std::string to_json_line(const telemetry_event& event);

}  // namespace compact
