// Minimal JSON document parser (RFC 8259 subset, DOM-style).
//
// Exists so tools that consume our own machine-readable outputs —
// tools/bench_compare diffing google-benchmark JSON, tests validating the
// Chrome trace export — do not need an external JSON dependency. It parses
// the full JSON grammar into a small value tree; numbers are doubles.
// Parse errors throw compact::parse_error with a byte offset.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace compact::json {

enum class kind { null, boolean, number, string, array, object };

class value;
using value_ptr = std::shared_ptr<value>;

class value {
 public:
  [[nodiscard]] kind type() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == kind::null; }

  /// Typed accessors; throw compact::error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<value_ptr>& as_array() const;
  [[nodiscard]] const std::map<std::string, value_ptr>& as_object() const;

  /// Object member by key, or nullptr when absent (or not an object).
  [[nodiscard]] const value* find(const std::string& key) const;
  /// Object member by key; throws compact::error when absent.
  [[nodiscard]] const value& at(const std::string& key) const;

  // Construction (used by the parser; public for tests).
  static value_ptr make_null();
  static value_ptr make_bool(bool b);
  static value_ptr make_number(double n);
  static value_ptr make_string(std::string s);
  static value_ptr make_array(std::vector<value_ptr> items);
  static value_ptr make_object(std::map<std::string, value_ptr> members);

 private:
  kind kind_ = kind::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<value_ptr> array_;
  std::map<std::string, value_ptr> object_;
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
[[nodiscard]] value_ptr parse(const std::string& text);

/// Parse the file at `path`; throws compact::error when unreadable.
[[nodiscard]] value_ptr parse_file(const std::string& path);

}  // namespace compact::json
