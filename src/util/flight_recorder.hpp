// Failure flight recorder: a bounded, lock-free ring of recent telemetry
// and trace events that can dump a postmortem JSON artifact when a run dies.
//
// The recorder answers "what was the process doing right before it failed?"
// without the overhead or volume of full tracing: writers stamp fixed-size
// slots (timestamp, thread, short kind/detail text) guarded by per-slot
// sequence counters, so recording never blocks, never allocates, and is
// safe from pool workers (every slot field is an atomic word — clean under
// TSan). The ring keeps the last flight_recorder_capacity() events; older
// ones are overwritten and counted as dropped.
//
// Recording follows the util/metrics gating idiom: off by default, one
// relaxed atomic load when disabled, observation only — designs are
// bit-identical with the recorder on or off.
//
// A postmortem dump bundles the surviving events (oldest first), the
// calling thread's active span stack, every memory account, and the live
// metrics registry into one JSON object. The CLI and api facade trigger
// dumps on infeasible/parse/resource-limit/uncaught errors.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace compact {

/// Globally enable/disable event capture. Off by default.
void set_flight_recorder_enabled(bool enabled);
[[nodiscard]] bool flight_recorder_enabled();

/// Number of ring slots (fixed, power of two).
[[nodiscard]] std::size_t flight_recorder_capacity();

/// Record one event. `kind` is a short dotted tag ("pipeline.stage",
/// "watchdog.trip", "cli.error"); `detail` is free text. Both are truncated
/// to the slot's fixed text budget. No-op (one relaxed load) when disabled.
void flight_record(const char* kind, const std::string& detail);

/// One event recovered from the ring.
struct flight_event {
  std::uint64_t sequence = 0;  // global record index (0 = first ever)
  std::int64_t timestamp_us = 0;
  int thread_id = 0;
  std::string kind;
  std::string detail;
};

/// Events currently readable from the ring, oldest first. Slots being
/// written concurrently are skipped rather than waited on.
[[nodiscard]] std::vector<flight_event> flight_snapshot();

/// Total events ever recorded (including overwritten ones).
[[nodiscard]] std::uint64_t flight_recorded_count();

/// Drop all events and zero the counters (the enabled flag is untouched).
void flight_reset();

/// Write the postmortem JSON artifact: {reason, recorded/captured/dropped
/// counts, events, active_spans (calling thread), memory accounts, metrics}.
void write_flight_postmortem(std::ostream& os, const std::string& reason);

/// Process-wide postmortem destination used by the CLI's failure paths.
/// Empty means "no dump". Setting a non-empty path also enables the
/// recorder and span-stack tracking.
void set_flight_record_path(const std::string& path);
[[nodiscard]] std::string flight_record_path();

/// If a postmortem path is set, write the artifact there (best effort,
/// never throws) and return true. Returns false when no path is set or the
/// file could not be written.
bool dump_flight_postmortem(const std::string& reason) noexcept;

}  // namespace compact
