#include "util/trace.hpp"

#include <chrono>
#include <mutex>
#include <vector>

#include "util/telemetry.hpp"

namespace compact {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_span_stack_tracking{false};

// Per-thread stack of open span names; only the owning thread touches it,
// so no synchronization is needed and readers see their own stack only.
std::vector<std::string>& thread_span_stack() {
  thread_local std::vector<std::string> stack;
  return stack;
}

std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::atomic<int> g_next_thread_slot{0};

struct span_store {
  std::mutex mutex;
  std::vector<trace_record> records;
};

span_store& store() {
  static span_store s;
  return s;
}

}  // namespace

std::int64_t monotonic_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - process_epoch())
      .count();
}

int current_thread_slot() {
  thread_local const int slot =
      g_next_thread_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void set_trace_enabled(bool enabled) {
  // Touch the epoch before the first span so ts 0 is "tracing could start",
  // not "first span happened".
  process_epoch();
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool trace_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void trace_reset() {
  span_store& s = store();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.records.clear();
}

std::size_t trace_span_count() {
  span_store& s = store();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.records.size();
}

void trace_complete(std::string name, std::string category,
                    std::int64_t start_us, std::int64_t duration_us) {
  trace_record record;
  record.name = std::move(name);
  record.category = std::move(category);
  record.start_us = start_us;
  record.duration_us = duration_us < 0 ? 0 : duration_us;
  record.thread_id = current_thread_slot();
  span_store& s = store();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.records.push_back(std::move(record));
}

void set_span_stack_tracking(bool enabled) {
  g_span_stack_tracking.store(enabled, std::memory_order_relaxed);
}

bool span_stack_tracking() {
  return g_span_stack_tracking.load(std::memory_order_relaxed);
}

std::vector<std::string> active_spans() { return thread_span_stack(); }

namespace detail {

void push_active_span(const std::string& name) {
  thread_span_stack().push_back(name);
}

void pop_active_span() {
  std::vector<std::string>& stack = thread_span_stack();
  if (!stack.empty()) stack.pop_back();
}

}  // namespace detail

void write_chrome_trace(std::ostream& os) {
  std::vector<trace_record> records;
  {
    span_store& s = store();
    const std::lock_guard<std::mutex> lock(s.mutex);
    records = s.records;
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread metadata: name each tid so the timeline reads "worker N" instead
  // of a bare number. Collect the distinct tids in record order.
  std::vector<int> tids;
  for (const trace_record& r : records) {
    bool seen = false;
    for (const int t : tids) seen = seen || t == r.thread_id;
    if (!seen) tids.push_back(r.thread_id);
  }
  for (const int tid : tids) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\""
       << (tid == 0 ? std::string("main") : "worker " + std::to_string(tid))
       << "\"}}";
  }
  for (const trace_record& r : records) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(r.name) << "\",\"cat\":\""
       << json_escape(r.category) << "\",\"ph\":\"X\",\"ts\":" << r.start_us
       << ",\"dur\":" << r.duration_us << ",\"pid\":1,\"tid\":" << r.thread_id
       << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace compact
