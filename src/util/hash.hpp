// Streaming FNV-1a hashing for cache keys.
//
// The labeling cache (core/label_cache) keys entries by a canonical hash of
// the BDD graph plus the labeling options. FNV-1a is used because the keys
// are small, the hasher is trivially streamable (no buffering), and the
// digest is stable across platforms and runs — cache keys may be logged in
// telemetry and compared between sessions.
#pragma once

#include <cstdint>
#include <string_view>

namespace compact {

/// 64-bit FNV-1a over an arbitrary byte stream. Feed values in a canonical
/// order; digest() is a pure function of the fed bytes.
class fnv1a_hasher {
 public:
  static constexpr std::uint64_t offset_basis = 1469598103934665603ULL;
  static constexpr std::uint64_t prime = 1099511628211ULL;

  void add_byte(std::uint8_t byte) {
    digest_ ^= byte;
    digest_ *= prime;
  }

  void add_bytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < size; ++i) add_byte(bytes[i]);
  }

  /// Integers are fed little-endian at a fixed 8-byte width so the digest
  /// does not depend on the caller's integer type.
  void add_u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      add_byte(static_cast<std::uint8_t>(value & 0xff));
      value >>= 8;
    }
  }

  void add_i64(std::int64_t value) {
    add_u64(static_cast<std::uint64_t>(value));
  }

  /// Length-prefixed so that ("ab", "c") and ("a", "bc") hash differently.
  void add_string(std::string_view text) {
    add_u64(text.size());
    add_bytes(text.data(), text.size());
  }

  [[nodiscard]] std::uint64_t digest() const { return digest_; }

 private:
  std::uint64_t digest_ = offset_basis;
};

/// Boost-style combine for merging independently computed digests.
[[nodiscard]] inline std::uint64_t hash_combine(std::uint64_t seed,
                                                std::uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace compact
