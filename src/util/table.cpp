#include "util/table.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace compact {

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  check(!headers_.empty(), "table requires at least one column");
}

void table::add_row(std::vector<std::string> cells) {
  check(cells.size() == headers_.size(),
        "table row width mismatch: got " + std::to_string(cells.size()) +
            ", want " + std::to_string(headers_.size()));
  rows_.push_back(std::move(cells));
}

void table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size())
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool quote = cells[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << cells[c];
      if (quote) os << '"';
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string cell(long long value) { return std::to_string(value); }
std::string cell(std::size_t value) { return std::to_string(value); }
std::string cell(int value) { return std::to_string(value); }
std::string cell(double value, int digits) {
  return format_fixed(value, digits);
}

}  // namespace compact
