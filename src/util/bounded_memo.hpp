// Bounded-memory memoization: the shared engine behind the labeling and
// partition caches.
//
// Both caches follow the same shape — a 64-bit digest buckets entries, the
// full canonical key string rules out collisions, racing stores of the same
// key keep the first value — and both must now run for days inside
// compact-serve without growing monotonically. bounded_memo centralizes that
// shape and adds exact-LRU eviction driven by the same byte estimate that
// feeds the mem.<account>.bytes gauge: every find() refreshes the entry's
// recency, and store() evicts from the cold end until the estimated content
// size fits the configured capacity. Capacity zero (the default) means
// unbounded, which preserves the historical behavior for CLI one-shots.
//
// Eviction is observation-only by construction: a memo holds results of
// deterministic computations, so evicting an entry can only turn a future
// hit into a recompute of the identical value. Designs are byte-identical
// with eviction on or off (tests/cache_eviction_test.cpp pins this).
//
// Thread-safety: one annotated_mutex guards all state; safe to share across
// pool workers and across concurrent compact-serve requests.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/memtrack.hpp"
#include "util/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace compact {

template <typename Payload>
class bounded_memo {
 public:
  /// `metric_prefix` names the metrics family ("label_cache" publishes
  /// label_cache.hits/misses/entries/evictions); `account_name` names the
  /// memtrack account charged with the estimated content bytes.
  bounded_memo(std::string metric_prefix, const std::string& account_name)
      : metric_prefix_(std::move(metric_prefix)),
        account_(memtrack_account(account_name)) {}

  ~bounded_memo() {
    // Drain the charge regardless of the current enabled flag. The lock is
    // formally redundant in a destructor but keeps the guarded-field access
    // visible to the thread-safety analysis.
    const mutex_lock lock(mutex_);
    if (bytes_accounted_ != 0) account_.sub(bytes_accounted_);
  }

  bounded_memo(const bounded_memo&) = delete;
  bounded_memo& operator=(const bounded_memo&) = delete;

  /// Returns the payload stored under (digest, canonical), or nullopt.
  /// Counts a hit or miss; a hit moves the entry to the hot end of the LRU.
  [[nodiscard]] std::optional<Payload> find(std::uint64_t digest,
                                            const std::string& canonical) const {
    const mutex_lock lock(mutex_);
    const auto it = buckets_.find(digest);
    if (it != buckets_.end())
      for (entry& e : it->second)
        if (e.canonical == canonical) {
          lru_.splice(lru_.end(), lru_, e.lru);
          ++counters_.hits;
          if (metrics_enabled())
            global_metrics().counter(metric_prefix_ + ".hits").increment();
          return e.payload;
        }
    ++counters_.misses;
    if (metrics_enabled())
      global_metrics().counter(metric_prefix_ + ".misses").increment();
    return std::nullopt;
  }

  /// Store `payload` under (digest, canonical). Racing stores of the same
  /// key keep the first value; memoized computations are deterministic, so
  /// racing values are identical. `payload_bytes` is the estimated heap
  /// footprint of the payload alone — the memo adds the canonical string and
  /// fixed per-entry overhead — and drives both the mem.* gauge and the
  /// eviction decision.
  void store(std::uint64_t digest, const std::string& canonical,
             Payload payload, std::uint64_t payload_bytes) {
    const mutex_lock lock(mutex_);
    bucket& slot = buckets_[digest];
    for (const entry& e : slot)
      if (e.canonical == canonical) return;  // first store wins
    const std::uint64_t bytes = payload_bytes + canonical.size() + kOverhead;
    lru_.push_back(locator{digest, slot.size()});
    entry e;
    e.canonical = canonical;
    e.payload = std::move(payload);
    e.bytes = bytes;
    e.lru = std::prev(lru_.end());
    slot.push_back(std::move(e));
    content_bytes_ += bytes;
    ++counters_.entries;
    evict_to_capacity();
    publish();
  }

  struct counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
    std::uint64_t evictions = 0;
    std::uint64_t content_bytes = 0;
  };
  [[nodiscard]] counters stats() const {
    const mutex_lock lock(mutex_);
    counters out = counters_;
    out.content_bytes = content_bytes_;
    return out;
  }

  /// Cap the estimated content bytes. 0 = unbounded (the default). Lowering
  /// the cap below the current content evicts immediately, coldest first.
  void set_capacity_bytes(std::uint64_t capacity) {
    const mutex_lock lock(mutex_);
    capacity_bytes_ = capacity;
    evict_to_capacity();
    publish();
  }

  [[nodiscard]] std::uint64_t capacity_bytes() const {
    const mutex_lock lock(mutex_);
    return capacity_bytes_;
  }

  /// Drop every entry (hit/miss/eviction counters reset too — clear() is the
  /// "start a fresh experiment" operation the harnesses rely on).
  void clear() {
    const mutex_lock lock(mutex_);
    buckets_.clear();
    lru_.clear();
    counters_ = {};
    content_bytes_ = 0;
    publish();
  }

 private:
  /// Where one entry lives: its digest bucket and its index within it.
  /// Entries move within a bucket only via swap-remove during eviction,
  /// which patches the moved entry's locator through its lru iterator.
  struct locator {
    std::uint64_t digest = 0;
    std::size_t index = 0;
  };
  struct entry {
    std::string canonical;
    Payload payload{};
    std::uint64_t bytes = 0;
    typename std::list<locator>::iterator lru;
  };
  using bucket = std::vector<entry>;

  // Fixed per-entry bookkeeping estimate: bucket slot, LRU node, hash-map
  // node. Matches the historical "+ 48" constant closely enough that the
  // mem.* gauges stay comparable across PRs.
  static constexpr std::uint64_t kOverhead = 48;

  void evict_to_capacity() COMPACT_REQUIRES(mutex_) {
    if (capacity_bytes_ == 0) return;
    while (content_bytes_ > capacity_bytes_ && !lru_.empty()) {
      const locator cold = lru_.front();
      bucket& slot = buckets_[cold.digest];
      entry& victim = slot[cold.index];
      content_bytes_ -= victim.bytes;
      if (cold.index + 1 != slot.size()) {
        slot[cold.index] = std::move(slot.back());
        slot[cold.index].lru->index = cold.index;
      }
      slot.pop_back();
      if (slot.empty()) buckets_.erase(cold.digest);
      lru_.pop_front();
      --counters_.entries;
      ++counters_.evictions;
      if (metrics_enabled())
        global_metrics().counter(metric_prefix_ + ".evictions").increment();
    }
  }

  void publish() COMPACT_REQUIRES(mutex_) {
    account_set(account_, bytes_accounted_, content_bytes_);
    if (metrics_enabled())
      global_metrics()
          .gauge(metric_prefix_ + ".entries")
          .set(static_cast<double>(counters_.entries));
  }

  const std::string metric_prefix_;
  mem_account& account_;
  mutable annotated_mutex mutex_;
  mutable counters counters_ COMPACT_GUARDED_BY(mutex_);
  mutable std::unordered_map<std::uint64_t, bucket> buckets_
      COMPACT_GUARDED_BY(mutex_);
  /// Recency order, front = coldest. Mutable: find() refreshes recency.
  mutable std::list<locator> lru_ COMPACT_GUARDED_BY(mutex_);
  std::uint64_t content_bytes_ COMPACT_GUARDED_BY(mutex_) = 0;
  std::uint64_t bytes_accounted_ COMPACT_GUARDED_BY(mutex_) = 0;
  std::uint64_t capacity_bytes_ COMPACT_GUARDED_BY(mutex_) = 0;
};

}  // namespace compact
