#include "util/telemetry.hpp"

#include <cmath>
#include <cstdio>

#include "util/trace.hpp"

namespace compact {

void telemetry_event::stamp() {
  timestamp_us = monotonic_now_us();
  thread_id = current_thread_slot();
}

double telemetry_event::metric_or(const std::string& name,
                                  double fallback) const {
  for (const auto& [key, value] : metrics)
    if (key == name) return value;
  return fallback;
}

std::string telemetry_event::attribute_or(const std::string& name,
                                          std::string fallback) const {
  for (const auto& [key, value] : attributes)
    if (key == name) return value;
  return fallback;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

std::string to_json_line(const telemetry_event& event) {
  std::string line = "{\"stage\":\"" + json_escape(event.stage) +
                     "\",\"seconds\":" + json_number(event.seconds);
  if (event.timestamp_us >= 0) {
    line += ",\"ts_us\":" + std::to_string(event.timestamp_us);
    line += ",\"tid\":" + std::to_string(event.thread_id);
  }
  for (const auto& [name, value] : event.metrics)
    line += ",\"" + json_escape(name) + "\":" + json_number(value);
  for (const auto& [name, value] : event.attributes)
    line += ",\"" + json_escape(name) + "\":\"" + json_escape(value) + "\"";
  line += "}";
  return line;
}

void json_lines_sink::emit(const telemetry_event& event) {
  std::string line;
  if (event.timestamp_us < 0) {
    telemetry_event stamped = event;
    stamped.stamp();
    line = to_json_line(stamped);
  } else {
    line = to_json_line(event);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  // Flush per line: a run cut short by std::exit or a crash in another
  // stage must still leave a valid JSON-lines file behind.
  os_ << line << '\n' << std::flush;
}

void memory_sink::emit(const telemetry_event& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::vector<telemetry_event> memory_sink::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t memory_sink::count(const std::string& stage) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const telemetry_event& e : events_)
    if (e.stage == stage) ++n;
  return n;
}

}  // namespace compact
