#include "util/telemetry.hpp"

#include <cmath>
#include <cstdio>

namespace compact {

double telemetry_event::metric_or(const std::string& name,
                                  double fallback) const {
  for (const auto& [key, value] : metrics)
    if (key == name) return value;
  return fallback;
}

std::string telemetry_event::attribute_or(const std::string& name,
                                          std::string fallback) const {
  for (const auto& [key, value] : attributes)
    if (key == name) return value;
  return fallback;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

std::string to_json_line(const telemetry_event& event) {
  std::string line = "{\"stage\":\"" + json_escape(event.stage) +
                     "\",\"seconds\":" + json_number(event.seconds);
  for (const auto& [name, value] : event.metrics)
    line += ",\"" + json_escape(name) + "\":" + json_number(value);
  for (const auto& [name, value] : event.attributes)
    line += ",\"" + json_escape(name) + "\":\"" + json_escape(value) + "\"";
  line += "}";
  return line;
}

void json_lines_sink::emit(const telemetry_event& event) {
  const std::string line = to_json_line(event);
  const std::lock_guard<std::mutex> lock(mutex_);
  os_ << line << '\n';
}

void memory_sink::emit(const telemetry_event& event) {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(event);
}

std::vector<telemetry_event> memory_sink::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t memory_sink::count(const std::string& stage) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const telemetry_event& e : events_)
    if (e.stage == stage) ++n;
  return n;
}

}  // namespace compact
