#include "util/flight_recorder.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <fstream>

#include "util/memtrack.hpp"
#include "util/metrics.hpp"
#include "util/telemetry.hpp"
#include "util/thread_annotations.hpp"
#include "util/trace.hpp"

namespace compact {
namespace {

constexpr std::size_t kCapacity = 256;  // power of two
constexpr std::size_t kKindWords = 2;    // 16 bytes of kind text
constexpr std::size_t kDetailWords = 20;  // 160 bytes of detail text

// One ring slot. Every field is an atomic word, so concurrent writers and
// snapshot readers are data-race free (and TSan-clean) by construction; the
// per-slot sequence counter (odd = write in progress, even = complete)
// detects torn snapshots. A writer lapped by >= kCapacity events can race
// another writer for the same slot; the worst case is garbled text behind a
// still-consistent sequence — acceptable for a postmortem aid, never UB.
struct slot {
  std::atomic<std::uint64_t> seq{0};  // 0 = never written
  std::atomic<std::int64_t> timestamp_us{0};
  std::atomic<std::uint32_t> thread_id{0};
  std::array<std::atomic<std::uint64_t>, kKindWords> kind{};
  std::array<std::atomic<std::uint64_t>, kDetailWords> detail{};
};

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_ticket{0};

std::array<slot, kCapacity>& ring() {
  static std::array<slot, kCapacity>* r = new std::array<slot, kCapacity>;
  return *r;
}

void store_text(std::atomic<std::uint64_t>* words, std::size_t word_count,
                const char* text, std::size_t length) {
  const std::size_t budget = word_count * sizeof(std::uint64_t) - 1;
  const std::size_t n = std::min(length, budget);
  char buffer[kDetailWords * sizeof(std::uint64_t)] = {};
  std::memcpy(buffer, text, n);
  for (std::size_t i = 0; i < word_count; ++i) {
    std::uint64_t word = 0;
    std::memcpy(&word, buffer + i * sizeof(word), sizeof(word));
    words[i].store(word, std::memory_order_relaxed);
  }
}

std::string load_text(const std::atomic<std::uint64_t>* words,
                      std::size_t word_count) {
  char buffer[kDetailWords * sizeof(std::uint64_t) + 1] = {};
  for (std::size_t i = 0; i < word_count; ++i) {
    const std::uint64_t word = words[i].load(std::memory_order_relaxed);
    std::memcpy(buffer + i * sizeof(word), &word, sizeof(word));
  }
  return std::string(buffer);  // stops at the first NUL
}

struct path_store {
  annotated_mutex mutex;
  std::string path COMPACT_GUARDED_BY(mutex);
};

path_store& postmortem_path() {
  static path_store* s = new path_store;
  return *s;
}

}  // namespace

void set_flight_recorder_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool flight_recorder_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

std::size_t flight_recorder_capacity() { return kCapacity; }

void flight_record(const char* kind, const std::string& detail) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  const std::uint64_t ticket =
      g_next_ticket.fetch_add(1, std::memory_order_relaxed);
  slot& s = ring()[ticket & (kCapacity - 1)];
  s.seq.store(2 * ticket + 1, std::memory_order_release);
  s.timestamp_us.store(monotonic_now_us(), std::memory_order_relaxed);
  s.thread_id.store(static_cast<std::uint32_t>(current_thread_slot()),
                    std::memory_order_relaxed);
  store_text(s.kind.data(), kKindWords, kind, std::strlen(kind));
  store_text(s.detail.data(), kDetailWords, detail.data(), detail.size());
  s.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<flight_event> flight_snapshot() {
  std::vector<flight_event> events;
  events.reserve(kCapacity);
  for (slot& s : ring()) {
    const std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
    flight_event event;
    event.timestamp_us = s.timestamp_us.load(std::memory_order_relaxed);
    event.thread_id =
        static_cast<int>(s.thread_id.load(std::memory_order_relaxed));
    event.kind = load_text(s.kind.data(), kKindWords);
    event.detail = load_text(s.detail.data(), kDetailWords);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
    event.sequence = s1 / 2 - 1;
    events.push_back(std::move(event));
  }
  std::sort(events.begin(), events.end(),
            [](const flight_event& a, const flight_event& b) {
              return a.sequence < b.sequence;
            });
  return events;
}

std::uint64_t flight_recorded_count() {
  return g_next_ticket.load(std::memory_order_relaxed);
}

void flight_reset() {
  for (slot& s : ring()) {
    s.seq.store(0, std::memory_order_relaxed);
    s.timestamp_us.store(0, std::memory_order_relaxed);
    s.thread_id.store(0, std::memory_order_relaxed);
    for (auto& w : s.kind) w.store(0, std::memory_order_relaxed);
    for (auto& w : s.detail) w.store(0, std::memory_order_relaxed);
  }
  g_next_ticket.store(0, std::memory_order_relaxed);
}

void write_flight_postmortem(std::ostream& os, const std::string& reason) {
  const std::vector<flight_event> events = flight_snapshot();
  const std::uint64_t recorded = flight_recorded_count();
  os << "{\n";
  os << "  \"reason\": \"" << json_escape(reason) << "\",\n";
  os << "  \"recorder_enabled\": "
     << (flight_recorder_enabled() ? "true" : "false") << ",\n";
  os << "  \"capacity\": " << kCapacity << ",\n";
  os << "  \"recorded\": " << recorded << ",\n";
  os << "  \"captured\": " << events.size() << ",\n";
  os << "  \"dropped\": " << recorded - std::min<std::uint64_t>(recorded, events.size())
     << ",\n";

  os << "  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const flight_event& e = events[i];
    if (i > 0) os << ",";
    os << "\n    {\"sequence\": " << e.sequence
       << ", \"timestamp_us\": " << e.timestamp_us
       << ", \"thread\": " << e.thread_id << ", \"kind\": \""
       << json_escape(e.kind) << "\", \"detail\": \"" << json_escape(e.detail)
       << "\"}";
  }
  os << (events.empty() ? "],\n" : "\n  ],\n");

  os << "  \"active_spans\": [";
  const std::vector<std::string> spans = active_spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << json_escape(spans[i]) << "\"";
  }
  os << "],\n";

  os << "  \"memory\": {\"process_bytes\": " << memtrack_process_live()
     << ", \"process_peak_bytes\": " << memtrack_process_peak()
     << ", \"accounts\": {";
  bool first = true;
  for (const mem_account* account : memtrack_accounts()) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << json_escape(account->name()) << "\": {\"bytes\": "
       << account->live() << ", \"peak_bytes\": " << account->peak() << "}";
  }
  os << "}},\n";

  os << "  \"metrics\": ";
  global_metrics().write_json(os);
  os << "}\n";
}

void set_flight_record_path(const std::string& path) {
  {
    path_store& s = postmortem_path();
    const mutex_lock lock(s.mutex);
    s.path = path;
  }
  if (!path.empty()) {
    set_flight_recorder_enabled(true);
    set_span_stack_tracking(true);
  }
}

std::string flight_record_path() {
  path_store& s = postmortem_path();
  const mutex_lock lock(s.mutex);
  return s.path;
}

bool dump_flight_postmortem(const std::string& reason) noexcept {
  try {
    const std::string path = flight_record_path();
    if (path.empty()) return false;
    std::ofstream out(path);
    if (!out) return false;
    write_flight_postmortem(out, reason);
    return out.good();
  } catch (...) {
    return false;
  }
}

}  // namespace compact
