// Error handling primitives for the COMPACT library.
//
// The library reports unrecoverable logic errors and invalid input via
// exceptions derived from compact::error, following the C++ Core Guidelines
// (E.2: throw an exception to signal that a function can't perform its task).
#pragma once

#include <stdexcept>
#include <string>

namespace compact {

/// Base class for all exceptions thrown by this library.
class error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when an input file or textual format cannot be parsed.
class parse_error : public error {
 public:
  using error::error;
};

/// Thrown when requested design constraints are infeasible
/// (e.g. fixed row/column budgets that no labeling can satisfy).
class infeasible_error : public error {
 public:
  using error::error;
};

/// Thrown when a run exceeds an explicit resource budget (memory limit or
/// deadline) installed by the resource watchdog. Carries which limit
/// tripped so callers and the CLI can report "memory" vs "deadline"
/// structurally instead of parsing the message.
class resource_limit_error : public error {
 public:
  enum class kind { memory, deadline };

  resource_limit_error(kind which, const std::string& message)
      : error(message), kind_(which) {}

  [[nodiscard]] kind limit_kind() const { return kind_; }
  [[nodiscard]] const char* kind_name() const {
    return kind_ == kind::memory ? "memory" : "deadline";
  }

 private:
  kind kind_;
};

/// Internal consistency check. Unlike assert(), it is active in all build
/// types: mapping bugs must never silently produce an invalid crossbar.
inline void check(bool condition, const std::string& message) {
  if (!condition) throw error("internal check failed: " + message);
}

}  // namespace compact
