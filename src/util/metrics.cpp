#include "util/metrics.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"
#include "util/telemetry.hpp"

namespace compact {

// --- histogram -------------------------------------------------------------

metric_histogram::metric_histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  check(!bounds_.empty(), "metric_histogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    check(bounds_[i - 1] < bounds_[i],
          "metric_histogram: bounds must be strictly increasing");
}

void metric_histogram::observe(double value) {
  // First bucket index whose bound >= value; everything above the last
  // bound lands in the overflow bucket.
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  const mutex_lock lock(mutex_);
  ++buckets_[i];
  ++count_;
  sum_ += value;
}

std::uint64_t metric_histogram::count() const {
  const mutex_lock lock(mutex_);
  return count_;
}

double metric_histogram::sum() const {
  const mutex_lock lock(mutex_);
  return sum_;
}

std::uint64_t metric_histogram::bucket_count(std::size_t i) const {
  check(i < buckets_.size(), "metric_histogram: bucket index out of range");
  const mutex_lock lock(mutex_);
  return buckets_[i];
}

double metric_histogram::quantile(double q) const {
  check(q >= 0.0 && q <= 1.0, "metric_histogram: quantile must be in [0, 1]");
  const mutex_lock lock(mutex_);
  if (count_ == 0) return 0.0;
  // Rank of the target observation (1-based), then walk the buckets. The
  // comparisons carry a tolerance proportional to the total count: q *
  // count_ computed in floating point can land a hair above an exact
  // cumulative boundary, and without the tolerance a rank sitting on a
  // bucket's top edge would interpolate into the NEXT non-empty bucket —
  // a whole-bucket jump (e.g. p99 reported as 20 instead of 10 when the
  // middle bucket is empty). Ranks on an edge return the bound exactly.
  const double rank = q * static_cast<double>(count_);
  const double eps = 1e-9 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[i];
    const double cumulative = static_cast<double>(seen);
    if (cumulative < rank - eps) continue;
    if (i == bounds_.size()) return bounds_.back();  // overflow clamps
    if (rank >= cumulative - eps) return bounds_[i];  // exactly on the edge
    const double lower = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
    const double upper = bounds_[i];
    const double fraction =
        (rank - before) / static_cast<double>(buckets_[i]);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return bounds_.back();
}

void metric_histogram::reset() {
  const mutex_lock lock(mutex_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

// --- series ----------------------------------------------------------------

void metric_series::append(double seconds, double value) {
  const mutex_lock lock(mutex_);
  // Bounded retention: once the buffer fills, keep every other stored point
  // and double the accept stride, so a service-mode process holds at most
  // max_points() points whose spacing coarsens deterministically (the same
  // append sequence always yields the same retained set).
  if (skip_ + 1 < stride_) {
    ++skip_;
    return;
  }
  skip_ = 0;
  points_.emplace_back(seconds, value);
  if (points_.size() >= max_points()) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < points_.size(); i += 2) points_[kept++] = points_[i];
    points_.resize(kept);
    stride_ *= 2;
  }
}

std::vector<std::pair<double, double>> metric_series::points() const {
  const mutex_lock lock(mutex_);
  return points_;
}

std::size_t metric_series::size() const {
  const mutex_lock lock(mutex_);
  return points_.size();
}

void metric_series::reset() {
  const mutex_lock lock(mutex_);
  points_.clear();
  stride_ = 1;
  skip_ = 0;
}

// --- registry --------------------------------------------------------------

namespace {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

struct metrics_registry::entry {
  std::string kind;
  std::unique_ptr<metric_counter> counter;
  std::unique_ptr<metric_gauge> gauge;
  std::unique_ptr<metric_histogram> histogram;
  std::unique_ptr<metric_series> series;
};

metrics_registry::entry& metrics_registry::find_or_create(
    const std::string& name, const char* kind) {
  for (auto& [existing_name, existing] : entries_)
    if (existing_name == name) {
      check(existing->kind == kind,
            "metrics_registry: '" + name + "' already registered as a " +
                existing->kind + ", not a " + kind);
      return *existing;
    }
  // Leak-on-purpose lifetime: handles must survive registry resets and
  // process teardown ordering, so entries are never destroyed.
  auto* fresh = new entry;
  fresh->kind = kind;
  entries_.emplace_back(name, fresh);
  return *fresh;
}

metric_counter& metrics_registry::counter(const std::string& name) {
  const mutex_lock lock(mutex_);
  entry& e = find_or_create(name, "counter");
  if (!e.counter) e.counter = std::make_unique<metric_counter>();
  return *e.counter;
}

metric_gauge& metrics_registry::gauge(const std::string& name) {
  const mutex_lock lock(mutex_);
  entry& e = find_or_create(name, "gauge");
  if (!e.gauge) e.gauge = std::make_unique<metric_gauge>();
  return *e.gauge;
}

metric_histogram& metrics_registry::histogram(const std::string& name,
                                              std::vector<double> bounds) {
  const mutex_lock lock(mutex_);
  entry& e = find_or_create(name, "histogram");
  if (!e.histogram)
    e.histogram = std::make_unique<metric_histogram>(std::move(bounds));
  return *e.histogram;
}

metric_series& metrics_registry::series(const std::string& name) {
  const mutex_lock lock(mutex_);
  entry& e = find_or_create(name, "series");
  if (!e.series) e.series = std::make_unique<metric_series>();
  return *e.series;
}

std::vector<std::pair<std::string, std::string>> metrics_registry::names()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  {
    const mutex_lock lock(mutex_);
    out.reserve(entries_.size());
    for (const auto& [name, e] : entries_) out.emplace_back(name, e->kind);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void metrics_registry::write_json(std::ostream& os) const {
  // Copy the entry list, then serialize without the registry lock held (the
  // metric objects carry their own synchronization).
  std::vector<std::pair<std::string, entry*>> entries;
  {
    const mutex_lock lock(mutex_);
    entries = entries_;
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  os << "{\n";
  bool first = true;
  for (const auto& [name, e] : entries) {
    if (!first) os << ",\n";
    first = false;
    os << "  \"" << json_escape(name) << "\": ";
    if (e->kind == "counter") {
      os << e->counter->value();
    } else if (e->kind == "gauge") {
      os << json_number(e->gauge->value());
    } else if (e->kind == "histogram") {
      const metric_histogram& h = *e->histogram;
      os << "{\"type\": \"histogram\", \"count\": " << h.count()
         << ", \"sum\": " << json_number(h.sum()) << ", \"buckets\": [";
      for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
        if (i > 0) os << ", ";
        os << "{\"le\": "
           << (i < h.bounds().size() ? json_number(h.bounds()[i])
                                     : std::string("null"))
           << ", \"count\": " << h.bucket_count(i) << "}";
      }
      os << "], \"p50\": " << json_number(h.quantile(0.5))
         << ", \"p90\": " << json_number(h.quantile(0.9))
         << ", \"p99\": " << json_number(h.quantile(0.99)) << "}";
    } else {
      os << "{\"type\": \"series\", \"points\": [";
      const auto points = e->series->points();
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (i > 0) os << ", ";
        os << "[" << json_number(points[i].first) << ", "
           << json_number(points[i].second) << "]";
      }
      os << "]}";
    }
  }
  os << "\n}\n";
}

void metrics_registry::reset() {
  std::vector<std::pair<std::string, entry*>> entries;
  {
    const mutex_lock lock(mutex_);
    entries = entries_;
  }
  for (const auto& [name, e] : entries) {
    (void)name;
    if (e->counter) e->counter->reset();
    if (e->gauge) e->gauge->reset();
    if (e->histogram) e->histogram->reset();
    if (e->series) e->series->reset();
  }
}

metrics_registry& global_metrics() {
  static metrics_registry* registry = new metrics_registry;
  return *registry;
}

}  // namespace compact
