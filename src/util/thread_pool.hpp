// Deterministic parallel execution primitives.
//
// The COMPACT flow has several embarrassingly parallel stages (per-output
// ROBDD synthesis, Monte-Carlo fault trials, sampled validity checks,
// per-circuit benchmark sweeps). This module provides a fixed-size worker
// pool plus parallel_for/parallel_map helpers that fan such stages out while
// keeping results *bit-identical* for every thread count: work items are
// independent (randomness comes from rng::substream per item, see
// util/rng.hpp), results are merged back in item order, and a failing item
// always reports the exception of the lowest-indexed failure.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace compact {

/// How a parallel site splits its work. The default (one thread) runs the
/// work inline on the calling thread, preserving the library's historical
/// single-threaded behaviour; values above one enable the pool.
struct parallel_options {
  int threads = 1;

  [[nodiscard]] bool serial() const { return threads <= 1; }

  /// Workers a site should actually spawn for `items` work items.
  [[nodiscard]] int worker_count(std::size_t items) const {
    const int wanted = threads < 1 ? 1 : threads;
    if (items < static_cast<std::size_t>(wanted))
      return static_cast<int>(items);
    return wanted;
  }
};

/// Fixed-size worker pool over a FIFO task queue. Tasks are submitted as
/// callables and observed through std::future; the destructor drains the
/// queue and joins every worker.
class thread_pool {
 public:
  explicit thread_pool(int threads);
  ~thread_pool();
  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue `task`; the returned future resolves with its result (or
  /// rethrows the exception it raised).
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F task) {
    using result_t = std::invoke_result_t<F>;
    auto job =
        std::make_shared<std::packaged_task<result_t()>>(std::move(task));
    std::future<result_t> result = job->get_future();
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      check(!stopping_, "thread_pool: submit after shutdown");
      queue_.emplace_back([job] { (*job)(); });
      depth = queue_.size();
    }
    note_queue_depth(depth);
    ready_.notify_one();
    return result;
  }

 private:
  void worker_loop();
  /// Publish the queue depth observed at submit time to the metrics
  /// registry (no-op when metrics are disabled). Out of line so the header
  /// does not pull in util/metrics.
  static void note_queue_depth(std::size_t depth);

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Run body(0) .. body(count - 1), fanning out across options.threads
/// workers. Items are claimed dynamically (work stealing via a shared
/// counter) so imbalanced items still load-balance; determinism comes from
/// the items themselves, which must not communicate except through their
/// own index's slot. If any item throws, the exception of the
/// lowest-indexed failing item is rethrown once all workers stop.
void parallel_for(const parallel_options& options, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// results[i] = fn(i), computed as parallel_for does but collected in item
/// order. T only needs to be movable (not default-constructible).
template <typename Fn>
[[nodiscard]] auto parallel_map(const parallel_options& options,
                                std::size_t count, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using T = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<std::optional<T>> slots(count);
  parallel_for(options, count,
               [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<T> results;
  results.reserve(count);
  for (std::optional<T>& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace compact
