// Ambient resource watchdog: a process-wide memory budget and deadline,
// sampled cooperatively at cheap structural boundaries (pipeline stage ends,
// branch-and-bound rounds, BDD arena chunk growth) via resource_checkpoint().
//
// The watchdog is ambient rather than threaded through every call chain so
// the deep engines (the MIP solver inside a labeler inside a pipeline pass)
// hit the same budget without API changes. A breach throws a structured
// resource_limit_error naming the limit instead of letting the process OOM
// or silently overrun its deadline; crossing a soft fraction of the memory
// limit is reported back to the caller so it can shed load (GC, cache
// eviction) before the hard line.
//
// Limits are installed by resource_limit_scope (RAII). The outermost scope
// wins: nested installs (partitioned synthesis re-entering the single-array
// entry point per fragment) are no-ops, so the whole run shares one budget.
// When no limits are active a checkpoint is one relaxed atomic load.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace compact {

/// Budgets enforced by the watchdog. Zero means "no limit" for both axes.
struct resource_limits {
  std::uint64_t memory_limit_bytes = 0;
  double deadline_seconds = 0.0;
  /// Fraction of the memory limit past which checkpoints report soft
  /// pressure (GC / cache-eviction hint) without failing the run.
  double soft_fraction = 0.85;
};

/// What a checkpoint observed. `soft_memory` means live bytes crossed
/// soft_fraction * memory_limit_bytes: shed load now or fail soon.
enum class resource_pressure { none, soft_memory };

/// True when a resource_limit_scope is installed somewhere up the stack.
[[nodiscard]] bool resource_limits_active();

/// Sample the active limits. Throws resource_limit_error (kind memory or
/// deadline) on a hard breach; `where` names the sampling site in the error
/// message and flight-recorder event. Returns soft_memory when past the
/// soft fraction. One relaxed atomic load when no limits are active.
resource_pressure resource_checkpoint(const char* where);

/// Installs `limits` for the lifetime of the scope (outermost wins; nested
/// scopes are inert). A non-zero memory limit force-enables memtrack — the
/// watchdog compares the accounted process-live total against the budget —
/// and the prior memtrack flag is restored on exit.
class resource_limit_scope {
 public:
  explicit resource_limit_scope(const resource_limits& limits);
  ~resource_limit_scope();
  resource_limit_scope(const resource_limit_scope&) = delete;
  resource_limit_scope& operator=(const resource_limit_scope&) = delete;

  /// Whether this scope actually installed the limits (false when nested
  /// under an active scope, or when both budgets were zero).
  [[nodiscard]] bool installed() const { return installed_; }

 private:
  bool installed_ = false;
  bool previous_memtrack_ = false;
};

}  // namespace compact
