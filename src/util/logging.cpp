#include "util/logging.hpp"

#include <atomic>
#include <iostream>

namespace compact {
namespace {
std::atomic<log_level> g_level{log_level::off};

const char* prefix(log_level level) {
  switch (level) {
    case log_level::warn:
      return "[warn] ";
    case log_level::info:
      return "[info] ";
    case log_level::debug:
      return "[debug] ";
    default:
      return "";
  }
}
}  // namespace

void set_log_level(log_level level) { g_level.store(level); }
log_level current_log_level() { return g_level.load(); }

void log_line(log_level level, const std::string& message) {
  if (static_cast<int>(level) <= static_cast<int>(g_level.load()) &&
      level != log_level::off) {
    std::cerr << prefix(level) << message << '\n';
  }
}

}  // namespace compact
