// Clang thread-safety-analysis annotations (-Wthread-safety) as no-op
// macros on every other compiler, plus an annotated std::mutex wrapper.
//
// libstdc++'s std::mutex carries no capability attributes, so locking it
// is invisible to the analysis; annotated_mutex forwards to std::mutex and
// declares itself a capability, and mutex_lock is the matching scoped
// guard. Classes whose state is protected by a mutex mark each field with
// COMPACT_GUARDED_BY(mutex_): clang then rejects, at compile time, any
// access that does not hold the lock. The annotations are enforced by the
// clang-thread-safety CI job; under GCC and MSVC they expand to nothing
// and the wrapper behaves exactly like std::mutex + std::lock_guard.
#pragma once

#include <mutex>

#if defined(__clang__)
#define COMPACT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define COMPACT_THREAD_ANNOTATION(x)
#endif

#define COMPACT_CAPABILITY(x) COMPACT_THREAD_ANNOTATION(capability(x))
#define COMPACT_SCOPED_CAPABILITY COMPACT_THREAD_ANNOTATION(scoped_lockable)
#define COMPACT_GUARDED_BY(x) COMPACT_THREAD_ANNOTATION(guarded_by(x))
#define COMPACT_PT_GUARDED_BY(x) COMPACT_THREAD_ANNOTATION(pt_guarded_by(x))
#define COMPACT_REQUIRES(...) \
  COMPACT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define COMPACT_ACQUIRE(...) \
  COMPACT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define COMPACT_RELEASE(...) \
  COMPACT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define COMPACT_TRY_ACQUIRE(...) \
  COMPACT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define COMPACT_EXCLUDES(...) \
  COMPACT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define COMPACT_RETURN_CAPABILITY(x) \
  COMPACT_THREAD_ANNOTATION(lock_returned(x))
#define COMPACT_NO_THREAD_SAFETY_ANALYSIS \
  COMPACT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace compact {

/// std::mutex with capability attributes so -Wthread-safety can track it.
class COMPACT_CAPABILITY("mutex") annotated_mutex {
 public:
  void lock() COMPACT_ACQUIRE() { mutex_.lock(); }
  void unlock() COMPACT_RELEASE() { mutex_.unlock(); }
  bool try_lock() COMPACT_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// RAII guard for annotated_mutex (std::lock_guard itself is unannotated,
/// so using it would leave the acquire/release invisible to the analysis).
class COMPACT_SCOPED_CAPABILITY mutex_lock {
 public:
  explicit mutex_lock(annotated_mutex& m) COMPACT_ACQUIRE(m) : mutex_(m) {
    mutex_.lock();
  }
  ~mutex_lock() COMPACT_RELEASE() { mutex_.unlock(); }
  mutex_lock(const mutex_lock&) = delete;
  mutex_lock& operator=(const mutex_lock&) = delete;

 private:
  annotated_mutex& mutex_;
};

}  // namespace compact
