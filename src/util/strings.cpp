#include "util/strings.hpp"

#include <cstdio>

namespace compact {

std::string_view trim(std::string_view s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t') ++j;
    if (j > i) tokens.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return tokens;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      fields.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

}  // namespace compact
