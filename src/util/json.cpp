#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace compact::json {
namespace {

class parser {
 public:
  explicit parser(const std::string& text) : text_(text) {}

  value_ptr parse_document() {
    skip_ws();
    value_ptr root = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw parse_error("json: " + message + " at offset " +
                      std::to_string(pos_));
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  value_ptr parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return value::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return value::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return value::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return value::make_null();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  value_ptr parse_object() {
    expect('{');
    std::map<std::string, value_ptr> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      members[std::move(key)] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') return value::make_object(std::move(members));
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  value_ptr parse_array() {
    expect('[');
    std::vector<value_ptr> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return value::make_array(std::move(items));
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char escape = take();
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two separately encoded code units; our producers
          // never emit them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  value_ptr parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(parsed)) {
      pos_ = start;
      fail("invalid number '" + token + "'");
    }
    return value::make_number(parsed);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool value::as_bool() const {
  check(kind_ == kind::boolean, "json: value is not a boolean");
  return bool_;
}

double value::as_number() const {
  check(kind_ == kind::number, "json: value is not a number");
  return number_;
}

const std::string& value::as_string() const {
  check(kind_ == kind::string, "json: value is not a string");
  return string_;
}

const std::vector<value_ptr>& value::as_array() const {
  check(kind_ == kind::array, "json: value is not an array");
  return array_;
}

const std::map<std::string, value_ptr>& value::as_object() const {
  check(kind_ == kind::object, "json: value is not an object");
  return object_;
}

const value* value::find(const std::string& key) const {
  if (kind_ != kind::object) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : it->second.get();
}

const value& value::at(const std::string& key) const {
  const value* found = find(key);
  check(found != nullptr, "json: missing object key '" + key + "'");
  return *found;
}

value_ptr value::make_null() { return std::make_shared<value>(); }

value_ptr value::make_bool(bool b) {
  auto v = std::make_shared<value>();
  v->kind_ = kind::boolean;
  v->bool_ = b;
  return v;
}

value_ptr value::make_number(double n) {
  auto v = std::make_shared<value>();
  v->kind_ = kind::number;
  v->number_ = n;
  return v;
}

value_ptr value::make_string(std::string s) {
  auto v = std::make_shared<value>();
  v->kind_ = kind::string;
  v->string_ = std::move(s);
  return v;
}

value_ptr value::make_array(std::vector<value_ptr> items) {
  auto v = std::make_shared<value>();
  v->kind_ = kind::array;
  v->array_ = std::move(items);
  return v;
}

value_ptr value::make_object(std::map<std::string, value_ptr> members) {
  auto v = std::make_shared<value>();
  v->kind_ = kind::object;
  v->object_ = std::move(members);
  return v;
}

value_ptr parse(const std::string& text) { return parser(text).parse_document(); }

value_ptr parse_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw error("json: cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse(buffer.str());
}

}  // namespace compact::json
