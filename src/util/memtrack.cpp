#include "util/memtrack.hpp"

#include <algorithm>
#include <mutex>

#include "util/metrics.hpp"

namespace compact {
namespace {

std::atomic<bool> g_memtrack_enabled{false};
std::atomic<std::uint64_t> g_process_live{0};
std::atomic<std::uint64_t> g_process_peak{0};

void raise_peak(std::atomic<std::uint64_t>& peak, std::uint64_t candidate) {
  std::uint64_t seen = peak.load(std::memory_order_relaxed);
  while (seen < candidate &&
         !peak.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

struct account_store {
  std::mutex mutex;
  // Leak-on-purpose lifetime, like the metrics registry: handles must
  // survive resets and process teardown ordering.
  std::vector<std::pair<std::string, mem_account*>> accounts;
};

account_store& store() {
  static account_store* s = new account_store;
  return *s;
}

}  // namespace

void set_memtrack_enabled(bool enabled) {
  g_memtrack_enabled.store(enabled, std::memory_order_relaxed);
}

bool memtrack_enabled() {
  return g_memtrack_enabled.load(std::memory_order_relaxed);
}

void mem_account::add(std::uint64_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t live =
      live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_peak(peak_, live);
  const std::uint64_t process =
      g_process_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_peak(g_process_peak, process);
}

void mem_account::sub(std::uint64_t bytes) {
  if (bytes == 0) return;
  live_.fetch_sub(bytes, std::memory_order_relaxed);
  g_process_live.fetch_sub(bytes, std::memory_order_relaxed);
}

void mem_account::reset() {
  const std::uint64_t live = live_.exchange(0, std::memory_order_relaxed);
  g_process_live.fetch_sub(live, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

mem_account& memtrack_account(const std::string& name) {
  account_store& s = store();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& [existing_name, account] : s.accounts)
    if (existing_name == name) return *account;
  auto* fresh = new mem_account(name);
  s.accounts.emplace_back(name, fresh);
  return *fresh;
}

std::vector<const mem_account*> memtrack_accounts() {
  std::vector<std::pair<std::string, mem_account*>> accounts;
  {
    account_store& s = store();
    const std::lock_guard<std::mutex> lock(s.mutex);
    accounts = s.accounts;
  }
  std::sort(accounts.begin(), accounts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<const mem_account*> out;
  out.reserve(accounts.size());
  for (const auto& [name, account] : accounts) out.push_back(account);
  return out;
}

std::uint64_t memtrack_process_live() {
  return g_process_live.load(std::memory_order_relaxed);
}

std::uint64_t memtrack_process_peak() {
  return g_process_peak.load(std::memory_order_relaxed);
}

void memtrack_reset() {
  std::vector<std::pair<std::string, mem_account*>> accounts;
  {
    account_store& s = store();
    const std::lock_guard<std::mutex> lock(s.mutex);
    accounts = s.accounts;
  }
  for (const auto& [name, account] : accounts) {
    (void)name;
    account->reset();
  }
  g_process_live.store(0, std::memory_order_relaxed);
  g_process_peak.store(0, std::memory_order_relaxed);
}

void publish_memtrack_metrics() {
  if (!memtrack_enabled() || !metrics_enabled()) return;
  metrics_registry& registry = global_metrics();
  for (const mem_account* account : memtrack_accounts()) {
    registry.gauge("mem." + account->name() + ".bytes")
        .set(static_cast<double>(account->live()));
    registry.gauge("mem." + account->name() + ".peak_bytes")
        .set(static_cast<double>(account->peak()));
  }
  registry.gauge("mem.process.bytes")
      .set(static_cast<double>(memtrack_process_live()));
  registry.gauge("mem.process.peak_bytes")
      .set(static_cast<double>(memtrack_process_peak()));
}

}  // namespace compact
