// Minimal leveled logger. Off by default so library code stays quiet inside
// benchmarks; the MIP solver raises it to `info` to emit convergence traces.
#pragma once

#include <sstream>
#include <string>

namespace compact {

enum class log_level { off = 0, warn = 1, info = 2, debug = 3 };

/// Global threshold; messages above it are dropped.
void set_log_level(log_level level);
[[nodiscard]] log_level current_log_level();

/// Emit one line to stderr if `level` is enabled.
void log_line(log_level level, const std::string& message);

}  // namespace compact
