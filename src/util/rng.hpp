// Deterministic pseudo-random number generation.
//
// All randomized components (sampled validity checking, workload generators,
// property tests) take an explicit rng so experiments are reproducible.
// The generator is xoshiro256** (Blackman & Vigna), seeded via splitmix64.
//
// Parallel sites never share one stream: they derive one substream() per
// work item, which depends only on (seed, item index) — never on thread
// count or scheduling — so parallel runs reproduce serial runs bit for bit.
#pragma once

#include <cstdint>

namespace compact {

class rng {
 public:
  explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : seed_(seed) {
    // splitmix64 seeding: decorrelates nearby seeds.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  /// Splittable substream `index` of this generator: a fresh generator
  /// derived only from the constructing seed and `index`. Adjacent indices
  /// are decorrelated (the pair is fed through splitmix64 finalizers) and
  /// substreams are independent of how many values the parent has drawn.
  [[nodiscard]] rng substream(std::uint64_t index) const {
    return rng(mix64(seed_ + mix64(index + 0x632be59bd9b4e019ULL)));
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // the bounds used in this library (<= 2^32). __extension__ keeps the
    // GCC/Clang-only 128-bit type quiet under -Wpedantic.
    __extension__ using uint128 = unsigned __int128;
    return static_cast<std::uint64_t>(
        (static_cast<uint128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fair coin flip.
  bool next_bool() { return (next_u64() & 1) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static constexpr std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t seed_;
  std::uint64_t state_[4];
};

}  // namespace compact
