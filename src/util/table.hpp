// Plain-text table writer used by the benchmark harness to print the rows of
// the paper's tables (Table I-IV) in an aligned, diff-friendly format, and to
// emit the same data as CSV for downstream plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace compact {

class table {
 public:
  /// Create a table with the given column headers.
  explicit table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with aligned columns, a header rule, and two-space gutters.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (cells containing commas are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience: number formatting for table cells.
[[nodiscard]] std::string cell(long long value);
[[nodiscard]] std::string cell(std::size_t value);
[[nodiscard]] std::string cell(int value);
[[nodiscard]] std::string cell(double value, int digits = 2);

}  // namespace compact
