// Monotonic wall-clock stopwatch used for synthesis-time reporting and for
// enforcing MIP solver time limits.
#pragma once

#include <chrono>

namespace compact {

class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}

  /// Restart the stopwatch from zero.
  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace compact
