// Executable MAGIC programs.
//
// The cost model in magic/contra.hpp *counts* INPUT/COPY/NOR write
// operations; this module makes those operations real: a LUT mapping is
// compiled into an explicit operation sequence over crossbar cells, and a
// simple machine executes it (every cell is a memristor storing one bit;
// NOR is MAGIC's native in-array operation). Executing the compiled program
// and comparing against the source network closes the loop on the CONTRA
// baseline — and the compiled operation count is asserted to match the cost
// model exactly, so Fig. 13's delay/power numbers are backed by a program
// that demonstrably computes the right function.
#pragma once

#include <cstdint>
#include <vector>

#include "magic/contra.hpp"
#include "magic/gate_network.hpp"
#include "magic/lut_mapper.hpp"

namespace compact::magic {

/// One write operation on the cell array.
struct magic_op {
  enum class kind : std::uint8_t {
    input,  // cell[dst] = primary input #source
    copy,   // cell[dst] = cell[operands[0]]
    nor,    // cell[dst] = NOR(cell[operands...]); 1 operand acts as NOT
  };
  kind op = kind::nor;
  int dst = 0;
  int source_input = -1;      // for kind::input
  std::vector<int> operands;  // for copy / nor
};

struct magic_program {
  std::vector<magic_op> ops;
  int cell_count = 0;
  std::vector<int> output_cells;  // parallel to the network outputs
  std::vector<std::string> output_names;

  [[nodiscard]] long long input_ops() const;
  [[nodiscard]] long long copy_ops() const;
  [[nodiscard]] long long nor_ops() const;
  [[nodiscard]] long long total_ops() const {
    return static_cast<long long>(ops.size());
  }
};

/// Compile a LUT mapping into an executable operation sequence whose
/// INPUT/COPY/NOR counts equal schedule_luts()'s cost model.
[[nodiscard]] magic_program compile_magic(const gate_network& gates,
                                          const lut_mapping& mapping);

/// Execute the program under an input assignment.
[[nodiscard]] std::vector<bool> run_magic(const magic_program& program,
                                          const std::vector<bool>& assignment);

}  // namespace compact::magic
