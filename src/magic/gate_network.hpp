// Two-input gate decomposition.
//
// The CONTRA-style MAGIC flow (our stand-in for [34]) starts from a
// technology-independent network of simple gates. This module lowers the
// SOP-cover network of src/frontend into an AND/OR/NOT netlist with
// structural hashing, the form the k-feasible-cut LUT mapper consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "frontend/network.hpp"

namespace compact::magic {

enum class gate_kind : std::uint8_t { input, and2, or2, not1, const0, const1 };

struct gate {
  gate_kind kind = gate_kind::input;
  int a = -1;  // fanin indices (a only for not1; none for const/input)
  int b = -1;
};

struct gate_network {
  std::vector<gate> gates;          // topologically ordered
  std::vector<int> outputs;         // gate indices
  std::vector<std::string> output_names;
  int input_count = 0;

  [[nodiscard]] std::size_t size() const { return gates.size(); }
  /// Logic depth (inputs/constants at level 0).
  [[nodiscard]] std::vector<int> levels() const;
  /// Evaluate all gates under an input assignment.
  [[nodiscard]] std::vector<bool> evaluate(
      const std::vector<bool>& assignment) const;
};

/// Lower `net` to two-input gates with structural hashing.
[[nodiscard]] gate_network decompose(const frontend::network& net);

}  // namespace compact::magic
