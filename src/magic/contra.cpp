#include "magic/contra.hpp"

#include <algorithm>
#include <vector>

#include "magic/nor_synth.hpp"
#include "util/error.hpp"

namespace compact::magic {

contra_result schedule_luts(const gate_network& gates,
                            const lut_mapping& mapping,
                            const contra_options& options) {
  check(options.k >= 2 && options.spacing >= 0 && options.crossbar_rows > 0,
        "contra: bad options");
  contra_result result;
  result.luts = static_cast<int>(mapping.luts.size());
  result.lut_levels = mapping.levels;

  // INPUT operations: one write per primary input to load it into the array.
  result.input_ops = gates.input_count;

  // Per-level aggregation.
  std::vector<long long> level_copy(static_cast<std::size_t>(
                                        std::max(mapping.levels, 1)),
                                    0);
  std::vector<int> level_depth(static_cast<std::size_t>(
                                   std::max(mapping.levels, 1)),
                               0);
  std::vector<int> level_luts(static_cast<std::size_t>(
                                  std::max(mapping.levels, 1)),
                              0);

  for (const lut& l : mapping.luts) {
    const nor_program program =
        synthesize_nor(l.truth_table, static_cast<int>(l.leaves.size()));
    result.nor_ops += program.total_ops();
    // Each operand is copied into the LUT's working rows.
    result.copy_ops += static_cast<long long>(l.leaves.size());
    const auto lv = static_cast<std::size_t>(l.level);
    level_copy[lv] += static_cast<long long>(l.leaves.size());
    level_depth[lv] = std::max(level_depth[lv], program.depth);
    ++level_luts[lv];
  }

  result.total_ops = result.input_ops + result.copy_ops + result.nor_ops;
  // Paper model: every operation is one sequential write step.
  result.delay_steps = result.total_ops;

  // Optimistic wave-parallel estimate: waves per level limited by how many
  // LUT strips fit the array; co-scheduled LUTs share their NOR steps.
  const int strip_height = options.k + options.spacing;
  const int slots = std::max(1, options.crossbar_rows / strip_height);
  result.parallel_delay_steps = result.input_ops > 0 ? 1 : 0;
  for (int level = 0; level < std::max(mapping.levels, 1); ++level) {
    const auto lv = static_cast<std::size_t>(level);
    if (level_luts[lv] == 0) continue;
    const int waves = (level_luts[lv] + slots - 1) / slots;
    const long long copies_per_wave =
        (level_copy[lv] + level_luts[lv] - 1) / std::max(level_luts[lv], 1);
    result.parallel_delay_steps +=
        static_cast<long long>(waves) *
        (copies_per_wave + static_cast<long long>(level_depth[lv]));
  }
  return result;
}

contra_result contra_synthesize(const frontend::network& net,
                                const contra_options& options) {
  const gate_network gates = decompose(net);
  lut_mapper_options mapper;
  mapper.k = options.k;
  const lut_mapping mapping = map_to_luts(gates, mapper);
  return schedule_luts(gates, mapping, options);
}

}  // namespace compact::magic
