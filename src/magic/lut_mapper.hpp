// K-feasible-cut LUT mapping.
//
// CONTRA maps circuits into k-input LUTs before scheduling them as MAGIC
// NOR programs (the paper uses k = 4). This is a classical depth-oriented
// cut-based mapper: bottom-up cut enumeration with per-node cut bounds,
// best-cut selection by arrival time, and cover extraction from the
// outputs. Each chosen LUT carries its truth table (computed by simulating
// the covered cone), which the NOR synthesizer consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "magic/gate_network.hpp"

namespace compact::magic {

struct lut {
  int root = -1;                 // gate index the LUT implements
  std::vector<int> leaves;       // gate indices feeding the LUT
  std::uint64_t truth_table = 0; // bit b = f(leaf values = bits of b)
  int level = 0;                 // LUT-network depth (leaves at level 0)
};

struct lut_mapping {
  std::vector<lut> luts;          // topologically ordered
  std::vector<int> outputs;       // indices into luts (or -1 for PI/const
                                  // outputs, see output_gates)
  std::vector<int> output_gates;  // original gate index per network output
  int levels = 0;                 // max LUT level + 1
};

struct lut_mapper_options {
  int k = 4;             // max LUT inputs (2..6)
  int cuts_per_node = 8; // cut-set bound
};

[[nodiscard]] lut_mapping map_to_luts(const gate_network& net,
                                      const lut_mapper_options& options = {});

/// Evaluate the LUT network (for equivalence tests against the gate
/// network).
[[nodiscard]] std::vector<bool> evaluate_luts(
    const gate_network& net, const lut_mapping& mapping,
    const std::vector<bool>& assignment);

}  // namespace compact::magic
