#include "magic/lut_mapper.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace compact::magic {
namespace {

using cut = std::vector<int>;  // sorted leaf gate indices

/// Merge two sorted leaf sets; empty result means the k bound was exceeded.
cut merge_cuts(const cut& a, const cut& b, int k) {
  cut leaves;
  leaves.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(leaves));
  if (static_cast<int>(leaves.size()) > k) leaves.clear();
  return leaves;
}

/// Simulate the cone rooted at `root` with `leaves` pinned, producing the
/// truth table over the leaf ordering.
std::uint64_t cone_truth_table(const gate_network& net, int root,
                               const cut& leaves) {
  check(leaves.size() <= 6, "cone_truth_table: more than 6 leaves");
  // Gather cone gates (between leaves and root) in topological order: gate
  // indices are already topological, so a marked upward sweep suffices.
  std::vector<int> cone;
  std::vector<char> in_cone(net.size(), 0);
  std::vector<char> is_leaf(net.size(), 0);
  for (int l : leaves) is_leaf[static_cast<std::size_t>(l)] = 1;

  // Mark the cone by DFS from root stopping at leaves.
  std::vector<int> stack{root};
  std::vector<char> visited(net.size(), 0);
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    if (visited[static_cast<std::size_t>(u)]) continue;
    visited[static_cast<std::size_t>(u)] = 1;
    if (is_leaf[static_cast<std::size_t>(u)]) continue;
    in_cone[static_cast<std::size_t>(u)] = 1;
    const gate& g = net.gates[static_cast<std::size_t>(u)];
    check(g.kind != gate_kind::input,
          "cone_truth_table: cone reaches a primary input not in the cut");
    if (g.a >= 0) stack.push_back(g.a);
    if (g.b >= 0) stack.push_back(g.b);
  }

  std::vector<bool> value(net.size(), false);
  std::uint64_t table = 0;
  const std::uint64_t combos = 1ULL << leaves.size();
  for (std::uint64_t bits = 0; bits < combos; ++bits) {
    for (std::size_t i = 0; i < leaves.size(); ++i)
      value[static_cast<std::size_t>(leaves[i])] = (bits >> i) & 1;
    for (std::size_t u = 0; u <= static_cast<std::size_t>(root); ++u) {
      if (!in_cone[u]) continue;
      const gate& g = net.gates[u];
      switch (g.kind) {
        case gate_kind::const0:
          value[u] = false;
          break;
        case gate_kind::const1:
          value[u] = true;
          break;
        case gate_kind::not1:
          value[u] = !value[static_cast<std::size_t>(g.a)];
          break;
        case gate_kind::and2:
          value[u] = value[static_cast<std::size_t>(g.a)] &&
                     value[static_cast<std::size_t>(g.b)];
          break;
        case gate_kind::or2:
          value[u] = value[static_cast<std::size_t>(g.a)] ||
                     value[static_cast<std::size_t>(g.b)];
          break;
        case gate_kind::input:
          break;  // unreachable (checked above)
      }
    }
    if (value[static_cast<std::size_t>(root)]) table |= 1ULL << bits;
  }
  return table;
}

}  // namespace

lut_mapping map_to_luts(const gate_network& net,
                        const lut_mapper_options& options) {
  check(options.k >= 2 && options.k <= 6, "lut mapper: k must be in 2..6");
  const int n = static_cast<int>(net.size());

  // ---- Cut enumeration with arrival-time best cuts. ----------------------
  std::vector<std::vector<cut>> cuts(static_cast<std::size_t>(n));
  std::vector<int> arrival(static_cast<std::size_t>(n), 0);
  std::vector<cut> best(static_cast<std::size_t>(n));

  auto arrival_of_cut = [&](const cut& c) {
    int a = 0;
    for (int leaf : c) a = std::max(a, arrival[static_cast<std::size_t>(leaf)]);
    return a + 1;
  };

  for (int i = 0; i < n; ++i) {
    const gate& g = net.gates[static_cast<std::size_t>(i)];
    std::vector<cut>& set = cuts[static_cast<std::size_t>(i)];
    const cut trivial{i};

    if (g.kind == gate_kind::input || g.kind == gate_kind::const0 ||
        g.kind == gate_kind::const1) {
      set.push_back(trivial);
      arrival[static_cast<std::size_t>(i)] = 0;
      best[static_cast<std::size_t>(i)] = trivial;
      continue;
    }

    std::vector<cut> candidates;
    if (g.kind == gate_kind::not1) {
      candidates = cuts[static_cast<std::size_t>(g.a)];
    } else {
      for (const cut& ca : cuts[static_cast<std::size_t>(g.a)])
        for (const cut& cb : cuts[static_cast<std::size_t>(g.b)]) {
          cut merged = merge_cuts(ca, cb, options.k);
          if (!merged.empty()) candidates.push_back(std::move(merged));
        }
    }
    candidates.push_back(trivial);

    // Deduplicate, rank by (arrival, size), keep the best few.
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    std::sort(candidates.begin(), candidates.end(),
              [&](const cut& x, const cut& y) {
                const int ax = arrival_of_cut(x);
                const int ay = arrival_of_cut(y);
                return ax != ay ? ax < ay : x.size() < y.size();
              });
    if (static_cast<int>(candidates.size()) > options.cuts_per_node)
      candidates.resize(static_cast<std::size_t>(options.cuts_per_node));

    set = candidates;
    // Best cut: lowest arrival among non-trivial cuts (the trivial cut of an
    // internal gate is not implementable as a LUT leaf set for itself).
    best[static_cast<std::size_t>(i)] = set.front() == trivial && set.size() > 1
                                            ? set[1]
                                            : set.front();
    if (best[static_cast<std::size_t>(i)] == trivial && set.size() > 1)
      best[static_cast<std::size_t>(i)] = set[1];
    if (best[static_cast<std::size_t>(i)] == trivial) {
      // Fall back: direct fanin cut.
      cut direct;
      if (g.a >= 0) direct.push_back(g.a);
      if (g.b >= 0) direct.push_back(g.b);
      std::sort(direct.begin(), direct.end());
      direct.erase(std::unique(direct.begin(), direct.end()), direct.end());
      best[static_cast<std::size_t>(i)] = direct;
    }
    arrival[static_cast<std::size_t>(i)] =
        arrival_of_cut(best[static_cast<std::size_t>(i)]);
  }

  // ---- Cover extraction from the outputs. --------------------------------
  lut_mapping result;
  std::map<int, int> lut_of_gate;  // root gate -> lut index
  std::vector<int> worklist;
  for (int o : net.outputs) worklist.push_back(o);

  // Recursive realization of a gate as a LUT (inputs/constants realize as
  // themselves).
  auto realize = [&](int root, auto&& self) -> void {
    const gate& g = net.gates[static_cast<std::size_t>(root)];
    if (g.kind == gate_kind::input || g.kind == gate_kind::const0 ||
        g.kind == gate_kind::const1)
      return;
    if (lut_of_gate.contains(root)) return;
    lut_of_gate.emplace(root, -1);  // mark in progress
    const cut& leaves = best[static_cast<std::size_t>(root)];
    for (int leaf : leaves) self(leaf, self);
    lut entry;
    entry.root = root;
    entry.leaves = leaves;
    entry.truth_table = cone_truth_table(net, root, leaves);
    result.luts.push_back(std::move(entry));
    lut_of_gate[root] = static_cast<int>(result.luts.size() - 1);
  };
  for (int o : worklist) realize(o, realize);

  // ---- Levelize the LUT network. ------------------------------------------
  std::vector<int> lut_level_of_gate(static_cast<std::size_t>(n), 0);
  for (lut& l : result.luts) {
    int level = 0;
    for (int leaf : l.leaves)
      level =
          std::max(level, lut_level_of_gate[static_cast<std::size_t>(leaf)]);
    l.level = level;  // wave in which this LUT executes
    lut_level_of_gate[static_cast<std::size_t>(l.root)] = level + 1;
    result.levels = std::max(result.levels, level + 1);
  }

  for (int o : net.outputs) {
    result.output_gates.push_back(o);
    const auto it = lut_of_gate.find(o);
    result.outputs.push_back(it == lut_of_gate.end() ? -1 : it->second);
  }
  return result;
}

std::vector<bool> evaluate_luts(const gate_network& net,
                                const lut_mapping& mapping,
                                const std::vector<bool>& assignment) {
  // Values of realized gates (inputs/constants seeded from the gate
  // network's own evaluation).
  std::vector<bool> value(net.size(), false);
  int next_input = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    switch (net.gates[i].kind) {
      case gate_kind::input:
        value[i] = assignment[static_cast<std::size_t>(next_input++)];
        break;
      case gate_kind::const1:
        value[i] = true;
        break;
      default:
        break;
    }
  }
  for (const lut& l : mapping.luts) {
    std::uint64_t index = 0;
    for (std::size_t i = 0; i < l.leaves.size(); ++i)
      if (value[static_cast<std::size_t>(l.leaves[i])]) index |= 1ULL << i;
    value[static_cast<std::size_t>(l.root)] =
        (l.truth_table >> index) & 1;
  }
  std::vector<bool> out;
  for (int o : mapping.output_gates)
    out.push_back(value[static_cast<std::size_t>(o)]);
  return out;
}

}  // namespace compact::magic
