#include "magic/machine.hpp"

#include <algorithm>
#include <map>

#include "magic/nor_synth.hpp"
#include "util/error.hpp"

namespace compact::magic {
namespace {

// Cells 0 and 1 hold the constants (preset before execution, as MAGIC
// arrays are initialized to known states; presets are not write ops).
constexpr int const0_cell = 0;
constexpr int const1_cell = 1;

}  // namespace

long long magic_program::input_ops() const {
  return std::count_if(ops.begin(), ops.end(), [](const magic_op& o) {
    return o.op == magic_op::kind::input;
  });
}
long long magic_program::copy_ops() const {
  return std::count_if(ops.begin(), ops.end(), [](const magic_op& o) {
    return o.op == magic_op::kind::copy;
  });
}
long long magic_program::nor_ops() const {
  return std::count_if(ops.begin(), ops.end(), [](const magic_op& o) {
    return o.op == magic_op::kind::nor;
  });
}

magic_program compile_magic(const gate_network& gates,
                            const lut_mapping& mapping) {
  magic_program program;
  int next_cell = 2;  // after the constant cells
  auto fresh = [&next_cell] { return next_cell++; };

  // Load every primary input (the cost model counts one INPUT write per PI).
  std::vector<int> cell_of_gate(gates.size(), -1);
  int input_index = 0;
  for (std::size_t g = 0; g < gates.size(); ++g) {
    switch (gates.gates[g].kind) {
      case gate_kind::input: {
        const int cell = fresh();
        program.ops.push_back(
            {magic_op::kind::input, cell, input_index++, {}});
        cell_of_gate[g] = cell;
        break;
      }
      case gate_kind::const0:
        cell_of_gate[g] = const0_cell;
        break;
      case gate_kind::const1:
        cell_of_gate[g] = const1_cell;
        break;
      default:
        break;  // LUT roots get cells below
    }
  }

  for (const lut& l : mapping.luts) {
    const int inputs = static_cast<int>(l.leaves.size());
    check(inputs >= 1 && inputs <= 6, "compile_magic: bad LUT arity");

    // COPY each operand into the LUT's working rows.
    std::vector<int> local(static_cast<std::size_t>(inputs));
    for (int i = 0; i < inputs; ++i) {
      const int src = cell_of_gate[static_cast<std::size_t>(
          l.leaves[static_cast<std::size_t>(i)])];
      check(src >= 0, "compile_magic: leaf has no cell yet");
      local[static_cast<std::size_t>(i)] = fresh();
      program.ops.push_back({magic_op::kind::copy,
                             local[static_cast<std::size_t>(i)],
                             -1,
                             {src}});
    }

    // NOR-NOR realization mirroring synthesize_nor's structure.
    const std::uint64_t rows = 1ULL << inputs;
    const std::uint64_t mask = rows == 64 ? ~0ULL : (1ULL << rows) - 1;
    const std::uint64_t on = l.truth_table & mask;
    if (on == 0) {
      cell_of_gate[static_cast<std::size_t>(l.root)] = const0_cell;
      continue;
    }
    if (on == mask) {
      cell_of_gate[static_cast<std::size_t>(l.root)] = const1_cell;
      continue;
    }
    const std::vector<std::string> cover = extract_cover(~on & mask, inputs);

    // One inverter (1-input NOR) per input whose positive phase is needed.
    std::vector<int> inverted(static_cast<std::size_t>(inputs), -1);
    for (int i = 0; i < inputs; ++i) {
      bool needed = false;
      for (const std::string& cube : cover)
        if (cube[static_cast<std::size_t>(i)] == '1') needed = true;
      if (!needed) continue;
      inverted[static_cast<std::size_t>(i)] = fresh();
      program.ops.push_back({magic_op::kind::nor,
                             inverted[static_cast<std::size_t>(i)],
                             -1,
                             {local[static_cast<std::size_t>(i)]}});
    }

    // One NOR per cube of the complement cover: c = NOR(complemented lits).
    std::vector<int> cube_cells;
    for (const std::string& cube : cover) {
      std::vector<int> operands;
      for (int i = 0; i < inputs; ++i) {
        if (cube[static_cast<std::size_t>(i)] == '-') continue;
        operands.push_back(cube[static_cast<std::size_t>(i)] == '1'
                               ? inverted[static_cast<std::size_t>(i)]
                               : local[static_cast<std::size_t>(i)]);
      }
      check(!operands.empty(), "compile_magic: free cube in a mixed cover");
      const int cell = fresh();
      program.ops.push_back(
          {magic_op::kind::nor, cell, -1, std::move(operands)});
      cube_cells.push_back(cell);
    }

    // Output NOR over the cube cells: f = NOR(cubes of !f).
    const int out = fresh();
    program.ops.push_back({magic_op::kind::nor, out, -1, cube_cells});
    cell_of_gate[static_cast<std::size_t>(l.root)] = out;
  }

  for (std::size_t o = 0; o < mapping.output_gates.size(); ++o) {
    const int cell = cell_of_gate[static_cast<std::size_t>(
        mapping.output_gates[o])];
    check(cell >= 0, "compile_magic: output gate has no cell");
    program.output_cells.push_back(cell);
    program.output_names.push_back(
        o < gates.output_names.size() ? gates.output_names[o] : "");
  }
  program.cell_count = next_cell;
  return program;
}

std::vector<bool> run_magic(const magic_program& program,
                            const std::vector<bool>& assignment) {
  std::vector<bool> cell(static_cast<std::size_t>(program.cell_count), false);
  cell[const1_cell] = true;
  for (const magic_op& op : program.ops) {
    switch (op.op) {
      case magic_op::kind::input:
        check(op.source_input >= 0 &&
                  static_cast<std::size_t>(op.source_input) <
                      assignment.size(),
              "run_magic: assignment too short");
        cell[static_cast<std::size_t>(op.dst)] =
            assignment[static_cast<std::size_t>(op.source_input)];
        break;
      case magic_op::kind::copy:
        cell[static_cast<std::size_t>(op.dst)] =
            cell[static_cast<std::size_t>(op.operands[0])];
        break;
      case magic_op::kind::nor: {
        bool any = false;
        for (int src : op.operands)
          any = any || cell[static_cast<std::size_t>(src)];
        cell[static_cast<std::size_t>(op.dst)] = !any;
        break;
      }
    }
  }
  std::vector<bool> out;
  out.reserve(program.output_cells.size());
  for (int c : program.output_cells)
    out.push_back(cell[static_cast<std::size_t>(c)]);
  return out;
}

}  // namespace compact::magic
