#include "magic/gate_network.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "util/error.hpp"

namespace compact::magic {

std::vector<int> gate_network::levels() const {
  std::vector<int> level(gates.size(), 0);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const gate& g = gates[i];
    int l = 0;
    if (g.a >= 0) l = std::max(l, level[static_cast<std::size_t>(g.a)] + 1);
    if (g.b >= 0) l = std::max(l, level[static_cast<std::size_t>(g.b)] + 1);
    level[i] = l;
  }
  return level;
}

std::vector<bool> gate_network::evaluate(
    const std::vector<bool>& assignment) const {
  check(assignment.size() == static_cast<std::size_t>(input_count),
        "gate_network: assignment size mismatch");
  std::vector<bool> value(gates.size(), false);
  int next_input = 0;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const gate& g = gates[i];
    switch (g.kind) {
      case gate_kind::input:
        value[i] = assignment[static_cast<std::size_t>(next_input++)];
        break;
      case gate_kind::const0:
        value[i] = false;
        break;
      case gate_kind::const1:
        value[i] = true;
        break;
      case gate_kind::not1:
        value[i] = !value[static_cast<std::size_t>(g.a)];
        break;
      case gate_kind::and2:
        value[i] = value[static_cast<std::size_t>(g.a)] &&
                   value[static_cast<std::size_t>(g.b)];
        break;
      case gate_kind::or2:
        value[i] = value[static_cast<std::size_t>(g.a)] ||
                   value[static_cast<std::size_t>(g.b)];
        break;
    }
  }
  std::vector<bool> out;
  out.reserve(outputs.size());
  for (int o : outputs) out.push_back(value[static_cast<std::size_t>(o)]);
  return out;
}

namespace {

/// Builder with structural hashing over (kind, a, b).
class builder {
 public:
  int input() {
    net_.gates.push_back({gate_kind::input, -1, -1});
    ++net_.input_count;
    return last();
  }
  int constant(bool v) {
    const gate_kind kind = v ? gate_kind::const1 : gate_kind::const0;
    return hashed(kind, -1, -1);
  }
  int not1(int a) {
    // !!a = a
    if (net_.gates[static_cast<std::size_t>(a)].kind == gate_kind::not1)
      return net_.gates[static_cast<std::size_t>(a)].a;
    if (net_.gates[static_cast<std::size_t>(a)].kind == gate_kind::const0)
      return constant(true);
    if (net_.gates[static_cast<std::size_t>(a)].kind == gate_kind::const1)
      return constant(false);
    return hashed(gate_kind::not1, a, -1);
  }
  int and2(int a, int b) {
    if (a == b) return a;
    const gate_kind ka = net_.gates[static_cast<std::size_t>(a)].kind;
    const gate_kind kb = net_.gates[static_cast<std::size_t>(b)].kind;
    if (ka == gate_kind::const0 || kb == gate_kind::const0)
      return constant(false);
    if (ka == gate_kind::const1) return b;
    if (kb == gate_kind::const1) return a;
    return hashed(gate_kind::and2, std::min(a, b), std::max(a, b));
  }
  int or2(int a, int b) {
    if (a == b) return a;
    const gate_kind ka = net_.gates[static_cast<std::size_t>(a)].kind;
    const gate_kind kb = net_.gates[static_cast<std::size_t>(b)].kind;
    if (ka == gate_kind::const1 || kb == gate_kind::const1)
      return constant(true);
    if (ka == gate_kind::const0) return b;
    if (kb == gate_kind::const0) return a;
    return hashed(gate_kind::or2, std::min(a, b), std::max(a, b));
  }

  gate_network take() { return std::move(net_); }

 private:
  int last() const { return static_cast<int>(net_.gates.size()) - 1; }
  int hashed(gate_kind kind, int a, int b) {
    const auto key = std::make_tuple(kind, a, b);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    net_.gates.push_back({kind, a, b});
    cache_.emplace(key, last());
    return last();
  }

  gate_network net_;
  std::map<std::tuple<gate_kind, int, int>, int> cache_;
};

}  // namespace

gate_network decompose(const frontend::network& net) {
  builder b;
  std::vector<int> gate_of(net.node_count(), -1);

  for (int i = 0; i < static_cast<int>(net.node_count()); ++i) {
    const frontend::network_node& n = net.node(i);
    if (n.node_kind == frontend::network_node::kind::input) {
      gate_of[static_cast<std::size_t>(i)] = b.input();
      continue;
    }
    // OR of cube ANDs; literals via NOTs.
    int acc = b.constant(false);
    for (const std::string& cube : n.cubes) {
      int term = b.constant(true);
      for (std::size_t j = 0; j < cube.size(); ++j) {
        if (cube[j] == '-') continue;
        const int fan = gate_of[static_cast<std::size_t>(n.fanins[j])];
        term = b.and2(term, cube[j] == '1' ? fan : b.not1(fan));
      }
      acc = b.or2(acc, term);
    }
    gate_of[static_cast<std::size_t>(i)] = acc;
  }

  gate_network result = b.take();
  for (const frontend::network_output& o : net.outputs()) {
    result.outputs.push_back(gate_of[static_cast<std::size_t>(o.node)]);
    result.output_names.push_back(o.name);
  }
  return result;
}

}  // namespace compact::magic
