// CONTRA-style MAGIC cost model (stand-in for [34]).
//
// The paper compares COMPACT against CONTRA with k = 4 LUTs, spacing 6 and a
// 128x128 crossbar, where "both the power consumption and computational
// delay are expressed in terms of the number of operations (INPUT, COPY,
// ...) where each operation is considered a write operation". This module
// reproduces that model on top of the LUT mapper:
//   * power  = total write operations (INPUT + COPY + NOR),
//   * delay  = the same operation count (each operation is one sequential
//     write step — the paper's stated model, and the source of its 8.65x
//     delay gap: "the subsequent time steps will be spent attempting to
//     realign the data").
// An optimistic wave-parallel estimate is also reported
// (parallel_delay_steps): LUT levels execute as waves, a wave fits
// floor(rows / (k + spacing)) LUT strips, and co-scheduled NORs count once.
// The ablation bench uses it to show COMPACT's delay advantage survives
// even under generous MAGIC parallelism assumptions.
#pragma once

#include "frontend/network.hpp"
#include "magic/gate_network.hpp"
#include "magic/lut_mapper.hpp"

namespace compact::magic {

struct contra_options {
  int k = 4;
  int spacing = 6;
  int crossbar_rows = 128;
  int crossbar_columns = 128;
};

struct contra_result {
  int luts = 0;
  int lut_levels = 0;
  long long input_ops = 0;  // loading primary inputs
  long long copy_ops = 0;   // realigning LUT operands
  long long nor_ops = 0;    // NOR/NOT executions
  long long total_ops = 0;  // power proxy
  long long delay_steps = 0;           // sequential writes (= total_ops)
  long long parallel_delay_steps = 0;  // optimistic wave-parallel schedule
};

/// Run the full flow: decompose -> LUT-map -> NOR-synthesize -> schedule.
[[nodiscard]] contra_result contra_synthesize(
    const frontend::network& net, const contra_options& options = {});

/// Cost model on an existing mapping (exposed for tests).
[[nodiscard]] contra_result schedule_luts(const gate_network& gates,
                                          const lut_mapping& mapping,
                                          const contra_options& options);

}  // namespace compact::magic
