// Two-level NOR realization of LUT truth tables.
//
// MAGIC natively executes NOR (and 1-input NOR = NOT) in-array. A k-input
// LUT with truth table f is realized as
//     f = NOR(c_1, ..., c_t),   c_i = NOR(complemented literals)
// where the c_i form a sum-of-products cover of !f (De Morgan). The cover is
// extracted from the truth table with greedy cube expansion. The returned
// counts feed CONTRA's operation-based delay/power model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace compact::magic {

struct nor_program {
  int inverter_ops = 0;  // 1-input NORs producing needed input complements
  int cube_ops = 0;      // first-level NORs (one per cover cube)
  int output_ops = 0;    // second-level NOR (0 for constant/buffer cases)
  int depth = 0;         // sequential MAGIC steps (row-parallel within step)

  [[nodiscard]] int total_ops() const {
    return inverter_ops + cube_ops + output_ops;
  }
};

/// Greedy SOP cover of the on-set of `table` over `inputs` variables.
/// Exposed for testing; cubes use '0'/'1'/'-' per input.
[[nodiscard]] std::vector<std::string> extract_cover(std::uint64_t table,
                                                     int inputs);

/// NOR program realizing `table` over `inputs` variables.
[[nodiscard]] nor_program synthesize_nor(std::uint64_t table, int inputs);

}  // namespace compact::magic
