#include "magic/nor_synth.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace compact::magic {
namespace {

/// True when every minterm inside `cube` is in the on-set of `table`.
bool cube_inside(const std::string& cube, std::uint64_t table, int inputs) {
  // Enumerate the cube's free positions.
  std::vector<int> free_positions;
  std::uint64_t base = 0;
  for (int i = 0; i < inputs; ++i) {
    if (cube[static_cast<std::size_t>(i)] == '-')
      free_positions.push_back(i);
    else if (cube[static_cast<std::size_t>(i)] == '1')
      base |= 1ULL << i;
  }
  const std::uint64_t combos = 1ULL << free_positions.size();
  for (std::uint64_t bits = 0; bits < combos; ++bits) {
    std::uint64_t minterm = base;
    for (std::size_t j = 0; j < free_positions.size(); ++j)
      if ((bits >> j) & 1) minterm |= 1ULL << free_positions[j];
    if (!((table >> minterm) & 1)) return false;
  }
  return true;
}

void mark_covered(const std::string& cube, std::vector<bool>& covered,
                  int inputs) {
  std::vector<int> free_positions;
  std::uint64_t base = 0;
  for (int i = 0; i < inputs; ++i) {
    if (cube[static_cast<std::size_t>(i)] == '-')
      free_positions.push_back(i);
    else if (cube[static_cast<std::size_t>(i)] == '1')
      base |= 1ULL << i;
  }
  const std::uint64_t combos = 1ULL << free_positions.size();
  for (std::uint64_t bits = 0; bits < combos; ++bits) {
    std::uint64_t minterm = base;
    for (std::size_t j = 0; j < free_positions.size(); ++j)
      if ((bits >> j) & 1) minterm |= 1ULL << free_positions[j];
    covered[static_cast<std::size_t>(minterm)] = true;
  }
}

}  // namespace

std::vector<std::string> extract_cover(std::uint64_t table, int inputs) {
  check(inputs >= 0 && inputs <= 6, "extract_cover: 0..6 inputs");
  const std::uint64_t rows = 1ULL << inputs;
  std::vector<std::string> cover;
  std::vector<bool> covered(static_cast<std::size_t>(rows), false);

  for (std::uint64_t minterm = 0; minterm < rows; ++minterm) {
    if (!((table >> minterm) & 1) ||
        covered[static_cast<std::size_t>(minterm)])
      continue;
    // Seed cube = the minterm; greedily free literals (LSB first).
    std::string cube(static_cast<std::size_t>(inputs), '-');
    for (int i = 0; i < inputs; ++i)
      cube[static_cast<std::size_t>(i)] = ((minterm >> i) & 1) ? '1' : '0';
    for (int i = 0; i < inputs; ++i) {
      const char saved = cube[static_cast<std::size_t>(i)];
      cube[static_cast<std::size_t>(i)] = '-';
      if (!cube_inside(cube, table, inputs))
        cube[static_cast<std::size_t>(i)] = saved;
    }
    mark_covered(cube, covered, inputs);
    cover.push_back(std::move(cube));
  }
  return cover;
}

nor_program synthesize_nor(std::uint64_t table, int inputs) {
  check(inputs >= 0 && inputs <= 6, "synthesize_nor: 0..6 inputs");
  const std::uint64_t rows = 1ULL << inputs;
  const std::uint64_t mask = rows == 64 ? ~0ULL : (1ULL << rows) - 1;
  const std::uint64_t on = table & mask;

  nor_program program;
  if (on == 0 || on == mask) {
    // Constant: a single preset write, no logic ops.
    program.depth = 0;
    return program;
  }

  // Cover of the complement: f = NOR(cubes(!f)).
  const std::vector<std::string> cover = extract_cover(~on & mask, inputs);
  check(!cover.empty(), "synthesize_nor: empty complement cover");

  // A cube NOR consumes complemented literals: literal 'x' in the cube of
  // !f needs NOT x available. Count distinct inputs whose *positive* phase
  // appears (those need one inverter op each); negative-phase literals use
  // the input as stored.
  std::vector<bool> needs_inverter(static_cast<std::size_t>(inputs), false);
  for (const std::string& cube : cover)
    for (int i = 0; i < inputs; ++i)
      if (cube[static_cast<std::size_t>(i)] == '1')
        needs_inverter[static_cast<std::size_t>(i)] = true;
  program.inverter_ops = static_cast<int>(
      std::count(needs_inverter.begin(), needs_inverter.end(), true));
  program.cube_ops = static_cast<int>(cover.size());
  program.output_ops = 1;
  // Sequential steps: inversions (parallel), cube NORs (parallel), output.
  program.depth = (program.inverter_ops > 0 ? 1 : 0) + 1 + 1;
  return program;
}

}  // namespace compact::magic
