// Prior-work flow-based mapping (the paper's comparison point [16]).
//
// The inductive staircase constructions map *every* BDD node to both a
// wordline and a bitline joined by an always-on device, which trivially
// satisfies the crossbar connection constraints and yields a semiperimeter
// of ~2n (the paper measures 1.90n for [16]; Section IV describes this
// "map each node to both" strategy as the way prior work sidesteps the
// constraint problem). In this repo the construction is expressed as the
// COMPACT mapper run under the all-VH labeling, which reproduces both the
// structure and the asymptotics of the baseline.
//
// Multi-output functions follow the prior-work recipe: one ROBDD per
// output, each staircase-mapped, composed along the diagonal (Figure 8a).
#pragma once

#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "core/compact.hpp"
#include "frontend/network.hpp"

namespace compact::baseline {

/// Staircase-map the shared BDD rooted at `roots`.
[[nodiscard]] core::synthesis_result staircase_synthesize(
    const bdd::manager& m, const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& names);

/// Full prior-work flow on a network: per-output ROBDDs, staircase mapping,
/// diagonal composition.
[[nodiscard]] core::synthesis_result staircase_synthesize_network(
    const frontend::network& net);

}  // namespace compact::baseline
