#include "baseline/staircase.hpp"

#include <algorithm>

#include "core/compose.hpp"
#include "core/mapping.hpp"
#include "frontend/to_bdd.hpp"
#include "util/stopwatch.hpp"

namespace compact::baseline {
namespace {

core::synthesis_stats stats_of(const xbar::crossbar& design,
                               std::size_t nodes, std::size_t edges,
                               int vh_count) {
  core::synthesis_stats stats;
  stats.graph_nodes = nodes;
  stats.graph_edges = edges;
  stats.vh_count = vh_count;
  stats.rows = design.rows();
  stats.columns = design.columns();
  stats.semiperimeter = design.semiperimeter();
  stats.max_dimension = design.max_dimension();
  stats.area = design.area();
  stats.power_proxy = design.active_device_count();
  stats.delay_steps = design.delay_steps();
  stats.optimal = true;  // the construction is deterministic, not optimized
  return stats;
}

}  // namespace

core::synthesis_result staircase_synthesize(
    const bdd::manager& m, const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& names) {
  stopwatch clock;
  const core::bdd_graph graph = core::build_bdd_graph(m, roots, names);
  core::labeling labels = core::all_vh_labeling(graph.g.node_count());
  core::mapping_result mapped = core::map_to_crossbar(graph, labels);
  core::synthesis_result result{std::move(mapped.design), std::move(labels),
                                {}, {}, {}};
  result.stats =
      stats_of(result.design, graph.g.node_count(), graph.g.edge_count(),
               static_cast<int>(graph.g.node_count()));
  result.stats.synthesis_seconds = clock.seconds();
  return result;
}

core::synthesis_result staircase_synthesize_network(
    const frontend::network& net) {
  stopwatch clock;
  const auto output_count = static_cast<int>(net.outputs().size());
  check(output_count > 0, "staircase: network has no outputs");

  std::vector<core::synthesis_result> parts;
  parts.reserve(static_cast<std::size_t>(output_count));
  std::size_t total_nodes = 0;
  std::size_t total_edges = 0;
  for (int o = 0; o < output_count; ++o) {
    bdd::manager m(net.input_count());
    const bdd::node_handle root = frontend::build_output(net, m, o);
    parts.push_back(staircase_synthesize(
        m, {root}, {net.outputs()[static_cast<std::size_t>(o)].name}));
    total_nodes += parts.back().stats.graph_nodes;
    total_edges += parts.back().stats.graph_edges;
  }

  std::vector<const xbar::crossbar*> blocks;
  blocks.reserve(parts.size());
  for (const core::synthesis_result& part : parts)
    blocks.push_back(&part.design);

  core::synthesis_result result{core::compose_diagonal(blocks), {}, {}, {}, {}};
  result.stats = stats_of(result.design, total_nodes, total_edges,
                          static_cast<int>(total_nodes));
  result.stats.synthesis_seconds = clock.seconds();
  return result;
}

}  // namespace compact::baseline
