#include "graph/oct.hpp"

#include <algorithm>

#include "graph/bipartite.hpp"
#include "graph/product.hpp"
#include "util/error.hpp"

namespace compact::graph {

bool is_odd_cycle_transversal(const undirected_graph& g,
                              const std::vector<bool>& transversal) {
  if (transversal.size() != g.node_count()) return false;
  std::vector<bool> keep(g.node_count());
  for (std::size_t v = 0; v < g.node_count(); ++v) keep[v] = !transversal[v];
  return is_bipartite(g.induced_subgraph(keep).subgraph);
}

oct_result greedy_odd_cycle_transversal(const undirected_graph& g) {
  oct_result result;
  result.in_transversal.assign(g.node_count(), false);

  // Repeated BFS 2-coloring; on a conflict edge, delete the endpoint with
  // the larger degree and restart. Terminates because each round deletes a
  // vertex.
  std::vector<bool> deleted(g.node_count(), false);
  while (true) {
    std::vector<int> color(g.node_count(), -1);
    node_id conflict = -1;
    for (node_id start = 0;
         start < static_cast<node_id>(g.node_count()) && conflict == -1;
         ++start) {
      if (deleted[start] || color[start] != -1) continue;
      color[start] = 0;
      std::vector<node_id> stack{start};
      while (!stack.empty() && conflict == -1) {
        const node_id u = stack.back();
        stack.pop_back();
        for (node_id w : g.neighbors(u)) {
          if (deleted[w]) continue;
          if (color[w] == -1) {
            color[w] = 1 - color[u];
            stack.push_back(w);
          } else if (color[w] == color[u]) {
            conflict = g.degree(u) >= g.degree(w) ? u : w;
            break;
          }
        }
      }
    }
    if (conflict == -1) break;
    deleted[conflict] = true;
    result.in_transversal[conflict] = true;
    ++result.size;
  }

  // Redundancy elimination: the greedy pass may delete more vertices than
  // necessary; try to re-admit each deleted vertex. Each probe costs a
  // bipartiteness check (O(n + m)), so the pass is skipped when the total
  // would get out of hand on very large graphs.
  const double probe_cost = static_cast<double>(result.size) *
                            static_cast<double>(g.node_count() +
                                                g.edge_count());
  if (probe_cost <= 5e7) {
    for (node_id v = 0; v < static_cast<node_id>(g.node_count()); ++v) {
      if (!result.in_transversal[static_cast<std::size_t>(v)]) continue;
      result.in_transversal[static_cast<std::size_t>(v)] = false;
      if (is_odd_cycle_transversal(g, result.in_transversal)) {
        --result.size;
      } else {
        result.in_transversal[static_cast<std::size_t>(v)] = true;
      }
    }
  }

  result.optimal = result.size == 0;  // only provably optimal when empty
  check(is_odd_cycle_transversal(g, result.in_transversal),
        "greedy OCT produced an invalid transversal");
  return result;
}

oct_result odd_cycle_transversal(const undirected_graph& g,
                                 const oct_options& options) {
  // Already bipartite: empty transversal, trivially optimal.
  if (is_bipartite(g)) {
    oct_result result;
    result.in_transversal.assign(g.node_count(), false);
    result.optimal = true;
    return result;
  }

  const undirected_graph product = cartesian_product_k2(g);
  const auto n = static_cast<node_id>(g.node_count());

  // Warm start: a greedy transversal X plus a 2-coloring of G - X yields
  // the cover { v0, v1 : v in X } + { v_{color(v)} : v not in X } of
  // G x K2 with size n + |X| (the constructive direction of Lemma 1), so a
  // timed-out search still returns a near-greedy-quality transversal
  // instead of the 2-approximation cover's.
  std::vector<bool> warm_cover(product.node_count(), false);
  {
    const oct_result greedy = greedy_odd_cycle_transversal(g);
    std::vector<bool> keep(g.node_count());
    for (std::size_t v = 0; v < g.node_count(); ++v)
      keep[v] = !greedy.in_transversal[v];
    const auto induced = g.induced_subgraph(keep);
    const auto coloring = try_two_color(induced.subgraph);
    check(coloring.has_value(), "greedy OCT left a non-bipartite graph");
    for (node_id v = 0; v < n; ++v) {
      if (greedy.in_transversal[static_cast<std::size_t>(v)]) {
        warm_cover[static_cast<std::size_t>(v)] = true;
        warm_cover[static_cast<std::size_t>(v + n)] = true;
      } else {
        const node_id nv = induced.new_id_of[static_cast<std::size_t>(v)];
        const int color = coloring->color_of[static_cast<std::size_t>(nv)];
        warm_cover[static_cast<std::size_t>(color == 0 ? v : v + n)] = true;
      }
    }
    check(is_vertex_cover(product, warm_cover),
          "OCT warm-start cover construction is broken");
  }

  vertex_cover_result cover;
  switch (options.engine) {
    case oct_engine::bnb: {
      vertex_cover_options vc;
      vc.time_limit_seconds = options.time_limit_seconds;
      vc.warm_start = warm_cover;
      cover = min_vertex_cover_bnb(product, vc);
      break;
    }
    case oct_engine::ilp: {
      milp::mip_options mip;
      mip.time_limit_seconds = options.time_limit_seconds;
      mip.threads = options.threads;
      std::vector<double> warm(product.node_count());
      for (std::size_t v = 0; v < warm.size(); ++v)
        warm[v] = warm_cover[v] ? 1.0 : 0.0;
      mip.warm_start = std::move(warm);
      cover = min_vertex_cover_ilp(product, mip);
      break;
    }
  }

  oct_result result;
  result.in_transversal.assign(g.node_count(), false);
  for (node_id v = 0; v < n; ++v) {
    if (cover.in_cover[v] && cover.in_cover[v + n]) {
      result.in_transversal[v] = true;
      ++result.size;
    }
  }
  result.optimal = cover.optimal;

  if (!is_odd_cycle_transversal(g, result.in_transversal)) {
    // Can only happen when the cover engine timed out with a cover whose
    // doubly-covered set is not a transversal; fall back to the greedy
    // transversal, which is always valid.
    check(!cover.optimal, "optimal vertex cover yielded an invalid OCT");
    oct_result greedy = greedy_odd_cycle_transversal(g);
    greedy.optimal = false;
    return greedy;
  }
  return result;
}

}  // namespace compact::graph
