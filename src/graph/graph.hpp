// Simple undirected graph used throughout COMPACT.
//
// The VH-labeling step views the (pre-processed) BDD as an undirected graph;
// all graph-theoretic machinery (2-coloring, Cartesian products, vertex
// cover, odd cycle transversal) operates on this type. Vertices are dense
// integer ids [0, node_count()). Self-loops are rejected; parallel edges are
// collapsed.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace compact::graph {

using node_id = std::int32_t;

struct edge {
  node_id u;
  node_id v;
  friend bool operator==(const edge&, const edge&) = default;
};

class undirected_graph {
 public:
  undirected_graph() = default;

  /// Create a graph with `n` isolated vertices.
  explicit undirected_graph(std::size_t n) : adjacency_(n) {}

  /// Append one vertex; returns its id.
  node_id add_node();

  /// Add the undirected edge {u, v}. Adding an existing edge is a no-op;
  /// self-loops throw (a BDD graph never has them, and a self-loop would be
  /// unrealizable on a crossbar).
  void add_edge(node_id u, node_id v);

  [[nodiscard]] std::size_t node_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  /// True if the edge {u, v} is present.
  [[nodiscard]] bool has_edge(node_id u, node_id v) const;

  [[nodiscard]] const std::vector<node_id>& neighbors(node_id u) const;
  [[nodiscard]] std::size_t degree(node_id u) const;

  /// All edges, each reported once with u < v.
  [[nodiscard]] const std::vector<edge>& edges() const { return edges_; }

  /// Component id for every vertex plus the number of components.
  struct component_info {
    std::vector<int> component_of;  // indexed by node id
    int count = 0;
  };
  [[nodiscard]] component_info connected_components() const;

  /// The subgraph induced by `keep[v] == true`, plus the mapping
  /// old id -> new id (-1 for dropped vertices). Defined after the class
  /// (it contains an undirected_graph by value).
  struct induced_subgraph_result;
  [[nodiscard]] induced_subgraph_result induced_subgraph(
      const std::vector<bool>& keep) const;

 private:
  void check_node(node_id u) const;

  std::vector<std::vector<node_id>> adjacency_;
  std::vector<edge> edges_;
};

struct undirected_graph::induced_subgraph_result {
  undirected_graph subgraph;
  std::vector<node_id> new_id_of;  // -1 if removed
};

}  // namespace compact::graph
