// Bipartiteness testing and 2-coloring.
//
// Once the odd cycle transversal has been removed from the BDD graph, the
// remaining induced subgraph G_B is bipartite and a 2-coloring of it yields
// the V/H labels directly (Section VI-A of the paper). Because the coloring
// of each connected component can be flipped independently, we also provide a
// *balanced* 2-coloring that chooses per-component orientations minimizing
// the larger color class — this is the first mechanism by which the weighted
// objective reduces the maximum dimension (Fig. 6).
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace compact::graph {

/// Colors are 0 and 1. Vertices of color 0 map to wordlines (H) and color 1
/// to bitlines (V) by convention, though callers may flip per component.
struct two_coloring {
  std::vector<int> color_of;  // indexed by node id, values in {0, 1}
};

/// BFS 2-coloring. Returns std::nullopt when the graph contains an
/// odd-length cycle (i.e. is not bipartite).
[[nodiscard]] std::optional<two_coloring> try_two_color(
    const undirected_graph& g);

/// True iff `g` is bipartite.
[[nodiscard]] bool is_bipartite(const undirected_graph& g);

/// A 2-coloring whose per-component orientation is chosen so that
/// max(#color0 + bias0, #color1 + bias1) is minimized. `bias0`/`bias1` seed
/// the two class sizes (used to account for VH nodes that occupy a wordline
/// *and* a bitline, and for alignment-forced rows). The graph must be
/// bipartite. Orientation selection is a small subset-sum style dynamic
/// program over components, so the result is optimal for the given coloring
/// partition.
[[nodiscard]] two_coloring balanced_two_color(const undirected_graph& g,
                                              int bias0 = 0, int bias1 = 0);

/// Verify that `coloring` is a proper 2-coloring of `g`.
[[nodiscard]] bool is_proper_two_coloring(const undirected_graph& g,
                                          const two_coloring& coloring);

}  // namespace compact::graph
