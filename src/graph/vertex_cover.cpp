#include "graph/vertex_cover.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace compact::graph {
namespace {

/// Mutable view of the graph used by the branch-and-bound search. Vertices
/// are deleted either by inclusion in the cover or by becoming isolated.
class bnb_search {
 public:
  bnb_search(const undirected_graph& g, const vertex_cover_options& options)
      : graph_(g),
        alive_(g.node_count(), true),
        in_cover_(g.node_count(), false),
        degree_(g.node_count()),
        time_limit_(options.time_limit_seconds) {
    for (node_id v = 0; v < static_cast<node_id>(g.node_count()); ++v)
      degree_[v] = g.degree(v);
    best_cover_ = greedy_vertex_cover(g);
    best_size_ = static_cast<std::size_t>(
        std::count(best_cover_.begin(), best_cover_.end(), true));
    if (options.warm_start && is_vertex_cover(g, *options.warm_start)) {
      const auto warm_size = static_cast<std::size_t>(std::count(
          options.warm_start->begin(), options.warm_start->end(), true));
      if (warm_size < best_size_) {
        best_cover_ = *options.warm_start;
        best_size_ = warm_size;
      }
    }
  }

  vertex_cover_result run() {
    search(0);
    vertex_cover_result result;
    result.in_cover = best_cover_;
    result.size = best_size_;
    result.optimal = !timed_out_;
    return result;
  }

 private:
  // --- primitive operations with undo support ---------------------------

  /// Remove `v` from the residual graph; if `cover` it joins the cover.
  void remove(node_id v, bool cover) {
    alive_[v] = false;
    in_cover_[v] = cover;
    if (cover) ++cover_size_;
    for (node_id w : graph_.neighbors(v))
      if (alive_[w]) --degree_[w];
    trail_.push_back(v);
  }

  void undo_to(std::size_t mark) {
    while (trail_.size() > mark) {
      const node_id v = trail_.back();
      trail_.pop_back();
      if (in_cover_[v]) --cover_size_;
      in_cover_[v] = false;
      alive_[v] = true;
      for (node_id w : graph_.neighbors(v))
        if (alive_[w]) ++degree_[w];
    }
  }

  // --- bounding ----------------------------------------------------------

  /// Size of a greedy maximal matching in the residual graph; every cover
  /// must contain one endpoint per matched edge.
  std::size_t matching_lower_bound() const {
    std::vector<bool> matched(graph_.node_count(), false);
    std::size_t size = 0;
    for (node_id v = 0; v < static_cast<node_id>(graph_.node_count()); ++v) {
      if (!alive_[v] || matched[v]) continue;
      for (node_id w : graph_.neighbors(v)) {
        if (alive_[w] && !matched[w] && w != v) {
          matched[v] = matched[w] = true;
          ++size;
          break;
        }
      }
    }
    return size;
  }

  // --- search ------------------------------------------------------------

  /// Amortized timeout probe; cheap enough for inner loops.
  bool out_of_time() {
    if (timed_out_) return true;
    if ((++tick_ & 0x3ff) == 0 && clock_.seconds() > time_limit_)
      timed_out_ = true;
    return timed_out_;
  }

  void search(int depth) {
    if (out_of_time()) return;

    const std::size_t mark = trail_.size();

    // Reductions: drop isolated vertices; take the neighbor of any
    // degree-1 vertex (always at least as good as taking the leaf). Each
    // fixpoint pass is O(n), and large graphs can need many passes, so the
    // timeout is probed per pass as well.
    bool changed = true;
    while (changed && !out_of_time()) {
      changed = false;
      for (node_id v = 0; v < static_cast<node_id>(graph_.node_count());
           ++v) {
        if (!alive_[v]) continue;
        if (degree_[v] == 0) {
          remove(v, /*cover=*/false);
          changed = true;
        } else if (degree_[v] == 1) {
          for (node_id w : graph_.neighbors(v)) {
            if (alive_[w]) {
              remove(w, /*cover=*/true);
              break;
            }
          }
          remove(v, /*cover=*/false);
          changed = true;
        }
      }
      if (cover_size_ >= best_size_) {
        undo_to(mark);
        return;
      }
    }

    // Find the maximum-degree residual vertex.
    node_id pivot = -1;
    std::size_t max_degree = 0;
    for (node_id v = 0; v < static_cast<node_id>(graph_.node_count()); ++v) {
      if (alive_[v] && degree_[v] > max_degree) {
        max_degree = degree_[v];
        pivot = v;
      }
    }

    if (pivot == -1) {  // no edges left: complete cover found
      if (cover_size_ < best_size_) {
        best_size_ = cover_size_;
        best_cover_ = in_cover_;
        // Nodes still alive are not in the cover.
        for (std::size_t v = 0; v < alive_.size(); ++v)
          if (alive_[v]) best_cover_[v] = false;
      }
      undo_to(mark);
      return;
    }

    if (cover_size_ + matching_lower_bound() >= best_size_) {
      undo_to(mark);
      return;
    }

    // Branch 1: pivot in the cover.
    {
      const std::size_t inner = trail_.size();
      remove(pivot, /*cover=*/true);
      search(depth + 1);
      undo_to(inner);
    }
    // Branch 2: pivot excluded => all its residual neighbors in the cover.
    {
      const std::size_t inner = trail_.size();
      std::vector<node_id> residual_neighbors;
      for (node_id w : graph_.neighbors(pivot))
        if (alive_[w]) residual_neighbors.push_back(w);
      remove(pivot, /*cover=*/false);
      for (node_id w : residual_neighbors)
        if (alive_[w]) remove(w, /*cover=*/true);
      if (cover_size_ < best_size_) search(depth + 1);
      undo_to(inner);
    }

    undo_to(mark);
  }

  const undirected_graph& graph_;
  std::vector<bool> alive_;
  std::vector<bool> in_cover_;
  std::vector<std::size_t> degree_;
  std::vector<node_id> trail_;
  std::size_t cover_size_ = 0;

  std::vector<bool> best_cover_;
  std::size_t best_size_ = 0;

  stopwatch clock_;
  double time_limit_;
  unsigned tick_ = 0;
  bool timed_out_ = false;
};

}  // namespace

std::vector<bool> greedy_vertex_cover(const undirected_graph& g) {
  std::vector<bool> cover(g.node_count(), false);
  for (const edge& e : g.edges())
    if (!cover[e.u] && !cover[e.v]) cover[e.u] = cover[e.v] = true;
  return cover;
}

bool is_vertex_cover(const undirected_graph& g,
                     const std::vector<bool>& cover) {
  if (cover.size() != g.node_count()) return false;
  for (const edge& e : g.edges())
    if (!cover[e.u] && !cover[e.v]) return false;
  return true;
}

vertex_cover_result min_vertex_cover_bnb(const undirected_graph& g,
                                         const vertex_cover_options& options) {
  bnb_search search(g, options);
  vertex_cover_result result = search.run();
  check(is_vertex_cover(g, result.in_cover),
        "min_vertex_cover_bnb produced a non-cover");
  return result;
}

vertex_cover_result min_vertex_cover_ilp(const undirected_graph& g,
                                         const milp::mip_options& options) {
  milp::model m;
  for (node_id v = 0; v < static_cast<node_id>(g.node_count()); ++v)
    m.add_binary(1.0, "x" + std::to_string(v));
  for (const edge& e : g.edges())
    m.add_constraint({{e.u, 1.0}, {e.v, 1.0}}, milp::relation::greater_equal,
                     1.0);

  milp::mip_options mip = options;
  if (!mip.warm_start) {
    const std::vector<bool> greedy = greedy_vertex_cover(g);
    std::vector<double> warm(g.node_count());
    for (std::size_t v = 0; v < warm.size(); ++v) warm[v] = greedy[v] ? 1 : 0;
    mip.warm_start = std::move(warm);
  }

  const milp::mip_result solved = milp::solve_mip(m, mip);
  check(solved.status == milp::mip_status::optimal ||
            solved.status == milp::mip_status::feasible,
        "min_vertex_cover_ilp: solver returned no cover");

  vertex_cover_result result;
  result.in_cover.assign(g.node_count(), false);
  for (std::size_t v = 0; v < g.node_count(); ++v)
    result.in_cover[v] = solved.x[v] > 0.5;
  result.size = static_cast<std::size_t>(std::llround(solved.objective));
  result.optimal = solved.status == milp::mip_status::optimal;
  check(is_vertex_cover(g, result.in_cover),
        "min_vertex_cover_ilp produced a non-cover");
  return result;
}

}  // namespace compact::graph
