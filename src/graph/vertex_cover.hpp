// Minimum vertex cover solvers.
//
// Section VI-A of the paper reduces the odd-cycle-transversal problem to a
// minimum vertex cover of G x K2 and solves the cover with an ILP. We provide
// two independent engines:
//   * a combinatorial branch-and-bound with classical reductions (fast on the
//     sparse, near-bipartite graphs arising from BDDs), and
//   * the paper's ILP formulation on top of src/milp.
// The two cross-check each other in the test suite.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "milp/branch_and_bound.hpp"

namespace compact::graph {

struct vertex_cover_options {
  double time_limit_seconds = 60.0;
  /// Optional initial incumbent (must be a valid cover); when the search
  /// times out, the result is never worse than this.
  std::optional<std::vector<bool>> warm_start;
};

struct vertex_cover_result {
  std::vector<bool> in_cover;  // indexed by node id
  std::size_t size = 0;
  bool optimal = false;  // proven minimum (time limit not hit)
};

/// Branch-and-bound minimum vertex cover. Degree-0/degree-1 reductions,
/// maximal-matching lower bound, max-degree mirror branching. If the time
/// limit expires, the best cover found so far is returned with
/// optimal=false (a greedy cover is always available as a fallback).
[[nodiscard]] vertex_cover_result min_vertex_cover_bnb(
    const undirected_graph& g, const vertex_cover_options& options = {});

/// Minimum vertex cover via the 0/1 ILP  min sum x_v  s.t.  x_u + x_v >= 1.
[[nodiscard]] vertex_cover_result min_vertex_cover_ilp(
    const undirected_graph& g, const milp::mip_options& options = {});

/// Simple 2-approximation (take both endpoints of a maximal matching);
/// used as a warm start.
[[nodiscard]] std::vector<bool> greedy_vertex_cover(const undirected_graph& g);

/// True iff every edge of `g` has an endpoint in `cover`.
[[nodiscard]] bool is_vertex_cover(const undirected_graph& g,
                                   const std::vector<bool>& cover);

}  // namespace compact::graph
