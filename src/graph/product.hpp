// Cartesian graph products.
//
// Lemma 1 of the paper (due to the standard OCT <-> vertex cover reduction):
// G has an odd cycle transversal of size <= k iff G x K2 has a vertex cover
// of size <= n + k. The product G x K2 contains two copies of G with each
// vertex joined to its twin.
#pragma once

#include "graph/graph.hpp"

namespace compact::graph {

/// The Cartesian product G x K2. Vertex v of G becomes vertices v (copy 0)
/// and v + n (copy 1); each copy inherits G's edges and v is joined to v + n.
[[nodiscard]] undirected_graph cartesian_product_k2(const undirected_graph& g);

}  // namespace compact::graph
