#include "graph/bipartite.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace compact::graph {

std::optional<two_coloring> try_two_color(const undirected_graph& g) {
  two_coloring result;
  result.color_of.assign(g.node_count(), -1);
  std::queue<node_id> queue;
  for (node_id start = 0; start < static_cast<node_id>(g.node_count());
       ++start) {
    if (result.color_of[start] != -1) continue;
    result.color_of[start] = 0;
    queue.push(start);
    while (!queue.empty()) {
      const node_id u = queue.front();
      queue.pop();
      for (node_id w : g.neighbors(u)) {
        if (result.color_of[w] == -1) {
          result.color_of[w] = 1 - result.color_of[u];
          queue.push(w);
        } else if (result.color_of[w] == result.color_of[u]) {
          return std::nullopt;  // odd cycle
        }
      }
    }
  }
  return result;
}

bool is_bipartite(const undirected_graph& g) {
  return try_two_color(g).has_value();
}

two_coloring balanced_two_color(const undirected_graph& g, int bias0,
                                int bias1) {
  auto base = try_two_color(g);
  check(base.has_value(), "balanced_two_color: graph is not bipartite");

  const auto components = g.connected_components();
  // Per component: (count of color0, count of color1) under the base
  // coloring. Flipping a component swaps its contribution.
  std::vector<std::pair<int, int>> sizes(components.count, {0, 0});
  for (node_id u = 0; u < static_cast<node_id>(g.node_count()); ++u) {
    auto& s = sizes[components.component_of[u]];
    (base->color_of[u] == 0 ? s.first : s.second)++;
  }

  // Choose flip bits minimizing max(total0, total1). The totals are bounded
  // by the node count, so a reachability DP over achievable total0 values
  // (with parent pointers) is exact and fast.
  const int n = static_cast<int>(g.node_count());
  const int total = n + bias0 + bias1;
  // dp[c][t] = true if after components 0..c-1 the color-0 total equals t.
  std::vector<std::vector<int>> parent_choice(
      components.count, std::vector<int>(total + 1, -1));
  std::vector<char> reachable(total + 1, 0);
  if (bias0 >= 0 && bias0 <= total) reachable[bias0] = 1;
  for (int c = 0; c < components.count; ++c) {
    std::vector<char> next(total + 1, 0);
    for (int t = 0; t <= total; ++t) {
      if (!reachable[t]) continue;
      const int keep = t + sizes[c].first;
      const int flip = t + sizes[c].second;
      if (keep <= total && !next[keep]) {
        next[keep] = 1;
        parent_choice[c][keep] = t * 2 + 0;  // encode (prev total, choice)
      }
      if (flip <= total && !next[flip]) {
        next[flip] = 1;
        parent_choice[c][flip] = t * 2 + 1;
      }
    }
    reachable.swap(next);
  }

  // Pick the achievable color-0 total minimizing max(t, total - t + ...).
  // total1 = (n - (t - bias0)) + bias1 = total - t.
  int best_t = -1;
  int best_obj = total + 1;
  for (int t = 0; t <= total; ++t) {
    if (!reachable[t]) continue;
    const int obj = std::max(t, total - t);
    if (obj < best_obj) {
      best_obj = obj;
      best_t = t;
    }
  }
  check(best_t >= 0, "balanced_two_color: DP found no assignment");

  // Walk parents to recover flip decisions.
  std::vector<char> flip_component(components.count, 0);
  int t = best_t;
  for (int c = components.count - 1; c >= 0; --c) {
    const int enc = parent_choice[c][t];
    check(enc >= 0, "balanced_two_color: broken DP backtrace");
    flip_component[c] = static_cast<char>(enc & 1);
    t = enc >> 1;
  }

  two_coloring balanced = *base;
  for (node_id u = 0; u < static_cast<node_id>(g.node_count()); ++u)
    if (flip_component[components.component_of[u]])
      balanced.color_of[u] = 1 - balanced.color_of[u];
  return balanced;
}

bool is_proper_two_coloring(const undirected_graph& g,
                            const two_coloring& coloring) {
  if (coloring.color_of.size() != g.node_count()) return false;
  for (const edge& e : g.edges()) {
    const int cu = coloring.color_of[e.u];
    const int cv = coloring.color_of[e.v];
    if (cu < 0 || cu > 1 || cv < 0 || cv > 1 || cu == cv) return false;
  }
  return true;
}

}  // namespace compact::graph
