#include "graph/graph.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace compact::graph {

node_id undirected_graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<node_id>(adjacency_.size() - 1);
}

void undirected_graph::check_node(node_id u) const {
  if (u < 0 || static_cast<std::size_t>(u) >= adjacency_.size())
    throw error("graph: node id " + std::to_string(u) + " out of range");
}

void undirected_graph::add_edge(node_id u, node_id v) {
  check_node(u);
  check_node(v);
  if (u == v) throw error("graph: self-loop on node " + std::to_string(u));
  if (has_edge(u, v)) return;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  edges_.push_back({std::min(u, v), std::max(u, v)});
}

bool undirected_graph::has_edge(node_id u, node_id v) const {
  check_node(u);
  check_node(v);
  // Scan the smaller adjacency list.
  const auto& list =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                   : adjacency_[v];
  const node_id other =
      adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(list.begin(), list.end(), other) != list.end();
}

const std::vector<node_id>& undirected_graph::neighbors(node_id u) const {
  check_node(u);
  return adjacency_[u];
}

std::size_t undirected_graph::degree(node_id u) const {
  check_node(u);
  return adjacency_[u].size();
}

undirected_graph::component_info undirected_graph::connected_components()
    const {
  component_info info;
  info.component_of.assign(node_count(), -1);
  std::vector<node_id> stack;
  for (node_id start = 0; start < static_cast<node_id>(node_count());
       ++start) {
    if (info.component_of[start] != -1) continue;
    const int comp = info.count++;
    stack.push_back(start);
    info.component_of[start] = comp;
    while (!stack.empty()) {
      const node_id u = stack.back();
      stack.pop_back();
      for (node_id w : adjacency_[u]) {
        if (info.component_of[w] == -1) {
          info.component_of[w] = comp;
          stack.push_back(w);
        }
      }
    }
  }
  return info;
}

undirected_graph::induced_subgraph_result undirected_graph::induced_subgraph(
    const std::vector<bool>& keep) const {
  check(keep.size() == node_count(), "induced_subgraph: keep size mismatch");
  induced_subgraph_result result;
  result.new_id_of.assign(node_count(), -1);
  for (node_id u = 0; u < static_cast<node_id>(node_count()); ++u)
    if (keep[u]) result.new_id_of[u] = result.subgraph.add_node();
  for (const edge& e : edges_)
    if (keep[e.u] && keep[e.v])
      result.subgraph.add_edge(result.new_id_of[e.u], result.new_id_of[e.v]);
  return result;
}

}  // namespace compact::graph
