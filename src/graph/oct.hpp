// Odd cycle transversal (OCT).
//
// The crux of COMPACT's minimal-semiperimeter method: the nodes that must be
// labeled VH are exactly an odd cycle transversal of the BDD graph, and a
// minimum OCT yields the minimum semiperimeter n + |OCT| (Section VI-A).
// Computed via Lemma 1: OCT(G) of size k  <=>  VC(G x K2) of size n + k.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "graph/vertex_cover.hpp"

namespace compact::graph {

struct oct_result {
  std::vector<bool> in_transversal;  // indexed by node id
  std::size_t size = 0;
  bool optimal = false;
};

enum class oct_engine {
  bnb,  // combinatorial vertex-cover branch-and-bound (default)
  ilp,  // the paper's ILP route through src/milp
};

struct oct_options {
  oct_engine engine = oct_engine::bnb;
  double time_limit_seconds = 60.0;
  /// Worker threads for the ilp engine's branch-and-bound (the bnb engine
  /// is single-threaded). Results are identical for any value.
  int threads = 1;
};

/// Minimum odd cycle transversal via the vertex-cover reduction. If the time
/// limit is hit, a valid (not necessarily minimum) transversal is returned
/// with optimal=false.
[[nodiscard]] oct_result odd_cycle_transversal(const undirected_graph& g,
                                               const oct_options& options = {});

/// Fast heuristic transversal: greedily delete one vertex per odd-coloring
/// conflict. Always valid; used as a warm start and as the fallback when the
/// exact engines time out.
[[nodiscard]] oct_result greedy_odd_cycle_transversal(
    const undirected_graph& g);

/// True iff deleting `transversal` from `g` leaves a bipartite graph.
[[nodiscard]] bool is_odd_cycle_transversal(
    const undirected_graph& g, const std::vector<bool>& transversal);

}  // namespace compact::graph
