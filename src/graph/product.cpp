#include "graph/product.hpp"

namespace compact::graph {

undirected_graph cartesian_product_k2(const undirected_graph& g) {
  const auto n = static_cast<node_id>(g.node_count());
  undirected_graph product(2 * g.node_count());
  for (const edge& e : g.edges()) {
    product.add_edge(e.u, e.v);          // copy 0
    product.add_edge(e.u + n, e.v + n);  // copy 1
  }
  for (node_id v = 0; v < n; ++v) product.add_edge(v, v + n);  // rungs
  return product;
}

}  // namespace compact::graph
