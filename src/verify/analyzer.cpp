#include "verify/analyzer.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace compact::verify {

int artifacts::resolve_variable_count() const {
  if (variable_count >= 0) return variable_count;
  if (spec != nullptr) return spec->variable_count();
  if (design == nullptr) return -1;
  int inferred = -1;
  for (int r = 0; r < design->rows(); ++r)
    for (int c = 0; c < design->columns(); ++c) {
      const xbar::device& d = design->at(r, c);
      if (d.kind == xbar::literal_kind::positive ||
          d.kind == xbar::literal_kind::negative)
        inferred = std::max(inferred, d.variable + 1);
    }
  return inferred;
}

const std::vector<check_descriptor>& all_checks() {
  static const std::vector<check_descriptor> registry = [] {
    std::vector<check_descriptor> checks;
    for (auto family :
         {labeling_checks, structure_checks, mapping_checks,
          equivalence_checks, partition_checks, electrical_checks,
          fault_checks}) {
      std::vector<check_descriptor> contributed = family();
      for (check_descriptor& c : contributed)
        checks.push_back(std::move(c));
    }
    std::sort(checks.begin(), checks.end(),
              [](const check_descriptor& a, const check_descriptor& b) {
                return a.id < b.id;
              });
    return checks;
  }();
  return registry;
}

const check_descriptor& find_check(const std::string& id) {
  for (const check_descriptor& c : all_checks())
    if (c.id == id) return c;
  throw error("unknown check id '" + id + "'");
}

namespace {

bool applicable(const check_descriptor& c, const artifacts& a) {
  if (c.needs_design && a.design == nullptr) return false;
  if (c.needs_labeling && !a.has_labeling()) return false;
  if (c.needs_mapping && !a.has_mapping()) return false;
  if (c.needs_spec && !a.has_spec()) return false;
  if (c.needs_partitioned && !a.has_partitioned()) return false;
  if (c.needs_partitioned_spec && !a.has_partitioned_spec()) return false;
  if (c.needs_electrical && !a.has_electrical()) return false;
  if (c.needs_criticality && !a.has_criticality()) return false;
  return true;
}

bool is_equivalence(const check_descriptor& c) {
  // PAR003 is the stitched symbolic-equivalence check, and the FLT family
  // re-runs the extraction fixpoint per junction fault: same cost profile
  // as the EQV family, so the same opt-out gates them. (FLT is additionally
  // opt-in through artifacts::criticality.)
  return c.id.rfind("EQV", 0) == 0 || c.id == "PAR003" ||
         c.id.rfind("FLT", 0) == 0;
}

}  // namespace

report analyze(const artifacts& a, const analyzer_options& options) {
  const trace_span span("verify.analyze", "verify");
  report out;
  for (const check_descriptor& c : all_checks()) {
    if (!options.equivalence && is_equivalence(c)) continue;
    if (std::find(options.disabled.begin(), options.disabled.end(), c.id) !=
        options.disabled.end())
      continue;
    if (!applicable(c, a)) continue;
    out.mark_check_run(c.id);
    if (!c.run) continue;  // companion check; its sibling emits the findings
    const trace_span check_span("verify.check." + c.id, "verify");
    c.run(a, out);
    if (metrics_enabled())
      global_metrics().counter("verify.checks_run").increment();
  }
  if (metrics_enabled())
    global_metrics()
        .counter("verify.diagnostics")
        .add(static_cast<std::uint64_t>(out.diagnostics().size()));
  return out;
}

std::vector<sarif_rule> registry_rules() {
  std::vector<sarif_rule> rules;
  for (const check_descriptor& c : all_checks())
    rules.push_back({c.id, c.name, c.description, c.default_severity});
  return rules;
}

}  // namespace compact::verify
