// Fault-criticality checks (FLTxxx): symbolic single-fault observability
// over the sneak-path fixpoint (verify/criticality). Opt-in through
// artifacts::criticality — each junction fault costs one reachability
// fixpoint, the same cost profile as the equivalence family.
//
//   FLT001  fault-criticality        per-design single-point-of-failure map
//   FLT002  defect-sneak-path        stuck-closed defect at an off junction
//                                    flips an output (companion)
#include <string>

#include "verify/checks.hpp"
#include "verify/criticality.hpp"

namespace compact::verify {
namespace {

std::string junction_text(const junction_criticality& j, bool partitioned) {
  std::string text =
      "junction (" + std::to_string(j.row) + ", " + std::to_string(j.column) +
      ")";
  if (partitioned) text += " of array " + std::to_string(j.array);
  return text;
}

// FLT001 (+ FLT002 companion) — run the criticality engine once, summarize
// the single-point-of-failure map and flag defect-vulnerable off junctions.
void check_fault_criticality(const artifacts& a, report& out) {
  const criticality_options& options = *a.criticality;
  const int variables = a.resolve_variable_count();
  criticality_report cr =
      a.partitioned != nullptr
          ? analyze_criticality(*a.partitioned, variables, options)
          : analyze_criticality(*a.design, variables, options);
  const bool partitioned = a.partitioned != nullptr;

  {
    diagnostic d;
    d.check_id = "FLT001";
    d.level = severity::note;
    d.message = std::to_string(cr.critical_count) + " of " +
                std::to_string(cr.junction_count) +
                " analyzed junctions are single points of failure";
    if (!cr.junctions.empty() && cr.junctions.front().critical()) {
      const junction_criticality& worst = cr.junctions.front();
      d.message += "; worst: " + junction_text(worst, partitioned) +
                   " flips " +
                   std::to_string(worst.affected_outputs.size()) +
                   " output(s)";
      d.anchors = {junction_entity(worst.row, worst.column)};
    }
    if (cr.truncated)
      d.message += " (scan truncated at " +
                   std::to_string(cr.faults_analyzed) +
                   " analyzed faults; unlisted junctions are unknown, not "
                   "non-critical)";
    out.add(std::move(d));
  }

  // Stuck-closed defects at unprogrammed crosspoints are manufacturing
  // sneak paths the design cannot mask; surface them individually.
  int defect_sneaks = 0;
  for (const junction_criticality& j : cr.junctions) {
    if (j.kind != xbar::literal_kind::off || !j.stuck_closed_critical)
      continue;
    ++defect_sneaks;
    if (defect_sneaks > 16) continue;  // summary below covers the rest
    diagnostic d;
    d.check_id = "FLT002";
    d.level = severity::warning;
    d.message = "a stuck-closed defect at unprogrammed " +
                junction_text(j, partitioned) + " creates a sneak path that "
                "flips " + std::to_string(j.affected_outputs.size()) +
                " output(s)";
    d.fix = "re-map with the junction's row/column separated, or screen the "
            "die for shorts at this crosspoint";
    d.anchors = {junction_entity(j.row, j.column)};
    out.add(std::move(d));
  }
  if (defect_sneaks > 16) {
    diagnostic d;
    d.check_id = "FLT002";
    d.level = severity::warning;
    d.message = std::to_string(defect_sneaks - 16) +
                " further unprogrammed junctions are defect-sneak "
                "vulnerable (see the criticality map for the full list)";
    out.add(std::move(d));
  }

  if (a.cache != nullptr) a.cache->criticality = std::move(cr);
}

}  // namespace

std::vector<check_descriptor> fault_checks() {
  std::vector<check_descriptor> checks;
  check_descriptor c;

  c.id = "FLT001";
  c.name = "fault-criticality";
  c.description =
      "Symbolic per-junction stuck-open/stuck-closed criticality map: which "
      "single faults can flip an output";
  c.default_severity = severity::note;
  c.needs_criticality = true;
  c.run = check_fault_criticality;
  checks.push_back(c);

  c = {};
  c.id = "FLT002";
  c.name = "defect-sneak-path";
  c.description =
      "A stuck-closed defect at an unprogrammed crosspoint would create an "
      "output-flipping sneak path";
  c.default_severity = severity::warning;
  c.needs_criticality = true;
  c.run = nullptr;  // companion: FLT001's engine pass emits it
  checks.push_back(c);

  return checks;
}

}  // namespace compact::verify
