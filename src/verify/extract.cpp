#include "verify/extract.hpp"

#include <algorithm>

#include "bdd/transfer.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace compact::verify {

bdd::node_handle device_function(const xbar::device& d, bdd::manager& m) {
  switch (d.kind) {
    case xbar::literal_kind::off:
      return m.constant(false);
    case xbar::literal_kind::on:
      return m.constant(true);
    case xbar::literal_kind::positive:
    case xbar::literal_kind::negative:
      check(d.variable >= 0 && d.variable < m.variable_count(),
            "device_function: variable x" + std::to_string(d.variable) +
                " out of range [0, " + std::to_string(m.variable_count()) +
                ")");
      return d.kind == xbar::literal_kind::positive ? m.var(d.variable)
                                                    : m.nvar(d.variable);
  }
  return m.constant(false);
}

extraction_result extract_sneak_functions(const xbar::crossbar& design,
                                          bdd::manager& m) {
  const trace_span span("extract_sneak_functions", "verify");
  check(design.input_row() >= 0 && design.input_row() < design.rows(),
        "extract_sneak_functions: design has no input row");
  const int rows = design.rows();
  const int cols = design.columns();

  // Sparse device grid: (wire index, device function) adjacency in both
  // directions, skipping off junctions entirely.
  struct link {
    int other;
    bdd::node_handle fn;
  };
  std::vector<std::vector<link>> of_row(static_cast<std::size_t>(rows));
  std::vector<std::vector<link>> of_col(static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const xbar::device& d = design.at(r, c);
      if (d.kind == xbar::literal_kind::off) continue;
      const bdd::node_handle fn = device_function(d, m);
      of_row[static_cast<std::size_t>(r)].push_back({c, fn});
      of_col[static_cast<std::size_t>(c)].push_back({r, fn});
    }
  }

  extraction_result result;
  result.row_function.assign(static_cast<std::size_t>(rows),
                             m.constant(false));
  result.column_function.assign(static_cast<std::size_t>(cols),
                                m.constant(false));
  result.row_function[static_cast<std::size_t>(design.input_row())] =
      m.constant(true);

  // Least-fixpoint iteration. The reachability functions only ever grow
  // (every update ORs new terms in), so termination is guaranteed; the
  // number of sweeps is bounded by the crossbar's conduction diameter
  // (alternating row/column hops), typically far below rows + columns.
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.fixpoint_iterations;
    for (int c = 0; c < cols; ++c) {
      bdd::node_handle fn = result.column_function[static_cast<std::size_t>(c)];
      for (const link& l : of_col[static_cast<std::size_t>(c)])
        fn = m.apply_or(
            fn, m.apply_and(
                    result.row_function[static_cast<std::size_t>(l.other)],
                    l.fn));
      if (fn != result.column_function[static_cast<std::size_t>(c)]) {
        result.column_function[static_cast<std::size_t>(c)] = fn;
        changed = true;
      }
    }
    for (int r = 0; r < rows; ++r) {
      if (r == design.input_row()) continue;
      bdd::node_handle fn = result.row_function[static_cast<std::size_t>(r)];
      for (const link& l : of_row[static_cast<std::size_t>(r)])
        fn = m.apply_or(
            fn, m.apply_and(
                    result.column_function[static_cast<std::size_t>(l.other)],
                    l.fn));
      if (fn != result.row_function[static_cast<std::size_t>(r)]) {
        result.row_function[static_cast<std::size_t>(r)] = fn;
        changed = true;
      }
    }
  }

  // The fixpoint leaves every superseded iterate (and the per-device
  // literal nodes) in the manager; sweep them so only the converged
  // reachability functions remain. The caller's follow-up work (spec
  // transfer, XOR witnesses) then runs against a compact table, and
  // node_table_size() reports the extraction's true footprint.
  {
    std::vector<bdd::node_handle> live;
    live.reserve(result.row_function.size() + result.column_function.size());
    live.insert(live.end(), result.row_function.begin(),
                result.row_function.end());
    live.insert(live.end(), result.column_function.begin(),
                result.column_function.end());
    m.collect_garbage(live);
  }

  if (metrics_enabled()) {
    global_metrics().counter("verify.extractions").increment();
    global_metrics()
        .histogram("verify.fixpoint_iterations",
                   {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})
        .observe(static_cast<double>(result.fixpoint_iterations));
  }
  return result;
}

stitched_extraction_result extract_stitched_functions(
    const xbar::partitioned_design& design, bdd::manager& m) {
  const trace_span span("extract_stitched_functions", "verify");
  const int input_fragment = design.input_array();
  check(input_fragment >= 0,
        "extract_stitched_functions: no fragment declares an input row");

  // Flatten every nanowire of every fragment into one index space (per
  // fragment: rows first, then columns), exactly like the concrete stitched
  // evaluation in xbar/partitioned.cpp.
  const int fragment_count = design.array_count();
  std::vector<int> offset(static_cast<std::size_t>(fragment_count), 0);
  int total = 0;
  for (int f = 0; f < fragment_count; ++f) {
    offset[static_cast<std::size_t>(f)] = total;
    total += design.fragment(f).rows() + design.fragment(f).columns();
  }
  const auto of_row = [&](int f, int r) {
    return offset[static_cast<std::size_t>(f)] + r;
  };
  const auto of_column = [&](int f, int c) {
    return offset[static_cast<std::size_t>(f)] + design.fragment(f).rows() + c;
  };
  const auto of_wire = [&](const xbar::wire_ref& w) {
    return w.kind == xbar::wire_kind::row ? of_row(w.array, w.index)
                                          : of_column(w.array, w.index);
  };

  struct link {
    int other;
    bdd::node_handle fn;
  };
  std::vector<std::vector<link>> links(static_cast<std::size_t>(total));
  for (int f = 0; f < fragment_count; ++f) {
    const xbar::crossbar& fragment = design.fragment(f);
    for (int r = 0; r < fragment.rows(); ++r)
      for (int c = 0; c < fragment.columns(); ++c) {
        const xbar::device& d = fragment.at(r, c);
        if (d.kind == xbar::literal_kind::off) continue;
        const bdd::node_handle fn = device_function(d, m);
        links[static_cast<std::size_t>(of_row(f, r))].push_back(
            {of_column(f, c), fn});
        links[static_cast<std::size_t>(of_column(f, c))].push_back(
            {of_row(f, r), fn});
      }
  }
  // A bridge welds its two wires into one net: an always-true link.
  for (const xbar::bridge& b : design.connections()) {
    const int wa = of_wire(b.a);
    const int wb = of_wire(b.b);
    links[static_cast<std::size_t>(wa)].push_back({wb, m.constant(true)});
    links[static_cast<std::size_t>(wb)].push_back({wa, m.constant(true)});
  }

  const int input_wire =
      of_row(input_fragment, design.fragment(input_fragment).input_row());
  std::vector<bdd::node_handle> fn(static_cast<std::size_t>(total),
                                   m.constant(false));
  fn[static_cast<std::size_t>(input_wire)] = m.constant(true);

  stitched_extraction_result result;
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.fixpoint_iterations;
    for (int w = 0; w < total; ++w) {
      if (w == input_wire) continue;
      bdd::node_handle value = fn[static_cast<std::size_t>(w)];
      for (const link& l : links[static_cast<std::size_t>(w)])
        value = m.apply_or(
            value,
            m.apply_and(fn[static_cast<std::size_t>(l.other)], l.fn));
      if (value != fn[static_cast<std::size_t>(w)]) {
        fn[static_cast<std::size_t>(w)] = value;
        changed = true;
      }
    }
  }

  m.collect_garbage(fn);

  result.row_function.resize(static_cast<std::size_t>(fragment_count));
  result.column_function.resize(static_cast<std::size_t>(fragment_count));
  for (int f = 0; f < fragment_count; ++f) {
    const xbar::crossbar& fragment = design.fragment(f);
    auto& rows = result.row_function[static_cast<std::size_t>(f)];
    auto& cols = result.column_function[static_cast<std::size_t>(f)];
    rows.reserve(static_cast<std::size_t>(fragment.rows()));
    cols.reserve(static_cast<std::size_t>(fragment.columns()));
    for (int r = 0; r < fragment.rows(); ++r)
      rows.push_back(fn[static_cast<std::size_t>(of_row(f, r))]);
    for (int c = 0; c < fragment.columns(); ++c)
      cols.push_back(fn[static_cast<std::size_t>(of_column(f, c))]);
  }

  if (metrics_enabled()) {
    global_metrics().counter("verify.extractions").increment();
    global_metrics()
        .histogram("verify.fixpoint_iterations",
                   {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})
        .observe(static_cast<double>(result.fixpoint_iterations));
  }
  return result;
}

equivalence_report check_symbolic_equivalence(
    const xbar::crossbar& design, const bdd::manager& spec,
    const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& names) {
  const trace_span span("check_symbolic_equivalence", "verify");
  check(roots.size() == names.size(),
        "check_symbolic_equivalence: roots/names size mismatch");

  // The scratch manager must cover both the spec's support and whatever the
  // devices are programmed with (a corrupted design may reference extra
  // variables; those must extract, not crash, so the checker can flag them).
  int variables = spec.variable_count();
  for (int r = 0; r < design.rows(); ++r)
    for (int c = 0; c < design.columns(); ++c)
      variables = std::max(variables, design.at(r, c).variable + 1);
  bdd::manager scratch(variables);

  equivalence_report report;
  const bool extractable =
      design.input_row() >= 0 && design.input_row() < design.rows();
  extraction_result extracted;
  if (extractable) {
    extracted = extract_sneak_functions(design, scratch);
    report.fixpoint_iterations = extracted.fixpoint_iterations;
    report.extraction_nodes = scratch.node_table_size();
  }

  for (std::size_t i = 0; i < roots.size(); ++i) {
    output_equivalence out;
    out.name = names[i];

    // Resolve the output: a sensed wordline, or a declared constant.
    bdd::node_handle got = bdd::false_handle;
    for (const xbar::output_port& port : design.outputs()) {
      if (port.name == out.name) {
        if (!extractable || port.row < 0 || port.row >= design.rows()) break;
        got = extracted.row_function[static_cast<std::size_t>(port.row)];
        out.found = true;
        break;
      }
    }
    if (!out.found) {
      for (const auto& [name, value] : design.constant_outputs()) {
        if (name == out.name) {
          got = scratch.constant(value);
          out.found = true;
          break;
        }
      }
    }

    if (out.found) {
      const bdd::node_handle want = bdd::transfer(spec, roots[i], scratch);
      out.equivalent = scratch.same_function(got, want);
      if (!out.equivalent) {
        const bdd::node_handle diff = scratch.apply_xor(got, want);
        if (const auto witness = bdd::find_satisfying(scratch, diff)) {
          // Report only the spec's variables; scratch-only extras are
          // design corruption flagged separately.
          out.counterexample.assign(
              witness->begin(),
              witness->begin() + spec.variable_count());
        }
      }
    }
    report.equivalent = report.equivalent && out.found && out.equivalent;
    report.outputs.push_back(std::move(out));
  }
  return report;
}

equivalence_report check_partitioned_equivalence(
    const xbar::partitioned_design& design, const bdd::manager& spec,
    const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& names) {
  const trace_span span("check_partitioned_equivalence", "verify");
  check(roots.size() == names.size(),
        "check_partitioned_equivalence: roots/names size mismatch");

  int variables = spec.variable_count();
  for (const xbar::crossbar& fragment : design.fragments())
    for (int r = 0; r < fragment.rows(); ++r)
      for (int c = 0; c < fragment.columns(); ++c)
        variables = std::max(variables, fragment.at(r, c).variable + 1);
  bdd::manager scratch(variables);

  equivalence_report report;
  const bool extractable = design.input_array() >= 0;
  stitched_extraction_result extracted;
  if (extractable) {
    extracted = extract_stitched_functions(design, scratch);
    report.fixpoint_iterations = extracted.fixpoint_iterations;
    report.extraction_nodes = scratch.node_table_size();
  }

  for (std::size_t i = 0; i < roots.size(); ++i) {
    output_equivalence out;
    out.name = names[i];

    // Resolve the output on whichever fragment senses it (sensed wordline
    // first, then declared constants).
    bdd::node_handle got = bdd::false_handle;
    for (int f = 0; f < design.array_count() && !out.found; ++f) {
      const xbar::crossbar& fragment = design.fragment(f);
      for (const xbar::output_port& port : fragment.outputs()) {
        if (port.name != out.name) continue;
        if (extractable && port.row >= 0 && port.row < fragment.rows()) {
          got = extracted.row_function[static_cast<std::size_t>(f)]
                                      [static_cast<std::size_t>(port.row)];
          out.found = true;
        }
        break;
      }
    }
    if (!out.found) {
      for (int f = 0; f < design.array_count() && !out.found; ++f)
        for (const auto& [name, value] :
             design.fragment(f).constant_outputs()) {
          if (name == out.name) {
            got = scratch.constant(value);
            out.found = true;
            break;
          }
        }
    }

    if (out.found) {
      const bdd::node_handle want = bdd::transfer(spec, roots[i], scratch);
      out.equivalent = scratch.same_function(got, want);
      if (!out.equivalent) {
        const bdd::node_handle diff = scratch.apply_xor(got, want);
        if (const auto witness = bdd::find_satisfying(scratch, diff)) {
          out.counterexample.assign(
              witness->begin(), witness->begin() + spec.variable_count());
        }
      }
    }
    report.equivalent = report.equivalent && out.found && out.equivalent;
    report.outputs.push_back(std::move(out));
  }
  return report;
}

}  // namespace compact::verify
