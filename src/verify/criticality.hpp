// Symbolic fault-criticality analysis (the FLTxxx check family's engine).
//
// For every programmed junction, decide whether a stuck-open fault (the
// device permanently blocks) or a stuck-closed fault (it permanently
// conducts) can flip any output — not by enumerating input vectors like
// xbar/faults, but symbolically: re-run the sneak-path reachability
// fixpoint (verify/extract) on the faulted design inside one shared scratch
// manager and compare each output's reachability function against the
// fault-free baseline by canonical handle equality. A junction neither
// fault can expose is provably masked over all 2^n assignments.
//
// The result is the machine-readable criticality map consumed by
// `lint --criticality-json`: a per-junction single-point-of-failure ranking
// that defect-aware synthesis (ROADMAP item 5) can feed back into mapping.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "xbar/crossbar.hpp"
#include "xbar/partitioned.hpp"

namespace compact::verify {

struct criticality_options {
  /// Hard budget on analyzed faults (a junction contributes up to two);
  /// 0 = analyze every junction. When the budget ends the scan early the
  /// report is marked truncated — junctions past the cutoff are simply
  /// absent, never silently reported as non-critical.
  int max_faults = 0;
  /// Also probe stuck-closed defects at *unprogrammed* (off) crosspoints —
  /// the half-selected junctions a fabrication defect could short into a
  /// sneak path. Off by default: it multiplies the fault count by the grid
  /// area instead of the device count.
  bool include_off_junctions = false;
};

struct junction_criticality {
  int array = 0;  // fragment index (0 for single-array designs)
  int row = 0;
  int column = 0;
  xbar::literal_kind kind = xbar::literal_kind::off;
  int variable = -1;
  bool stuck_open_critical = false;
  bool stuck_closed_critical = false;
  /// Indices into criticality_report::outputs whose function changes under
  /// either fault (union, sorted).
  std::vector<int> affected_outputs;
  [[nodiscard]] bool critical() const {
    return stuck_open_critical || stuck_closed_critical;
  }
};

struct criticality_report {
  /// Sensed output names in design order (the index space of
  /// junction_criticality::affected_outputs).
  std::vector<std::string> outputs;
  /// One entry per analyzed junction, row-major per fragment. Ranked by
  /// affected-output count descending (ties broken by position) so the
  /// worst single points of failure lead the map.
  std::vector<junction_criticality> junctions;
  int junction_count = 0;   // junctions analyzed
  int critical_count = 0;   // junctions critical under either fault
  int faults_analyzed = 0;  // fixpoint re-extractions actually run
  bool truncated = false;   // max_faults budget ended the scan early
  int fixpoint_iterations = 0;  // summed over baseline + fault extractions
};

/// Analyze every junction of a single-array design. `variable_count` sizes
/// the scratch manager (pass the spec's count; device variables beyond it
/// are accommodated automatically).
[[nodiscard]] criticality_report analyze_criticality(
    const xbar::crossbar& design, int variable_count,
    const criticality_options& options = {});

/// Same scan over a partitioned design's stitched conduction graph: faults
/// are injected per fragment, observability is judged on the stitched
/// reachability functions.
[[nodiscard]] criticality_report analyze_criticality(
    const xbar::partitioned_design& design, int variable_count,
    const criticality_options& options = {});

/// The `--criticality-json` artifact: one JSON object with the summary, the
/// output name table and the ranked junction map (schema documented in
/// docs/static_analysis.md).
void write_criticality_json(const criticality_report& report,
                            std::ostream& os);

}  // namespace compact::verify
