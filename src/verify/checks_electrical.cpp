// Electrical-integrity checks (ELCxxx): static resistive bounds over the
// conduction graph (verify/electrical). Opt-in through
// artifacts::electrical — the bounds are meaningful lint output, not
// structural invariants, so plain lint runs stay quiet.
//
//   ELC001  static-sensing-margin   per-output OFF/ON margin verdict
//   ELC002  electrical-bounds       per-design bound summary (companion)
//   ELC003  sneak-enumeration-cap   bounded DFS hit its budget (companion)
#include <cstdio>
#include <string>

#include "verify/checks.hpp"
#include "verify/electrical.hpp"

namespace compact::verify {
namespace {

std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.4g", value);
  return buffer;
}

std::string where(const output_margin& m, bool partitioned) {
  std::string text = "output '" + m.name + "' (row " + std::to_string(m.row);
  if (partitioned) text += " of array " + std::to_string(m.array);
  return text + ")";
}

// ELC001 (+ ELC002/ELC003 companions) — run the static electrical engine
// once and report every output whose bounds do not separate with slack.
void check_static_margin(const artifacts& a, report& out) {
  const electrical_options& options = *a.electrical;
  electrical_report er = a.partitioned != nullptr
                             ? analyze_electrical(*a.partitioned, options)
                             : analyze_electrical(*a.design, options);
  const bool partitioned = a.partitioned != nullptr;
  const double sense_level = options.model.threshold * options.model.v_in;

  int sensed = 0;
  for (const output_margin& m : er.outputs) {
    if (m.min_on_devices < 0) continue;  // dead output; XBR/EQV own it
    ++sensed;
    if (m.sneak_truncated) {
      diagnostic d;
      d.check_id = "ELC003";
      d.level = severity::note;
      d.message = "sneak-path enumeration for " + where(m, partitioned) +
                  " stopped at " + std::to_string(m.sneak_paths) +
                  " paths; the parallel-leakage bound falls back to the "
                  "output row's junction degree (" +
                  std::to_string(m.parallel_paths) + ")";
      d.anchors = {output_entity(m.name)};
      out.add(std::move(d));
    }
    if (m.safe) continue;
    diagnostic d;
    d.check_id = "ELC001";
    // A ratio below 1.0 means the leakage bound conducts at least as well
    // as the worst ON path: no sensing threshold can work.
    d.level = m.margin_ratio < 1.0 ? severity::error : severity::warning;
    const bool ratio_ok = m.margin_ratio >= options.margin_threshold;
    d.message =
        where(m, partitioned) + " has no statically provable sensing margin: "
        "worst ON path <= " + std::to_string(m.worst_on_devices) +
        " devices (" + fmt(m.worst_on_resistance) + " ohm), OFF leakage >= " +
        fmt(m.best_off_resistance) + " ohm over <= " +
        std::to_string(m.parallel_paths) + " parallel paths, ratio " +
        fmt(m.margin_ratio) + (ratio_ok ? " >= " : " < ") + "threshold " +
        fmt(options.margin_threshold) + "; bounded voltages [" +
        fmt(m.max_low_voltage) + ", " + fmt(m.min_high_voltage) +
        "] V " + (ratio_ok ? "fail to straddle" : "against") + " the " +
        fmt(sense_level) + " V sense level";
    d.fix =
        "shrink the array (tighter row/column budgets or partitioning) or "
        "raise the device R_off/R_on ratio";
    d.anchors = {output_entity(m.name), row_entity(m.row)};
    out.add(std::move(d));
  }

  if (sensed > 0) {
    diagnostic d;
    d.check_id = "ELC002";
    d.level = severity::note;
    d.message = "static electrical bounds over " + std::to_string(sensed) +
                " sensed output(s): minimum OFF/ON margin ratio " +
                fmt(er.min_margin_ratio) + " (threshold " +
                fmt(options.margin_threshold) + "), verdict " +
                (er.safe ? "safe" : "not provably safe");
    out.add(std::move(d));
  }

  if (a.cache != nullptr) a.cache->electrical = std::move(er);
}

}  // namespace

std::vector<check_descriptor> electrical_checks() {
  std::vector<check_descriptor> checks;
  check_descriptor c;

  c.id = "ELC001";
  c.name = "static-sensing-margin";
  c.description =
      "Every sensed output's worst-case ON-path resistance must clear its "
      "best-case OFF-leakage bound by the configured margin ratio";
  c.default_severity = severity::warning;
  c.needs_electrical = true;
  c.run = check_static_margin;
  checks.push_back(c);

  c = {};
  c.id = "ELC002";
  c.name = "electrical-bounds";
  c.description =
      "Per-design summary of the static ON/OFF resistance bounds and the "
      "margin verdict";
  c.default_severity = severity::note;
  c.needs_electrical = true;
  c.run = nullptr;  // companion: ELC001's engine pass emits it
  checks.push_back(c);

  c = {};
  c.id = "ELC003";
  c.name = "sneak-enumeration-cap";
  c.description =
      "The bounded sneak-path DFS exhausted its budget; the leakage bound "
      "uses the junction-degree fallback";
  c.default_severity = severity::note;
  c.needs_electrical = true;
  c.run = nullptr;  // companion
  checks.push_back(c);

  return checks;
}

}  // namespace compact::verify
