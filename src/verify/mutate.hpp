// Mutation-kill self-test for the static analyzer.
//
// The analyzer's checks are only trustworthy if they actually fire on
// broken designs. This harness takes a known-good set of artifacts,
// applies single-point mutations (flip a label, drop a bridge, flip or
// retarget a literal, drop a device, drop an inter-array connection,
// degrade the device R_on corner), re-runs the analyzer on the mutated
// copy and verifies every mutation is "killed" — at least one check
// reports an error that the pristine design does not trigger.
//
// Mutations apply to single-array designs *and* to format-v2 partitioned
// designs: device mutations carry an optional fragment index, and the
// connection_drop kind severs one inter-array bridge so the PARxxx family
// is mutation-kill-covered too. The electrical mutator (ron_degrade)
// corrupts the device corner the ELCxxx checks bound against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/labeling.hpp"
#include "verify/analyzer.hpp"
#include "verify/electrical.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/partitioned.hpp"

namespace compact::verify {

enum class mutation_kind : std::uint8_t {
  label_flip,        // change one node's V/H/VH label
  bridge_drop,       // turn one always-on bridge off
  literal_flip,      // swap one device's positive/negative polarity
  literal_retarget,  // point one device at a different input variable
  device_drop,       // turn one literal device off
  connection_drop,   // sever one inter-array bridge (partitioned designs)
  ron_degrade,       // collapse the R_off/R_on corner (electrical checks)
};

[[nodiscard]] const char* mutation_kind_name(mutation_kind kind);

struct mutation {
  mutation_kind kind = mutation_kind::label_flip;
  int node = -1;    // label_flip: target graph node
  int row = -1;     // device mutations: junction row
  int column = -1;  // device mutations: junction column
  /// Device mutations: fragment index of a partitioned design; -1 targets
  /// the single-array artifact.
  int array = -1;
  /// connection_drop: index into partitioned_design::connections().
  int connection = -1;
  [[nodiscard]] std::string describe() const;
};

/// All applicable single-point mutations for `a`, capped at
/// `limit_per_kind` per kind by deterministic stride sampling (no RNG, so
/// runs are reproducible). label_flip needs a labeling; device mutations
/// need a design or a partitioned design; connection_drop needs bridges;
/// ron_degrade needs the electrical options.
[[nodiscard]] std::vector<mutation> enumerate_mutations(
    const artifacts& a, std::size_t limit_per_kind);

/// Deep copies of every mutable artifact, so one mutation can corrupt any
/// of them while the originals stay pristine.
struct mutable_artifacts {
  xbar::crossbar design{1, 1};
  core::labeling labels;
  xbar::partitioned_design partitioned;
  electrical_options electrical;
};

/// Apply `m` to `out` (which must hold copies of `base`'s artifacts).
/// Returns false when the mutation does not apply (e.g. no such device).
bool apply_mutation(const artifacts& base, const mutation& m,
                    mutable_artifacts& out);

struct self_test_outcome {
  mutation m;
  bool killed = false;
  std::vector<std::string> triggered_checks;  // check IDs that fired errors
};

struct self_test_result {
  std::size_t total = 0;
  std::size_t killed = 0;
  std::vector<self_test_outcome> outcomes;
  [[nodiscard]] bool all_killed() const { return killed == total; }
};

/// Run the full mutate → analyze → expect-error loop. `a` should lint
/// clean; any error its pristine form already triggers is excluded from
/// kill credit so a noisy baseline cannot fake coverage.
[[nodiscard]] self_test_result run_self_test(
    const artifacts& a, const analyzer_options& options = {},
    std::size_t limit_per_kind = 4);

}  // namespace compact::verify
