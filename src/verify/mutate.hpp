// Mutation-kill self-test for the static analyzer.
//
// The analyzer's checks are only trustworthy if they actually fire on
// broken designs. This harness takes a known-good set of artifacts,
// applies single-point mutations (flip a label, drop a bridge, flip or
// retarget a literal, drop a device), re-runs the analyzer on the mutated
// copy and verifies every mutation is "killed" — at least one check
// reports an error that the pristine design does not trigger.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/labeling.hpp"
#include "verify/analyzer.hpp"
#include "xbar/crossbar.hpp"

namespace compact::verify {

enum class mutation_kind : std::uint8_t {
  label_flip,        // change one node's V/H/VH label
  bridge_drop,       // turn one always-on bridge off
  literal_flip,      // swap one device's positive/negative polarity
  literal_retarget,  // point one device at a different input variable
  device_drop,       // turn one literal device off
};

[[nodiscard]] const char* mutation_kind_name(mutation_kind kind);

struct mutation {
  mutation_kind kind = mutation_kind::label_flip;
  int node = -1;    // label_flip: target graph node
  int row = -1;     // device mutations: junction row
  int column = -1;  // device mutations: junction column
  [[nodiscard]] std::string describe() const;
};

/// All applicable single-point mutations for `a`, capped at
/// `limit_per_kind` per kind by deterministic stride sampling (no RNG, so
/// runs are reproducible). label_flip needs a labeling; the device
/// mutations need a design.
[[nodiscard]] std::vector<mutation> enumerate_mutations(
    const artifacts& a, std::size_t limit_per_kind);

/// Apply `m` to copies of the mutable artifacts. Returns false when the
/// mutation does not apply (e.g. no such device). `design`/`labels` must
/// start as copies of the originals.
bool apply_mutation(const artifacts& base, const mutation& m,
                    xbar::crossbar& design, core::labeling& labels);

struct self_test_outcome {
  mutation m;
  bool killed = false;
  std::vector<std::string> triggered_checks;  // check IDs that fired errors
};

struct self_test_result {
  std::size_t total = 0;
  std::size_t killed = 0;
  std::vector<self_test_outcome> outcomes;
  [[nodiscard]] bool all_killed() const { return killed == total; }
};

/// Run the full mutate → analyze → expect-error loop. `a` should lint
/// clean; any error its pristine form already triggers is excluded from
/// kill credit so a noisy baseline cannot fake coverage.
[[nodiscard]] self_test_result run_self_test(
    const artifacts& a, const analyzer_options& options = {},
    std::size_t limit_per_kind = 4);

}  // namespace compact::verify
