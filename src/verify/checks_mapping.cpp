// Mapping-consistency checks (MAPxxx): the crossbar must be exactly what
// the (graph, labeling, mapping) triple dictates — every node on its
// assigned nanowires, every edge's memristor programmed with its literal,
// every VH node bridged. These are the checks that catch silent corruption
// between the mapper and the final artifact (and the mutation harness's
// literal-flip / bridge-drop / device-drop seeds).
#include <string>
#include <vector>

#include "verify/checks.hpp"

namespace compact::verify {
namespace {

using core::vh_label;
using xbar::literal_kind;

std::string literal_text(const xbar::device& d) {
  switch (d.kind) {
    case literal_kind::off:
      return "off";
    case literal_kind::on:
      return "on";
    case literal_kind::positive:
      return "+x" + std::to_string(d.variable);
    case literal_kind::negative:
      return "-x" + std::to_string(d.variable);
  }
  return "?";
}

bool consistent_sizes(const artifacts& a) {
  const std::size_t n = a.graph->g.node_count();
  return a.labels->label_of.size() == n && a.mapping->row_of.size() == n &&
         a.mapping->column_of.size() == n;
}

// MAP001 — node assignment: wordline/bitline indices must exist exactly for
// the labels that demand them, stay in range, never collide, and the ports
// (input row, output rows) must land where the graph says.
void check_assignment(const artifacts& a, report& out) {
  if (!consistent_sizes(a)) {
    diagnostic d;
    d.check_id = "MAP001";
    d.level = severity::error;
    d.message = "mapping arrays are not parallel to the graph (" +
                std::to_string(a.mapping->row_of.size()) + " rows / " +
                std::to_string(a.mapping->column_of.size()) +
                " columns assigned for " +
                std::to_string(a.graph->g.node_count()) + " nodes)";
    d.anchors = {entity{}};
    out.add(std::move(d));
    return;
  }
  const core::mapping_result& map = *a.mapping;
  const xbar::crossbar& x = *a.design;
  const auto n = static_cast<graph::node_id>(a.graph->g.node_count());

  std::vector<int> row_owner(static_cast<std::size_t>(x.rows()), -1);
  std::vector<int> column_owner(static_cast<std::size_t>(x.columns()), -1);
  for (graph::node_id v = 0; v < n; ++v) {
    const int row = map.row_of[static_cast<std::size_t>(v)];
    const int column = map.column_of[static_cast<std::size_t>(v)];
    const bool wants_row = a.labels->has_row(v);
    const bool wants_column = a.labels->has_column(v);

    auto emit = [&](std::string message, std::string fix) {
      diagnostic d;
      d.check_id = "MAP001";
      d.level = severity::error;
      d.message = std::move(message);
      d.fix = std::move(fix);
      d.anchors = {node_entity(v)};
      out.add(std::move(d));
    };

    if (wants_row != (row >= 0))
      emit("node " + std::to_string(v) +
               (wants_row ? " is wordline-labeled but has no assigned row"
                          : " is V-labeled but is assigned row " +
                                std::to_string(row)),
           "node " + std::to_string(v) +
               " must be assigned a wordline exactly when labeled H or VH");
    if (wants_column != (column >= 0))
      emit("node " + std::to_string(v) +
               (wants_column
                    ? " is bitline-labeled but has no assigned column"
                    : " is H-labeled but is assigned column " +
                          std::to_string(column)),
           "node " + std::to_string(v) +
               " must be assigned a bitline exactly when labeled V or VH");
    if (row >= x.rows())
      emit("node " + std::to_string(v) + " is assigned row " +
               std::to_string(row) + ", outside the " +
               std::to_string(x.rows()) + "-row crossbar",
           {});
    else if (row >= 0) {
      if (row_owner[static_cast<std::size_t>(row)] >= 0)
        emit("nodes " +
                 std::to_string(row_owner[static_cast<std::size_t>(row)]) +
                 " and " + std::to_string(v) + " share row " +
                 std::to_string(row),
             {});
      row_owner[static_cast<std::size_t>(row)] = v;
    }
    if (column >= x.columns())
      emit("node " + std::to_string(v) + " is assigned column " +
               std::to_string(column) + ", outside the " +
               std::to_string(x.columns()) + "-column crossbar",
           {});
    else if (column >= 0) {
      if (column_owner[static_cast<std::size_t>(column)] >= 0)
        emit("nodes " +
                 std::to_string(
                     column_owner[static_cast<std::size_t>(column)]) +
                 " and " + std::to_string(v) + " share column " +
                 std::to_string(column),
             {});
      column_owner[static_cast<std::size_t>(column)] = v;
    }
  }

  // Ports: the terminal drives the input row, each output binding senses
  // its node's row under its name.
  if (a.graph->terminal_node >= 0) {
    const int terminal_row =
        map.row_of[static_cast<std::size_t>(a.graph->terminal_node)];
    if (terminal_row != x.input_row()) {
      diagnostic d;
      d.check_id = "MAP001";
      d.level = severity::error;
      d.message = "the '1' terminal (node " +
                  std::to_string(a.graph->terminal_node) + ") maps to row " +
                  std::to_string(terminal_row) +
                  " but the input wordline is row " +
                  std::to_string(x.input_row());
      d.anchors = {node_entity(a.graph->terminal_node),
                   row_entity(x.input_row())};
      out.add(std::move(d));
    }
  }
  for (const core::bdd_graph::output_binding& o : a.graph->outputs) {
    const int want_row = map.row_of[static_cast<std::size_t>(o.node)];
    bool found = false;
    for (const xbar::output_port& port : x.outputs())
      if (port.name == o.name && port.row == want_row) found = true;
    if (found) continue;
    diagnostic d;
    d.check_id = "MAP001";
    d.level = severity::error;
    d.message = "output '" + o.name + "' should sense row " +
                std::to_string(want_row) + " (node " +
                std::to_string(o.node) + ") but no such port exists";
    d.fix = "re-bind the output ports from the graph's output nodes";
    d.anchors = {output_entity(o.name), node_entity(o.node)};
    out.add(std::move(d));
  }
}

// MAP002/MAP003 — junction programming: rebuild the expected device grid
// from (graph, labeling, mapping) and diff it cell by cell against the
// design. Literal mismatches report as MAP002, missing/extra VH bridges as
// MAP003.
void check_junctions(const artifacts& a, report& out) {
  if (!consistent_sizes(a)) return;  // MAP001 reports the size mismatch
  const core::mapping_result& map = *a.mapping;
  const xbar::crossbar& x = *a.design;
  const auto n = static_cast<graph::node_id>(a.graph->g.node_count());

  // Out-of-range assignments make the expected grid unbuildable; MAP001
  // owns those findings.
  for (graph::node_id v = 0; v < n; ++v)
    if (map.row_of[static_cast<std::size_t>(v)] >= x.rows() ||
        map.column_of[static_cast<std::size_t>(v)] >= x.columns())
      return;

  std::vector<xbar::device> expected(
      static_cast<std::size_t>(x.rows()) *
      static_cast<std::size_t>(x.columns()));
  std::vector<bool> is_bridge(expected.size(), false);
  auto cell = [&](int r, int c) -> std::size_t {
    return static_cast<std::size_t>(r) *
               static_cast<std::size_t>(x.columns()) +
           static_cast<std::size_t>(c);
  };

  for (graph::node_id v = 0; v < n; ++v) {
    if (a.labels->label_of[static_cast<std::size_t>(v)] != vh_label::vh)
      continue;
    const int r = map.row_of[static_cast<std::size_t>(v)];
    const int c = map.column_of[static_cast<std::size_t>(v)];
    if (r < 0 || c < 0) continue;  // MAP001 territory
    expected[cell(r, c)] = {literal_kind::on, -1};
    is_bridge[cell(r, c)] = true;
  }
  const std::vector<graph::edge>& edges = a.graph->g.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const graph::node_id u = edges[e].u;
    const graph::node_id v = edges[e].v;
    const core::edge_literal lit = a.graph->literal_of_edge[e];
    int r = -1;
    int c = -1;
    if (a.labels->has_row(u) && a.labels->has_column(v)) {
      r = map.row_of[static_cast<std::size_t>(u)];
      c = map.column_of[static_cast<std::size_t>(v)];
    } else if (a.labels->has_row(v) && a.labels->has_column(u)) {
      r = map.row_of[static_cast<std::size_t>(v)];
      c = map.column_of[static_cast<std::size_t>(u)];
    }
    if (r < 0 || c < 0) continue;  // infeasible edge; LBL001 territory
    expected[cell(r, c)] = {lit.positive ? literal_kind::positive
                                         : literal_kind::negative,
                            lit.variable};
  }

  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.columns(); ++c) {
      const xbar::device& want = expected[cell(r, c)];
      const xbar::device& got = x.at(r, c);
      if (want.kind == got.kind && (want.kind != literal_kind::positive &&
                                        want.kind != literal_kind::negative
                                    ? true
                                    : want.variable == got.variable))
        continue;
      const bool bridge_cell =
          is_bridge[cell(r, c)] || got.kind == literal_kind::on;
      diagnostic d;
      d.check_id = bridge_cell ? "MAP003" : "MAP002";
      d.level = severity::error;
      if (want.kind == literal_kind::off) {
        d.message = "junction (" + std::to_string(r) + ", " +
                    std::to_string(c) + ") is programmed " +
                    literal_text(got) +
                    " but no graph edge or bridge maps there";
        d.fix = "leave the junction unprogrammed";
      } else if (got.kind == literal_kind::off) {
        d.message = "junction (" + std::to_string(r) + ", " +
                    std::to_string(c) + ") should be programmed " +
                    literal_text(want) +
                    (is_bridge[cell(r, c)]
                         ? " (the VH bridge joining this row and column)"
                         : " (a mapped graph edge)") +
                    " but is off";
        d.fix = "program the junction with " + literal_text(want);
      } else {
        d.message = "junction (" + std::to_string(r) + ", " +
                    std::to_string(c) + ") is programmed " +
                    literal_text(got) + " but the mapping dictates " +
                    literal_text(want);
        d.fix = "program the junction with " + literal_text(want);
      }
      d.anchors = {junction_entity(r, c)};
      out.add(std::move(d));
    }
  }
}

}  // namespace

std::vector<check_descriptor> mapping_checks() {
  std::vector<check_descriptor> checks;
  check_descriptor c;

  c.id = "MAP001";
  c.name = "node-assignment";
  c.description =
      "Every node must occupy exactly the nanowires its label dictates";
  c.default_severity = severity::error;
  c.needs_mapping = true;
  c.run = check_assignment;
  checks.push_back(c);

  c = {};
  c.id = "MAP002";
  c.name = "junction-programming";
  c.description =
      "Every junction must carry exactly its mapped edge literal";
  c.default_severity = severity::error;
  c.needs_mapping = true;
  c.run = check_junctions;
  checks.push_back(c);

  c = {};
  c.id = "MAP003";
  c.name = "vh-bridge";
  c.description =
      "Every VH node's row/column pair must be joined by one always-on "
      "bridge";
  c.default_severity = severity::error;
  c.needs_mapping = true;
  c.run = nullptr;  // companion: MAP002's grid diff reports MAP003 findings
  checks.push_back(c);

  return checks;
}

}  // namespace compact::verify
