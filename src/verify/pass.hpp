// Pipeline integration: the optional "verify" pass that runs the static
// analyzer over a synthesis context right after mapping.
//
// Core's pipeline only holds a function-pointer slot for this pass (see
// core/pipeline.hpp); linking the verify library and calling
// install_pipeline_pass() — done automatically by a static initializer in
// pass.cpp — fills it. synthesis_options::verify_design then turns the
// pass on per run.
#pragma once

#include "core/pipeline.hpp"
#include "verify/checks.hpp"

namespace compact::verify {

/// Non-owning view of a synthesis context's artifacts for the analyzer.
/// The context must outlive the returned struct and have a mapped design.
[[nodiscard]] artifacts make_artifacts(const core::synthesis_context& ctx);

/// Install the verify pass into core's pipeline slot. Idempotent; returns
/// true so it can seed a static initializer.
bool install_pipeline_pass();

}  // namespace compact::verify
