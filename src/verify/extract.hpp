// Symbolic sneak-path extraction (the heart of compact-verify).
//
// `xbar::validate_against_bdd` decides validity by *enumerating* input
// assignments — exact up to ~20 variables, sampled beyond. This module
// replaces enumeration with a symbolic computation: the set of wordlines
// reachable from the input wordline is expressed as one BDD per nanowire
// over the input variables, computed as the least fixpoint of
//
//   col[c]  =  OR_r ( row[r] AND device(r, c) )
//   row[r]  =  OR_c ( col[c] AND device(r, c) )      (input row pinned to 1)
//
// which mirrors the BFS in xbar/evaluate.cpp but over all 2^n assignments
// at once. The extracted function of an output wordline is then compared
// against the spec root by canonical ROBDD handle equality — an exact
// equivalence check whose cost scales with BDD sizes, not with 2^n.
#pragma once

#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/partitioned.hpp"

namespace compact::verify {

/// The symbolic device function: false for off, true for on, x / !x for
/// literal devices. Throws compact::error when the device's variable is out
/// of range for `m`.
[[nodiscard]] bdd::node_handle device_function(const xbar::device& d,
                                               bdd::manager& m);

struct extraction_result {
  /// row_function[r] is true under exactly the assignments that make
  /// wordline r reachable from the input wordline.
  std::vector<bdd::node_handle> row_function;
  /// Same for bitlines (exposed for diagnostics; a bitline whose function
  /// is constant false is electrically dead).
  std::vector<bdd::node_handle> column_function;
  int fixpoint_iterations = 0;
};

/// Extract every nanowire's reachability function into `m`. `m` must
/// support every variable programmed on the design's devices.
[[nodiscard]] extraction_result extract_sneak_functions(
    const xbar::crossbar& design, bdd::manager& m);

/// Stitched extraction over a partitioned design: the same fixpoint, but
/// over the union conduction graph of every fragment where each bridge is a
/// constant-true link between its two wires. Indexing is per fragment.
struct stitched_extraction_result {
  /// row_function[f][r]: reachability of fragment f's wordline r from the
  /// input net.
  std::vector<std::vector<bdd::node_handle>> row_function;
  std::vector<std::vector<bdd::node_handle>> column_function;
  int fixpoint_iterations = 0;
};

/// Extract every fragment's nanowire reachability functions into `m`.
/// Exactly one fragment must declare the input wordline.
[[nodiscard]] stitched_extraction_result extract_stitched_functions(
    const xbar::partitioned_design& design, bdd::manager& m);

// --- equivalence against a specification -----------------------------------

struct output_equivalence {
  std::string name;
  bool found = false;       // design exposes this output at all
  bool equivalent = false;  // extracted function == spec function
  /// A concrete disagreeing assignment (indexed by variable) when
  /// found && !equivalent; empty otherwise.
  std::vector<bool> counterexample;
};

struct equivalence_report {
  bool equivalent = true;  // all spec outputs found and equivalent
  std::vector<output_equivalence> outputs;  // parallel to the spec roots
  int fixpoint_iterations = 0;
  /// Scratch-manager node table size after extraction — the symbolic
  /// analogue of validation_report::checked_assignments.
  std::size_t extraction_nodes = 0;
};

/// Check the design's sneak-path functions against the spec BDD roots
/// (named by `names`, parallel) without evaluating a single assignment.
/// Both the design's device literals and the spec roots must speak the same
/// variable numbering — run this before any remap_variables, exactly like
/// xbar::validate_against_bdd.
[[nodiscard]] equivalence_report check_symbolic_equivalence(
    const xbar::crossbar& design, const bdd::manager& spec,
    const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& names);

/// Same contract for a partitioned design: each spec output is resolved on
/// whichever fragment senses it, with reachability computed over the
/// stitched conduction graph.
[[nodiscard]] equivalence_report check_partitioned_equivalence(
    const xbar::partitioned_design& design, const bdd::manager& spec,
    const std::vector<bdd::node_handle>& roots,
    const std::vector<std::string>& names);

}  // namespace compact::verify
