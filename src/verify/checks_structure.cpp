// Crossbar-structure checks (XBRxxx): purely local properties of the
// programmed device grid — no graph, labeling or spec required, so these
// run even on a bare .xbar file.
#include <string>
#include <vector>

#include "verify/checks.hpp"

namespace compact::verify {
namespace {

using xbar::literal_kind;

int devices_in_row(const xbar::crossbar& x, int r) {
  int count = 0;
  for (int c = 0; c < x.columns(); ++c)
    if (x.at(r, c).kind != literal_kind::off) ++count;
  return count;
}

int devices_in_column(const xbar::crossbar& x, int c) {
  int count = 0;
  for (int r = 0; r < x.rows(); ++r)
    if (x.at(r, c).kind != literal_kind::off) ++count;
  return count;
}

bool row_is_port(const xbar::crossbar& x, int r) {
  if (x.input_row() == r) return true;
  for (const xbar::output_port& o : x.outputs())
    if (o.row == r) return true;
  return false;
}

// XBR001 — a wordline with no devices at all can never carry flow; if it is
// not even a port it is dead area.
void check_dead_rows(const artifacts& a, report& out) {
  const xbar::crossbar& x = *a.design;
  for (int r = 0; r < x.rows(); ++r) {
    const int devices = devices_in_row(x, r);
    if (devices > 0) continue;
    const bool port = row_is_port(x, r);
    diagnostic d;
    d.check_id = "XBR001";
    d.level = port ? severity::error : severity::warning;
    d.message = port ? "row " + std::to_string(r) +
                           " is a port wordline but has no devices; its "
                           "output is constant 0"
                     : "row " + std::to_string(r) +
                           " has no devices and is not a port; it is dead "
                           "area";
    d.fix = port ? "connect row " + std::to_string(r) +
                       " or model the output as a constant"
                 : "drop row " + std::to_string(r) + " from the design";
    d.anchors = {row_entity(r)};
    out.add(std::move(d));
  }
}

// XBR002 — a bitline needs at least two junctions to conduct between two
// wordlines. Zero devices is dead area (warning); a single junction is a
// dangling memristor that can never participate in a path. A lone always-on
// bridge merely extends its wordline, so that case is advisory.
void check_dead_columns(const artifacts& a, report& out) {
  const xbar::crossbar& x = *a.design;
  for (int c = 0; c < x.columns(); ++c) {
    const int devices = devices_in_column(x, c);
    if (devices >= 2) continue;
    diagnostic d;
    d.check_id = "XBR002";
    d.anchors = {column_entity(c)};
    if (devices == 0) {
      d.level = severity::warning;
      d.message =
          "column " + std::to_string(c) + " has no devices; it is dead area";
      d.fix = "drop column " + std::to_string(c) + " from the design";
    } else {
      // Find the lone device for the anchor and severity call.
      int row = 0;
      for (int r = 0; r < x.rows(); ++r)
        if (x.at(r, c).kind != literal_kind::off) row = r;
      const bool bridge = x.at(row, c).kind == literal_kind::on;
      d.level = bridge ? severity::note : severity::warning;
      d.message = "column " + std::to_string(c) +
                  " has a single junction at row " + std::to_string(row) +
                  (bridge ? " (an always-on bridge); the bitline only "
                            "extends that wordline"
                          : "; a dangling memristor can never lie on an "
                            "input-to-output path");
      d.fix = bridge ? "" : "connect column " + std::to_string(c) +
                                " to a second wordline or remove the device";
      d.anchors.push_back(junction_entity(row, c));
    }
    out.add(std::move(d));
  }
}

// XBR003 — two always-on bridges on one nanowire permanently short two
// wordlines (or two bitlines) together. Mapped designs place exactly one
// bridge per VH row/column pair; duplicates are almost certainly a
// composition bug even when the shorted function happens to match.
void check_duplicate_bridges(const artifacts& a, report& out) {
  const xbar::crossbar& x = *a.design;
  for (int r = 0; r < x.rows(); ++r) {
    std::vector<int> bridges;
    for (int c = 0; c < x.columns(); ++c)
      if (x.at(r, c).kind == literal_kind::on) bridges.push_back(c);
    if (bridges.size() < 2) continue;
    diagnostic d;
    d.check_id = "XBR003";
    // Diagonal composition fans the shared input wordline out to every
    // composed block through one bridge each — an intentional short, so
    // only worth a note there. Anywhere else it is a mapping bug.
    const bool input_fanout = r == x.input_row();
    d.level = input_fanout ? severity::note : severity::warning;
    d.message = "row " + std::to_string(r) + " carries " +
                std::to_string(bridges.size()) +
                " always-on bridges; it is permanently shorted to " +
                std::to_string(bridges.size()) + " bitlines";
    if (input_fanout)
      d.message += " (expected when separate ROBDDs are composed on a "
                   "shared input wordline)";
    d.fix = input_fanout
                ? "nothing, if this design came from diagonal composition"
                : "keep one bridge per VH node; re-check the composition step";
    d.anchors = {row_entity(r)};
    for (const int c : bridges) d.anchors.push_back(junction_entity(r, c));
    out.add(std::move(d));
  }
  for (int c = 0; c < x.columns(); ++c) {
    std::vector<int> bridges;
    for (int r = 0; r < x.rows(); ++r)
      if (x.at(r, c).kind == literal_kind::on) bridges.push_back(r);
    if (bridges.size() < 2) continue;
    diagnostic d;
    d.check_id = "XBR003";
    d.level = severity::warning;
    d.message = "column " + std::to_string(c) + " carries " +
                std::to_string(bridges.size()) +
                " always-on bridges; it permanently shorts " +
                std::to_string(bridges.size()) + " wordlines together";
    d.fix = "keep one bridge per VH node; re-check the composition step";
    d.anchors = {column_entity(c)};
    for (const int r : bridges) d.anchors.push_back(junction_entity(r, c));
    out.add(std::move(d));
  }
}

// XBR004 — the crossbar's dimensions must equal what the labeling promises:
// R = #H + #VH, C = #V + #VH.
void check_dimensions(const artifacts& a, report& out) {
  if (a.labels->label_of.size() != a.graph->g.node_count()) return;
  if (a.graph->g.node_count() == 0) return;  // degenerate 1x0 constant design
  const core::labeling_stats stats = core::compute_stats(*a.labels);
  const xbar::crossbar& x = *a.design;
  if (x.rows() == stats.rows && x.columns() == stats.columns) return;
  diagnostic d;
  d.check_id = "XBR004";
  d.level = severity::error;
  d.message = "crossbar is " + std::to_string(x.rows()) + " x " +
              std::to_string(x.columns()) + " but the labeling dictates " +
              std::to_string(stats.rows) + " x " +
              std::to_string(stats.columns) +
              " (R = #H + #VH, C = #V + #VH)";
  d.fix = "re-map the design from this labeling";
  d.anchors = {entity{}};
  out.add(std::move(d));
}

// XBR005 — the input wordline must exist; by the paper's convention it is
// the bottom-most row (outputs top-most).
void check_input_row(const artifacts& a, report& out) {
  const xbar::crossbar& x = *a.design;
  const bool has_sensed_outputs = !x.outputs().empty();
  if (x.input_row() < 0) {
    if (!has_sensed_outputs) return;  // constants-only designs need no input
    diagnostic d;
    d.check_id = "XBR005";
    d.level = severity::error;
    d.message = "design senses " + std::to_string(x.outputs().size()) +
                " output wordline(s) but declares no input wordline";
    d.fix = "set the input row (the mapped '1' terminal)";
    d.anchors = {entity{}};
    out.add(std::move(d));
    return;
  }
  if (x.input_row() >= x.rows()) {
    diagnostic d;
    d.check_id = "XBR005";
    d.level = severity::error;
    d.message = "input row " + std::to_string(x.input_row()) +
                " is out of range for a " + std::to_string(x.rows()) +
                "-row crossbar";
    d.anchors = {row_entity(x.input_row())};
    out.add(std::move(d));
    return;
  }
  if (x.input_row() != x.rows() - 1) {
    diagnostic d;
    d.check_id = "XBR005";
    d.level = severity::note;
    d.message = "input row " + std::to_string(x.input_row()) +
                " is not the bottom-most wordline (paper convention: input "
                "at row " +
                std::to_string(x.rows() - 1) + ", outputs on top)";
    d.anchors = {row_entity(x.input_row())};
    out.add(std::move(d));
  }
}

// XBR006 — every literal device must reference a variable inside the
// declared support.
void check_device_variables(const artifacts& a, report& out) {
  const xbar::crossbar& x = *a.design;
  const int variables = a.resolve_variable_count();
  for (int r = 0; r < x.rows(); ++r) {
    for (int c = 0; c < x.columns(); ++c) {
      const xbar::device& d = x.at(r, c);
      if (d.kind != literal_kind::positive &&
          d.kind != literal_kind::negative)
        continue;
      const bool negative_index = d.variable < 0;
      const bool beyond_support = variables >= 0 && d.variable >= variables;
      if (!negative_index && !beyond_support) continue;
      diagnostic diag;
      diag.check_id = "XBR006";
      diag.level = severity::error;
      diag.message =
          "junction (" + std::to_string(r) + ", " + std::to_string(c) +
          ") is programmed with variable x" + std::to_string(d.variable) +
          (negative_index
               ? ", which is not a valid variable index"
               : ", outside the declared support of " +
                     std::to_string(variables) + " variable(s)");
      diag.fix = "program the junction with a variable in [0, " +
                 std::to_string(variables < 0 ? 0 : variables) + ")";
      diag.anchors = {junction_entity(r, c), variable_entity(d.variable)};
      out.add(std::move(diag));
    }
  }
}

// XBR007 — output ports must reference in-range rows and carry unique names.
void check_output_ports(const artifacts& a, report& out) {
  const xbar::crossbar& x = *a.design;
  std::vector<std::string> seen;
  auto name_seen = [&](const std::string& name) {
    for (const std::string& s : seen)
      if (s == name) return true;
    return false;
  };
  for (const xbar::output_port& o : x.outputs()) {
    if (o.row < 0 || o.row >= x.rows()) {
      diagnostic d;
      d.check_id = "XBR007";
      d.level = severity::error;
      d.message = "output '" + o.name + "' senses row " +
                  std::to_string(o.row) + ", outside the " +
                  std::to_string(x.rows()) + "-row crossbar";
      d.anchors = {output_entity(o.name), row_entity(o.row)};
      out.add(std::move(d));
    }
    if (name_seen(o.name)) {
      diagnostic d;
      d.check_id = "XBR007";
      d.level = severity::error;
      d.message = "output name '" + o.name + "' is declared twice";
      d.fix = "give every output port a unique name";
      d.anchors = {output_entity(o.name)};
      out.add(std::move(d));
    }
    seen.push_back(o.name);
  }
  for (const auto& [name, value] : x.constant_outputs()) {
    (void)value;
    if (name_seen(name)) {
      diagnostic d;
      d.check_id = "XBR007";
      d.level = severity::error;
      d.message = "output name '" + name +
                  "' is declared both as a port and as a constant";
      d.anchors = {output_entity(name)};
      out.add(std::move(d));
    }
    seen.push_back(name);
  }
}

}  // namespace

std::vector<check_descriptor> structure_checks() {
  std::vector<check_descriptor> checks;
  check_descriptor c;

  c.id = "XBR001";
  c.name = "dead-row";
  c.description = "Every wordline should carry at least one device";
  c.default_severity = severity::warning;
  c.needs_design = true;
  c.run = check_dead_rows;
  checks.push_back(c);

  c = {};
  c.id = "XBR002";
  c.name = "dead-column";
  c.description =
      "A bitline needs two junctions to conduct; lone devices dangle";
  c.default_severity = severity::warning;
  c.needs_design = true;
  c.run = check_dead_columns;
  checks.push_back(c);

  c = {};
  c.id = "XBR003";
  c.name = "duplicate-bridge";
  c.description =
      "At most one always-on bridge per nanowire (one per VH node)";
  c.default_severity = severity::warning;
  c.needs_design = true;
  c.run = check_duplicate_bridges;
  checks.push_back(c);

  c = {};
  c.id = "XBR004";
  c.name = "dimensions-vs-labeling";
  c.description =
      "Crossbar dimensions must match the labeling (R = #H+#VH, C = #V+#VH)";
  c.default_severity = severity::error;
  c.needs_design = true;
  c.needs_labeling = true;
  c.run = check_dimensions;
  checks.push_back(c);

  c = {};
  c.id = "XBR005";
  c.name = "input-wordline";
  c.description =
      "The input wordline must exist and sit bottom-most by convention";
  c.default_severity = severity::error;
  c.needs_design = true;
  c.run = check_input_row;
  checks.push_back(c);

  c = {};
  c.id = "XBR006";
  c.name = "device-variable-range";
  c.description =
      "Literal devices must reference variables inside the declared support";
  c.default_severity = severity::error;
  c.needs_design = true;
  c.run = check_device_variables;
  checks.push_back(c);

  c = {};
  c.id = "XBR007";
  c.name = "output-ports";
  c.description = "Output ports must sense in-range rows with unique names";
  c.default_severity = severity::error;
  c.needs_design = true;
  c.run = check_output_ports;
  checks.push_back(c);

  return checks;
}

}  // namespace compact::verify
