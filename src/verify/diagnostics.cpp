#include "verify/diagnostics.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/telemetry.hpp"  // json_escape

namespace compact::verify {
namespace {

/// json_escape produces escaped *contents*; JSON strings also need quotes.
std::string quoted(const std::string& text) {
  std::string out = "\"";
  out += json_escape(text);
  out += "\"";
  return out;
}

}  // namespace

const char* severity_name(severity s) {
  switch (s) {
    case severity::note:
      return "note";
    case severity::warning:
      return "warning";
    case severity::error:
      return "error";
  }
  return "error";
}

std::optional<severity> parse_severity(std::string_view text) {
  if (text == "note") return severity::note;
  if (text == "warning") return severity::warning;
  if (text == "error") return severity::error;
  return std::nullopt;
}

entity node_entity(int index) {
  return {entity_kind::node, index, -1, {}};
}
entity row_entity(int index) {
  return {entity_kind::row, index, -1, {}};
}
entity column_entity(int index) {
  return {entity_kind::column, index, -1, {}};
}
entity junction_entity(int row, int column) {
  return {entity_kind::junction, row, column, {}};
}
entity output_entity(std::string name) {
  return {entity_kind::output, -1, -1, std::move(name)};
}
entity variable_entity(int index) {
  return {entity_kind::variable, index, -1, {}};
}

std::string to_string(const entity& e) {
  switch (e.kind) {
    case entity_kind::design:
      return "design";
    case entity_kind::node:
      return "node " + std::to_string(e.index);
    case entity_kind::row:
      return "row " + std::to_string(e.index);
    case entity_kind::column:
      return "column " + std::to_string(e.index);
    case entity_kind::junction:
      return "junction (" + std::to_string(e.index) + ", " +
             std::to_string(e.column) + ")";
    case entity_kind::output:
      return "output '" + e.name + "'";
    case entity_kind::variable:
      return "variable x" + std::to_string(e.index);
  }
  return "design";
}

void report::add(diagnostic d) {
  check(!d.check_id.empty(), "diagnostic needs a check id");
  check(!d.message.empty(), "diagnostic needs a message");
  diagnostics_.push_back(std::move(d));
}

void report::mark_check_run(std::string check_id) {
  // Idempotent: merging reports or re-running a family must not inflate
  // the "checks run" accounting.
  if (std::find(checks_run_.begin(), checks_run_.end(), check_id) !=
      checks_run_.end())
    return;
  checks_run_.push_back(std::move(check_id));
}

std::size_t report::count(severity level) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [&](const diagnostic& d) { return d.level == level; }));
}

bool report::clean(severity at_or_above) const {
  return std::none_of(diagnostics_.begin(), diagnostics_.end(),
                      [&](const diagnostic& d) {
                        return static_cast<int>(d.level) >=
                               static_cast<int>(at_or_above);
                      });
}

bool report::has_check(const std::string& check_id) const {
  return std::any_of(
      diagnostics_.begin(), diagnostics_.end(),
      [&](const diagnostic& d) { return d.check_id == check_id; });
}

std::vector<const diagnostic*> report::by_check(
    const std::string& check_id) const {
  std::vector<const diagnostic*> found;
  for (const diagnostic& d : diagnostics_)
    if (d.check_id == check_id) found.push_back(&d);
  return found;
}

int lint_exit_code(const report& r, severity fail_on) {
  return r.clean(fail_on) ? 0 : 1;
}

namespace {

void write_entity_json(const entity& e, std::ostream& os) {
  os << "{\"text\":" << quoted(to_string(e));
  switch (e.kind) {
    case entity_kind::design:
      os << ",\"kind\":\"design\"";
      break;
    case entity_kind::node:
      os << ",\"kind\":\"node\",\"index\":" << e.index;
      break;
    case entity_kind::row:
      os << ",\"kind\":\"row\",\"index\":" << e.index;
      break;
    case entity_kind::column:
      os << ",\"kind\":\"column\",\"index\":" << e.index;
      break;
    case entity_kind::junction:
      os << ",\"kind\":\"junction\",\"row\":" << e.index
         << ",\"column\":" << e.column;
      break;
    case entity_kind::output:
      os << ",\"kind\":\"output\",\"name\":" << quoted(e.name);
      break;
    case entity_kind::variable:
      os << ",\"kind\":\"variable\",\"index\":" << e.index;
      break;
  }
  os << "}";
}

void write_diagnostic_json(const diagnostic& d, std::ostream& os) {
  os << "{\"check\":" << quoted(d.check_id)
     << ",\"severity\":\"" << severity_name(d.level) << "\""
     << ",\"message\":" << quoted(d.message);
  if (!d.fix.empty()) os << ",\"fix\":" << quoted(d.fix);
  os << ",\"anchors\":[";
  for (std::size_t i = 0; i < d.anchors.size(); ++i) {
    if (i != 0) os << ",";
    write_entity_json(d.anchors[i], os);
  }
  os << "]}";
}

}  // namespace

void write_json(const report& r, std::ostream& os) {
  os << "{\"diagnostics\":[";
  const std::vector<diagnostic>& all = r.diagnostics();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i != 0) os << ",";
    write_diagnostic_json(all[i], os);
  }
  os << "],\"summary\":{\"errors\":" << r.error_count()
     << ",\"warnings\":" << r.warning_count()
     << ",\"notes\":" << r.note_count() << "}"
     << ",\"checks_run\":[";
  for (std::size_t i = 0; i < r.checks_run().size(); ++i) {
    if (i != 0) os << ",";
    os << quoted(r.checks_run()[i]);
  }
  os << "]}\n";
}

namespace {

/// SARIF logicalLocation `kind` for an entity. SARIF's vocabulary is
/// source-code-centric; "element" is the recommended catch-all for hardware
/// design entities.
const char* sarif_logical_kind(const entity& e) {
  return e.kind == entity_kind::design ? "module" : "element";
}

void write_sarif_location(const diagnostic& d, const sarif_options& options,
                          std::ostream& os) {
  os << "{";
  bool first = true;
  if (!options.artifact_uri.empty()) {
    os << "\"physicalLocation\":{\"artifactLocation\":{\"uri\":"
       << quoted(options.artifact_uri)
       << "},\"region\":{\"startLine\":1,\"startColumn\":1}}";
    first = false;
  }
  if (!d.anchors.empty()) {
    if (!first) os << ",";
    os << "\"logicalLocations\":[";
    for (std::size_t i = 0; i < d.anchors.size(); ++i) {
      if (i != 0) os << ",";
      const entity& e = d.anchors[i];
      os << "{\"name\":" << quoted(to_string(e))
         << ",\"fullyQualifiedName\":"
         << quoted("design/" + to_string(e))
         << ",\"kind\":\"" << sarif_logical_kind(e) << "\"}";
    }
    os << "]";
  }
  os << "}";
}

}  // namespace

void write_sarif(const report& r, const sarif_options& options,
                 std::ostream& os) {
  os << "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\","
     << "\"version\":\"2.1.0\",\"runs\":[{";

  // tool.driver with the full rule table.
  os << "\"tool\":{\"driver\":{\"name\":" << quoted(options.tool_name)
     << ",\"version\":" << quoted(options.tool_version)
     << ",\"informationUri\":" << quoted(options.information_uri)
     << ",\"rules\":[";
  for (std::size_t i = 0; i < options.rules.size(); ++i) {
    if (i != 0) os << ",";
    const sarif_rule& rule = options.rules[i];
    os << "{\"id\":" << quoted(rule.id)
       << ",\"name\":" << quoted(rule.name)
       << ",\"shortDescription\":{\"text\":" << quoted(rule.description)
       << "},\"defaultConfiguration\":{\"level\":\""
       << severity_name(rule.default_severity) << "\"}}";
  }
  os << "]}},";

  if (!options.artifact_uri.empty()) {
    os << "\"artifacts\":[{\"location\":{\"uri\":"
       << quoted(options.artifact_uri) << "}}],";
  }

  os << "\"results\":[";
  const std::vector<diagnostic>& all = r.diagnostics();
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i != 0) os << ",";
    const diagnostic& d = all[i];
    os << "{\"ruleId\":" << quoted(d.check_id);
    for (std::size_t k = 0; k < options.rules.size(); ++k) {
      if (options.rules[k].id == d.check_id) {
        os << ",\"ruleIndex\":" << k;
        break;
      }
    }
    std::string text = d.message;
    if (!d.fix.empty()) text += " Suggested fix: " + d.fix;
    os << ",\"level\":\"" << severity_name(d.level) << "\""
       << ",\"message\":{\"text\":" << quoted(text) << "}"
       << ",\"locations\":[";
    write_sarif_location(d, options, os);
    os << "]";
    if (!d.fix.empty())
      os << ",\"properties\":{\"suggestedFix\":" << quoted(d.fix) << "}";
    os << "}";
  }
  os << "],\"columnKind\":\"utf16CodeUnits\"}]}\n";
}

}  // namespace compact::verify
