// Static electrical-integrity analysis (the ELCxxx check family's engine).
//
// The analyzer's other checks reason about the *conduction graph* — which
// wordlines can reach which. This module reasons about the *resistive
// network* the conduction graph abstracts: every programmed junction is a
// resistor (R_on when conducting, R_off when blocking), inter-array bridges
// add their own series resistance, and an output is sensed as a voltage
// divider against its sensing resistor. Without solving a single nodal
// system (that is analog/mna's job), it derives per-output bounds:
//
//   * an upper bound on the series resistance of the path that carries the
//     ON current in the worst assignment — any simple conduction path is
//     confined to the wires that are both reachable from the input wordline
//     and co-reachable from the output, so its device count is bounded by
//     that corridor's size (and by its device count);
//   * a lower bound on the effective resistance of the parasitic OFF-path
//     network — when the output should read 0, every input-to-output path
//     crosses at least one blocking junction (>= R_off), and the number of
//     parallel such paths is bounded by the output row's junction degree
//     and by a bounded-DFS enumeration of the simple sneak paths.
//
// The verdict is conservative by construction: "safe" is only reported when
// the bounds separate with slack (margin_ratio >= margin_threshold and the
// divider voltages clear the sensing threshold even under worst-case
// loading), so a statically safe design is also separable under analog/mna
// — the agreement suite in tests/electrical_test.cpp pins that direction on
// every small committed benchmark.
#pragma once

#include <string>
#include <vector>

#include "analog/mna.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/partitioned.hpp"

namespace compact::verify {

struct electrical_options {
  /// Device corner used for the static bounds (same defaults as analog/mna).
  analog::device_model model;
  /// Minimum statically-provable OFF/ON resistance ratio for a "safe"
  /// verdict. Ratios below 1.0 mean the leakage bound conducts at least as
  /// well as the worst ON path — ELC001 escalates those to errors.
  double margin_threshold = 10.0;
  /// Series resistance of one inter-array bridge crossing (format-v2
  /// designs), ohms. Bridges are wires, not devices, but long inter-array
  /// routes are not free.
  double bridge_resistance = 25.0;
  /// Budget for the bounded-DFS sneak-path enumeration, per output. When
  /// the budget is exhausted the enumeration reports "truncated" and the
  /// parallel-path bound falls back to the output row's junction degree.
  int max_sneak_paths = 4096;
  /// Maximum devices per enumerated sneak path (DFS depth bound).
  int max_sneak_depth = 64;
};

/// Per-output static margin bounds. `array` is 0 for single-array designs.
struct output_margin {
  std::string name;
  int array = 0;
  int row = -1;
  /// Fewest devices on any input-to-output conduction path (best-case ON
  /// depth); -1 when the output row is unreachable even with every
  /// programmed junction conducting (it can never read 1 — or leak).
  int min_on_devices = -1;
  /// Conservative upper bound on the device count of the ON-carrying path.
  int worst_on_devices = 0;
  /// Upper bound on inter-array bridge crossings of that path (v2 designs).
  int bridge_crossings = 0;
  /// worst_on_devices * r_on + bridge_crossings * bridge_resistance.
  double worst_on_resistance = 0.0;
  /// Simple input-to-output paths found by the bounded DFS.
  int sneak_paths = 0;
  bool sneak_truncated = false;
  /// Bound on the number of parallel leakage paths into the output row.
  int parallel_paths = 1;
  /// r_off / parallel_paths: lower bound on the OFF-network resistance.
  double best_off_resistance = 0.0;
  /// best_off_resistance / worst_on_resistance (the static margin).
  double margin_ratio = 0.0;
  /// Static lower bound on the sensed logic-1 voltage (divider against
  /// r_sense, derated once per other sensed row the path could load).
  double min_high_voltage = 0.0;
  /// Static upper bound on the leakage voltage at a logic 0.
  double max_low_voltage = 0.0;
  bool safe = false;
};

struct electrical_report {
  std::vector<output_margin> outputs;
  /// Smallest margin_ratio over the sensed, reachable outputs (0 when none).
  double min_margin_ratio = 0.0;
  /// Every sensed output safe (vacuously true with no sensed outputs).
  bool safe = true;
};

/// Static electrical bounds for every sensed output of a single-array
/// design. Constant outputs have no resistive path and are skipped.
[[nodiscard]] electrical_report analyze_electrical(
    const xbar::crossbar& design, const electrical_options& options = {});

/// Same bounds over the stitched resistive network of a partitioned design:
/// bridges are series resistances, the corridor spans fragments.
[[nodiscard]] electrical_report analyze_electrical(
    const xbar::partitioned_design& design,
    const electrical_options& options = {});

}  // namespace compact::verify
