#include "verify/criticality.hpp"

#include <algorithm>

#include "bdd/manager.hpp"
#include "util/trace.hpp"
#include "verify/extract.hpp"

namespace compact::verify {
namespace {

struct sensed_ref {
  std::string name;
  int array = 0;
  int row = 0;
};

std::vector<sensed_ref> sensed_outputs(const xbar::partitioned_design& design) {
  std::vector<sensed_ref> out;
  for (int f = 0; f < design.array_count(); ++f)
    for (const xbar::output_port& port : design.fragment(f).outputs()) {
      if (port.row < 0 || port.row >= design.fragment(f).rows()) continue;
      out.push_back({port.name, f, port.row});
    }
  return out;
}

std::vector<bdd::node_handle> output_functions(
    const stitched_extraction_result& extracted,
    const std::vector<sensed_ref>& outputs) {
  std::vector<bdd::node_handle> fns;
  fns.reserve(outputs.size());
  for (const sensed_ref& o : outputs)
    fns.push_back(extracted.row_function[static_cast<std::size_t>(o.array)]
                                        [static_cast<std::size_t>(o.row)]);
  return fns;
}

criticality_report analyze(const xbar::partitioned_design& design,
                           int variable_count,
                           const criticality_options& options) {
  const trace_span span("analyze_criticality", "verify");
  criticality_report report;

  int variables = std::max(variable_count, 1);
  for (const xbar::crossbar& fragment : design.fragments())
    for (int r = 0; r < fragment.rows(); ++r)
      for (int c = 0; c < fragment.columns(); ++c)
        variables = std::max(variables, fragment.at(r, c).variable + 1);
  bdd::manager scratch(variables);

  xbar::partitioned_design work = design;
  if (work.input_array() < 0) return report;  // nothing conducts; PAR001 owns it

  const std::vector<sensed_ref> outputs = sensed_outputs(work);
  for (const sensed_ref& o : outputs) report.outputs.push_back(o.name);

  const stitched_extraction_result base =
      extract_stitched_functions(work, scratch);
  report.fixpoint_iterations += base.fixpoint_iterations;
  const std::vector<bdd::node_handle> base_fns =
      output_functions(base, outputs);
  // The per-fault extractions each end in a garbage collection; keep every
  // baseline wire function alive across all of them (the pre-filters below
  // compare against them junction by junction).
  std::vector<bdd::node_handle> protected_fns;
  for (const auto& per_fragment : base.row_function)
    protected_fns.insert(protected_fns.end(), per_fragment.begin(),
                         per_fragment.end());
  for (const auto& per_fragment : base.column_function)
    protected_fns.insert(protected_fns.end(), per_fragment.begin(),
                         per_fragment.end());
  for (const bdd::node_handle fn : protected_fns) scratch.protect(fn);

  // Re-extract with one device forced and report which outputs move.
  const auto probe = [&](int array, int row, int column,
                         const xbar::device& forced,
                         std::vector<int>& affected) {
    xbar::crossbar& fragment = work.fragment(array);
    const xbar::device original = fragment.at(row, column);
    fragment.set(row, column, forced);
    const stitched_extraction_result faulted =
        extract_stitched_functions(work, scratch);
    fragment.set(row, column, original);
    report.fixpoint_iterations += faulted.fixpoint_iterations;
    ++report.faults_analyzed;
    const std::vector<bdd::node_handle> fns =
        output_functions(faulted, outputs);
    bool flipped = false;
    for (std::size_t i = 0; i < fns.size(); ++i) {
      if (scratch.same_function(fns[i], base_fns[i])) continue;
      flipped = true;
      const int index = static_cast<int>(i);
      if (std::find(affected.begin(), affected.end(), index) ==
          affected.end())
        affected.push_back(index);
    }
    return flipped;
  };

  for (int f = 0; f < work.array_count() && !report.truncated; ++f) {
    const xbar::crossbar& fragment = work.fragment(f);
    for (int r = 0; r < fragment.rows() && !report.truncated; ++r) {
      for (int c = 0; c < fragment.columns(); ++c) {
        const xbar::device d = fragment.at(r, c);
        const bool programmed = d.kind != xbar::literal_kind::off;
        if (!programmed && !options.include_off_junctions) continue;
        const bool try_open = programmed;
        const bool try_closed = d.kind != xbar::literal_kind::on;
        if (!try_open && !try_closed) continue;

        // A partially analyzed junction would misreport its skipped fault
        // as non-critical, so stop before one that may not fit the budget.
        if (options.max_faults > 0 &&
            report.faults_analyzed + 2 > options.max_faults) {
          report.truncated = true;
          break;
        }

        junction_criticality j;
        j.array = f;
        j.row = r;
        j.column = c;
        j.kind = d.kind;
        j.variable = d.variable;

        // Stuck-open on a junction whose wires never conduct in the
        // baseline removes an edge that carried nothing: the fixpoint is
        // unchanged, no extraction needed.
        const bdd::node_handle row_fn =
            base.row_function[static_cast<std::size_t>(f)]
                             [static_cast<std::size_t>(r)];
        const bdd::node_handle col_fn =
            base.column_function[static_cast<std::size_t>(f)]
                                [static_cast<std::size_t>(c)];
        if (try_open &&
            !scratch.same_function(row_fn, scratch.constant(false)) &&
            !scratch.same_function(col_fn, scratch.constant(false)))
          j.stuck_open_critical =
              probe(f, r, c, {xbar::literal_kind::off, -1}, j.affected_outputs);
        // Stuck-closed welds the two wires; when their reachability already
        // coincides the short adds nothing.
        if (try_closed && !scratch.same_function(row_fn, col_fn))
          j.stuck_closed_critical =
              probe(f, r, c, {xbar::literal_kind::on, -1}, j.affected_outputs);

        std::sort(j.affected_outputs.begin(), j.affected_outputs.end());
        if (j.critical()) ++report.critical_count;
        report.junctions.push_back(std::move(j));
      }
    }
  }

  for (const bdd::node_handle fn : protected_fns) scratch.unprotect(fn);

  report.junction_count = static_cast<int>(report.junctions.size());
  std::stable_sort(report.junctions.begin(), report.junctions.end(),
                   [](const junction_criticality& a,
                      const junction_criticality& b) {
                     return a.affected_outputs.size() >
                            b.affected_outputs.size();
                   });
  return report;
}

std::string json_escape(const std::string& text) {
  std::string out;
  for (const char ch : text) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += ' ';
    } else {
      out += ch;
    }
  }
  return out;
}

std::string device_text(xbar::literal_kind kind, int variable) {
  switch (kind) {
    case xbar::literal_kind::off:
      return "off";
    case xbar::literal_kind::on:
      return "on";
    case xbar::literal_kind::positive:
    case xbar::literal_kind::negative: {
      std::string text(kind == xbar::literal_kind::negative ? "!x" : "x");
      text += std::to_string(variable);
      return text;
    }
  }
  return "?";
}

}  // namespace

criticality_report analyze_criticality(const xbar::crossbar& design,
                                       int variable_count,
                                       const criticality_options& options) {
  return analyze(xbar::wrap_single(design), variable_count, options);
}

criticality_report analyze_criticality(const xbar::partitioned_design& design,
                                       int variable_count,
                                       const criticality_options& options) {
  return analyze(design, variable_count, options);
}

void write_criticality_json(const criticality_report& report,
                            std::ostream& os) {
  os << "{\n  \"summary\": {"
     << "\"junctions\": " << report.junction_count
     << ", \"critical\": " << report.critical_count
     << ", \"faults_analyzed\": " << report.faults_analyzed
     << ", \"truncated\": " << (report.truncated ? "true" : "false")
     << ", \"fixpoint_iterations\": " << report.fixpoint_iterations
     << "},\n  \"outputs\": [";
  for (std::size_t i = 0; i < report.outputs.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << json_escape(report.outputs[i]) << '"';
  }
  os << "],\n  \"junctions\": [";
  for (std::size_t i = 0; i < report.junctions.size(); ++i) {
    const junction_criticality& j = report.junctions[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"array\": " << j.array
       << ", \"row\": " << j.row << ", \"column\": " << j.column
       << ", \"device\": \"" << device_text(j.kind, j.variable) << '"'
       << ", \"stuck_open_critical\": "
       << (j.stuck_open_critical ? "true" : "false")
       << ", \"stuck_closed_critical\": "
       << (j.stuck_closed_critical ? "true" : "false")
       << ", \"affected_outputs\": [";
    for (std::size_t k = 0; k < j.affected_outputs.size(); ++k) {
      if (k != 0) os << ", ";
      os << j.affected_outputs[k];
    }
    os << "]}";
  }
  os << (report.junctions.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

}  // namespace compact::verify
