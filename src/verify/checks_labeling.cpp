// Labeling-legality checks (LBLxxx): the V/H/VH assignment must be a legal
// bipartition-with-transversal (Section V-B) and its size accounting must
// match the crossbar it produced (S = n + k, Lemma 2).
#include "core/labeling.hpp"
#include "verify/checks.hpp"

namespace compact::verify {
namespace {

using core::vh_label;

bool sizes_match(const artifacts& a) {
  return a.labels->label_of.size() == a.graph->g.node_count();
}

const char* label_name(vh_label l) {
  switch (l) {
    case vh_label::v:
      return "V";
    case vh_label::h:
      return "H";
    case vh_label::vh:
      return "VH";
  }
  return "?";
}

// LBL001 — no edge may join two V's or two H's: a memristor always joins a
// wordline to a bitline.
void check_feasibility(const artifacts& a, report& out) {
  if (!sizes_match(a)) return;  // LBL004 reports the size mismatch
  const core::labeling& l = *a.labels;
  const std::vector<graph::edge>& edges = a.graph->g.edges();
  for (const graph::edge& e : edges) {
    const vh_label lu = l.label_of[static_cast<std::size_t>(e.u)];
    const vh_label lv = l.label_of[static_cast<std::size_t>(e.v)];
    const bool both_v = lu == vh_label::v && lv == vh_label::v;
    const bool both_h = lu == vh_label::h && lv == vh_label::h;
    if (!both_v && !both_h) continue;
    diagnostic d;
    d.check_id = "LBL001";
    d.level = severity::error;
    d.message = "edge {" + std::to_string(e.u) + ", " + std::to_string(e.v) +
                "} joins two " + label_name(lu) +
                "-labeled nodes; a memristor can only join a wordline to a "
                "bitline";
    d.fix = "relabel node " + std::to_string(e.u) + " or node " +
            std::to_string(e.v) + (both_v ? " as H or VH" : " as V or VH");
    d.anchors = {node_entity(e.u), node_entity(e.v)};
    out.add(std::move(d));
  }
}

// LBL002 — alignment: every output node and the 1-terminal must carry at
// least an H label, or the mapper cannot put them on wordlines.
void check_alignment(const artifacts& a, report& out) {
  if (!sizes_match(a)) return;
  for (const graph::node_id v : a.graph->aligned_nodes()) {
    if (a.labels->has_row(v)) continue;
    const bool is_terminal = v == a.graph->terminal_node;
    std::string role = is_terminal ? "the '1' terminal" : "an output root";
    diagnostic d;
    d.check_id = "LBL002";
    d.level = severity::error;
    d.message = "node " + std::to_string(v) + " is " + role +
                " but is labeled V; roots and the terminal must sit on "
                "wordlines";
    d.fix = "label node " + std::to_string(v) + " as H or VH";
    d.anchors = {node_entity(v)};
    for (const core::bdd_graph::output_binding& o : a.graph->outputs)
      if (o.node == v) d.anchors.push_back(output_entity(o.name));
    out.add(std::move(d));
  }
}

// LBL003 — OCT size accounting: with n graph nodes and k VH labels the
// semiperimeter is exactly S = n + k (each node contributes one nanowire,
// each VH node a second). Checked against both the labeling's own counts
// and, when present, the concrete crossbar.
void check_size_accounting(const artifacts& a, report& out) {
  if (!sizes_match(a)) return;
  const std::size_t n = a.graph->g.node_count();
  if (n == 0) return;  // constants-only design; no accounting to do
  const core::labeling_stats stats = core::compute_stats(*a.labels);
  const int expected =
      static_cast<int>(n) + stats.vh_count;  // S = n + k
  if (stats.semiperimeter != expected) {
    diagnostic d;
    d.check_id = "LBL003";
    d.level = severity::error;
    d.message = "labeling accounting broken: R + C = " +
                std::to_string(stats.semiperimeter) + " but n + k = " +
                std::to_string(n) + " + " + std::to_string(stats.vh_count) +
                " = " + std::to_string(expected);
    d.anchors = {entity{}};
    out.add(std::move(d));
  }
  if (a.design != nullptr && a.design->semiperimeter() != expected) {
    diagnostic d;
    d.check_id = "LBL003";
    d.level = severity::error;
    d.message = "crossbar semiperimeter " +
                std::to_string(a.design->semiperimeter()) +
                " != n + k = " + std::to_string(expected) +
                " (n = " + std::to_string(n) +
                " graph nodes, k = " + std::to_string(stats.vh_count) +
                " VH labels)";
    d.fix = "re-run the mapper; rows/columns were added or dropped outside "
            "the labeling";
    d.anchors = {entity{}};
    out.add(std::move(d));
  }
}

// LBL004 — the labeling must cover exactly the graph's vertex set.
void check_labeling_size(const artifacts& a, report& out) {
  if (sizes_match(a)) return;
  diagnostic d;
  d.check_id = "LBL004";
  d.level = severity::error;
  d.message = "labeling covers " + std::to_string(a.labels->label_of.size()) +
              " nodes but the graph has " +
              std::to_string(a.graph->g.node_count());
  d.fix = "rebuild the labeling from this graph";
  d.anchors = {entity{}};
  out.add(std::move(d));
}

}  // namespace

std::vector<check_descriptor> labeling_checks() {
  std::vector<check_descriptor> checks;
  check_descriptor c;

  c.id = "LBL001";
  c.name = "labeling-feasibility";
  c.description =
      "No graph edge may join two V-labeled or two H-labeled nodes";
  c.default_severity = severity::error;
  c.needs_labeling = true;
  c.run = check_feasibility;
  checks.push_back(c);

  c = {};
  c.id = "LBL002";
  c.name = "labeling-alignment";
  c.description =
      "Output roots and the 1-terminal must carry a wordline (H or VH) label";
  c.default_severity = severity::error;
  c.needs_labeling = true;
  c.run = check_alignment;
  checks.push_back(c);

  c = {};
  c.id = "LBL003";
  c.name = "labeling-size-accounting";
  c.description = "Semiperimeter accounting S = n + k must hold";
  c.default_severity = severity::error;
  c.needs_labeling = true;
  c.run = check_size_accounting;
  checks.push_back(c);

  c = {};
  c.id = "LBL004";
  c.name = "labeling-covers-graph";
  c.description = "The labeling vector must be parallel to the graph's nodes";
  c.default_severity = severity::error;
  c.needs_labeling = true;
  c.run = check_labeling_size;
  checks.push_back(c);

  return checks;
}

}  // namespace compact::verify
