// Partitioned-design checks (PARxxx): structural soundness of a multi-array
// design — one input array, well-formed bridges, no fragment electrically
// stranded — plus the stitched symbolic-equivalence check that replays the
// sneak-path fixpoint over the union conduction graph of every fragment.
#include <string>
#include <unordered_set>
#include <vector>

#include "verify/checks.hpp"
#include "verify/extract.hpp"

namespace compact::verify {
namespace {

std::string witness_text(const std::vector<bool>& bits) {
  std::string text;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i != 0) text += ", ";
    text += "x";
    text += std::to_string(i);
    text += bits[i] ? "=1" : "=0";
  }
  return text;
}

// PAR001 — partition structure: exactly one fragment may carry the input
// wordline (unless every output is constant), and no output name may be
// bound by two fragments.
void check_partition_structure(const artifacts& a, report& out) {
  const xbar::partitioned_design& design = *a.partitioned;
  std::vector<int> input_arrays;
  for (int f = 0; f < design.array_count(); ++f)
    if (design.fragment(f).input_row() >= 0) input_arrays.push_back(f);

  bool has_sensed_output = false;
  for (const xbar::crossbar& fragment : design.fragments())
    has_sensed_output = has_sensed_output || !fragment.outputs().empty();

  if (input_arrays.empty() && has_sensed_output) {
    diagnostic d;
    d.check_id = "PAR001";
    d.level = severity::error;
    d.message =
        "no fragment declares an input wordline; every sensed output would "
        "read constant 0";
    d.fix = "mark the fragment holding the '1' terminal with an input row";
    out.add(std::move(d));
  } else if (input_arrays.size() > 1) {
    std::string which;
    for (const int f : input_arrays)
      which += (which.empty() ? "" : ", ") + std::to_string(f);
    diagnostic d;
    d.check_id = "PAR001";
    d.level = severity::error;
    d.message = "fragments " + which +
                " all declare an input wordline; a partitioned design must "
                "drive exactly one";
    d.fix = "keep the input row only on the fragment holding the terminal";
    out.add(std::move(d));
  }

  std::unordered_set<std::string> seen;
  for (const xbar::crossbar& fragment : design.fragments()) {
    auto flag_duplicate = [&](const std::string& name) {
      if (seen.insert(name).second) return;
      diagnostic d;
      d.check_id = "PAR001";
      d.level = severity::error;
      d.message = "output '" + name + "' is bound by more than one fragment";
      d.anchors = {output_entity(name)};
      out.add(std::move(d));
    };
    for (const xbar::output_port& port : fragment.outputs())
      flag_duplicate(port.name);
    for (const auto& [name, value] : fragment.constant_outputs()) {
      (void)value;
      flag_duplicate(name);
    }
  }
}

// PAR002 — bridge validity and reachability: every connection must
// reference existing wires of two distinct fragments (the builder enforces
// this, but linted artifacts can come from anywhere), and every fragment
// must reach the input array through the bridge graph — a stranded fragment
// can never conduct, so its outputs are silently constant 0.
void check_bridges(const artifacts& a, report& out) {
  const xbar::partitioned_design& design = *a.partitioned;
  const int k = design.array_count();
  const auto wire_ok = [&](const xbar::wire_ref& w) {
    if (w.array < 0 || w.array >= k) return false;
    const xbar::crossbar& fragment = design.fragment(w.array);
    const int limit = w.kind == xbar::wire_kind::row ? fragment.rows()
                                                     : fragment.columns();
    return w.index >= 0 && w.index < limit;
  };
  const auto wire_text = [](const xbar::wire_ref& w) {
    return std::string(w.kind == xbar::wire_kind::row ? "row " : "column ") +
           std::to_string(w.index) + " of array " + std::to_string(w.array);
  };

  std::vector<std::vector<int>> neighbors(static_cast<std::size_t>(k));
  for (const xbar::bridge& b : design.connections()) {
    if (!wire_ok(b.a) || !wire_ok(b.b)) {
      diagnostic d;
      d.check_id = "PAR002";
      d.level = severity::error;
      d.message = "bridge references a wire outside its fragment (" +
                  wire_text(b.a) + " <-> " + wire_text(b.b) + ")";
      out.add(std::move(d));
      continue;
    }
    if (b.a.array == b.b.array) {
      diagnostic d;
      d.check_id = "PAR002";
      d.level = severity::error;
      d.message = "bridge connects two wires of the same array " +
                  std::to_string(b.a.array) +
                  "; inter-array connections must join distinct fragments";
      out.add(std::move(d));
      continue;
    }
    neighbors[static_cast<std::size_t>(b.a.array)].push_back(b.b.array);
    neighbors[static_cast<std::size_t>(b.b.array)].push_back(b.a.array);
  }

  const int input_array = design.input_array();
  if (input_array < 0 || k <= 1) return;
  std::vector<bool> reached(static_cast<std::size_t>(k), false);
  std::vector<int> frontier{input_array};
  reached[static_cast<std::size_t>(input_array)] = true;
  while (!frontier.empty()) {
    const int f = frontier.back();
    frontier.pop_back();
    for (const int g : neighbors[static_cast<std::size_t>(f)])
      if (!reached[static_cast<std::size_t>(g)]) {
        reached[static_cast<std::size_t>(g)] = true;
        frontier.push_back(g);
      }
  }
  for (int f = 0; f < k; ++f) {
    if (reached[static_cast<std::size_t>(f)]) continue;
    diagnostic d;
    d.check_id = "PAR002";
    d.level = severity::warning;
    d.message = "array " + std::to_string(f) +
                " has no bridge path to the input array " +
                std::to_string(input_array) +
                "; its wordlines can never conduct";
    d.fix = "add a bridge connection or merge the fragment";
    out.add(std::move(d));
  }
}

// PAR003 — stitched equivalence: each spec output's reachability function
// over the union conduction graph must equal its spec BDD.
void check_stitched_equivalence(const artifacts& a, report& out) {
  const equivalence_report eq = check_partitioned_equivalence(
      *a.partitioned, *a.spec, *a.spec_roots, *a.spec_names);
  for (const output_equivalence& o : eq.outputs) {
    if (!o.found) {
      diagnostic d;
      d.check_id = "PAR003";
      d.level = severity::error;
      d.message = "spec output '" + o.name +
                  "' has no sensed wordline or constant port on any fragment";
      d.fix = "add an output port named '" + o.name + "' to a fragment";
      d.anchors = {output_entity(o.name)};
      out.add(std::move(d));
      continue;
    }
    if (o.equivalent) continue;
    diagnostic d;
    d.check_id = "PAR003";
    d.level = severity::error;
    d.message = "output '" + o.name +
                "' computes a different function than its specification "
                "across the stitched arrays";
    if (!o.counterexample.empty())
      d.message += "; counterexample: " + witness_text(o.counterexample);
    d.fix = "re-run partitioned synthesis; the stitched design no longer "
            "realizes the spec";
    d.anchors = {output_entity(o.name)};
    out.add(std::move(d));
  }
}

}  // namespace

std::vector<check_descriptor> partition_checks() {
  std::vector<check_descriptor> checks;
  check_descriptor c;

  c.id = "PAR001";
  c.name = "partition-structure";
  c.description =
      "A partitioned design drives exactly one input array and binds every "
      "output on exactly one fragment";
  c.default_severity = severity::error;
  c.needs_partitioned = true;
  c.run = check_partition_structure;
  checks.push_back(c);

  c = {};
  c.id = "PAR002";
  c.name = "bridge-validity";
  c.description =
      "Bridges must join existing wires of distinct fragments, and every "
      "fragment must reach the input array through them";
  c.default_severity = severity::error;
  c.needs_partitioned = true;
  c.run = check_bridges;
  checks.push_back(c);

  c = {};
  c.id = "PAR003";
  c.name = "stitched-equivalence";
  c.description =
      "Each output's stitched sneak-path function must equal its spec BDD";
  c.default_severity = severity::error;
  c.needs_partitioned_spec = true;
  c.run = check_stitched_equivalence;
  checks.push_back(c);

  return checks;
}

}  // namespace compact::verify
