// Diagnostics engine for the static design analyzer (compact-verify).
//
// Every check reports findings as `diagnostic` records: a stable check ID
// (e.g. "LBL001"), a severity, a human-readable message, an optional
// suggested fix, and anchors naming the design entities involved (a BDD
// graph node, a crossbar row/column/junction, an output port). A `report`
// collects them and exports machine-readable views: a plain JSON dump for
// tooling, and SARIF 2.1.0 for GitHub code scanning.
//
// This header deliberately depends only on util/ so that core/ can hold a
// report in its synthesis results without a dependency cycle; the checks
// themselves (which depend on core/, xbar/ and bdd/) live in the sibling
// compact_verify library.
#pragma once

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace compact::verify {

// --- severities -------------------------------------------------------------

enum class severity : int { note = 0, warning = 1, error = 2 };

/// "note", "warning" or "error" (also the SARIF result level).
[[nodiscard]] const char* severity_name(severity s);

/// Inverse of severity_name; nullopt for unknown text.
[[nodiscard]] std::optional<severity> parse_severity(std::string_view text);

// --- design-entity anchors --------------------------------------------------

enum class entity_kind : int {
  design,    // the whole artifact
  node,      // BDD graph vertex (index)
  row,       // crossbar wordline (index)
  column,    // crossbar bitline (index)
  junction,  // memristor at (index, column)
  output,    // named output port
  variable,  // Boolean input variable (index)
};

struct entity {
  entity_kind kind = entity_kind::design;
  int index = -1;    // node/row/column/junction-row/variable index
  int column = -1;   // junction column (kind == junction only)
  std::string name;  // output name (kind == output only)
};

[[nodiscard]] entity node_entity(int index);
[[nodiscard]] entity row_entity(int index);
[[nodiscard]] entity column_entity(int index);
[[nodiscard]] entity junction_entity(int row, int column);
[[nodiscard]] entity output_entity(std::string name);
[[nodiscard]] entity variable_entity(int index);

/// Human-readable rendering, e.g. "junction (3, 7)" or "output 'sum'".
[[nodiscard]] std::string to_string(const entity& e);

// --- diagnostics ------------------------------------------------------------

struct diagnostic {
  std::string check_id;  // stable, e.g. "XBR004"
  severity level = severity::error;
  std::string message;
  std::string fix;  // suggested fix; empty when none applies
  std::vector<entity> anchors;
};

/// The outcome of one analyzer run: every diagnostic emitted plus the IDs of
/// the checks that actually ran (so "clean" is distinguishable from
/// "skipped for missing artifacts").
class report {
 public:
  void add(diagnostic d);
  void mark_check_run(std::string check_id);

  [[nodiscard]] const std::vector<diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] const std::vector<std::string>& checks_run() const {
    return checks_run_;
  }

  [[nodiscard]] std::size_t count(severity level) const;
  [[nodiscard]] std::size_t error_count() const {
    return count(severity::error);
  }
  [[nodiscard]] std::size_t warning_count() const {
    return count(severity::warning);
  }
  [[nodiscard]] std::size_t note_count() const {
    return count(severity::note);
  }

  /// True when no diagnostic reaches `at_or_above`. The default treats
  /// notes as advisory: a design is clean when it has no warnings/errors.
  [[nodiscard]] bool clean(severity at_or_above = severity::warning) const;

  /// True when some diagnostic came from the given check.
  [[nodiscard]] bool has_check(const std::string& check_id) const;
  [[nodiscard]] std::vector<const diagnostic*> by_check(
      const std::string& check_id) const;

 private:
  std::vector<diagnostic> diagnostics_;
  std::vector<std::string> checks_run_;
};

/// The `compact_cli lint` exit-code contract: 1 when any diagnostic is at or
/// above `fail_on`, 0 otherwise. (2 stays reserved for usage errors and 3
/// for infeasible synthesis, matching the rest of the CLI.)
[[nodiscard]] int lint_exit_code(const report& r, severity fail_on);

// --- machine-readable export ------------------------------------------------

/// One JSON object: {"diagnostics": [...], "summary": {...}, "checks_run":
/// [...]} — the lint --json artifact.
void write_json(const report& r, std::ostream& os);

/// Rule metadata for the SARIF `tool.driver.rules` table; the analyzer fills
/// this from its check registry.
struct sarif_rule {
  std::string id;           // "LBL001"
  std::string name;         // "labeling-feasibility"
  std::string description;  // one-liner
  severity default_severity = severity::error;
};

struct sarif_options {
  std::string tool_name = "compact-verify";
  std::string tool_version = "1.0.0";
  std::string information_uri =
      "https://github.com/compact/compact/blob/main/docs/static_analysis.md";
  /// URI of the analyzed artifact (netlist or .xbar path). When set, every
  /// result carries a physicalLocation so GitHub code scanning can anchor
  /// it; logical locations (rows, nodes, junctions) are always emitted.
  std::string artifact_uri;
  std::vector<sarif_rule> rules;
};

/// SARIF 2.1.0 document (one run). Valid against the OASIS 2.1.0 schema;
/// tools/check_sarif.py and tests/diagnostics_test.cpp pin the structure.
void write_sarif(const report& r, const sarif_options& options,
                 std::ostream& os);

}  // namespace compact::verify
