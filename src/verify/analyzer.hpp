// Entry point of the static design analyzer: run every applicable check
// over a set of pipeline artifacts and collect the diagnostics.
#pragma once

#include <string>
#include <vector>

#include "verify/checks.hpp"
#include "verify/diagnostics.hpp"

namespace compact::verify {

struct analyzer_options {
  /// Run the EQVxxx symbolic-equivalence checks (the most expensive family;
  /// everything else is linear in the design size).
  bool equivalence = true;
  /// Check IDs to skip, e.g. {"XBR005"}.
  std::vector<std::string> disabled;
};

/// Run all checks whose artifact requirements `a` satisfies (minus
/// `options.disabled`) and return the combined report. Each executed check
/// is recorded via report::mark_check_run and instrumented with a trace
/// span and the `verify.checks_run` / `verify.diagnostics` metrics.
[[nodiscard]] report analyze(const artifacts& a,
                             const analyzer_options& options = {});

/// SARIF rule table for the full registry, for write_sarif.
[[nodiscard]] std::vector<sarif_rule> registry_rules();

}  // namespace compact::verify
