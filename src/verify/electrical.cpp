#include "verify/electrical.hpp"

#include <algorithm>
#include <deque>

#include "util/trace.hpp"

namespace compact::verify {
namespace {

// The shared resistive-network view: every nanowire of every fragment is one
// node (rows first, then columns, fragment by fragment), every non-off
// junction is a device edge, every inter-array bridge a bridge edge. The
// single-array overload builds the degenerate one-fragment version.
struct wire_graph {
  struct edge {
    int a = 0;
    int b = 0;
    bool bridge = false;
  };
  struct sensed_output {
    std::string name;
    int array = 0;
    int row = 0;
    int wire = 0;
  };

  int wires = 0;
  int input_wire = -1;
  std::vector<edge> edges;
  std::vector<std::vector<int>> incident;  // wire -> edge indices
  std::vector<sensed_output> outputs;
  std::vector<bool> sensed;  // wire carries a sensing resistor

  void add_edge(int a, int b, bool bridge) {
    const int id = static_cast<int>(edges.size());
    edges.push_back({a, b, bridge});
    incident[static_cast<std::size_t>(a)].push_back(id);
    incident[static_cast<std::size_t>(b)].push_back(id);
  }
};

void add_fragment(wire_graph& g, const xbar::crossbar& fragment, int array,
                  int row_offset, int column_offset) {
  for (int r = 0; r < fragment.rows(); ++r)
    for (int c = 0; c < fragment.columns(); ++c) {
      if (fragment.at(r, c).kind == xbar::literal_kind::off) continue;
      g.add_edge(row_offset + r, column_offset + c, false);
    }
  if (fragment.input_row() >= 0) g.input_wire = row_offset + fragment.input_row();
  for (const xbar::output_port& port : fragment.outputs()) {
    if (port.row < 0 || port.row >= fragment.rows()) continue;
    const int wire = row_offset + port.row;
    g.outputs.push_back({port.name, array, port.row, wire});
    g.sensed[static_cast<std::size_t>(wire)] = true;
  }
}

wire_graph build_graph(const xbar::crossbar& design) {
  wire_graph g;
  g.wires = design.rows() + design.columns();
  g.incident.resize(static_cast<std::size_t>(g.wires));
  g.sensed.assign(static_cast<std::size_t>(g.wires), false);
  add_fragment(g, design, 0, 0, design.rows());
  return g;
}

wire_graph build_graph(const xbar::partitioned_design& design) {
  wire_graph g;
  std::vector<int> offset(static_cast<std::size_t>(design.array_count()), 0);
  for (int f = 0; f < design.array_count(); ++f) {
    offset[static_cast<std::size_t>(f)] = g.wires;
    g.wires += design.fragment(f).rows() + design.fragment(f).columns();
  }
  g.incident.resize(static_cast<std::size_t>(g.wires));
  g.sensed.assign(static_cast<std::size_t>(g.wires), false);
  for (int f = 0; f < design.array_count(); ++f)
    add_fragment(g, design.fragment(f), f, offset[static_cast<std::size_t>(f)],
                 offset[static_cast<std::size_t>(f)] +
                     design.fragment(f).rows());
  const auto wire_of = [&](const xbar::wire_ref& w) {
    const int base = offset[static_cast<std::size_t>(w.array)];
    return w.kind == xbar::wire_kind::row
               ? base + w.index
               : base + design.fragment(w.array).rows() + w.index;
  };
  for (const xbar::bridge& b : design.connections()) {
    if (b.a.array < 0 || b.a.array >= design.array_count() || b.b.array < 0 ||
        b.b.array >= design.array_count())
      continue;  // malformed bridge; PAR002 flags it
    const int wa = wire_of(b.a);
    const int wb = wire_of(b.b);
    if (wa < 0 || wa >= g.wires || wb < 0 || wb >= g.wires) continue;
    g.add_edge(wa, wb, true);
  }
  return g;
}

/// 0/1-weighted BFS distance in *device* hops from `source` (bridges are
/// free). -1 for unreachable wires.
std::vector<int> device_distance(const wire_graph& g, int source) {
  std::vector<int> dist(static_cast<std::size_t>(g.wires), -1);
  if (source < 0) return dist;
  std::deque<int> frontier;
  dist[static_cast<std::size_t>(source)] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const int w = frontier.front();
    frontier.pop_front();
    for (const int e : g.incident[static_cast<std::size_t>(w)]) {
      const wire_graph::edge& edge = g.edges[static_cast<std::size_t>(e)];
      const int other = edge.a == w ? edge.b : edge.a;
      const int d = dist[static_cast<std::size_t>(w)] + (edge.bridge ? 0 : 1);
      if (dist[static_cast<std::size_t>(other)] != -1 &&
          dist[static_cast<std::size_t>(other)] <= d)
        continue;
      dist[static_cast<std::size_t>(other)] = d;
      if (edge.bridge)
        frontier.push_front(other);
      else
        frontier.push_back(other);
    }
  }
  return dist;
}

/// Bounded DFS enumeration of simple input-to-output paths inside the
/// corridor. Counts paths up to options.max_sneak_paths with at most
/// options.max_sneak_depth device hops each; sets `truncated` whenever a
/// budget cut makes the count a lower bound instead of an exact total.
struct sneak_count {
  int paths = 0;
  bool truncated = false;
};

void sneak_dfs(const wire_graph& g, const std::vector<bool>& corridor,
               std::vector<bool>& visited, int wire, int target, int depth,
               const electrical_options& options, long long& budget,
               sneak_count& out) {
  if (out.paths >= options.max_sneak_paths || budget <= 0) {
    out.truncated = true;
    return;
  }
  if (wire == target) {
    ++out.paths;
    return;
  }
  visited[static_cast<std::size_t>(wire)] = true;
  for (const int e : g.incident[static_cast<std::size_t>(wire)]) {
    const wire_graph::edge& edge = g.edges[static_cast<std::size_t>(e)];
    const int other = edge.a == wire ? edge.b : edge.a;
    if (!corridor[static_cast<std::size_t>(other)] ||
        visited[static_cast<std::size_t>(other)])
      continue;
    const int next_depth = depth + (edge.bridge ? 0 : 1);
    if (next_depth > options.max_sneak_depth) {
      out.truncated = true;
      continue;
    }
    --budget;
    sneak_dfs(g, corridor, visited, other, target, next_depth, options, budget,
              out);
    if (out.paths >= options.max_sneak_paths) break;
  }
  visited[static_cast<std::size_t>(wire)] = false;
}

electrical_report analyze_graph(const wire_graph& g,
                                const electrical_options& options) {
  const trace_span span("analyze_electrical", "verify");
  electrical_report report;
  const analog::device_model& model = options.model;
  const std::vector<int> from_input = device_distance(g, g.input_wire);

  bool any_reachable = false;
  for (const wire_graph::sensed_output& port : g.outputs) {
    output_margin m;
    m.name = port.name;
    m.array = port.array;
    m.row = port.row;
    m.min_on_devices = from_input[static_cast<std::size_t>(port.wire)];
    if (m.min_on_devices < 0) {
      // No resistive path at all: the output can neither read 1 nor leak.
      // The conduction-graph checks (XBR/EQV) own that finding.
      m.safe = true;
      report.outputs.push_back(std::move(m));
      continue;
    }

    // Corridor: wires both reachable from the input and co-reachable from
    // this output. Every simple conduction path is confined to it.
    const std::vector<int> to_output = device_distance(g, port.wire);
    std::vector<bool> corridor(static_cast<std::size_t>(g.wires), false);
    int corridor_wires = 0;
    int corridor_devices = 0;
    int corridor_bridges = 0;
    int sensed_loads = 0;
    for (int w = 0; w < g.wires; ++w) {
      if (from_input[static_cast<std::size_t>(w)] < 0 ||
          to_output[static_cast<std::size_t>(w)] < 0)
        continue;
      corridor[static_cast<std::size_t>(w)] = true;
      ++corridor_wires;
      if (g.sensed[static_cast<std::size_t>(w)] && w != port.wire)
        ++sensed_loads;
    }
    for (const wire_graph::edge& e : g.edges) {
      if (!corridor[static_cast<std::size_t>(e.a)] ||
          !corridor[static_cast<std::size_t>(e.b)])
        continue;
      if (e.bridge)
        ++corridor_bridges;
      else
        ++corridor_devices;
    }

    // A simple path over N corridor wires has at most N - 1 edges, and at
    // most all the corridor's device (bridge) edges.
    const int hop_cap = std::max(corridor_wires - 1, 0);
    m.worst_on_devices = std::min(corridor_devices, hop_cap);
    m.bridge_crossings = std::min(corridor_bridges, hop_cap);
    m.worst_on_resistance = m.worst_on_devices * model.r_on +
                            m.bridge_crossings * options.bridge_resistance;

    sneak_count sneak;
    {
      std::vector<bool> visited(static_cast<std::size_t>(g.wires), false);
      long long budget = 64LL * options.max_sneak_paths;
      sneak_dfs(g, corridor, visited, g.input_wire, port.wire, 0, options,
                budget, sneak);
    }
    m.sneak_paths = sneak.paths;
    m.sneak_truncated = sneak.truncated;

    // Parallel leakage paths all enter the output row through distinct
    // corridor edges; the exact enumeration tightens the bound when it
    // completed within budget.
    int entry_degree = 0;
    for (const int e : g.incident[static_cast<std::size_t>(port.wire)]) {
      const wire_graph::edge& edge = g.edges[static_cast<std::size_t>(e)];
      const int other = edge.a == port.wire ? edge.b : edge.a;
      if (corridor[static_cast<std::size_t>(other)]) ++entry_degree;
    }
    m.parallel_paths = std::max(
        1, sneak.truncated ? entry_degree : std::min(entry_degree, m.sneak_paths));
    m.best_off_resistance = model.r_off / m.parallel_paths;
    m.margin_ratio =
        m.best_off_resistance / std::max(m.worst_on_resistance, model.r_on);

    // Divider bounds. Every other sensed wordline in the corridor could load
    // the ON path; lump their sensing resistors in parallel with the
    // output's own (pessimistic — real shunts sit upstream of part of the
    // path resistance).
    const double r_load = model.r_sense / (1 + sensed_loads);
    m.min_high_voltage =
        model.v_in * r_load / (r_load + m.worst_on_resistance);
    m.max_low_voltage =
        model.v_in * model.r_sense / (model.r_sense + m.best_off_resistance);

    const double sense_level = model.threshold * model.v_in;
    m.safe = m.margin_ratio >= options.margin_threshold &&
             m.min_high_voltage >= sense_level &&
             m.max_low_voltage < sense_level;

    if (!any_reachable || m.margin_ratio < report.min_margin_ratio)
      report.min_margin_ratio = m.margin_ratio;
    any_reachable = true;
    report.safe = report.safe && m.safe;
    report.outputs.push_back(std::move(m));
  }
  if (!any_reachable) report.min_margin_ratio = 0.0;
  return report;
}

}  // namespace

electrical_report analyze_electrical(const xbar::crossbar& design,
                                     const electrical_options& options) {
  return analyze_graph(build_graph(design), options);
}

electrical_report analyze_electrical(const xbar::partitioned_design& design,
                                     const electrical_options& options) {
  return analyze_graph(build_graph(design), options);
}

}  // namespace compact::verify
