#include "verify/mutate.hpp"

#include <algorithm>
#include <set>

#include "util/trace.hpp"

namespace compact::verify {

using core::vh_label;
using xbar::literal_kind;

const char* mutation_kind_name(mutation_kind kind) {
  switch (kind) {
    case mutation_kind::label_flip:
      return "label_flip";
    case mutation_kind::bridge_drop:
      return "bridge_drop";
    case mutation_kind::literal_flip:
      return "literal_flip";
    case mutation_kind::literal_retarget:
      return "literal_retarget";
    case mutation_kind::device_drop:
      return "device_drop";
  }
  return "?";
}

std::string mutation::describe() const {
  std::string text = mutation_kind_name(kind);
  if (kind == mutation_kind::label_flip)
    return text + " node " + std::to_string(node);
  return text + " junction (" + std::to_string(row) + ", " +
         std::to_string(column) + ")";
}

namespace {

/// Deterministic stride sample: keep at most `limit` entries spread evenly
/// across the candidate list. No RNG, so self-test runs are reproducible.
void sample_into(std::vector<mutation>& out,
                 const std::vector<mutation>& candidates, std::size_t limit) {
  if (candidates.size() <= limit) {
    out.insert(out.end(), candidates.begin(), candidates.end());
    return;
  }
  for (std::size_t i = 0; i < limit; ++i)
    out.push_back(candidates[i * candidates.size() / limit]);
}

}  // namespace

std::vector<mutation> enumerate_mutations(const artifacts& a,
                                          std::size_t limit_per_kind) {
  std::vector<mutation> label_flips;
  std::vector<mutation> bridge_drops;
  std::vector<mutation> literal_flips;
  std::vector<mutation> retargets;
  std::vector<mutation> device_drops;

  if (a.labels != nullptr)
    for (std::size_t v = 0; v < a.labels->label_of.size(); ++v)
      label_flips.push_back(
          {mutation_kind::label_flip, static_cast<int>(v), -1, -1});

  if (a.design != nullptr) {
    const int variables = a.resolve_variable_count();
    for (int r = 0; r < a.design->rows(); ++r) {
      for (int c = 0; c < a.design->columns(); ++c) {
        const xbar::device& d = a.design->at(r, c);
        if (d.kind == literal_kind::on)
          bridge_drops.push_back({mutation_kind::bridge_drop, -1, r, c});
        if (d.kind != literal_kind::positive &&
            d.kind != literal_kind::negative)
          continue;
        literal_flips.push_back({mutation_kind::literal_flip, -1, r, c});
        device_drops.push_back({mutation_kind::device_drop, -1, r, c});
        if (variables >= 2)
          retargets.push_back({mutation_kind::literal_retarget, -1, r, c});
      }
    }
  }

  std::vector<mutation> out;
  sample_into(out, label_flips, limit_per_kind);
  sample_into(out, bridge_drops, limit_per_kind);
  sample_into(out, literal_flips, limit_per_kind);
  sample_into(out, retargets, limit_per_kind);
  sample_into(out, device_drops, limit_per_kind);
  return out;
}

bool apply_mutation(const artifacts& base, const mutation& m,
                    xbar::crossbar& design, core::labeling& labels) {
  switch (m.kind) {
    case mutation_kind::label_flip: {
      if (m.node < 0 ||
          static_cast<std::size_t>(m.node) >= labels.label_of.size())
        return false;
      vh_label& l = labels.label_of[static_cast<std::size_t>(m.node)];
      // Deterministic cycle V -> H -> VH -> V: every flip changes the
      // node's nanowire demands, so a consistent mapping cannot survive.
      switch (l) {
        case vh_label::v:
          l = vh_label::h;
          break;
        case vh_label::h:
          l = vh_label::vh;
          break;
        case vh_label::vh:
          l = vh_label::v;
          break;
      }
      return true;
    }
    case mutation_kind::bridge_drop: {
      if (m.row < 0 || m.row >= design.rows() || m.column < 0 ||
          m.column >= design.columns())
        return false;
      if (design.at(m.row, m.column).kind != literal_kind::on) return false;
      design.set(m.row, m.column, {literal_kind::off, -1});
      return true;
    }
    case mutation_kind::literal_flip: {
      if (m.row < 0 || m.row >= design.rows() || m.column < 0 ||
          m.column >= design.columns())
        return false;
      const xbar::device d = design.at(m.row, m.column);
      if (d.kind == literal_kind::positive)
        design.set(m.row, m.column, {literal_kind::negative, d.variable});
      else if (d.kind == literal_kind::negative)
        design.set(m.row, m.column, {literal_kind::positive, d.variable});
      else
        return false;
      return true;
    }
    case mutation_kind::literal_retarget: {
      if (m.row < 0 || m.row >= design.rows() || m.column < 0 ||
          m.column >= design.columns())
        return false;
      const xbar::device d = design.at(m.row, m.column);
      if (d.kind != literal_kind::positive &&
          d.kind != literal_kind::negative)
        return false;
      const int variables = base.resolve_variable_count();
      if (variables < 2) return false;
      design.set(m.row, m.column,
                 {d.kind, (d.variable + 1) % variables});
      return true;
    }
    case mutation_kind::device_drop: {
      if (m.row < 0 || m.row >= design.rows() || m.column < 0 ||
          m.column >= design.columns())
        return false;
      const xbar::device d = design.at(m.row, m.column);
      if (d.kind != literal_kind::positive &&
          d.kind != literal_kind::negative)
        return false;
      design.set(m.row, m.column, {literal_kind::off, -1});
      return true;
    }
  }
  return false;
}

self_test_result run_self_test(const artifacts& a,
                               const analyzer_options& options,
                               std::size_t limit_per_kind) {
  const trace_span span("verify.self_test", "verify");
  self_test_result result;

  // Errors the pristine design already triggers don't count as kills.
  std::set<std::string> baseline_errors;
  {
    const report baseline = analyze(a, options);
    for (const diagnostic& d : baseline.diagnostics())
      if (d.level == severity::error) baseline_errors.insert(d.check_id);
  }

  for (const mutation& m : enumerate_mutations(a, limit_per_kind)) {
    xbar::crossbar design =
        a.design != nullptr ? *a.design : xbar::crossbar(1, 1);
    core::labeling labels =
        a.labels != nullptr ? *a.labels : core::labeling{};
    if (!apply_mutation(a, m, design, labels)) continue;

    artifacts mutated = a;
    if (a.design != nullptr) mutated.design = &design;
    if (a.labels != nullptr) mutated.labels = &labels;

    self_test_outcome outcome;
    outcome.m = m;
    const report mutated_report = analyze(mutated, options);
    std::set<std::string> fired;
    for (const diagnostic& d : mutated_report.diagnostics())
      if (d.level == severity::error &&
          baseline_errors.count(d.check_id) == 0)
        fired.insert(d.check_id);
    outcome.killed = !fired.empty();
    outcome.triggered_checks.assign(fired.begin(), fired.end());

    ++result.total;
    if (outcome.killed) ++result.killed;
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace compact::verify
