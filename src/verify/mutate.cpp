#include "verify/mutate.hpp"

#include <algorithm>
#include <set>

#include "util/trace.hpp"

namespace compact::verify {

using core::vh_label;
using xbar::literal_kind;

const char* mutation_kind_name(mutation_kind kind) {
  switch (kind) {
    case mutation_kind::label_flip:
      return "label_flip";
    case mutation_kind::bridge_drop:
      return "bridge_drop";
    case mutation_kind::literal_flip:
      return "literal_flip";
    case mutation_kind::literal_retarget:
      return "literal_retarget";
    case mutation_kind::device_drop:
      return "device_drop";
    case mutation_kind::connection_drop:
      return "connection_drop";
    case mutation_kind::ron_degrade:
      return "ron_degrade";
  }
  return "?";
}

std::string mutation::describe() const {
  std::string text = mutation_kind_name(kind);
  if (kind == mutation_kind::label_flip)
    return text + " node " + std::to_string(node);
  if (kind == mutation_kind::connection_drop)
    return text + " bridge " + std::to_string(connection);
  if (kind == mutation_kind::ron_degrade) return text;
  text += " junction (" + std::to_string(row) + ", " +
          std::to_string(column) + ")";
  if (array >= 0) text += " of array " + std::to_string(array);
  return text;
}

namespace {

/// Deterministic stride sample: keep at most `limit` entries spread evenly
/// across the candidate list. No RNG, so self-test runs are reproducible.
void sample_into(std::vector<mutation>& out,
                 const std::vector<mutation>& candidates, std::size_t limit) {
  if (candidates.size() <= limit) {
    out.insert(out.end(), candidates.begin(), candidates.end());
    return;
  }
  for (std::size_t i = 0; i < limit; ++i)
    out.push_back(candidates[i * candidates.size() / limit]);
}

struct device_candidates {
  std::vector<mutation> bridge_drops;
  std::vector<mutation> literal_flips;
  std::vector<mutation> retargets;
  std::vector<mutation> device_drops;
};

void enumerate_devices(const xbar::crossbar& design, int array, int variables,
                       device_candidates& out) {
  for (int r = 0; r < design.rows(); ++r) {
    for (int c = 0; c < design.columns(); ++c) {
      const xbar::device& d = design.at(r, c);
      mutation m;
      m.row = r;
      m.column = c;
      m.array = array;
      if (d.kind == literal_kind::on) {
        m.kind = mutation_kind::bridge_drop;
        out.bridge_drops.push_back(m);
      }
      if (d.kind != literal_kind::positive && d.kind != literal_kind::negative)
        continue;
      m.kind = mutation_kind::literal_flip;
      out.literal_flips.push_back(m);
      m.kind = mutation_kind::device_drop;
      out.device_drops.push_back(m);
      if (variables >= 2) {
        m.kind = mutation_kind::literal_retarget;
        out.retargets.push_back(m);
      }
    }
  }
}

/// The crossbar a device mutation targets: a partitioned fragment when
/// `array` names one, else the single-array copy.
xbar::crossbar* target_design(const mutation& m, mutable_artifacts& out,
                              const artifacts& base) {
  if (m.array >= 0) {
    if (base.partitioned == nullptr || m.array >= out.partitioned.array_count())
      return nullptr;
    return &out.partitioned.fragment(m.array);
  }
  return base.design != nullptr ? &out.design : nullptr;
}

}  // namespace

std::vector<mutation> enumerate_mutations(const artifacts& a,
                                          std::size_t limit_per_kind) {
  std::vector<mutation> label_flips;
  device_candidates devices;
  std::vector<mutation> connection_drops;
  std::vector<mutation> ron_degrades;

  if (a.labels != nullptr)
    for (std::size_t v = 0; v < a.labels->label_of.size(); ++v) {
      mutation m;
      m.kind = mutation_kind::label_flip;
      m.node = static_cast<int>(v);
      label_flips.push_back(m);
    }

  const int variables = a.resolve_variable_count();
  if (a.design != nullptr) enumerate_devices(*a.design, -1, variables, devices);
  if (a.partitioned != nullptr) {
    for (int f = 0; f < a.partitioned->array_count(); ++f)
      enumerate_devices(a.partitioned->fragment(f), f, variables, devices);
    for (std::size_t b = 0; b < a.partitioned->connections().size(); ++b) {
      mutation m;
      m.kind = mutation_kind::connection_drop;
      m.connection = static_cast<int>(b);
      connection_drops.push_back(m);
    }
  }
  if (a.electrical != nullptr && a.has_conduction_graph()) {
    mutation m;
    m.kind = mutation_kind::ron_degrade;
    ron_degrades.push_back(m);
  }

  std::vector<mutation> out;
  sample_into(out, label_flips, limit_per_kind);
  sample_into(out, devices.bridge_drops, limit_per_kind);
  sample_into(out, devices.literal_flips, limit_per_kind);
  sample_into(out, devices.retargets, limit_per_kind);
  sample_into(out, devices.device_drops, limit_per_kind);
  sample_into(out, connection_drops, limit_per_kind);
  sample_into(out, ron_degrades, limit_per_kind);
  return out;
}

bool apply_mutation(const artifacts& base, const mutation& m,
                    mutable_artifacts& out) {
  switch (m.kind) {
    case mutation_kind::label_flip: {
      if (m.node < 0 ||
          static_cast<std::size_t>(m.node) >= out.labels.label_of.size())
        return false;
      vh_label& l = out.labels.label_of[static_cast<std::size_t>(m.node)];
      // Deterministic cycle V -> H -> VH -> V: every flip changes the
      // node's nanowire demands, so a consistent mapping cannot survive.
      switch (l) {
        case vh_label::v:
          l = vh_label::h;
          break;
        case vh_label::h:
          l = vh_label::vh;
          break;
        case vh_label::vh:
          l = vh_label::v;
          break;
      }
      return true;
    }
    case mutation_kind::bridge_drop: {
      xbar::crossbar* design = target_design(m, out, base);
      if (design == nullptr || m.row < 0 || m.row >= design->rows() ||
          m.column < 0 || m.column >= design->columns())
        return false;
      if (design->at(m.row, m.column).kind != literal_kind::on) return false;
      design->set(m.row, m.column, {literal_kind::off, -1});
      return true;
    }
    case mutation_kind::literal_flip: {
      xbar::crossbar* design = target_design(m, out, base);
      if (design == nullptr || m.row < 0 || m.row >= design->rows() ||
          m.column < 0 || m.column >= design->columns())
        return false;
      const xbar::device d = design->at(m.row, m.column);
      if (d.kind == literal_kind::positive)
        design->set(m.row, m.column, {literal_kind::negative, d.variable});
      else if (d.kind == literal_kind::negative)
        design->set(m.row, m.column, {literal_kind::positive, d.variable});
      else
        return false;
      return true;
    }
    case mutation_kind::literal_retarget: {
      xbar::crossbar* design = target_design(m, out, base);
      if (design == nullptr || m.row < 0 || m.row >= design->rows() ||
          m.column < 0 || m.column >= design->columns())
        return false;
      const xbar::device d = design->at(m.row, m.column);
      if (d.kind != literal_kind::positive &&
          d.kind != literal_kind::negative)
        return false;
      const int variables = base.resolve_variable_count();
      if (variables < 2) return false;
      design->set(m.row, m.column, {d.kind, (d.variable + 1) % variables});
      return true;
    }
    case mutation_kind::device_drop: {
      xbar::crossbar* design = target_design(m, out, base);
      if (design == nullptr || m.row < 0 || m.row >= design->rows() ||
          m.column < 0 || m.column >= design->columns())
        return false;
      const xbar::device d = design->at(m.row, m.column);
      if (d.kind != literal_kind::positive &&
          d.kind != literal_kind::negative)
        return false;
      design->set(m.row, m.column, {literal_kind::off, -1});
      return true;
    }
    case mutation_kind::connection_drop: {
      if (base.partitioned == nullptr || m.connection < 0 ||
          static_cast<std::size_t>(m.connection) >=
              out.partitioned.connections().size())
        return false;
      // partitioned_design only grows; rebuild it without the severed
      // bridge.
      xbar::partitioned_design cut;
      for (const xbar::crossbar& fragment : out.partitioned.fragments())
        cut.add_fragment(fragment);
      for (std::size_t b = 0; b < out.partitioned.connections().size(); ++b) {
        if (b == static_cast<std::size_t>(m.connection)) continue;
        const xbar::bridge& bridge = out.partitioned.connections()[b];
        cut.add_connection(bridge.a, bridge.b);
      }
      out.partitioned = std::move(cut);
      return true;
    }
    case mutation_kind::ron_degrade: {
      if (base.electrical == nullptr) return false;
      // Collapse the device corner: R_on rises to R_off, so no ON path can
      // outconduct the leakage bound and ELC001 must escalate to an error.
      out.electrical.model.r_on = out.electrical.model.r_off;
      return true;
    }
  }
  return false;
}

self_test_result run_self_test(const artifacts& a,
                               const analyzer_options& options,
                               std::size_t limit_per_kind) {
  const trace_span span("verify.self_test", "verify");
  self_test_result result;

  // Errors the pristine design already triggers don't count as kills.
  std::set<std::string> baseline_errors;
  {
    const report baseline = analyze(a, options);
    for (const diagnostic& d : baseline.diagnostics())
      if (d.level == severity::error) baseline_errors.insert(d.check_id);
  }

  for (const mutation& m : enumerate_mutations(a, limit_per_kind)) {
    mutable_artifacts mutated_state;
    if (a.design != nullptr) mutated_state.design = *a.design;
    if (a.labels != nullptr) mutated_state.labels = *a.labels;
    if (a.partitioned != nullptr) mutated_state.partitioned = *a.partitioned;
    if (a.electrical != nullptr) mutated_state.electrical = *a.electrical;
    if (!apply_mutation(a, m, mutated_state)) continue;

    artifacts mutated = a;
    mutated.cache = nullptr;  // engine results of the pristine run stay put
    if (a.design != nullptr) mutated.design = &mutated_state.design;
    if (a.labels != nullptr) mutated.labels = &mutated_state.labels;
    if (a.partitioned != nullptr)
      mutated.partitioned = &mutated_state.partitioned;
    if (a.electrical != nullptr)
      mutated.electrical = &mutated_state.electrical;

    self_test_outcome outcome;
    outcome.m = m;
    const report mutated_report = analyze(mutated, options);
    std::set<std::string> fired;
    for (const diagnostic& d : mutated_report.diagnostics())
      if (d.level == severity::error &&
          baseline_errors.count(d.check_id) == 0)
        fired.insert(d.check_id);
    outcome.killed = !fired.empty();
    outcome.triggered_checks.assign(fired.begin(), fired.end());

    ++result.total;
    if (outcome.killed) ++result.killed;
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace compact::verify
