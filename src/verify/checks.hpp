// The check registry of the static design analyzer.
//
// A check is a pure function over the pipeline's artifacts that emits
// diagnostics; it never mutates anything and never simulates an input
// vector. Checks declare which artifacts they need and are skipped (not
// failed) when those artifacts are absent — linting a bare .xbar file runs
// the structural and equivalence checks, a full synthesis context runs all
// of them.
//
// Adding a check (see docs/static_analysis.md for the walkthrough):
//  1. pick the next free ID in the right family (LBLxxx labeling, XBRxxx
//     crossbar structure, MAPxxx mapping consistency, EQVxxx equivalence);
//  2. implement it in the matching checks_*.cpp and append a descriptor to
//     that file's local list;
//  3. add a positive + negative test in tests/verify_test.cpp and, if the
//     check guards against a plausible synthesis bug, a mutation in
//     verify/mutate.cpp that only this check catches.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "core/bdd_graph.hpp"
#include "core/labeling.hpp"
#include "core/mapping.hpp"
#include "verify/criticality.hpp"
#include "verify/diagnostics.hpp"
#include "verify/electrical.hpp"
#include "xbar/crossbar.hpp"
#include "xbar/partitioned.hpp"

namespace compact::verify {

/// Scratch slot the expensive engine-backed checks (ELC/FLT) fill when the
/// caller provides one, so the CLI and the api facade can export the full
/// engine results (criticality map, margin stats) without re-running the
/// analysis after analyze() returns.
struct analysis_cache {
  std::optional<electrical_report> electrical;
  std::optional<criticality_report> criticality;
};

/// Everything the analyzer may look at, all non-owning and optional except
/// the design itself. `variable_count < 0` means "infer from the spec
/// manager, falling back to the largest device variable".
struct artifacts {
  const xbar::crossbar* design = nullptr;
  /// A multi-array design (PARxxx checks). Independent of `design`: linting
  /// a partitioned artifact sets only this.
  const xbar::partitioned_design* partitioned = nullptr;
  const core::bdd_graph* graph = nullptr;
  const core::labeling* labels = nullptr;
  const core::mapping_result* mapping = nullptr;
  const bdd::manager* spec = nullptr;
  const std::vector<bdd::node_handle>* spec_roots = nullptr;
  const std::vector<std::string>* spec_names = nullptr;
  /// Opting into the ELCxxx electrical-integrity checks: non-null enables
  /// them and supplies the device corner + margin threshold.
  const electrical_options* electrical = nullptr;
  /// Opting into the FLTxxx fault-criticality checks (symbolic, same cost
  /// profile as the equivalence family — one fixpoint per junction fault).
  const criticality_options* criticality = nullptr;
  /// Optional scratch for engine results; may be null.
  analysis_cache* cache = nullptr;
  int variable_count = -1;

  /// The effective input-variable count: explicit, else the spec's, else
  /// inferred from the devices (-1 when nothing constrains it).
  [[nodiscard]] int resolve_variable_count() const;
  [[nodiscard]] bool has_labeling() const {
    return graph != nullptr && labels != nullptr;
  }
  [[nodiscard]] bool has_mapping() const {
    return has_labeling() && mapping != nullptr && design != nullptr;
  }
  [[nodiscard]] bool has_spec() const {
    return design != nullptr && spec != nullptr && spec_roots != nullptr &&
           spec_names != nullptr;
  }
  [[nodiscard]] bool has_partitioned() const { return partitioned != nullptr; }
  [[nodiscard]] bool has_partitioned_spec() const {
    return partitioned != nullptr && spec != nullptr &&
           spec_roots != nullptr && spec_names != nullptr;
  }
  /// ELC/FLT run on whichever conduction graph is present.
  [[nodiscard]] bool has_conduction_graph() const {
    return design != nullptr || partitioned != nullptr;
  }
  [[nodiscard]] bool has_electrical() const {
    return electrical != nullptr && has_conduction_graph();
  }
  [[nodiscard]] bool has_criticality() const {
    return criticality != nullptr && has_conduction_graph();
  }
};

struct check_descriptor {
  std::string id;           // stable, e.g. "LBL001"
  std::string name;         // kebab-case, e.g. "labeling-feasibility"
  std::string description;  // one-liner (SARIF rule shortDescription)
  severity default_severity = severity::error;
  // Artifact requirements; a check runs only when all it needs are present.
  bool needs_design = false;
  bool needs_labeling = false;  // graph + labels
  bool needs_mapping = false;   // graph + labels + mapping + design
  bool needs_spec = false;      // design + spec manager/roots/names
  bool needs_partitioned = false;       // partitioned design
  bool needs_partitioned_spec = false;  // partitioned + spec
  bool needs_electrical = false;   // electrical options + some design
  bool needs_criticality = false;  // criticality options + some design
  // Null for a "companion" check whose findings are emitted by a sibling's
  // pass over the same artifacts (e.g. MAP003 rides on MAP002's grid diff).
  // Companions still appear in the registry for SARIF rule metadata and are
  // marked as run alongside their family.
  std::function<void(const artifacts&, report&)> run;
};

/// All registered checks, in stable ID order. The families live in
/// checks_labeling.cpp, checks_structure.cpp, checks_mapping.cpp,
/// checks_equivalence.cpp, checks_partition.cpp, checks_electrical.cpp and
/// checks_fault.cpp.
[[nodiscard]] const std::vector<check_descriptor>& all_checks();

/// Registry lookup; throws compact::error for unknown IDs.
[[nodiscard]] const check_descriptor& find_check(const std::string& id);

// Per-family contributions (internal wiring for all_checks()).
[[nodiscard]] std::vector<check_descriptor> labeling_checks();
[[nodiscard]] std::vector<check_descriptor> structure_checks();
[[nodiscard]] std::vector<check_descriptor> mapping_checks();
[[nodiscard]] std::vector<check_descriptor> equivalence_checks();
[[nodiscard]] std::vector<check_descriptor> partition_checks();
[[nodiscard]] std::vector<check_descriptor> electrical_checks();
[[nodiscard]] std::vector<check_descriptor> fault_checks();

}  // namespace compact::verify
