#include "verify/pass.hpp"

#include "core/partition.hpp"
#include "util/error.hpp"
#include "verify/analyzer.hpp"

namespace compact::verify {
namespace {

void run_verify(core::synthesis_context& ctx) {
  check(ctx.mapped.has_value(), "pipeline: verify needs a mapped design");
  artifacts a = make_artifacts(ctx);
  electrical_options electrical;
  if (ctx.options.verify_electrical) {
    electrical.margin_threshold = ctx.options.verify_margin_threshold;
    a.electrical = &electrical;
  }
  ctx.verification = analyze(a);
  const report& r = *ctx.verification;
  ctx.attribute("verdict", r.clean() ? "clean" : "dirty");
  ctx.metric("errors", static_cast<double>(r.error_count()));
  ctx.metric("warnings", static_cast<double>(r.warning_count()));
  ctx.metric("notes", static_cast<double>(r.note_count()));
  ctx.metric("checks_run", static_cast<double>(r.checks_run().size()));
}

// Stitched verification for partitioned designs (core/partition's slot):
// run the full analyzer with the partitioned artifact plus the spec, so the
// PARxxx structural checks and the stitched equivalence check all fire.
report run_partition_verify(const xbar::partitioned_design& design,
                            const bdd::manager& spec,
                            const std::vector<bdd::node_handle>& roots,
                            const std::vector<std::string>& names,
                            const core::synthesis_options& options) {
  artifacts a;
  a.partitioned = &design;
  a.spec = &spec;
  a.spec_roots = &roots;
  a.spec_names = &names;
  a.variable_count = spec.variable_count();
  electrical_options electrical;
  if (options.verify_electrical) {
    electrical.margin_threshold = options.verify_margin_threshold;
    a.electrical = &electrical;
  }
  return analyze(a);
}

// Linking the verify library is opting in: fill core's pass slots at load
// time so options.verify_design works without further ceremony.
const bool installed = install_pipeline_pass();

}  // namespace

artifacts make_artifacts(const core::synthesis_context& ctx) {
  artifacts a;
  if (ctx.mapped.has_value()) {
    a.design = &ctx.mapped->design;
    a.mapping = &*ctx.mapped;
  }
  a.graph = &ctx.graph;
  a.labels = &ctx.labels;
  a.spec = ctx.manager;
  a.spec_roots = ctx.roots;
  a.spec_names = ctx.names;
  if (ctx.manager != nullptr) a.variable_count = ctx.manager->variable_count();
  return a;
}

bool install_pipeline_pass() {
  (void)installed;
  core::set_verify_pass(run_verify);
  core::set_partition_verify(run_partition_verify);
  return true;
}

}  // namespace compact::verify
