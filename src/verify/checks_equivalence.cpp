// Symbolic-equivalence checks (EQVxxx): extract the crossbar's sneak-path
// function back into a BDD manager and compare canonical ROBDD roots
// against the specification. This is the no-simulation replacement for
// exhaustive/sampled validation — it is exact at any variable count.
#include <string>
#include <unordered_set>

#include "verify/checks.hpp"
#include "verify/extract.hpp"

namespace compact::verify {
namespace {

std::string witness_text(const std::vector<bool>& bits) {
  std::string text;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i != 0) text += ", ";
    text += "x";
    text += std::to_string(i);
    text += bits[i] ? "=1" : "=0";
  }
  return text;
}

// EQV001/EQV002 — every spec output must be realized by the crossbar and
// compute exactly the spec function. Mismatches come with a satisfying
// counterexample of the XOR of the two functions.
void check_output_functions(const artifacts& a, report& out) {
  const equivalence_report eq = check_symbolic_equivalence(
      *a.design, *a.spec, *a.spec_roots, *a.spec_names);
  for (const output_equivalence& o : eq.outputs) {
    if (!o.found) {
      diagnostic d;
      d.check_id = "EQV002";
      d.level = severity::error;
      d.message = "spec output '" + o.name +
                  "' has no sensed wordline or constant port on the crossbar";
      d.fix = "add an output port named '" + o.name + "'";
      d.anchors = {output_entity(o.name)};
      out.add(std::move(d));
      continue;
    }
    if (o.equivalent) continue;
    diagnostic d;
    d.check_id = "EQV001";
    d.level = severity::error;
    d.message = "output '" + o.name +
                "' computes a different function than its specification";
    if (!o.counterexample.empty())
      d.message +=
          "; counterexample: " + witness_text(o.counterexample) +
          " (the sneak-path evaluation and the spec BDD disagree here)";
    d.fix = "re-run synthesis for this design; the mapped crossbar no "
            "longer realizes the spec";
    d.anchors = {output_entity(o.name)};
    out.add(std::move(d));
  }
}

// EQV003 — outputs the crossbar exposes that the spec never asked for.
// Advisory: extra ports don't break the computed functions, but they
// usually indicate a stale port table.
void check_extra_outputs(const artifacts& a, report& out) {
  std::unordered_set<std::string> wanted(a.spec_names->begin(),
                                         a.spec_names->end());
  auto flag = [&](const std::string& name) {
    if (wanted.count(name) != 0) return;
    diagnostic d;
    d.check_id = "EQV003";
    d.level = severity::note;
    d.message = "crossbar exposes output '" + name +
                "' that the specification does not define";
    d.anchors = {output_entity(name)};
    out.add(std::move(d));
  };
  for (const xbar::output_port& port : a.design->outputs()) flag(port.name);
  for (const auto& [name, value] : a.design->constant_outputs()) {
    (void)value;
    flag(name);
  }
}

}  // namespace

std::vector<check_descriptor> equivalence_checks() {
  std::vector<check_descriptor> checks;
  check_descriptor c;

  c.id = "EQV001";
  c.name = "output-function-mismatch";
  c.description =
      "Each output's extracted sneak-path function must equal its spec BDD";
  c.default_severity = severity::error;
  c.needs_spec = true;
  c.run = check_output_functions;
  checks.push_back(c);

  c = {};
  c.id = "EQV002";
  c.name = "missing-output";
  c.description = "Every specification output must exist on the crossbar";
  c.default_severity = severity::error;
  c.needs_spec = true;
  c.run = nullptr;  // companion: EQV001's pass reports EQV002 findings
  checks.push_back(c);

  c = {};
  c.id = "EQV003";
  c.name = "extra-output";
  c.description =
      "Crossbar outputs absent from the specification are flagged";
  c.default_severity = severity::note;
  c.needs_spec = true;
  c.run = check_extra_outputs;
  checks.push_back(c);

  return checks;
}

}  // namespace compact::verify
