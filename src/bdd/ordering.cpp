#include "bdd/ordering.hpp"

#include <algorithm>
#include <numeric>

#include "bdd/stats.hpp"
#include "util/error.hpp"

namespace compact::bdd {
namespace {

std::size_t size_under(int input_count, const order_builder& build,
                       const std::vector<int>& order) {
  manager m(input_count);
  const std::vector<node_handle> roots = build(m, order);
  return collect_reachable(m, roots).nodes.size();
}

}  // namespace

ordering_result best_order_exhaustive(int input_count,
                                      const order_builder& build) {
  check(input_count >= 0 && input_count <= 9,
        "best_order_exhaustive: factorial search capped at 9 inputs");
  std::vector<int> order(input_count);
  std::iota(order.begin(), order.end(), 0);

  ordering_result best;
  best.order = order;
  best.node_count = size_under(input_count, build, order);
  while (std::next_permutation(order.begin(), order.end())) {
    const std::size_t size = size_under(input_count, build, order);
    if (size < best.node_count) {
      best.node_count = size;
      best.order = order;
    }
  }
  return best;
}

ordering_result best_order_hill_climb(int input_count,
                                      const order_builder& build, rng& random,
                                      int restarts, int max_rounds) {
  check(input_count >= 0, "best_order_hill_climb: negative input count");
  ordering_result best;
  best.order.resize(input_count);
  std::iota(best.order.begin(), best.order.end(), 0);
  best.node_count = size_under(input_count, build, best.order);

  for (int restart = 0; restart < restarts; ++restart) {
    std::vector<int> order(input_count);
    std::iota(order.begin(), order.end(), 0);
    if (restart > 0) {  // restart 0 climbs from the identity order
      for (int i = input_count - 1; i > 0; --i)
        std::swap(order[i],
                  order[random.next_below(static_cast<std::uint64_t>(i + 1))]);
    }
    std::size_t current = size_under(input_count, build, order);

    for (int round = 0; round < max_rounds; ++round) {
      bool improved = false;
      for (int i = 0; i + 1 < input_count; ++i) {
        std::swap(order[i], order[i + 1]);
        const std::size_t candidate = size_under(input_count, build, order);
        if (candidate < current) {
          current = candidate;
          improved = true;
        } else {
          std::swap(order[i], order[i + 1]);  // revert
        }
      }
      if (!improved) break;
    }
    if (current < best.node_count) {
      best.node_count = current;
      best.order = order;
    }
  }
  return best;
}

ordering_result sift_order(int input_count, const order_builder& build,
                           int max_passes) {
  check(input_count >= 0, "sift_order: negative input count");
  ordering_result best;
  best.order.resize(static_cast<std::size_t>(input_count));
  std::iota(best.order.begin(), best.order.end(), 0);
  best.node_count = size_under(input_count, build, best.order);

  for (int pass = 0; pass < max_passes; ++pass) {
    bool moved = false;
    for (int variable = 0; variable < input_count; ++variable) {
      // Remove `variable` from the order, then try every insertion point.
      std::vector<int> base;
      base.reserve(best.order.size());
      for (int v : best.order)
        if (v != variable) base.push_back(v);

      std::size_t best_size = best.node_count;
      int best_position = -1;
      for (int pos = 0; pos <= static_cast<int>(base.size()); ++pos) {
        std::vector<int> candidate = base;
        candidate.insert(candidate.begin() + pos, variable);
        if (candidate == best.order) continue;
        const std::size_t size = size_under(input_count, build, candidate);
        if (size < best_size) {
          best_size = size;
          best_position = pos;
        }
      }
      if (best_position >= 0) {
        base.insert(base.begin() + best_position, variable);
        best.order = std::move(base);
        best.node_count = best_size;
        moved = true;
      }
    }
    if (!moved) break;
  }
  return best;
}

}  // namespace compact::bdd
