#include "bdd/transfer.hpp"

#include <unordered_map>

namespace compact::bdd {
namespace {

node_handle transfer_rec(const manager& src, node_handle f, manager& dst,
                         std::unordered_map<node_handle, node_handle>& memo) {
  if (src.is_terminal(f)) return f;  // terminals share handles by convention
  const auto hit = memo.find(f);
  if (hit != memo.end()) return hit->second;
  const node& n = src.at(f);
  check(n.var < dst.variable_count(),
        "bdd::transfer: destination manager has too few variables for x" +
            std::to_string(n.var));
  const node_handle low = transfer_rec(src, n.low, dst, memo);
  const node_handle high = transfer_rec(src, n.high, dst, memo);
  // The copied children are canonical in dst and keep src's level order, so
  // the node re-canonicalizes with a single unique-table insert (no ite
  // recursion). Recursion depth is bounded by the variable count.
  const node_handle copy = dst.canonical_node(n.var, low, high);
  memo.emplace(f, copy);
  return copy;
}

}  // namespace

node_handle transfer(const manager& src, node_handle f, manager& dst) {
  std::unordered_map<node_handle, node_handle> memo;
  return transfer_rec(src, f, dst, memo);
}

std::optional<std::vector<bool>> find_satisfying(const manager& m,
                                                 node_handle f) {
  if (f == false_handle) return std::nullopt;
  std::vector<bool> assignment(static_cast<std::size_t>(m.variable_count()),
                               false);
  // In a reduced BDD every internal node has a path to the 1-terminal:
  // follow the high child unless it is the 0-terminal.
  node_handle cursor = f;
  while (!m.is_terminal(cursor)) {
    const node& n = m.at(cursor);
    const bool go_high = n.high != false_handle;
    assignment[static_cast<std::size_t>(n.var)] = go_high;
    cursor = go_high ? n.high : n.low;
  }
  check(cursor == true_handle, "bdd::find_satisfying: walk ended at 0");
  return assignment;
}

}  // namespace compact::bdd
