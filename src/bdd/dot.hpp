// Graphviz export of (shared) BDDs, mirroring CUDD's DumpDot output style:
// solid arcs for high/then edges, dashed arcs for low/else edges.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "bdd/manager.hpp"

namespace compact::bdd {

/// Write the multi-rooted DAG in dot format. `root_names` (if non-empty)
/// must parallel `roots` and labels the external pointers.
void write_dot(const manager& m, const std::vector<node_handle>& roots,
               const std::vector<std::string>& root_names, std::ostream& os);

}  // namespace compact::bdd
