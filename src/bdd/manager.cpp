#include "bdd/manager.hpp"

#include <algorithm>
#include <cmath>

#include "util/metrics.hpp"

namespace compact::bdd {
namespace {

// Unique-table key packing: 10 bits of variable, 27 bits per child handle.
constexpr int var_bits = 10;
constexpr int handle_bits = 27;
constexpr std::uint32_t max_variables = (1u << var_bits) - 1;
constexpr std::uint32_t max_nodes = (1u << handle_bits) - 1;

std::uint64_t pack(std::int32_t var, node_handle low, node_handle high) {
  return (static_cast<std::uint64_t>(var) << (2 * handle_bits)) |
         (static_cast<std::uint64_t>(low) << handle_bits) |
         static_cast<std::uint64_t>(high);
}

}  // namespace

manager::manager(int variable_count) : variable_count_(variable_count) {
  check(variable_count >= 0 &&
            variable_count <= static_cast<int>(max_variables),
        "bdd::manager supports at most 1023 variables");
  nodes_.push_back({terminal_var, false_handle, false_handle});  // 0
  nodes_.push_back({terminal_var, true_handle, true_handle});    // 1
}

const node& manager::at(node_handle f) const {
  check(f < nodes_.size(), "bdd: dangling node handle");
  return nodes_[f];
}

node_handle manager::make_node(std::int32_t var, node_handle low,
                               node_handle high) {
  if (low == high) return low;  // reduction rule
  const std::uint64_t key = pack(var, low, high);
  const auto [it, inserted] =
      unique_.try_emplace(key, static_cast<node_handle>(nodes_.size()));
  if (inserted) {
    check(nodes_.size() < max_nodes, "bdd: node table overflow");
    nodes_.push_back({var, low, high});
    ++stats_.unique_inserts;
  }
  return it->second;
}

node_handle manager::var(int index) {
  check(index >= 0 && index < variable_count_, "bdd: variable out of range");
  return make_node(index, false_handle, true_handle);
}

node_handle manager::nvar(int index) {
  check(index >= 0 && index < variable_count_, "bdd: variable out of range");
  return make_node(index, true_handle, false_handle);
}

node_handle manager::ite(node_handle f, node_handle g, node_handle h) {
  // Terminal cases.
  if (f == true_handle) return g;
  if (f == false_handle) return h;
  if (g == h) return g;
  if (g == true_handle && h == false_handle) return f;

  ++stats_.ite_calls;
  const ite_key key{f, g, h};
  if (const auto it = ite_cache_.find(key); it != ite_cache_.end()) {
    ++stats_.ite_cache_hits;
    return it->second;
  }
  ++stats_.ite_cache_misses;

  const std::int32_t top =
      std::min({level(f), level(g), level(h)});

  auto cofactor = [&](node_handle u, bool high) {
    if (level(u) != top) return u;
    return high ? nodes_[u].high : nodes_[u].low;
  };

  ++ite_depth_;
  stats_.max_ite_depth = std::max(stats_.max_ite_depth, ite_depth_);
  const node_handle high =
      ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const node_handle low =
      ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  --ite_depth_;
  const node_handle result = make_node(top, low, high);
  ite_cache_.emplace(key, result);
  return result;
}

void manager::publish_metrics() const {
  if (!metrics_enabled()) return;
  metrics_registry& registry = global_metrics();
  const auto delta = [](std::uint64_t now, std::uint64_t& prev) {
    const std::uint64_t d = now - prev;
    prev = now;
    return d;
  };
  registry.counter("bdd.ite_calls")
      .add(delta(stats_.ite_calls, published_.ite_calls));
  registry.counter("bdd.ite_cache_hits")
      .add(delta(stats_.ite_cache_hits, published_.ite_cache_hits));
  registry.counter("bdd.ite_cache_misses")
      .add(delta(stats_.ite_cache_misses, published_.ite_cache_misses));
  registry.counter("bdd.unique_inserts")
      .add(delta(stats_.unique_inserts, published_.unique_inserts));
  registry.gauge("bdd.unique_table_size")
      .set(static_cast<double>(nodes_.size()));
  registry.gauge("bdd.unique_table_load").set(unique_table_load());
  registry
      .histogram("bdd.max_ite_depth",
                 {4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0})
      .observe(static_cast<double>(stats_.max_ite_depth));
}

node_handle manager::apply_not(node_handle f) {
  return ite(f, false_handle, true_handle);
}

node_handle manager::apply_and(node_handle f, node_handle g) {
  return ite(f, g, false_handle);
}

node_handle manager::apply_or(node_handle f, node_handle g) {
  return ite(f, true_handle, g);
}

node_handle manager::apply_xor(node_handle f, node_handle g) {
  return ite(f, apply_not(g), g);
}

node_handle manager::apply_xnor(node_handle f, node_handle g) {
  return ite(f, g, apply_not(g));
}

node_handle manager::restrict_var(node_handle f, int index, bool value) {
  if (is_terminal(f)) return f;
  const node& n = nodes_[f];
  if (n.var > index) return f;  // variable below the tested level
  if (n.var == index) return value ? n.high : n.low;
  const node_handle low = restrict_var(n.low, index, value);
  const node_handle high = restrict_var(n.high, index, value);
  return make_node(n.var, low, high);
}

node_handle manager::exists(node_handle f, int index) {
  return apply_or(restrict_var(f, index, false),
                  restrict_var(f, index, true));
}

node_handle manager::forall(node_handle f, int index) {
  return apply_and(restrict_var(f, index, false),
                   restrict_var(f, index, true));
}

bool manager::evaluate(node_handle f,
                       const std::vector<bool>& assignment) const {
  check(assignment.size() >= static_cast<std::size_t>(variable_count_),
        "bdd: assignment too short");
  node_handle u = f;
  while (!is_terminal(u)) {
    const node& n = nodes_[u];
    u = assignment[static_cast<std::size_t>(n.var)] ? n.high : n.low;
  }
  return u == true_handle;
}

double manager::sat_count(node_handle f) const {
  // sat_cache_ stores the satisfying *fraction* of each node viewed as a
  // function of all variable_count() variables: fraction(u) =
  // (fraction(low) + fraction(high)) / 2. Variables skipped between a node
  // and its child are free on both branches, so the global fraction of the
  // child needs no level-gap correction.
  if (f == false_handle) return 0.0;

  // Iterative DFS with memoization on handles.
  std::vector<node_handle> stack{f};
  while (!stack.empty()) {
    const node_handle u = stack.back();
    if (is_terminal(u) || sat_cache_.contains(u)) {
      stack.pop_back();
      continue;
    }
    const node& n = nodes_[u];
    const bool low_ready = is_terminal(n.low) || sat_cache_.contains(n.low);
    const bool high_ready = is_terminal(n.high) || sat_cache_.contains(n.high);
    if (!low_ready) {
      stack.push_back(n.low);
      continue;
    }
    if (!high_ready) {
      stack.push_back(n.high);
      continue;
    }
    auto fraction = [&](node_handle child) {
      if (child == false_handle) return 0.0;
      if (child == true_handle) return 1.0;
      return sat_cache_.at(child);
    };
    const double value = 0.5 * (fraction(n.low) + fraction(n.high));
    sat_cache_.emplace(u, value);
    stack.pop_back();
  }

  const double fraction = f == true_handle ? 1.0 : sat_cache_.at(f);
  return fraction * std::pow(2.0, variable_count_);
}

}  // namespace compact::bdd
